"""Legacy shim so editable installs work offline (no `wheel` package).

All real metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` on environments without network
access to fetch build backends.
"""

from setuptools import setup

setup()
