"""One-call conveniences for the common analyses.

These wrap the full pipeline (parameters -> space -> frontier) with the
paper's defaults so a downstream user can get from zero to a result in a
couple of lines; the underlying pieces remain fully composable.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.evaluate import evaluate_space
from repro.core.pareto import ParetoFrontier
from repro.hardware.catalog import AMD_K10, ARM_CORTEX_A9
from repro.util.rng import SeedLike
from repro.workloads.base import WorkloadSpec
from repro.workloads.suite import workload_by_name


def _resolve(workload: Union[str, WorkloadSpec]) -> WorkloadSpec:
    if isinstance(workload, str):
        return workload_by_name(workload)
    return workload


def pareto(
    workload: Union[str, WorkloadSpec],
    max_arm: int = 10,
    max_amd: int = 10,
    units: Optional[float] = None,
    calibrated: bool = False,
    seed: SeedLike = 0,
):
    """Full Pareto analysis with the paper's defaults (Figs. 4-5).

    Returns a :class:`repro.reporting.figures.ParetoFigure` carrying the
    evaluated space, the three frontiers, and the region decomposition.
    """
    from repro.reporting.figures import build_fig4_fig5

    return build_fig4_fig5(
        _resolve(workload),
        max_arm=max_arm,
        max_amd=max_amd,
        units=units,
        calibrated=calibrated,
        seed=seed,
    )


def min_energy_for_deadline(
    workload: Union[str, WorkloadSpec],
    deadline_s: float,
    max_arm: int = 10,
    max_amd: int = 10,
    units: Optional[float] = None,
) -> Optional[dict]:
    """The operational question: cheapest configuration meeting a deadline.

    Returns ``None`` when no configuration meets it, else a dict with the
    configuration, its matched split, time and energy.
    """
    from repro.core.calibration import ground_truth_params

    spec = _resolve(workload)
    if units is None:
        units = spec.problem_sizes.get("analysis", spec.default_job_units)
    params = {
        node.name: ground_truth_params(node, spec)
        for node in (ARM_CORTEX_A9, AMD_K10)
    }
    space = evaluate_space(ARM_CORTEX_A9, max_arm, AMD_K10, max_amd, params, units)
    frontier = ParetoFrontier.from_points(space.times_s, space.energies_j)
    idx = frontier.config_index_for_deadline(deadline_s)
    if idx is None:
        return None
    point = space.point(idx)
    return {
        "config": point.config,
        "time_s": point.time_s,
        "energy_j": point.energy_j,
        "units_arm": point.units_a,
        "units_amd": point.units_b,
    }
