"""Command-line interface: regenerate any paper artifact from a terminal.

Usage::

    python -m repro table1
    python -m repro table5
    python -m repro fig4 --workload ep
    python -m repro fig10 --seed 7 --csv out/fig10.csv
    python -m repro scenario --file my_experiment.json --verbose

Every subcommand prints a text rendering; ``--csv`` additionally exports
the underlying data.  All figure pipelines run through one
:class:`repro.engine.RunContext`, so a single invocation that needs the
same calibration or configuration space twice computes it once;
``--cache-dir`` adds an on-disk result cache that also warms later
invocations, and ``--workers`` widens the engine's process pool.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.engine import ResultCache, RunContext, Scenario, run_scenario
from repro.reporting.export import write_csv
from repro.reporting.figures import (
    build_fig2,
    build_fig3,
    build_fig4_fig5,
    build_fig6_fig7,
    build_fig8_fig9,
    build_fig10,
    build_table1,
    build_table3,
    build_table4,
    build_table5,
)
from repro.hardware.catalog import AMD_K10 as _AMD_NODE
from repro.hardware.catalog import ARM_CORTEX_A9 as _ARM_NODE
from repro.reporting.tables import Table
from repro.util.units import seconds_to_ms
from repro.workloads.suite import EP, MEMCACHED, workload_by_name


def _series_table(series_map, title: str) -> Table:
    """Summarize figure series as (label, n points, x range, y range)."""
    table = Table(["series", "points", "x range", "y range"], title=title)
    for label, s in series_map.items():
        table.add_row(
            [
                label,
                len(s.x),
                f"{s.x.min():.3g}..{s.x.max():.3g} {s.x_name}",
                f"{s.y.min():.3g}..{s.y.max():.3g} {s.y_name}",
            ]
        )
    return table


def _export_series(series_map, path: Path) -> None:
    rows = []
    for label, s in series_map.items():
        for x, y in zip(s.x, s.y):
            rows.append([label, x, y])
    write_csv(path, ["series", "x", "y"], rows)


def _jobs_command(args) -> int:
    """``repro jobs list|show|retry|cancel`` against a --store-dir queue."""
    import json as _json

    from repro.service.jobs import JobQueue, UnknownJob
    from repro.store import ArtifactStore

    if args.store_dir is None:
        print("jobs requires --store-dir <store>", file=sys.stderr)
        return 2
    actions = ("list", "show", "retry", "cancel")
    if args.action not in actions:
        print(
            f"unknown jobs action {args.action!r}; available: "
            + ", ".join(actions),
            file=sys.stderr,
        )
        return 2
    if args.action != "list" and args.target is None:
        print(f"jobs {args.action} requires a job id", file=sys.stderr)
        return 2
    with ArtifactStore(args.store_dir) as store:
        queue = JobQueue(store)
        try:
            if args.action == "list":
                jobs = queue.list_jobs(state=args.state)
                table = Table(
                    ["id", "state", "scenario", "attempts", "owner", "error"],
                    title=f"Run queue ({len(jobs)} job(s); "
                    + ", ".join(
                        f"{n} {s}" for s, n in sorted(queue.counts().items())
                    )
                    + ")"
                    if jobs
                    else "Run queue (empty)",
                )
                for job in jobs:
                    error = job["error"] or {}
                    table.add_row([
                        job["id"],
                        job["state"],
                        job["scenario_name"] or "-",
                        f"{job['attempts']}/{job['max_attempts']}",
                        job["lease_owner"] or "-",
                        error.get("type", "-"),
                    ])
                print(table.render())
            elif args.action == "show":
                job = queue.get(args.target)
                print(_json.dumps(job, indent=2, sort_keys=True))
            elif args.action == "retry":
                job = queue.retry(args.target)
                print(f"job {job['id']} re-queued (state: {job['state']})")
            elif args.action == "cancel":
                job = queue.cancel(args.target)
                verb = (
                    "cancelled"
                    if job["state"] == "cancelled"
                    else f"cancel requested (state: {job['state']})"
                )
                print(f"job {job['id']} {verb}")
        except (UnknownJob, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-energy",
        description=(
            "Reproduce tables/figures of 'Modeling the Energy Efficiency of "
            "Heterogeneous Clusters' (ICPP 2014)"
        ),
    )
    parser.add_argument(
        "artifact",
        choices=[
            "table1",
            "table3",
            "table4",
            "table5",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "reduce",
            "sensitivity",
            "threeway",
            "report",
            "scenario",
            "serve",
            "store",
            "jobs",
        ],
        help="paper artifact to regenerate, or an extension analysis "
        "(reduce = configuration-space reduction; sensitivity = parameter "
        "elasticities; threeway = ARM+AMD+Atom k-way matching demo; "
        "report = full Markdown reproduction report; scenario = run a "
        "declarative experiment from --file through the engine; "
        "serve = answer planner queries AND enqueue scenario runs over "
        "HTTP from a --store-dir populated by earlier scenario runs; "
        "store = maintain a --store-dir, e.g. 'store gc'; jobs = inspect "
        "and drive the durable run queue, e.g. 'jobs list')",
    )
    parser.add_argument(
        "action",
        nargs="?",
        default=None,
        help="sub-action: for store, 'gc' removes artifact rows no live "
        "stage mapping (or active job) references; for jobs, one of "
        "'list', 'show', 'retry', 'cancel'",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="job id for 'jobs show|retry|cancel'",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="with store gc, only count and report what would be removed",
    )
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    parser.add_argument(
        "--workload",
        default=None,
        help="workload name override where the artifact allows one",
    )
    parser.add_argument(
        "--csv", type=Path, default=None, help="also export data to this CSV path"
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render an ASCII chart of the artifact (figures only)",
    )
    parser.add_argument(
        "--file",
        type=Path,
        default=None,
        help="scenario JSON file (scenario artifact only)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="engine process-pool width (default: auto; 1 = serial)",
    )
    parser.add_argument(
        "--backend",
        choices=["serial", "process_pool", "tcp_remote"],
        default=None,
        help="execution backend for the engine's fan-outs: 'serial' "
        "(in-process), 'process_pool' (single-host pool, the default "
        "auto-selection), or 'tcp_remote' (tasks shipped to worker "
        "agents; see python -m repro.engine.remote_worker).  Artifacts "
        "are bit-identical across backends",
    )
    parser.add_argument(
        "--backend-option",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="backend option (repeatable), e.g. "
        "--backend-option shared_memory=true or "
        "--backend-option spawn_workers=4; values parse as JSON with a "
        "plain-string fallback",
    )
    parser.add_argument(
        "--worker-hosts",
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="comma-separated worker agents for the tcp_remote backend "
        "(shorthand for --backend tcp_remote "
        "--backend-option worker_hosts=...)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="directory for the on-disk result cache "
        "(e.g. results/.cache; default: in-memory only)",
    )
    parser.add_argument(
        "--store-dir",
        type=Path,
        default=None,
        help="persistent artifact store directory (sqlite-backed).  With "
        "the scenario artifact, stage artifacts are stored and warm "
        "reruns skip every unchanged stage; with serve, the store to "
        "answer queries from",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="with the scenario artifact, print the stage plan (stage "
        "identities and store hit/stale/miss status) without executing "
        "anything",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for serve (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8734,
        help="bind port for serve (default: 8734; 0 = ephemeral)",
    )
    parser.add_argument(
        "--runners",
        type=int,
        default=1,
        help="supervisor worker threads executing queued runs inside "
        "serve (default: 1; 0 = query-only, jobs queue until a worker "
        "attaches)",
    )
    parser.add_argument(
        "--max-queued",
        type=int,
        default=64,
        help="bound on the queued-run backlog; past it POST /v1/runs "
        "sheds load with 429 + Retry-After (default: 64)",
    )
    parser.add_argument(
        "--lease-s",
        type=float,
        default=30.0,
        help="job lease duration for serve's supervisors; a crashed "
        "worker's job is reclaimed this long after its last heartbeat "
        "(default: 30)",
    )
    parser.add_argument(
        "--state",
        default=None,
        help="with 'jobs list', filter by state "
        "(queued|leased|running|done|failed|cancelled)",
    )
    parser.add_argument(
        "--space-mode",
        choices=["materialized", "streaming"],
        default=None,
        help="configuration-space pipeline: 'materialized' evaluates the "
        "whole space in RAM; 'streaming' folds memory-bounded blocks "
        "through online reducers (bit-identical frontiers/regions/"
        "queueing, no point cloud)",
    )
    parser.add_argument(
        "--memory-budget-mb",
        type=float,
        default=None,
        help="streaming block budget in MiB (caps rows held at once; "
        "default 256)",
    )
    parser.add_argument(
        "--reduce-at",
        choices=["coordinator", "worker"],
        default=None,
        help="with --space-mode streaming, where the block fold runs: "
        "'coordinator' ships whole evaluated blocks back and folds them "
        "centrally; 'worker' folds each block in the worker that "
        "evaluated it and ships only compact reducer states "
        "(bit-identical artifacts either way)",
    )
    parser.add_argument(
        "--chunk-rows",
        type=int,
        default=None,
        help="pin the per-block row budget, overriding the adaptive "
        "chunk planner (an execution knob; artifacts are identical at "
        "any block size)",
    )
    parser.add_argument(
        "--spill-dir",
        type=Path,
        default=None,
        help="with --space-mode streaming, also spill the full space to "
        "memory-mapped .npy columns in this directory (scenario only)",
    )
    parser.add_argument(
        "--simulation",
        choices=["batched", "reference"],
        default=None,
        help="measurement-layer implementation: 'batched' (vectorized "
        "NumPy runs, the default) or 'reference' (scalar per-run loop); "
        "the two are bit-identical, so this is a performance knob",
    )
    parser.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        help="with --space-mode streaming, periodically checkpoint "
        "reducer state here so an interrupted run can be resumed "
        "(scenario only; incompatible with --spill-dir)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from the checkpoint in --checkpoint-dir, "
        "re-evaluating only the unfinished blocks; the resumed artifacts "
        "are bit-identical to an uninterrupted run",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=8,
        help="blocks between checkpoint saves (default: 8)",
    )
    parser.add_argument(
        "--search",
        choices=["exhaustive", "random", "ga", "anneal"],
        default=None,
        help="space-exploration strategy (scenario only): 'exhaustive' "
        "sweeps every configuration (the default); 'random', 'ga' "
        "(genetic, Pareto-rank selection), and 'anneal' (simulated "
        "annealing) explore under --search-budget and produce an "
        "approximate frontier with a recorded convergence trajectory",
    )
    parser.add_argument(
        "--search-budget",
        type=int,
        default=None,
        metavar="ROWS",
        help="row budget for a non-exhaustive --search: newly evaluated "
        "configurations are capped at this count (default: 5%% of the "
        "space)",
    )
    parser.add_argument(
        "--trajectory-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the search convergence trajectory (per-round rows, "
        "frontier size, hypervolume) as JSON to this path",
    )
    parser.add_argument(
        "--fault-plan",
        type=Path,
        default=None,
        help="JSON fault-injection plan (see repro.engine.faults) applied "
        "deterministically to the run: crash/delay workers, corrupt "
        "cache entries, fail reducer folds -- for resilience testing",
    )
    parser.add_argument(
        "--task-timeout-s",
        type=float,
        default=None,
        help="per-task timeout for pooled evaluation; a task exceeding "
        "it is retried on a fresh pool (default: no timeout)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print engine progress events (stages, cache hits, timings)",
    )
    args = parser.parse_args(argv)
    if args.artifact == "serve":
        if args.store_dir is None:
            print("serve requires --store-dir <store>", file=sys.stderr)
            return 2
        from repro.service import serve

        serve(
            args.store_dir,
            host=args.host,
            port=args.port,
            quiet=not args.verbose,
            runners=args.runners,
            max_queued=args.max_queued,
            lease_s=args.lease_s,
        )
        return 0
    if args.artifact == "store":
        if args.store_dir is None:
            print("store requires --store-dir <store>", file=sys.stderr)
            return 2
        if args.action != "gc":
            print(
                f"unknown store action {args.action!r}; available: gc",
                file=sys.stderr,
            )
            return 2
        from repro.store import ArtifactStore

        with ArtifactStore(args.store_dir) as store:
            report = store.gc(dry_run=args.dry_run)
        verb = "would remove" if args.dry_run else "removed"
        line = (
            f"store gc: {verb} {report['removed']} artifact(s) "
            f"({report['reclaimed_bytes']:,} bytes), "
            f"{report['kept']} live artifact(s) kept"
        )
        if report["active_jobs"]:
            line += (
                f"; {report['job_protected']} artifact(s) protected by "
                f"{report['active_jobs']} active job(s)"
            )
        if report["job_dirs_removed"]:
            line += (
                f"; {verb} {report['job_dirs_removed']} orphaned job "
                "checkpoint dir(s)"
            )
        print(line)
        return 0
    if args.artifact == "jobs":
        return _jobs_command(args)
    if args.action is not None:
        parser.error(
            f"the {args.artifact} artifact takes no action argument"
        )
    if args.target is not None:
        parser.error(
            f"the {args.artifact} artifact takes no target argument"
        )
    if args.resume and args.checkpoint_dir is None:
        parser.error("--resume requires --checkpoint-dir")
    if args.reduce_at == "worker" and (args.space_mode or "") != "streaming":
        # Scenario files may set streaming themselves; only the explicit
        # flag combination is checkable (and fixable) at parse time.
        if args.artifact != "scenario" or args.space_mode is not None:
            parser.error("--reduce-at worker requires --space-mode streaming")
    batched = args.simulation != "reference"
    space_mode = args.space_mode or "materialized"

    backend = args.backend
    backend_options = {}
    for entry in args.backend_option or ():
        key, sep, value = entry.partition("=")
        if not sep or not key:
            parser.error(f"--backend-option expects KEY=VALUE, got {entry!r}")
        try:
            import json as _json

            backend_options[key] = _json.loads(value)
        except ValueError:
            backend_options[key] = value
    if args.worker_hosts is not None:
        backend_options.setdefault("worker_hosts", args.worker_hosts)
        if backend is None:
            backend = "tcp_remote"
        elif backend != "tcp_remote":
            parser.error("--worker-hosts requires --backend tcp_remote")
    if backend_options and backend is None:
        parser.error("--backend-option requires --backend")
    if backend is not None:
        from repro.engine.backends import validate_backend_options

        try:
            backend_options = validate_backend_options(backend, backend_options)
        except ValueError as exc:
            parser.error(str(exc))
    if args.workers is not None:
        from repro.engine.backends import validate_workers

        try:
            validate_workers(args.workers, name="--workers")
        except ValueError as exc:
            parser.error(str(exc))

    out = sys.stdout
    csv_rows = None
    csv_headers = None

    def _sink(event: str, payload: dict) -> None:
        print(f"[engine] {event}: {payload}", file=sys.stderr)

    faults = None
    if args.fault_plan is not None:
        from repro.engine.faults import FaultPlan

        faults = FaultPlan.from_file(args.fault_plan)
    resilience = None
    if args.task_timeout_s is not None:
        from repro.engine.resilience import ResiliencePolicy

        resilience = ResiliencePolicy(task_timeout_s=args.task_timeout_s)

    ctx = RunContext(
        seed=args.seed,
        cache=ResultCache(disk_dir=args.cache_dir) if args.cache_dir else None,
        sinks=(_sink,) if args.verbose else (),
        max_workers=args.workers,
        memory_budget_mb=args.memory_budget_mb,
        resilience=resilience,
        faults=faults,
        backend=backend,
        backend_options=backend_options or None,
    )
    if args.store_dir is not None:
        from repro.store import ArtifactStore

        # The context's result cache doubles as the store's memory tier,
        # so in-process lookups never touch sqlite.
        ctx.store = ArtifactStore(
            args.store_dir, memory=ctx.cache, on_event=ctx.emit
        )

    if args.artifact == "table1":
        print(build_table1().render(), file=out)
    elif args.artifact == "table3":
        table, _ = build_table3(seed=args.seed, batched=batched)
        print(table.render(), file=out)
    elif args.artifact == "table4":
        table, _ = build_table4(seed=args.seed, batched=batched)
        print(table.render(), file=out)
    elif args.artifact == "table5":
        table, _ = build_table5(seed=args.seed)
        print(table.render(), file=out)
    elif args.artifact == "fig2":
        series = build_fig2(seed=args.seed)
        print(_series_table(series, "Fig 2: WPI/SPI_core constancy").render(), file=out)
        if args.csv:
            _export_series(series, args.csv)
            print(f"wrote {args.csv}", file=out)
        return 0
    elif args.artifact == "fig3":
        series = build_fig3(seed=args.seed, batched=batched)
        table = Table(
            ["panel", "r^2", "slope", "intercept"],
            title="Fig 3: SPI_mem linear regression over frequency",
        )
        for label, s in series.items():
            table.add_row(
                [label, f"{s.meta['r2']:.3f}", f"{s.meta['slope']:.3f}", f"{s.meta['intercept']:.3f}"]
            )
        print(table.render(), file=out)
        if args.csv:
            _export_series(series, args.csv)
            print(f"wrote {args.csv}", file=out)
        return 0
    elif args.artifact in ("fig4", "fig5"):
        workload = workload_by_name(args.workload) if args.workload else (
            EP if args.artifact == "fig4" else MEMCACHED
        )
        fig = build_fig4_fig5(
            workload,
            seed=args.seed,
            ctx=ctx,
            space_mode=space_mode,
            memory_budget_mb=args.memory_budget_mb,
        )
        table = Table(["quantity", "value"], title=f"Fig {args.artifact[-1]}: {workload.name}")
        n_configs = len(fig.space) if fig.space is not None else fig.reduced.total_rows
        table.add_row(["configurations", n_configs])
        table.add_row(["frontier points", len(fig.frontier)])
        table.add_row(
            ["fastest deadline [ms]", f"{seconds_to_ms(fig.frontier.fastest_time_s):.1f}"]
        )
        table.add_row(["min energy [J]", f"{fig.frontier.min_energy_j:.2f}"])
        table.add_row(["sweet region", "yes" if fig.regions.has_sweet_region else "no"])
        table.add_row(
            ["overlap region", "yes" if fig.regions.has_overlap_region else "no"]
        )
        print(table.render(), file=out)
        if args.plot:
            from repro.reporting.plots import plot_pareto_figure

            print(file=out)
            print(plot_pareto_figure(fig), file=out)
        csv_headers = ["time_ms", "energy_j", "n_arm", "n_amd"]
        if fig.space is not None:
            csv_rows = [
                [
                    seconds_to_ms(fig.space.times_s[i]),
                    fig.space.energies_j[i],
                    int(fig.space.n_a[i]),
                    int(fig.space.n_b[i]),
                ]
                for i in range(len(fig.space))
            ]
        else:
            # Streaming keeps no point cloud; export the frontier rows.
            csv_rows = [
                [
                    seconds_to_ms(fig.frontier.times_s[i]),
                    fig.frontier.energies_j[i],
                    int(fig.reduced.frontier_n[0, i]),
                    int(fig.reduced.frontier_n[1, i]),
                ]
                for i in range(len(fig.frontier))
            ]
    elif args.artifact in ("fig6", "fig7"):
        workload = workload_by_name(args.workload) if args.workload else (
            MEMCACHED if args.artifact == "fig6" else EP
        )
        series = build_fig6_fig7(workload, seed=args.seed, ctx=ctx)
        print(
            _series_table(
                series, f"Fig {args.artifact[-1]}: budget mixes for {workload.name}"
            ).render(),
            file=out,
        )
        if args.plot:
            from repro.reporting.plots import plot_series_map

            print(file=out)
            print(plot_series_map(series, x_log=True), file=out)
        if args.csv:
            _export_series(series, args.csv)
            print(f"wrote {args.csv}", file=out)
        return 0
    elif args.artifact in ("fig8", "fig9"):
        workload = workload_by_name(args.workload) if args.workload else (
            MEMCACHED if args.artifact == "fig8" else EP
        )
        series = build_fig8_fig9(workload, seed=args.seed, ctx=ctx)
        print(
            _series_table(
                series, f"Fig {args.artifact[-1]}: cluster scaling for {workload.name}"
            ).render(),
            file=out,
        )
        if args.plot:
            from repro.reporting.plots import plot_series_map

            print(file=out)
            print(plot_series_map(series, x_log=True), file=out)
        if args.csv:
            _export_series(series, args.csv)
            print(f"wrote {args.csv}", file=out)
        return 0
    elif args.artifact == "fig10":
        workload = workload_by_name(args.workload) if args.workload else MEMCACHED
        per_util = build_fig10(
            workload,
            seed=args.seed,
            ctx=ctx,
            space_mode=space_mode,
            memory_budget_mb=args.memory_budget_mb,
        )
        table = Table(
            ["utilization", "points", "response range [ms]", "energy range [J]"],
            title="Fig 10: queueing-aware window energy (16 ARM + 14 AMD)",
        )
        for u, points in sorted(per_util.items()):
            responses = [seconds_to_ms(p.response_s) for p in points]
            energies = [p.window_energy_j for p in points]
            table.add_row(
                [
                    f"{u:.0%}",
                    len(points),
                    f"{min(responses):.1f}..{max(responses):.1f}",
                    f"{min(energies):.1f}..{max(energies):.1f}",
                ]
            )
        print(table.render(), file=out)
        if args.plot:
            from repro.reporting.figures import FigureSeries
            from repro.reporting.plots import plot_series_map

            series = {
                f"U={u:.0%}": FigureSeries(
                    label=f"U={u:.0%}",
                    x=[seconds_to_ms(p.response_s) for p in points],
                    y=[p.window_energy_j for p in points],
                    x_name="response [ms]",
                    y_name="window energy [J]",
                )
                for u, points in sorted(per_util.items())
            }
            print(file=out)
            print(plot_series_map(series, x_log=True, y_log=True), file=out)
        csv_headers = ["utilization", "response_ms", "energy_j", "n_arm", "n_amd"]
        csv_rows = [
            [u, seconds_to_ms(p.response_s), p.window_energy_j, p.n_a, p.n_b]
            for u, points in sorted(per_util.items())
            for p in points
        ]

    elif args.artifact == "scenario":
        if args.file is None:
            print("scenario requires --file <scenario.json>", file=sys.stderr)
            return 2
        scenario = Scenario.from_file(args.file)
        if args.simulation is not None:
            scenario = scenario.with_(simulation=args.simulation)
        if args.space_mode is not None:
            scenario = scenario.with_(space_mode=args.space_mode)
        if args.memory_budget_mb is not None:
            scenario = scenario.with_(memory_budget_mb=args.memory_budget_mb)
        if args.reduce_at is not None:
            try:
                scenario = scenario.with_(reduce_at=args.reduce_at)
            except ValueError as exc:
                parser.error(str(exc))
        if args.chunk_rows is not None:
            scenario = scenario.with_(chunk_rows=args.chunk_rows)
        if args.search is not None or args.search_budget is not None:
            # CLI flags override the scenario file's search block; an
            # explicit --search replaces it, a lone --search-budget
            # adjusts it.
            search = dict(scenario.search or {})
            if args.search is not None:
                search = {"strategy": args.search}
            if args.search_budget is not None:
                if not search or search.get("strategy") == "exhaustive":
                    parser.error(
                        "--search-budget needs a non-exhaustive strategy: "
                        "pass --search random|ga|anneal (or set search in "
                        "the scenario file)"
                    )
                search["budget_rows"] = args.search_budget
            try:
                scenario = scenario.with_(search=search or None)
            except ValueError as exc:
                parser.error(str(exc))
        if backend is not None:
            # CLI flags win over the scenario file's backend selection.
            scenario = scenario.with_(
                backend=backend, backend_options=backend_options or None
            )
        if args.explain:
            from repro.engine import explain_scenario

            plan, rows = explain_scenario(scenario, ctx)
            table = Table(
                ["stage", "kind", "identity", "status"],
                title=f"Stage plan: {scenario.name or scenario.workload} "
                f"(scenario {plan.scenario_id[:12]})",
            )
            for row in rows:
                table.add_row(
                    [row["stage"], row["kind"], row["identity"][:16], row["status"]]
                )
            print(table.render(), file=out)
            if ctx.store is None:
                print(
                    "(no --store-dir: statuses reflect an empty store)",
                    file=out,
                )
            return 0
        result = run_scenario(
            scenario,
            ctx,
            spill_dir=args.spill_dir,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            checkpoint_every=args.checkpoint_every,
        )
        mix = " + ".join(f"{g.node} x{g.max_nodes}" for g in scenario.groups)
        table = Table(
            ["quantity", "value"],
            title=f"Scenario: {scenario.name or scenario.workload} ({mix})",
        )
        table.add_row(["stages", ", ".join(scenario.stages)])
        table.add_row(["space mode", scenario.space_mode])
        table.add_row(["configurations", f"{result.num_configurations:,}"])
        if result.search is not None:
            table.add_row(["search strategy", result.search.strategy])
            table.add_row(
                ["search budget [rows]", f"{result.search.budget_rows:,}"]
            )
            table.add_row(["space rows", f"{result.search.space_rows:,}"])
            table.add_row(["coverage", f"{result.search.coverage:.2%}"])
            table.add_row(
                ["search rounds", len(result.search.trajectory.rounds)]
            )
        if result.frontier is not None:
            table.add_row(["frontier points", len(result.frontier)])
            table.add_row(
                ["fastest deadline [ms]", f"{seconds_to_ms(result.frontier.fastest_time_s):.1f}"]
            )
            table.add_row(["min energy [J]", f"{result.frontier.min_energy_j:.2f}"])
        if result.regions is not None:
            table.add_row(["sweet region", "yes" if result.regions.has_sweet_region else "no"])
            table.add_row(
                ["overlap region", "yes" if result.regions.has_overlap_region else "no"]
            )
        if result.queueing is not None:
            table.add_row(
                ["queueing utilizations", ", ".join(f"{u:.0%}" for u in sorted(result.queueing))]
            )
        for stage, elapsed in result.timings_s.items():
            table.add_row([f"{stage} time [ms]", f"{elapsed * 1e3:.1f}"])
        stats = result.cache_stats
        table.add_row(
            ["cache", f"{stats['hits']} hits, {stats['misses']} misses, "
             f"{stats['disk_hits']} disk hits"]
        )
        for stage, st in result.stage_cache_stats.items():
            table.add_row(
                [f"cache[{stage}]",
                 f"{st.get('hits', 0)} hits, {st.get('misses', 0)} misses, "
                 f"{st.get('disk_hits', 0)} disk hits"]
            )
        if result.stage_statuses:
            stored = sorted(
                s for s, v in result.stage_statuses.items() if v == "stored"
            )
            table.add_row(
                ["stages from store", ", ".join(stored) if stored else "none"]
            )
        print(table.render(), file=out)
        if result.search is not None:
            from repro.reporting.search import (
                convergence_table,
                plot_convergence,
            )

            trajectory = result.search.trajectory
            print(file=out)
            print(convergence_table(trajectory).render(), file=out)
            if args.plot:
                print(file=out)
                print(
                    plot_convergence({trajectory.strategy: trajectory}),
                    file=out,
                )
            if args.trajectory_out is not None:
                trajectory.to_json(args.trajectory_out)
                print(f"wrote {args.trajectory_out}", file=out)
        space = result.space
        if space is not None:
            csv_headers = ["time_ms", "energy_j"] + [
                f"n_{chr(ord('a') + g)}" for g in range(space.num_groups)
            ]
            csv_rows = [
                [seconds_to_ms(space.times_s[i]), space.energies_j[i]]
                + [int(space.n[g, i]) for g in range(space.num_groups)]
                for i in range(len(space))
            ]
        elif result.reduced is not None and result.reduced.frontier is not None:
            # Streaming without spill: the cloud was never held; export
            # the reduced artifact (frontier rows with node counts).
            reduced = result.reduced
            frontier = reduced.frontier
            csv_headers = ["time_ms", "energy_j"] + [
                f"n_{chr(ord('a') + g)}" for g in range(reduced.num_groups)
            ]
            csv_rows = [
                [seconds_to_ms(frontier.times_s[i]), frontier.energies_j[i]]
                + [int(reduced.frontier_n[g, i]) for g in range(reduced.num_groups)]
                for i in range(len(frontier))
            ]
    elif args.artifact == "report":
        from repro.reporting.report import generate_report

        target_dir = args.csv.parent if args.csv else Path("results")
        path = generate_report(target_dir, seed=args.seed)
        print(f"wrote {path}", file=out)
    elif args.artifact == "reduce":
        from repro.core.reduction import reduction_summary
        from repro.reporting.figures import suite_params

        workload = workload_by_name(args.workload) if args.workload else EP
        units = workload.problem_sizes.get("analysis", workload.default_job_units)
        summary = reduction_summary(
            _ARM_NODE, 10, _AMD_NODE, 10, suite_params(workload), units,
            space_mode=space_mode, memory_budget_mb=args.memory_budget_mb,
        )
        table = Table(
            ["quantity", "value"],
            title=f"Configuration-space reduction for {workload.name} (10x10)",
        )
        table.add_row(["full configurations", f"{summary['full_size']:,}"])
        table.add_row(["reduced configurations", f"{summary['reduced_size']:,}"])
        table.add_row(["reduction factor", f"{summary['reduction_factor']:.0f}x"])
        table.add_row(
            ["ARM settings kept", f"{summary['settings_a'][0]}/{summary['settings_a'][1]}"]
        )
        table.add_row(
            ["AMD settings kept", f"{summary['settings_b'][0]}/{summary['settings_b'][1]}"]
        )
        table.add_row(
            ["frontier preserved", "yes" if summary["frontier_preserved"] else "no"]
        )
        print(table.render(), file=out)
    elif args.artifact == "sensitivity":
        from repro.core.sensitivity import most_influential, sensitivity_table
        from repro.reporting.figures import suite_params

        workload = workload_by_name(args.workload) if args.workload else EP
        units = workload.problem_sizes.get("analysis", workload.default_job_units)
        rows = sensitivity_table(
            _ARM_NODE, 4, _AMD_NODE, 4, suite_params(workload), units
        )
        table = Table(
            ["node", "parameter", "min-energy elasticity", "fastest-time elasticity"],
            title=f"Most influential model inputs for {workload.name}",
        )
        for row in most_influential(rows, top=8):
            table.add_row(
                [
                    row.node_name,
                    row.field,
                    f"{row.min_energy_elasticity:+.2f}",
                    f"{row.fastest_time_elasticity:+.2f}",
                ]
            )
        print(table.render(), file=out)
    elif args.artifact == "threeway":
        from repro.core.calibration import ground_truth_params
        from repro.core.matching import GroupSetting
        from repro.core.multiway import evaluate_multiway
        from repro.hardware.extension import INTEL_ATOM
        from repro.workloads.extension import with_atom

        workload = with_atom(
            workload_by_name(args.workload) if args.workload else EP
        )
        units = workload.problem_sizes.get("analysis", workload.default_job_units)
        groups = [
            GroupSetting(ground_truth_params(_ARM_NODE, workload), 8, 4, 1.4),
            GroupSetting(ground_truth_params(_AMD_NODE, workload), 2, 6, 2.1),
            GroupSetting(ground_truth_params(INTEL_ATOM, workload), 4, 2, 1.66),
        ]
        outcome = evaluate_multiway(units, groups)
        table = Table(
            ["group", "nodes", "work share", "energy [J]"],
            title=f"Three-way matched split for {workload.name} "
            f"(T = {outcome.time_s * 1e3:.1f} ms, total {outcome.energy_j:.2f} J)",
        )
        names = ("ARM Cortex-A9 x8", "AMD K10 x2", "Intel Atom x4")
        for name, group, w, e in zip(
            names, groups, outcome.match.units, outcome.group_energies_j
        ):
            table.add_row(
                [name, group.n_nodes, f"{w / units:.1%}", f"{e:.2f}"]
            )
        print(table.render(), file=out)

    if args.csv and csv_rows is not None:
        write_csv(args.csv, csv_headers, csv_rows)
        print(f"wrote {args.csv}", file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
