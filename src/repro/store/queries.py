"""Planner queries answered from stored artifacts -- never the evaluator.

Every function here reads :class:`~repro.store.store.ArtifactStore`
rows (frontier artifacts, region reports, queueing series, recorded
hardware specs) and returns plain JSON-able dicts.  Nothing imports the
evaluator, the simulator, or the executor: the heavy enumeration ran
when the scenario was stored, and these lookups stay interactive at any
space size because frontier artifacts are frontier-sized.

Power-budget filtering uses the *recorded* :class:`NodeSpec` peak
powers (node draw only -- the paper's switch-power accounting lives in
:mod:`repro.core.power_budget` at planning time), applied to the stored
frontier's points.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.engine.scenario import Scenario
from repro.store.store import ArtifactStore


class QueryError(ValueError):
    """A query referenced something the store does not hold.

    Subclasses carry ``http_status`` so the HTTP layer maps errors by
    *type*, never by message substring: the base class is a client
    error (400), :class:`UnknownScenarioError` a 404, and
    :class:`StaleArtifactError` a 503 (the client should re-run the
    scenario and retry).
    """

    http_status = 400


class UnknownScenarioError(QueryError):
    """The referenced scenario is not in the store (HTTP 404)."""

    http_status = 404


class StaleArtifactError(QueryError):
    """A referenced stage artifact is missing, stale, or quarantined;
    re-running the scenario will heal it (HTTP 503)."""

    http_status = 503


def _scenario_for(store: ArtifactStore, ref: str) -> str:
    identity = store.resolve_scenario(ref)
    if identity is None:
        raise UnknownScenarioError(f"unknown scenario {ref!r}")
    return identity


def _load(store: ArtifactStore, scenario_id: str, stage: str) -> Any:
    value, ok = store.load_stage(scenario_id, stage)
    if not ok:
        raise StaleArtifactError(
            f"scenario {scenario_id[:12]} has no stored '{stage}' artifact "
            "(run it with a store attached, or re-run if invalidated)"
        )
    return value


def _groups(store: ArtifactStore, scenario_id: str) -> List[str]:
    """Node-type names in group order, from the stored declaration."""
    spec_json = store.scenario_json(scenario_id)
    if spec_json is None:
        raise UnknownScenarioError(f"unknown scenario {scenario_id!r}")
    return [g.node for g in Scenario.from_json(spec_json).groups]


def _peak_powers(store: ArtifactStore, node_names: List[str]) -> np.ndarray:
    """Per-group node peak power [W], from the recorded specs."""
    peaks = []
    for name in node_names:
        spec = store.get_spec("node", name)
        if spec is None:
            raise StaleArtifactError(
                f"store has no recorded spec for node {name!r} "
                "(re-run the scenario with a store attached)"
            )
        peaks.append(spec.peak_power_w)
    return np.asarray(peaks, dtype=float)


def _frontier_rows(
    store: ArtifactStore,
    scenario_id: str,
    power_budget_w: Optional[float] = None,
) -> Dict[str, Any]:
    """The stored frontier as parallel arrays plus per-point peak power."""
    art = _load(store, scenario_id, "frontier")
    nodes = _groups(store, scenario_id)
    counts = np.asarray(art.frontier_n)
    peak_w = _peak_powers(store, nodes) @ counts
    keep = np.ones(len(art.frontier), dtype=bool)
    if power_budget_w is not None:
        keep = peak_w <= float(power_budget_w)
    return {
        "nodes": nodes,
        "times_s": np.asarray(art.frontier.times_s),
        "energies_j": np.asarray(art.frontier.energies_j),
        "counts": counts,
        "composition": list(art.composition),
        "peak_power_w": peak_w,
        "keep": keep,
    }


def _point(rows: Dict[str, Any], i: int) -> Dict[str, Any]:
    return {
        "time_s": float(rows["times_s"][i]),
        "energy_j": float(rows["energies_j"][i]),
        "counts": {
            node: int(rows["counts"][g, i])
            for g, node in enumerate(rows["nodes"])
        },
        "composition": rows["composition"][i],
        "peak_power_w": float(rows["peak_power_w"][i]),
    }


def scenario_detail(store: ArtifactStore, ref: str) -> Dict[str, Any]:
    """One scenario's declaration, stage mapping, and artifact states."""
    scenario_id = _scenario_for(store, ref)
    spec_json = store.scenario_json(scenario_id)
    stages = {}
    for stage, key in sorted(store.stage_map(scenario_id).items()):
        stages[stage] = {
            "artifact": key,
            "state": store.artifact_state(key) or "missing",
        }
    import json

    return {
        "identity": scenario_id,
        "scenario": json.loads(spec_json) if spec_json else None,
        "stages": stages,
    }


def cheapest_for_deadline(
    store: ArtifactStore,
    ref: str,
    deadline_s: float,
    power_budget_w: Optional[float] = None,
) -> Dict[str, Any]:
    """The minimum-energy stored frontier point meeting ``deadline_s``.

    With ``power_budget_w``, only frontier points whose node peak draw
    fits the budget are considered.  Returns ``feasible: False`` (not an
    error) when nothing qualifies.
    """
    if deadline_s <= 0:
        raise QueryError("deadline must be positive")
    scenario_id = _scenario_for(store, ref)
    rows = _frontier_rows(store, scenario_id, power_budget_w)
    feasible = np.nonzero((rows["times_s"] <= deadline_s) & rows["keep"])[0]
    out: Dict[str, Any] = {
        "scenario": scenario_id,
        "deadline_s": float(deadline_s),
        "power_budget_w": power_budget_w,
        "feasible": bool(len(feasible)),
    }
    if len(feasible):
        best = int(feasible[np.argmin(rows["energies_j"][feasible])])
        out["config"] = _point(rows, best)
    return out


def frontier_points(
    store: ArtifactStore,
    ref: str,
    power_budget_w: Optional[float] = None,
) -> Dict[str, Any]:
    """The stored energy-deadline frontier, optionally power-filtered."""
    scenario_id = _scenario_for(store, ref)
    rows = _frontier_rows(store, scenario_id, power_budget_w)
    idx = np.nonzero(rows["keep"])[0]
    return {
        "scenario": scenario_id,
        "power_budget_w": power_budget_w,
        "total_points": int(len(rows["keep"])),
        "points": [_point(rows, int(i)) for i in idx],
    }


def regions_summary(store: ArtifactStore, ref: str) -> Dict[str, Any]:
    """The stored sweet/overlap region decomposition."""
    scenario_id = _scenario_for(store, ref)
    report = _load(store, scenario_id, "regions")

    def _span(region) -> Optional[Dict[str, Any]]:
        if region is None:
            return None
        lo, hi = region.deadline_span_s
        e_hi, e_lo = region.energy_span_j
        return {
            "points": len(region),
            "deadline_span_s": [float(lo), float(hi)],
            "energy_span_j": [float(e_hi), float(e_lo)],
        }

    return {
        "scenario": scenario_id,
        "has_sweet_region": report.has_sweet_region,
        "has_overlap_region": report.has_overlap_region,
        "overlap_energy_drop": float(report.overlap_energy_drop),
        "sweet": _span(report.sweet),
        "overlap": _span(report.overlap),
        "composition": list(report.composition),
    }


def whatif_delta(
    store: ArtifactStore,
    ref: str,
    against: str,
    deadline_s: Optional[float] = None,
) -> Dict[str, Any]:
    """Frontier deltas between two stored scenarios (``ref`` minus ``against``).

    The interactive form of the what-if workflow: store the baseline,
    store the hypothetical (edited spec, different mix, deeper DVFS),
    then diff their frontiers without recomputing either.
    """
    a_id = _scenario_for(store, ref)
    b_id = _scenario_for(store, against)
    a = _load(store, a_id, "frontier")
    b = _load(store, b_id, "frontier")
    out: Dict[str, Any] = {
        "scenario": a_id,
        "against": b_id,
        "min_energy_j": {
            "scenario": float(a.frontier.min_energy_j),
            "against": float(b.frontier.min_energy_j),
            "delta": float(a.frontier.min_energy_j - b.frontier.min_energy_j),
        },
        "fastest_time_s": {
            "scenario": float(a.frontier.fastest_time_s),
            "against": float(b.frontier.fastest_time_s),
            "delta": float(a.frontier.fastest_time_s - b.frontier.fastest_time_s),
        },
        "frontier_points": {
            "scenario": len(a.frontier),
            "against": len(b.frontier),
        },
    }
    if deadline_s is not None:
        ea = a.frontier.min_energy_for_deadline(float(deadline_s))
        eb = b.frontier.min_energy_for_deadline(float(deadline_s))
        out["energy_at_deadline_j"] = {
            "deadline_s": float(deadline_s),
            "scenario": None if ea is None else float(ea),
            "against": None if eb is None else float(eb),
            "delta": (
                None if ea is None or eb is None else float(ea - eb)
            ),
        }
    return out
