"""Persistent, queryable artifact store for the scenario stage graph.

The engine's :class:`~repro.engine.cache.ResultCache` answers "have I
computed this in this process (or left a pickle on disk)?".  This
package answers the operator's question instead: *which scenarios has
this installation ever computed, which of their stage artifacts are
still valid, and what do they say?* -- the foundation the query service
(:mod:`repro.service`) serves planner answers from without ever
re-running the evaluator.

* :class:`ArtifactStore` -- sqlite-backed store of scenarios, stage
  artifacts, and dependency edges, with atomic transactions, per-entry
  SHA-256 integrity (damaged rows are quarantined as stale, mirroring
  the result cache's discipline, never raised mid-run), and recursive
  downstream invalidation: re-recording a changed hardware or workload
  spec marks exactly the dependent stage artifacts stale.
* :mod:`repro.store.queries` -- planner queries answered from stored
  artifacts: cheapest config for a deadline, frontier under a power
  budget, region lookup, what-if deltas between stored scenarios.
"""

from repro.store.queries import (
    QueryError,
    StaleArtifactError,
    UnknownScenarioError,
    cheapest_for_deadline,
    frontier_points,
    regions_summary,
    scenario_detail,
    whatif_delta,
)
from repro.store.store import ArtifactStore, StoreCorrupt

__all__ = [
    "ArtifactStore",
    "QueryError",
    "StaleArtifactError",
    "StoreCorrupt",
    "UnknownScenarioError",
    "cheapest_for_deadline",
    "frontier_points",
    "regions_summary",
    "scenario_detail",
    "whatif_delta",
]
