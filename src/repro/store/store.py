"""Sqlite-backed artifact store with dependency-aware invalidation.

These tables carry the state:

``scenarios``
    Every scenario declaration this store has executed, keyed by
    :func:`~repro.engine.stagegraph.scenario_identity` (name-based, so
    one row tracks a scenario across hardware edits), with its JSON.
``stages``
    The (scenario, stage name) -> artifact-key mapping of the *latest*
    run, the store's notion of "what this scenario currently resolves
    to".  Superseded keys stay in ``artifacts`` (content-addressed
    entries never become wrong, only unreferenced).
``artifacts``
    Content-addressed stage artifacts: pickled payload, SHA-256
    checksum, a ``state`` flag (``fresh`` / ``stale`` / ``quarantined``).
``deps`` / ``specs``
    Dependency edges between artifact keys (parents include
    ``spec:node:<name>`` / ``spec:workload:<name>`` pseudo-nodes) and
    the recorded content of every named spec.  Re-recording a spec
    whose content changed walks ``deps`` downstream and marks every
    reachable artifact stale -- the next run recomputes exactly those.
``jobs``
    The durable run queue (:mod:`repro.service.jobs`): one row per
    enqueued scenario run with its state machine (``queued`` ->
    ``leased`` -> ``running`` -> ``done`` / ``failed`` / ``cancelled``),
    attempt count, lease owner + expiry, and error record.  Queue rows
    ride the same sqlite file and transactions as the artifacts they
    produce, so a crash can never separate a job's state from its
    output.

Integrity follows the result cache's quarantine discipline
(:mod:`repro.engine.cache`): every payload read verifies its checksum;
a truncated or bit-flipped row is marked ``quarantined``, counted,
reported through the event callback, and treated as a miss -- never
raised mid-run.  All writes are transactional (``with connection:``),
so a killed process can never leave a half-written artifact visible.

The in-process tier is a shared :class:`~repro.engine.cache.ResultCache`
(conventionally the run context's own): memory hits never touch sqlite,
and both layers report through one :class:`CacheStats` counter set.
"""

from __future__ import annotations

import hashlib
import pickle
import shutil
import sqlite3
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.cache import CacheStats, ResultCache
from repro.engine.hashing import stable_hash

#: Bump when the payload encoding or schema changes incompatibly, so an
#: old store is rebuilt instead of misread.
STORE_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS scenarios (
    identity TEXT PRIMARY KEY,
    name TEXT,
    workload TEXT NOT NULL,
    spec_json TEXT NOT NULL,
    updated_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS stages (
    scenario_identity TEXT NOT NULL,
    stage TEXT NOT NULL,
    artifact_key TEXT NOT NULL,
    updated_at REAL NOT NULL,
    PRIMARY KEY (scenario_identity, stage)
);
CREATE TABLE IF NOT EXISTS artifacts (
    key TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    state TEXT NOT NULL DEFAULT 'fresh',
    checksum TEXT NOT NULL,
    payload BLOB NOT NULL,
    created_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS deps (
    parent TEXT NOT NULL,
    child TEXT NOT NULL,
    PRIMARY KEY (parent, child)
);
CREATE INDEX IF NOT EXISTS deps_by_parent ON deps (parent);
CREATE TABLE IF NOT EXISTS specs (
    kind TEXT NOT NULL,
    name TEXT NOT NULL,
    content_hash TEXT NOT NULL,
    checksum TEXT NOT NULL,
    payload BLOB NOT NULL,
    updated_at REAL NOT NULL,
    PRIMARY KEY (kind, name)
);
CREATE TABLE IF NOT EXISTS jobs (
    id TEXT PRIMARY KEY,
    idempotency_key TEXT UNIQUE,
    scenario_json TEXT NOT NULL,
    scenario_name TEXT,
    state TEXT NOT NULL DEFAULT 'queued',
    attempts INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL DEFAULT 3,
    not_before REAL NOT NULL DEFAULT 0,
    lease_owner TEXT,
    lease_expires_at REAL,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    error_json TEXT,
    result_json TEXT,
    created_at REAL NOT NULL,
    updated_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs (state, not_before, created_at);
"""

#: Job states a run queue row moves through; terminal states never
#: transition again (except an explicit operator ``retry``).
JOB_ACTIVE_STATES = ("queued", "leased", "running")

#: How long a writer waits for a competing process's sqlite lock before
#: erroring (milliseconds).  Generous: queue transactions are tiny, so
#: a wait this long means something is genuinely wedged.
BUSY_TIMEOUT_MS = 30_000


class StoreCorrupt(RuntimeError):
    """An artifact row failed integrity verification (internal signal)."""


class ArtifactStore:
    """Persistent scenario/stage/artifact store under one directory.

    Parameters
    ----------
    directory:
        Store root; ``store.sqlite`` is created inside.  The directory
        is created if missing.
    memory:
        The in-process tier -- pass the run context's
        :class:`~repro.engine.cache.ResultCache` so stage loads hit the
        same table (and the same counters) the engine already uses; a
        private cache is created when omitted (service processes).
    on_event:
        Optional callback ``on_event(event, **payload)`` notified of
        quarantines and invalidations.
    """

    def __init__(
        self,
        directory,
        memory: Optional[ResultCache] = None,
        on_event: Optional[Callable[..., None]] = None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / "store.sqlite"
        self.memory = memory if memory is not None else ResultCache()
        self.on_event = on_event
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
        with self._conn:
            self._conn.executescript(_SCHEMA)
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(STORE_SCHEMA_VERSION)),
            )

    # A store shares counter semantics with the cache tiers: ``hits``
    # are memory-tier hits, ``disk_hits`` are sqlite loads,
    # ``quarantined`` counts integrity failures.
    @property
    def stats(self) -> CacheStats:
        return self.memory.stats

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    @contextmanager
    def transaction(self):
        """The locked sqlite handle inside one atomic *write* transaction.

        The extension point queue/maintenance layers build on
        (:mod:`repro.service.jobs`): everything executed inside the
        ``with`` block commits or rolls back as a unit, under the same
        lock every other store operation takes.

        The transaction opens with ``BEGIN IMMEDIATE``, taking sqlite's
        write lock *before* the first statement runs.  That matters for
        the queue's read-then-write transactions when several processes
        share one store file: a deferred transaction under WAL pins a
        read snapshot at its first ``SELECT`` and then fails with a
        non-retryable ``SQLITE_BUSY_SNAPSHOT`` if any other process
        commits first, whereas an immediate transaction simply waits on
        the busy handler (``busy_timeout``) and serializes.  Within one
        process the ``RLock`` serializes threads the same way.
        """
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                yield self._conn
            except BaseException:
                self._conn.rollback()
                raise
            else:
                self._conn.commit()

    def __enter__(self) -> "ArtifactStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _emit(self, event: str, **payload: Any) -> None:
        if self.on_event is not None:
            self.on_event(event, **payload)

    # ---- artifact layer ------------------------------------------------

    @staticmethod
    def _encode(value: Any) -> Tuple[bytes, str]:
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        return payload, hashlib.sha256(payload).hexdigest()

    def _verify(self, key: str, checksum: str, payload: bytes) -> Any:
        if hashlib.sha256(payload).hexdigest() != checksum:
            raise StoreCorrupt(f"artifact {key}: payload checksum mismatch")
        try:
            return pickle.loads(payload)
        except Exception as exc:  # checksum ok but undecodable: stale class?
            raise StoreCorrupt(f"artifact {key}: failed to unpickle: {exc}") from exc

    def _quarantine(self, key: str, reason: str) -> None:
        """Mark a damaged row so it can never answer another query."""
        with self._lock, self._conn:
            self._conn.execute(
                "UPDATE artifacts SET state = 'quarantined' WHERE key = ?",
                (key,),
            )
        self.stats.quarantined += 1
        self._emit("store.quarantined", key=key, reason=reason)

    def get(self, key: str) -> Tuple[Any, bool]:
        """``(value, True)`` for a fresh stored artifact, else ``(None, False)``.

        Memory tier first (no sqlite touch), then a verified sqlite
        read.  Rows that are stale, quarantined, or fail verification
        are misses; verification failures are additionally quarantined.
        """
        sentinel = object()
        value = self.memory.peek(key, sentinel)
        if value is not sentinel:
            self.stats.hits += 1
            return value, True
        try:
            with self._lock:
                row = self._conn.execute(
                    "SELECT state, checksum, payload FROM artifacts WHERE key = ?",
                    (key,),
                ).fetchone()
        except sqlite3.DatabaseError as exc:
            # A damaged database file degrades to recomputation.
            self._emit("store.unreadable", key=key, reason=str(exc))
            return None, False
        if row is None:
            return None, False
        state, checksum, payload = row
        if state != "fresh":
            return None, False
        try:
            value = self._verify(key, checksum, payload)
        except StoreCorrupt as exc:
            self._quarantine(key, str(exc))
            return None, False
        self.stats.disk_hits += 1
        self.memory.put(key, value)
        return value, True

    def put(
        self,
        key: str,
        value: Any,
        kind: str,
        scenario_id: Optional[str] = None,
        stage: Optional[str] = None,
        deps: Sequence[str] = (),
    ) -> None:
        """Store one stage artifact atomically, with its dependency edges.

        Re-putting an existing key refreshes it (a recompute after
        quarantine or invalidation heals the row).  When ``scenario_id``
        and ``stage`` are given the scenario's stage mapping is pointed
        at this key; a previously mapped different key is simply
        superseded -- content-addressed entries stay valid for their own
        identity.
        """
        payload, checksum = self._encode(value)
        now = time.time()
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO artifacts "
                "(key, kind, state, checksum, payload, created_at) "
                "VALUES (?, ?, 'fresh', ?, ?, ?)",
                (key, kind, checksum, payload, now),
            )
            for parent in deps:
                self._conn.execute(
                    "INSERT OR IGNORE INTO deps (parent, child) VALUES (?, ?)",
                    (parent, key),
                )
            if scenario_id is not None and stage is not None:
                self._conn.execute(
                    "INSERT OR REPLACE INTO stages "
                    "(scenario_identity, stage, artifact_key, updated_at) "
                    "VALUES (?, ?, ?, ?)",
                    (scenario_id, stage, key, now),
                )
        self.memory.put(key, value)

    def artifact_state(self, key: str) -> Optional[str]:
        """The row's state flag, or ``None`` when the key is unknown."""
        with self._lock:
            row = self._conn.execute(
                "SELECT state FROM artifacts WHERE key = ?", (key,)
            ).fetchone()
        return row[0] if row is not None else None

    # ---- invalidation --------------------------------------------------

    def invalidate_downstream(self, root_key: str) -> List[str]:
        """Mark every artifact reachable from ``root_key`` stale.

        ``root_key`` may be an artifact key or a spec pseudo-node; the
        walk follows ``deps`` edges transitively.  Returns the keys
        whose rows were actually flipped to stale.
        """
        staled: List[str] = []
        seen = {root_key}
        frontier = [root_key]
        # Read-then-write walk: take the write lock up front so two
        # processes invalidating concurrently serialize instead of
        # failing on a snapshot conflict (see :meth:`transaction`).
        with self.transaction():
            while frontier:
                placeholders = ",".join("?" * len(frontier))
                children = [
                    r[0]
                    for r in self._conn.execute(
                        f"SELECT child FROM deps WHERE parent IN ({placeholders})",
                        frontier,
                    )
                ]
                frontier = [c for c in children if c not in seen]
                seen.update(frontier)
                for child in frontier:
                    cur = self._conn.execute(
                        "UPDATE artifacts SET state = 'stale' "
                        "WHERE key = ? AND state = 'fresh'",
                        (child,),
                    )
                    if cur.rowcount:
                        staled.append(child)
        # Stale artifacts must not linger in the memory tier either.
        for key in staled:
            self.memory._memory.pop(key, None)
        if staled:
            self._emit("store.invalidated", root=root_key, keys=staled)
        return staled

    def record_spec(self, kind: str, name: str, spec: Any) -> List[str]:
        """Record a named spec's content; invalidate downstream on change.

        Returns the artifact keys marked stale (empty when the spec is
        new or unchanged).  The spec object itself is stored so query
        services can answer power/idle questions without a catalog.
        """
        from repro.engine.stagegraph import spec_key

        content_hash = stable_hash(spec)
        key = spec_key(kind, name)
        with self._lock:
            row = self._conn.execute(
                "SELECT content_hash FROM specs WHERE kind = ? AND name = ?",
                (kind, name),
            ).fetchone()
        staled: List[str] = []
        if row is not None and row[0] != content_hash:
            staled = self.invalidate_downstream(key)
        if row is None or row[0] != content_hash:
            payload, checksum = self._encode(spec)
            with self._lock, self._conn:
                self._conn.execute(
                    "INSERT OR REPLACE INTO specs "
                    "(kind, name, content_hash, checksum, payload, updated_at) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (kind, name, content_hash, checksum, payload, time.time()),
                )
        return staled

    def get_spec(self, kind: str, name: str) -> Optional[Any]:
        """The recorded spec object, verified, or ``None``."""
        with self._lock:
            row = self._conn.execute(
                "SELECT checksum, payload FROM specs WHERE kind = ? AND name = ?",
                (kind, name),
            ).fetchone()
        if row is None:
            return None
        checksum, payload = row
        try:
            return self._verify(f"spec:{kind}:{name}", checksum, payload)
        except StoreCorrupt as exc:
            self.stats.quarantined += 1
            self._emit("store.quarantined", key=f"spec:{kind}:{name}", reason=str(exc))
            return None

    # ---- scenario layer ------------------------------------------------

    def record_scenario(self, identity: str, scenario) -> None:
        """Upsert one scenario declaration row."""
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO scenarios "
                "(identity, name, workload, spec_json, updated_at) "
                "VALUES (?, ?, ?, ?, ?)",
                (
                    identity,
                    scenario.name,
                    scenario.workload,
                    scenario.to_json(),
                    time.time(),
                ),
            )

    def scenarios(self) -> List[Dict[str, Any]]:
        """Every stored scenario: identity, name, workload, timestamps."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT identity, name, workload, updated_at FROM scenarios "
                "ORDER BY updated_at"
            ).fetchall()
        return [
            {
                "identity": identity,
                "name": name,
                "workload": workload,
                "updated_at": updated_at,
            }
            for identity, name, workload, updated_at in rows
        ]

    def scenario_json(self, identity: str) -> Optional[str]:
        with self._lock:
            row = self._conn.execute(
                "SELECT spec_json FROM scenarios WHERE identity = ?", (identity,)
            ).fetchone()
        return row[0] if row is not None else None

    def resolve_scenario(self, ref: str) -> Optional[str]:
        """A scenario identity from a name, full identity, or unique prefix."""
        with self._lock:
            row = self._conn.execute(
                "SELECT identity FROM scenarios WHERE identity = ? OR name = ?",
                (ref, ref),
            ).fetchone()
            if row is not None:
                return row[0]
            rows = self._conn.execute(
                "SELECT identity FROM scenarios WHERE identity LIKE ?",
                (ref + "%",),
            ).fetchall()
        if len(rows) == 1:
            return rows[0][0]
        return None

    def stage_map(self, scenario_id: str) -> Dict[str, str]:
        """The scenario's current stage -> artifact-key mapping."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT stage, artifact_key FROM stages "
                "WHERE scenario_identity = ?",
                (scenario_id,),
            ).fetchall()
        return dict(rows)

    def stage_status(self, scenario_id: str, stage: str, identity: str) -> str:
        """``hit`` / ``stale`` / ``miss`` for one planned stage identity.

        ``stale`` means the store holds an artifact for this scenario
        stage that no longer matches the planned identity (an upstream
        spec changed) or whose row was invalidated/quarantined.
        """
        with self._lock:
            mapped = self._conn.execute(
                "SELECT artifact_key FROM stages "
                "WHERE scenario_identity = ? AND stage = ?",
                (scenario_id, stage),
            ).fetchone()
        state = self.artifact_state(identity)
        if state == "fresh":
            return "hit"
        if state in ("stale", "quarantined"):
            return "stale"
        # No row under the planned identity: a previously mapped
        # artifact (now unreachable) also reads as stale.
        if mapped is not None:
            return "stale"
        return "miss"

    def load_stage(self, scenario_id: str, stage: str) -> Tuple[Any, bool]:
        """The scenario's current artifact for ``stage`` via the mapping."""
        key = self.stage_map(scenario_id).get(stage)
        if key is None:
            return None, False
        return self.get(key)

    # ---- garbage collection --------------------------------------------

    def _job_roots(self) -> set:
        """Artifact keys an active (queued/leased/running) job references.

        A job row carries its own scenario spec, so its roots resolve
        without consulting the ``scenarios`` registry: a pending run
        keeps its scenario's stage-mapped artifacts live even when the
        registry row was removed or renamed out from under it.  In a
        healthy store these roots are a subset of the stage roots
        (``job_protected`` reports 0); they exist as defense in depth
        so future maintenance passes that prune scenario registrations
        can never collect artifacts a pending run is about to reuse.
        Undecodable job specs are skipped (the supervisor will fail
        them properly); they protect nothing.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT scenario_json FROM jobs WHERE state IN (?, ?, ?)",
                JOB_ACTIVE_STATES,
            ).fetchall()
        roots: set = set()
        if not rows:
            return roots
        from repro.engine.scenario import Scenario
        from repro.engine.stagegraph import scenario_identity

        for (spec_json,) in rows:
            try:
                identity = scenario_identity(Scenario.from_json(spec_json))
            except Exception:
                continue
            roots.update(self.stage_map(identity).values())
        return roots

    def _live_keys(self, extra_roots: Sequence[str] = ()) -> set:
        """Artifact keys reachable from any current stage mapping.

        Roots are every ``stages.artifact_key`` plus ``extra_roots``
        (the active-job roots during GC); reachability walks ``deps``
        edges *upward* (child -> parents), so the provenance cone of
        every live artifact -- superseded calibrations a live space was
        computed from, spec pseudo-nodes -- survives GC too.
        """
        with self._lock:
            live = {
                r[0]
                for r in self._conn.execute("SELECT artifact_key FROM stages")
            }
            live.update(extra_roots)
            frontier = list(live)
            while frontier:
                placeholders = ",".join("?" * len(frontier))
                parents = [
                    r[0]
                    for r in self._conn.execute(
                        f"SELECT parent FROM deps WHERE child IN ({placeholders})",
                        frontier,
                    )
                ]
                frontier = [p for p in parents if p not in live]
                live.update(frontier)
        return live

    def gc(self, dry_run: bool = False) -> Dict[str, Any]:
        """Remove artifact rows unreferenced by any live stage mapping.

        An artifact is *live* when some scenario's current stage mapping
        points at it, directly or through the dependency cone (see
        :meth:`_live_keys`), or when a queued/leased/running job's
        scenario references it (:meth:`_job_roots`) -- a pending run's
        inputs are never collected out from under it.  Everything else
        -- superseded identities from edited specs or changed search
        budgets, stale and quarantined leftovers -- is garbage.
        ``dry_run=True`` only counts.  Removal also drops the dead keys'
        dependency edges and evicts them from the memory tier, and is
        transactional: a killed GC leaves the store exactly as it was.

        GC also prunes **orphaned job checkpoint directories**
        (``<store>/jobs/<id>/``): a directory whose job row is terminal
        (``done``/``failed``/``cancelled``) or gone will never be
        resumed, so it is garbage; directories of queued/leased/running
        jobs are kept -- a pending retry resumes from them.

        Returns ``{"removed", "kept", "reclaimed_bytes", "dry_run",
        "active_jobs", "job_protected", "job_dirs_removed"}``
        (``removed`` counts the rows deleted -- or, dry-run, deletable;
        ``job_protected`` counts the artifacts kept *only* because an
        active job references them; ``job_dirs_removed`` counts the
        orphaned checkpoint directories pruned).
        """
        job_roots = self._job_roots()
        live = self._live_keys(extra_roots=sorted(job_roots))
        with self._lock:
            rows = self._conn.execute(
                "SELECT key, LENGTH(payload) FROM artifacts"
            ).fetchall()
            active_jobs = self._conn.execute(
                "SELECT COUNT(*) FROM jobs WHERE state IN (?, ?, ?)",
                JOB_ACTIVE_STATES,
            ).fetchone()[0]
            active_ids = {
                r[0]
                for r in self._conn.execute(
                    "SELECT id FROM jobs WHERE state IN (?, ?, ?)",
                    JOB_ACTIVE_STATES,
                )
            }
        dead_dirs: List[Path] = []
        jobs_dir = self.directory / "jobs"
        if jobs_dir.is_dir():
            dead_dirs = [
                child
                for child in sorted(jobs_dir.iterdir())
                if child.is_dir() and child.name not in active_ids
            ]
        if not dry_run:
            for child in dead_dirs:
                shutil.rmtree(child, ignore_errors=True)
        dead = [(key, nbytes) for key, nbytes in rows if key not in live]
        job_protected = 0
        if job_roots:
            without_jobs = self._live_keys()
            job_protected = sum(
                1 for key, _ in rows if key in live and key not in without_jobs
            )
        report = {
            "removed": len(dead),
            "kept": len(rows) - len(dead),
            "reclaimed_bytes": int(sum(n for _, n in dead)),
            "dry_run": bool(dry_run),
            "active_jobs": int(active_jobs),
            "job_protected": int(job_protected),
            "job_dirs_removed": len(dead_dirs),
        }
        if dry_run or not dead:
            self._emit("store.gc", **report)
            return report
        dead_keys = [key for key, _ in dead]
        with self._lock, self._conn:
            for lo in range(0, len(dead_keys), 500):
                chunk = dead_keys[lo:lo + 500]
                placeholders = ",".join("?" * len(chunk))
                self._conn.execute(
                    f"DELETE FROM artifacts WHERE key IN ({placeholders})",
                    chunk,
                )
                self._conn.execute(
                    f"DELETE FROM deps WHERE child IN ({placeholders}) "
                    f"OR parent IN ({placeholders})",
                    chunk + chunk,
                )
        for key in dead_keys:
            self.memory._memory.pop(key, None)
        self._emit("store.gc", **report)
        return report
