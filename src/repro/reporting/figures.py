"""Builders for every table and figure of the paper's evaluation.

Each ``build_*`` function returns plain data (a :class:`Table`, series
dictionaries, or both) so benchmarks can assert on shapes and the CLI can
render text.  Expensive inputs (validation campaigns) accept ``seed`` and
noise controls for reproducibility.

Index (see DESIGN.md Section 5): Table 1 node catalog; Fig. 2 WPI/SPI_core
scale constancy; Fig. 3 SPI_mem-vs-frequency regression; Table 3
single-node validation; Table 4 cluster validation; Table 5 PPR; Fig. 4/5
Pareto frontiers; Fig. 6/7 power-budget mixes; Fig. 8/9 cluster-size
scaling; Fig. 10 queueing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import analysis
from repro.core.calibration import (
    calibrate_node,
    ground_truth_params,
    measure_scale_constancy,
)
from repro.core.configuration import GroupSpec
from repro.core.evaluate import ConfigSpaceResult
from repro.core.pareto import ParetoFrontier
from repro.core.streaming import ReducedSpace
from repro.engine.context import RunContext, default_context
from repro.core.power_budget import Mix, budget_mixes, scaled_mixes
from repro.core.regions import RegionReport, analyze_regions, analyze_regions_reduced
from repro.hardware.catalog import AMD_K10, ARM_CORTEX_A9, ETHERNET_SWITCH, table1_rows
from repro.queueing.dispatcher import WindowPoint, figure10_series
from repro.reporting.tables import Table
from repro.simulator.batch import repeat_settings
from repro.simulator.node import NodeSimulator
from repro.simulator.noise import CALIBRATED_NOISE, NoiseModel
from repro.util.rng import RngStream, SeedLike
from repro.util.stats import linear_fit
from repro.util.units import seconds_to_ms
from repro.validation.harness import validate_cluster, validate_single_node
from repro.workloads.base import WorkloadSpec
from repro.workloads.suite import EP, MEMCACHED, PAPER_WORKLOADS, X264


@dataclass
class FigureSeries:
    """One plotted line/cloud: x-y arrays plus a label and axis names."""

    label: str
    x: np.ndarray
    y: np.ndarray
    x_name: str = "x"
    y_name: str = "y"
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)
        self.y = np.asarray(self.y, dtype=float)
        if self.x.shape != self.y.shape:
            raise ValueError("series x and y must be parallel")


def suite_params(
    workload: WorkloadSpec,
    calibrated: bool = False,
    noise: NoiseModel = CALIBRATED_NOISE,
    seed: SeedLike = 0,
    ctx: Optional[RunContext] = None,
):
    """Model inputs for the paper's two node types, keyed by node name.

    Routed through the engine's :class:`RunContext` (the shared default
    when ``ctx`` is omitted), so repeated figure builds in one process
    calibrate each (node, workload, seed) pair exactly once.  The RNG
    derivation matches the pre-engine one child-for-child.
    """
    ctx = ctx if ctx is not None else default_context()
    return ctx.params_for(
        (ARM_CORTEX_A9, AMD_K10),
        workload,
        calibrated=calibrated,
        noise=noise,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def build_table1() -> Table:
    """Table 1: the two node types."""
    table = Table(
        ["Node", AMD_K10.name, ARM_CORTEX_A9.name],
        title="Table 1: Types of heterogeneous nodes",
    )
    for attribute, amd_value, arm_value in table1_rows():
        table.add_row([attribute, amd_value, arm_value])
    return table


def build_table3(
    workloads: Sequence[WorkloadSpec] = PAPER_WORKLOADS,
    noise: NoiseModel = CALIBRATED_NOISE,
    seed: SeedLike = 0,
    repetitions: int = 3,
    units_override: Optional[float] = None,
    batched: bool = True,
) -> Tuple[Table, List]:
    """Table 3: single-node validation errors for the whole suite.

    ``batched`` selects the measurement-layer implementation (batched
    NumPy runs vs the scalar reference); the two are bit-identical.
    """
    table = Table(
        [
            "Domain",
            "Program",
            "Bottleneck",
            "AMD time err%",
            "AMD time std",
            "ARM time err%",
            "ARM time std",
            "AMD energy err%",
            "AMD energy std",
            "ARM energy err%",
            "ARM energy std",
        ],
        title="Table 3: Single-node validation (model vs simulated testbed)",
    )
    results = []
    for w_index, workload in enumerate(workloads):
        cells: Dict[str, object] = {}
        for node in (AMD_K10, ARM_CORTEX_A9):
            report = validate_single_node(
                node,
                workload,
                units=units_override,
                noise=noise,
                seed=RngStream(seed).child(f"t3-{workload.name}-{node.name}", w_index).rng,
                repetitions=repetitions,
                batched=batched,
            )
            results.append(report)
            key = "amd" if node is AMD_K10 else "arm"
            cells[f"{key}_time"] = report.time_errors
            cells[f"{key}_energy"] = report.energy_errors
        table.add_row(
            [
                workload.domain,
                workload.name,
                workload.bottleneck.value,
                f"{cells['amd_time'].mean:.0f}",
                f"{cells['amd_time'].std:.0f}",
                f"{cells['arm_time'].mean:.0f}",
                f"{cells['arm_time'].std:.0f}",
                f"{cells['amd_energy'].mean:.0f}",
                f"{cells['amd_energy'].std:.0f}",
                f"{cells['arm_energy'].mean:.0f}",
                f"{cells['arm_energy'].std:.0f}",
            ]
        )
    return table, results


def build_table4(
    workloads: Sequence[WorkloadSpec] = PAPER_WORKLOADS,
    noise: NoiseModel = CALIBRATED_NOISE,
    seed: SeedLike = 0,
    units_override: Optional[float] = None,
    batched: bool = True,
) -> Tuple[Table, List]:
    """Table 4: cluster validation on 8 ARM + {1, 0} AMD."""
    table = Table(
        ["Program", "ARM nodes", "AMD nodes", "Time err%", "Energy err%"],
        title="Table 4: Cluster validation (model vs simulated testbed)",
    )
    results = []
    for w_index, workload in enumerate(workloads):
        for n_amd in (1, 0):
            report = validate_cluster(
                ARM_CORTEX_A9,
                8,
                AMD_K10,
                n_amd,
                workload,
                units=units_override,
                noise=noise,
                seed=RngStream(seed).child(
                    f"t4-{workload.name}-{n_amd}", w_index
                ).rng,
                batched=batched,
            )
            results.append(report)
            table.add_row(
                [
                    workload.name,
                    8,
                    n_amd,
                    f"{report.time_error_pct:.0f}",
                    f"{report.energy_error_pct:.0f}",
                ]
            )
    return table, results


def build_table5(
    workloads: Sequence[WorkloadSpec] = PAPER_WORKLOADS,
    calibrated: bool = False,
    noise: NoiseModel = CALIBRATED_NOISE,
    seed: SeedLike = 0,
) -> Tuple[Table, List]:
    """Table 5: performance-to-power ratio per workload and node type."""

    def params_fn(node, workload):
        if calibrated:
            return calibrate_node(node, workload, noise=noise, seed=seed)
        return ground_truth_params(node, workload)

    rows = analysis.table5_rows(workloads, (AMD_K10, ARM_CORTEX_A9), params_fn)
    table = Table(
        ["Program", "PPR unit", "AMD node", "ARM node", "winner"],
        title="Table 5: Performance-to-power ratio (most efficient setting)",
    )
    def fmt(value: float) -> str:
        return f"{value:,.0f}" if value >= 100 else f"{value:.2f}"

    for name, unit, values in rows:
        amd = values.get(AMD_K10.name, float("nan"))
        arm = values.get(ARM_CORTEX_A9.name, float("nan"))
        winner = "AMD" if amd >= arm else "ARM"
        table.add_row([name, unit, fmt(amd), fmt(arm), winner])
    return table, rows


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------


def build_fig2(
    workload: WorkloadSpec = EP,
    noise: NoiseModel = CALIBRATED_NOISE,
    seed: SeedLike = 0,
    sizes: Sequence[str] = ("A", "B", "C"),
) -> Dict[str, FigureSeries]:
    """Fig. 2: WPI and SPI_core across problem sizes, both node types."""
    series: Dict[str, FigureSeries] = {}
    size_map = {s: workload.problem_sizes[s] for s in sizes}
    for node in (AMD_K10, ARM_CORTEX_A9):
        measured = measure_scale_constancy(
            node, workload, size_map, noise=noise, seed=seed
        )
        xs = np.arange(len(sizes), dtype=float)
        for metric in ("wpi", "spi_core"):
            key = f"{node.name}:{metric}"
            series[key] = FigureSeries(
                label=key,
                x=xs,
                y=np.asarray([measured[s][metric] for s in sizes]),
                x_name="problem size index (A, B, C)",
                y_name="cycles per instruction",
                meta={"sizes": list(sizes), "node": node.name, "metric": metric},
            )
    return series


def build_fig3(
    workload: WorkloadSpec = X264,
    noise: NoiseModel = CALIBRATED_NOISE,
    seed: SeedLike = 0,
    baseline_units: float = 50.0,
    repetitions: int = 3,
    batched: bool = True,
) -> Dict[str, FigureSeries]:
    """Fig. 3: measured SPI_mem vs core frequency with the linear fit's r^2.

    Measured at 1 core and at the node's full core count, like the
    paper's four panels.  ``batched=True`` runs each panel's frequency
    sweep through :meth:`NodeSimulator.run_batch` (bit-identical to the
    scalar reference loop, which ``batched=False`` retains).
    """
    series: Dict[str, FigureSeries] = {}
    stream = RngStream(seed)
    for node in (AMD_K10, ARM_CORTEX_A9):
        sim = NodeSimulator(node, noise=noise)
        for cores in (1, node.cores.count):
            pstates = node.cores.pstates_ghz
            xs, ys = [], []
            if batched:
                rows = repeat_settings(
                    [(cores, f) for f in pstates], repetitions
                )
                seeds = [
                    stream.child(f"f3-{node.name}-{cores}-{f_index}", rep)
                    for f_index in range(len(pstates))
                    for rep in range(repetitions)
                ]
                batch = sim.run_batch(workload, baseline_units, rows, seeds)
                for f_index, f in enumerate(pstates):
                    base = f_index * repetitions
                    merged = batch.counters(base)
                    for rep in range(1, repetitions):
                        merged = merged + batch.counters(base + rep)
                    xs.append(f)
                    ys.append(merged.spi_mem)
            else:
                for f_index, f in enumerate(pstates):
                    merged = None
                    for rep in range(repetitions):
                        rng = stream.child(
                            f"f3-{node.name}-{cores}-{f_index}", rep
                        ).rng
                        result = sim.run(workload, baseline_units, cores, f, seed=rng)
                        merged = (
                            result.counters
                            if merged is None
                            else merged + result.counters
                        )
                    xs.append(f)
                    ys.append(merged.spi_mem)
            fit = linear_fit(xs, ys)
            key = f"{node.name}:cores={cores}"
            series[key] = FigureSeries(
                label=key,
                x=np.asarray(xs),
                y=np.asarray(ys),
                x_name="core frequency [GHz]",
                y_name="SPI_mem",
                meta={"r2": fit.r2, "slope": fit.slope, "intercept": fit.intercept},
            )
    return series


@dataclass
class ParetoFigure:
    """Fig. 4/5 bundle: all configurations plus the three highlighted curves.

    ``space`` is ``None`` when the figure was built in streaming mode --
    the full point cloud was never materialized, only reduced artifacts
    survive (``reduced`` carries the frontier/composition summary).
    Renderers should skip the cloud in that case (``cloud_series``
    returns ``None``); the three curves and regions are bit-identical to
    the materialized build.
    """

    workload: str
    space: Optional[ConfigSpaceResult]
    frontier: ParetoFrontier
    arm_only_frontier: ParetoFrontier
    amd_only_frontier: ParetoFrontier
    regions: RegionReport
    reduced: Optional[ReducedSpace] = None

    def cloud_series(self) -> Optional[FigureSeries]:
        """Every configuration (the grey dots), or ``None`` if streamed."""
        if self.space is None:
            return None
        return FigureSeries(
            label="all configurations",
            x=seconds_to_ms(self.space.times_s),
            y=self.space.energies_j,
            x_name="deadline [ms]",
            y_name="energy [J]",
        )

    def frontier_series(self) -> FigureSeries:
        return FigureSeries(
            label="Pareto frontier",
            x=seconds_to_ms(self.frontier.times_s),
            y=self.frontier.energies_j,
            x_name="deadline [ms]",
            y_name="energy [J]",
        )


def build_fig4_fig5(
    workload: WorkloadSpec,
    max_arm: int = 10,
    max_amd: int = 10,
    units: Optional[float] = None,
    calibrated: bool = False,
    seed: SeedLike = 0,
    ctx: Optional[RunContext] = None,
    space_mode: str = "materialized",
    memory_budget_mb: Optional[float] = None,
) -> ParetoFigure:
    """Figs. 4 (EP) and 5 (memcached): the 10x10 Pareto analysis.

    Calibration and space evaluation run through the engine context, so
    rebuilding the same figure (or running the equivalent
    :class:`~repro.engine.Scenario`) in one process is a cache hit.

    ``space_mode="streaming"`` folds the space through block reducers
    under ``memory_budget_mb`` instead of materializing it: the returned
    figure has ``space=None`` (no point cloud) but bit-identical
    frontiers and regions.
    """
    ctx = ctx if ctx is not None else default_context()
    if space_mode not in ("materialized", "streaming"):
        raise ValueError(
            f"space_mode must be 'materialized' or 'streaming', got "
            f"{space_mode!r}"
        )
    if units is None:
        units = workload.problem_sizes.get("analysis", workload.default_job_units)
    params = suite_params(workload, calibrated=calibrated, seed=seed, ctx=ctx)
    if space_mode == "streaming":
        group_specs = (
            GroupSpec(ARM_CORTEX_A9, max_arm),
            GroupSpec(AMD_K10, max_amd),
        )
        reduced = ctx.space_reduced(
            group_specs, params, units, memory_budget_mb=memory_budget_mb
        )
        arm_frontier, amd_frontier = reduced.group_frontiers
        if arm_frontier is None or amd_frontier is None:
            raise ValueError("figure needs both homogeneous frontiers")
        return ParetoFigure(
            workload=workload.name,
            space=None,
            frontier=reduced.frontier,
            arm_only_frontier=arm_frontier,
            amd_only_frontier=amd_frontier,
            regions=analyze_regions_reduced(reduced),
            reduced=reduced,
        )
    space = ctx.space(ARM_CORTEX_A9, max_arm, AMD_K10, max_amd, params, units)
    frontier = ParetoFrontier.from_points(space.times_s, space.energies_j)
    arm_only = space.subset(space.is_only_a)
    amd_only = space.subset(space.is_only_b)
    return ParetoFigure(
        workload=workload.name,
        space=space,
        frontier=frontier,
        arm_only_frontier=ParetoFrontier.from_points(
            arm_only.times_s, arm_only.energies_j
        ),
        amd_only_frontier=ParetoFrontier.from_points(
            amd_only.times_s, amd_only.energies_j
        ),
        regions=analyze_regions(space, frontier),
    )


def build_fig6_fig7(
    workload: WorkloadSpec,
    budget_w: float = 1000.0,
    units: Optional[float] = None,
    calibrated: bool = False,
    seed: SeedLike = 0,
    deadline_points: int = 48,
    ctx: Optional[RunContext] = None,
) -> Dict[str, FigureSeries]:
    """Figs. 6 (memcached) and 7 (EP): budget-constrained mixes.

    One min-energy-vs-deadline line per mix of the paper's legend
    (ARM 0:AMD 16 ... ARM 128:AMD 0 under 1 kW at 8:1).
    """
    ctx = ctx if ctx is not None else default_context()
    if units is None:
        units = workload.problem_sizes.get("analysis", workload.default_job_units)
    params = suite_params(workload, calibrated=calibrated, seed=seed, ctx=ctx)
    mixes = budget_mixes(ARM_CORTEX_A9, AMD_K10, budget_w, ETHERNET_SWITCH)
    return _mix_series(workload, mixes, params, units, deadline_points, ctx=ctx)


def build_fig8_fig9(
    workload: WorkloadSpec,
    factors: Sequence[int] = (1, 2, 4, 8, 16),
    units: Optional[float] = None,
    calibrated: bool = False,
    seed: SeedLike = 0,
    deadline_points: int = 48,
    ctx: Optional[RunContext] = None,
) -> Dict[str, FigureSeries]:
    """Figs. 8 (memcached) and 9 (EP): scaling the cluster at fixed ratio."""
    ctx = ctx if ctx is not None else default_context()
    if units is None:
        units = workload.problem_sizes.get("analysis", workload.default_job_units)
    params = suite_params(workload, calibrated=calibrated, seed=seed, ctx=ctx)
    mixes = scaled_mixes(Mix(8, 1), factors)
    # Figures 8-9 treat a mix as the *available* cluster: configurations
    # may power off unused nodes, which is what grows the sweet region's
    # configuration count with scale (Observation 3).
    return _mix_series(
        workload, mixes, params, units, deadline_points, pinned=False, ctx=ctx
    )


def _mix_series(
    workload: WorkloadSpec,
    mixes: Sequence[Mix],
    params,
    units: float,
    deadline_points: int,
    pinned: bool = True,
    ctx: Optional[RunContext] = None,
) -> Dict[str, FigureSeries]:
    """Shared Fig. 6-9 machinery: per-mix min-energy over a common grid.

    ``pinned=True`` (Figures 6-7): every node of the mix participates in
    every job -- the budget lines stay distinct per mix.  ``pinned=False``
    (Figures 8-9): any subset may be used, unused nodes off.  Per-mix
    spaces mirror :func:`repro.core.analysis.fixed_mix_space` /
    :func:`~repro.core.analysis.subset_mix_space`, evaluated through the
    engine context's cache.
    """
    ctx = ctx if ctx is not None else default_context()
    spaces: Dict[str, ConfigSpaceResult] = {}
    fastest, slowest = np.inf, 0.0
    for mix in mixes:
        if mix.n_low == 0 and mix.n_high == 0:
            raise ValueError("mix needs at least one node")
        if pinned:
            space = ctx.space(
                ARM_CORTEX_A9,
                max(mix.n_low, 1),
                AMD_K10,
                max(mix.n_high, 1),
                params,
                units,
                counts_a=[mix.n_low],
                counts_b=[mix.n_high],
            )
        else:
            space = ctx.space(
                ARM_CORTEX_A9, mix.n_low, AMD_K10, mix.n_high, params, units
            )
        spaces[mix.label()] = space
        frontier = ParetoFrontier.from_points(space.times_s, space.energies_j)
        fastest = min(fastest, frontier.fastest_time_s)
        slowest = max(slowest, float(frontier.times_s[-1]))
    # The paper's Figs. 6-9 relax deadlines over ~1.5 orders of magnitude;
    # extend well past the slowest frontier point so flat tails show.
    grid = analysis.deadline_grid(
        fastest, max(slowest * 2.0, fastest * 40.0), deadline_points
    )
    series: Dict[str, FigureSeries] = {}
    for label, space in spaces.items():
        energies = analysis.min_energy_series(space, grid)
        mask = np.asarray([e is not None for e in energies])
        ys = np.asarray([e if e is not None else np.nan for e in energies])
        series[label] = FigureSeries(
            label=label,
            x=seconds_to_ms(grid[mask]),
            y=ys[mask],
            x_name="deadline [ms]",
            y_name="minimum energy [J]",
            meta={
                "workload": workload.name,
                "min_feasible_deadline_ms": float(seconds_to_ms(grid[mask][0]))
                if mask.any()
                else None,
            },
        )
    return series


def build_fig10(
    workload: WorkloadSpec = MEMCACHED,
    n_arm: int = 16,
    n_amd: int = 14,
    utilizations: Sequence[float] = (0.05, 0.25, 0.50),
    window_s: float = 20.0,
    units: Optional[float] = None,
    calibrated: bool = False,
    seed: SeedLike = 0,
    ctx: Optional[RunContext] = None,
    space_mode: str = "materialized",
    memory_budget_mb: Optional[float] = None,
) -> Dict[float, List[WindowPoint]]:
    """Fig. 10: queueing-aware window energy on the 16 ARM + 14 AMD cluster.

    Configurations may use any subset of the nodes (unused nodes are off),
    so the space spans all counts up to the cluster size.
    ``space_mode="streaming"`` folds the blocks through per-utilization
    frontier reducers instead of materializing the space; the series are
    bit-identical.
    """
    ctx = ctx if ctx is not None else default_context()
    if space_mode not in ("materialized", "streaming"):
        raise ValueError(
            f"space_mode must be 'materialized' or 'streaming', got "
            f"{space_mode!r}"
        )
    if units is None:
        units = workload.problem_sizes.get("analysis", workload.default_job_units)
    params = suite_params(workload, calibrated=calibrated, seed=seed, ctx=ctx)
    if space_mode == "streaming":
        group_specs = (
            GroupSpec(ARM_CORTEX_A9, n_arm),
            GroupSpec(AMD_K10, n_amd),
        )
        reduced = ctx.space_reduced(
            group_specs,
            params,
            units,
            memory_budget_mb=memory_budget_mb,
            queueing={
                "idle_powers_w": (
                    ARM_CORTEX_A9.idle_power_w,
                    AMD_K10.idle_power_w,
                ),
                "utilizations": tuple(utilizations),
                "window_s": window_s,
            },
        )
        return reduced.queueing
    space = ctx.space(ARM_CORTEX_A9, n_arm, AMD_K10, n_amd, params, units)
    return figure10_series(
        space,
        ARM_CORTEX_A9.idle_power_w,
        AMD_K10.idle_power_w,
        utilizations=utilizations,
        window_s=window_s,
    )
