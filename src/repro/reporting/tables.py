"""Monospace table rendering for terminal reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence


@dataclass
class Table:
    """A simple left-aligned text table.

    >>> t = Table(["name", "value"], title="demo")
    >>> t.add_row(["alpha", 1])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    demo
    name  | value
    ------+------
    alpha | 1
    """

    headers: Sequence[str]
    title: Optional[str] = None
    rows: List[List[str]] = field(default_factory=list)

    def add_row(self, cells: Iterable[object]) -> None:
        """Append a row; cells are stringified (floats get %g)."""
        row = [self._format(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    @staticmethod
    def _format(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:g}"
        return str(cell)

    def render(self) -> str:
        """Render the table with column-width alignment."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
