"""Reporting builders for search-run convergence.

A :class:`~repro.search.trajectory.SearchTrajectory` records every
propose/evaluate/observe round of a search; these builders turn one (or
several, for strategy comparisons) into the repo's plain reporting
primitives -- a :class:`~repro.reporting.tables.Table` and
:class:`~repro.reporting.figures.FigureSeries` maps ready for
:func:`~repro.reporting.plots.plot_series_map` -- so the CLI can show
how fast an agent closed in on the frontier.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.reporting.figures import FigureSeries
from repro.reporting.plots import plot_series_map
from repro.reporting.tables import Table
from repro.search.trajectory import SearchTrajectory


def convergence_table(
    trajectory: SearchTrajectory, max_rows: Optional[int] = 12
) -> Table:
    """Per-round convergence as a terminal table.

    Long runs are thinned to ``max_rows`` evenly spaced rounds (the
    final round always shown); pass ``None`` to keep every round.
    """
    table = Table(
        ["round", "rows", "new", "total", "coverage", "frontier", "hypervolume",
         "recall"],
        title=(
            f"search convergence -- {trajectory.strategy}, "
            f"budget {trajectory.budget_rows} of {trajectory.space_rows} rows"
        ),
    )
    rounds = trajectory.rounds
    if max_rows is not None and len(rounds) > max_rows:
        picks = np.linspace(0, len(rounds) - 1, max_rows).round().astype(int)
        rounds = [rounds[i] for i in dict.fromkeys(picks.tolist())]
    for r in rounds:
        table.add_row(
            [
                r.index,
                r.batch_rows,
                r.new_rows,
                r.rows_evaluated,
                f"{r.rows_evaluated / trajectory.space_rows:.2%}"
                if trajectory.space_rows else "n/a",
                r.frontier_points,
                f"{r.hypervolume:.4g}",
                "n/a" if r.recall is None else f"{r.recall:.2%}",
            ]
        )
    return table


def convergence_series(
    trajectories: Mapping[str, SearchTrajectory],
    metric: str = "recall",
) -> Dict[str, FigureSeries]:
    """``{label: FigureSeries}`` of a convergence metric vs rows evaluated.

    ``metric`` is ``"recall"`` (rounds without ground truth are
    skipped), ``"hypervolume"``, or ``"frontier_points"``.
    """
    if metric not in ("recall", "hypervolume", "frontier_points"):
        raise ValueError(
            "metric must be 'recall', 'hypervolume', or 'frontier_points', "
            f"got {metric!r}"
        )
    series: Dict[str, FigureSeries] = {}
    for label, trajectory in trajectories.items():
        xs, ys = [], []
        for r in trajectory.rounds:
            value = getattr(r, metric)
            if value is None:
                continue
            xs.append(r.rows_evaluated)
            ys.append(value)
        if not xs:
            continue
        series[label] = FigureSeries(
            label=label,
            x=np.asarray(xs, dtype=float),
            y=np.asarray(ys, dtype=float),
            x_name="rows evaluated",
            y_name=metric.replace("_", " "),
        )
    return series


def plot_convergence(
    trajectories: Mapping[str, SearchTrajectory],
    metric: str = "hypervolume",
    title: Optional[str] = None,
    width: int = 72,
    height: int = 20,
) -> str:
    """ASCII convergence plot: ``metric`` against rows evaluated."""
    series = convergence_series(trajectories, metric=metric)
    if not series:
        raise ValueError(
            f"no rounds carry {metric!r} -- recall needs exhaustive "
            "ground truth (best_known) at search time"
        )
    if title is None:
        title = f"search convergence ({metric.replace('_', ' ')})"
    return plot_series_map(
        series, title=title, width=width, height=height, as_lines=True
    )
