"""Terminal plotting: render figure series as ASCII scatter/line charts.

The reproduction is CLI-first (no matplotlib dependency), so figures can
be *seen*, not just exported: a fixed-size character canvas, linear or
log axes, multi-series overlays with distinct glyphs, and axis labels.

This is intentionally minimal -- enough to eyeball the paper's shapes
(Pareto clouds, budget-mix lines, the Fig. 10 drop) straight from
``python -m repro fig4 --plot``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

#: Glyph cycle for overlaid series.
GLYPHS = "ox+*#@%&"


@dataclass
class AsciiCanvas:
    """A character grid with data-space coordinate mapping."""

    width: int = 72
    height: int = 20
    x_log: bool = False
    y_log: bool = False
    x_name: str = "x"
    y_name: str = "y"
    _cells: List[List[str]] = field(default_factory=list)
    _x_range: Optional[Tuple[float, float]] = None
    _y_range: Optional[Tuple[float, float]] = None
    _legend: List[Tuple[str, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.width < 16 or self.height < 6:
            raise ValueError("canvas too small to be legible")
        self._cells = [[" "] * self.width for _ in range(self.height)]

    # -- range handling ---------------------------------------------------

    def fit(self, xs: Sequence[float], ys: Sequence[float]) -> None:
        """Extend the data range to cover ``(xs, ys)``."""
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        mask = np.isfinite(xs) & np.isfinite(ys)
        if self.x_log:
            mask &= xs > 0
        if self.y_log:
            mask &= ys > 0
        xs, ys = xs[mask], ys[mask]
        if xs.size == 0:
            return
        x_lo, x_hi = float(xs.min()), float(xs.max())
        y_lo, y_hi = float(ys.min()), float(ys.max())
        if self._x_range is None:
            self._x_range = (x_lo, x_hi)
            self._y_range = (y_lo, y_hi)
        else:
            self._x_range = (min(self._x_range[0], x_lo), max(self._x_range[1], x_hi))
            self._y_range = (min(self._y_range[0], y_lo), max(self._y_range[1], y_hi))

    def _transform(self, value: float, log: bool) -> float:
        return math.log10(value) if log else value

    def _to_column(self, x: float) -> Optional[int]:
        lo, hi = self._x_range
        lo_t = self._transform(lo, self.x_log)
        hi_t = self._transform(hi, self.x_log)
        if hi_t == lo_t:
            return self.width // 2
        frac = (self._transform(x, self.x_log) - lo_t) / (hi_t - lo_t)
        if not 0.0 <= frac <= 1.0:
            return None
        return min(self.width - 1, int(round(frac * (self.width - 1))))

    def _to_row(self, y: float) -> Optional[int]:
        lo, hi = self._y_range
        lo_t = self._transform(lo, self.y_log)
        hi_t = self._transform(hi, self.y_log)
        if hi_t == lo_t:
            return self.height // 2
        frac = (self._transform(y, self.y_log) - lo_t) / (hi_t - lo_t)
        if not 0.0 <= frac <= 1.0:
            return None
        return self.height - 1 - min(self.height - 1, int(round(frac * (self.height - 1))))

    # -- drawing ----------------------------------------------------------

    def scatter(
        self, xs: Sequence[float], ys: Sequence[float], label: str = ""
    ) -> None:
        """Plot points with the next glyph in the cycle."""
        if self._x_range is None:
            self.fit(xs, ys)
        glyph = GLYPHS[len(self._legend) % len(GLYPHS)]
        self._legend.append((glyph, label))
        for x, y in zip(xs, ys):
            if not (np.isfinite(x) and np.isfinite(y)):
                continue
            if (self.x_log and x <= 0) or (self.y_log and y <= 0):
                continue
            col = self._to_column(float(x))
            row = self._to_row(float(y))
            if col is None or row is None:
                continue
            self._cells[row][col] = glyph

    def line(self, xs: Sequence[float], ys: Sequence[float], label: str = "") -> None:
        """Plot a series with linear interpolation between points."""
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if self._x_range is None:
            self.fit(xs, ys)
        glyph = GLYPHS[len(self._legend) % len(GLYPHS)]
        self._legend.append((glyph, label))
        # Dense resample in transformed x for a continuous-looking trace.
        order = np.argsort(xs)
        xs, ys = xs[order], ys[order]
        for i in range(len(xs) - 1):
            x0, x1 = xs[i], xs[i + 1]
            y0, y1 = ys[i], ys[i + 1]
            if not all(map(np.isfinite, (x0, x1, y0, y1))):
                continue
            # Sample densely enough to cover every pixel the segment spans.
            c0, c1 = self._to_column(float(x0)), self._to_column(float(x1))
            r0, r1 = self._to_row(float(y0)), self._to_row(float(y1))
            span = 0
            if c0 is not None and c1 is not None:
                span = max(span, abs(c1 - c0))
            if r0 is not None and r1 is not None:
                span = max(span, abs(r1 - r0))
            steps = max(2, 2 * span)
            for s in range(steps + 1):
                frac = s / steps
                x = x0 + (x1 - x0) * frac
                y = y0 + (y1 - y0) * frac
                if (self.x_log and x <= 0) or (self.y_log and y <= 0):
                    continue
                col = self._to_column(float(x))
                row = self._to_row(float(y))
                if col is not None and row is not None:
                    self._cells[row][col] = glyph

    # -- output -----------------------------------------------------------

    @staticmethod
    def _fmt(value: float) -> str:
        return f"{value:.3g}"

    def render(self, title: str = "") -> str:
        """The canvas with a frame, axis annotations and a legend."""
        if self._x_range is None:
            raise ValueError("nothing plotted yet")
        lines: List[str] = []
        if title:
            lines.append(title)
        y_hi = self._fmt(self._y_range[1])
        y_lo = self._fmt(self._y_range[0])
        margin = max(len(y_hi), len(y_lo))
        top_label = y_hi.rjust(margin)
        bottom_label = y_lo.rjust(margin)
        for i, row in enumerate(self._cells):
            if i == 0:
                prefix = top_label
            elif i == self.height - 1:
                prefix = bottom_label
            else:
                prefix = " " * margin
            lines.append(f"{prefix} |{''.join(row)}|")
        x_lo = self._fmt(self._x_range[0])
        x_hi = self._fmt(self._x_range[1])
        axis = " " * margin + " +" + "-" * self.width + "+"
        lines.append(axis)
        label_line = (
            " " * margin
            + "  "
            + x_lo
            + " " * max(1, self.width - len(x_lo) - len(x_hi))
            + x_hi
        )
        lines.append(label_line)
        scale = []
        if self.x_log:
            scale.append("log x")
        if self.y_log:
            scale.append("log y")
        suffix = f"  [{', '.join(scale)}]" if scale else ""
        lines.append(" " * margin + f"  {self.x_name} vs {self.y_name}{suffix}")
        for glyph, label in self._legend:
            if label:
                lines.append(" " * margin + f"  {glyph} {label}")
        return "\n".join(lines)


def plot_series_map(
    series_map,
    title: str = "",
    width: int = 72,
    height: int = 20,
    x_log: bool = False,
    y_log: bool = False,
    as_lines: bool = True,
) -> str:
    """Render a ``{label: FigureSeries}`` mapping on one canvas."""
    if not series_map:
        raise ValueError("no series to plot")
    first = next(iter(series_map.values()))
    canvas = AsciiCanvas(
        width=width,
        height=height,
        x_log=x_log,
        y_log=y_log,
        x_name=first.x_name,
        y_name=first.y_name,
    )
    for s in series_map.values():
        canvas.fit(s.x, s.y)
    for label, s in series_map.items():
        if as_lines and len(s.x) > 1:
            canvas.line(s.x, s.y, label)
        else:
            canvas.scatter(s.x, s.y, label)
    return canvas.render(title)


def plot_pareto_figure(
    fig,
    width: int = 72,
    height: int = 22,
    x_max_factor: float = 4.0,
) -> str:
    """Render a :class:`~repro.reporting.figures.ParetoFigure` like the
    paper's Figs. 4-5: the configuration cloud plus the frontier.

    The cloud contains arbitrarily slow configurations (one node at
    fmin); like the paper's axes, the view clips at ``x_max_factor``
    times the frontier's most relaxed deadline.

    Streaming-built figures carry no point cloud (``cloud_series()`` is
    ``None``); the frontier is drawn alone.
    """
    canvas = AsciiCanvas(
        width=width,
        height=height,
        x_name="deadline [ms]",
        y_name="energy [J]",
    )
    cloud = fig.cloud_series()
    frontier = fig.frontier_series()
    if cloud is not None:
        x_max = float(frontier.x.max()) * x_max_factor
        in_view = cloud.x <= x_max
        canvas.fit(cloud.x[in_view], cloud.y[in_view])
        canvas.scatter(cloud.x[in_view], cloud.y[in_view], "all configurations")
    else:
        canvas.fit(frontier.x, frontier.y)
    canvas.line(frontier.x, frontier.y, "Pareto frontier")
    return canvas.render(f"Energy vs deadline: {fig.workload}")
