"""Reporting: ASCII tables, figure data series, CSV export.

Every table and figure of the paper has a builder here returning plain
data (rows or series dictionaries); the benchmarks and the CLI render
them.  Keeping builders pure makes them unit-testable and lets the bench
suite assert on *shapes* (who wins, where crossovers fall) rather than on
formatted strings.
"""

from repro.reporting.tables import Table
from repro.reporting.figures import (
    FigureSeries,
    build_table1,
    build_table3,
    build_table4,
    build_table5,
    build_fig2,
    build_fig3,
    build_fig4_fig5,
    build_fig6_fig7,
    build_fig8_fig9,
    build_fig10,
)
from repro.reporting.export import write_csv
from repro.reporting.search import (
    convergence_series,
    convergence_table,
    plot_convergence,
)

__all__ = [
    "Table",
    "convergence_series",
    "convergence_table",
    "plot_convergence",
    "FigureSeries",
    "build_table1",
    "build_table3",
    "build_table4",
    "build_table5",
    "build_fig2",
    "build_fig3",
    "build_fig4_fig5",
    "build_fig6_fig7",
    "build_fig8_fig9",
    "build_fig10",
    "write_csv",
]
