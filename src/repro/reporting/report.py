"""One-command reproduction report.

``python -m repro report`` regenerates every table, every figure's data,
the validation campaign, and the headline observations, then writes a
single self-contained Markdown document (plus per-artifact CSVs) -- the
file a reviewer would skim to decide whether the reproduction holds.

Runtime is dominated by the Table 3/4 validation campaigns (~10 s).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.reporting.export import write_csv
from repro.reporting.figures import (
    build_fig2,
    build_fig3,
    build_fig4_fig5,
    build_fig6_fig7,
    build_fig8_fig9,
    build_fig10,
    build_table1,
    build_table3,
    build_table4,
    build_table5,
)
from repro.util.rng import SeedLike
from repro.util.units import seconds_to_ms
from repro.workloads.suite import EP, MEMCACHED


def _code_block(text: str) -> str:
    return f"```\n{text}\n```\n"


def generate_report(
    output_dir: Union[str, Path],
    seed: SeedLike = 0,
    include_validation: bool = True,
) -> Path:
    """Write ``report.md`` (and CSVs) under ``output_dir``; returns its path.

    ``include_validation=False`` skips the slow Table 3/4 campaigns for a
    quick figures-only report.
    """
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    started = time.time()
    lines: List[str] = [
        "# Reproduction report",
        "",
        "*Modeling the Energy Efficiency of Heterogeneous Clusters*"
        " (ICPP 2014) -- regenerated artifacts.",
        f"Seed: `{seed}`.",
        "",
    ]

    # ---- Table 1 ---------------------------------------------------------
    lines += ["## Table 1 -- node types", "", _code_block(build_table1().render())]

    # ---- Fig 2 / Fig 3 ---------------------------------------------------
    fig2 = build_fig2(seed=seed)
    spread = max(
        (s.y.max() - s.y.min()) / s.y.min() for s in fig2.values()
    )
    lines += [
        "## Figure 2 -- WPI / SPI_core scale constancy",
        "",
        f"Worst relative spread across problem sizes A/B/C: **{spread:.1%}**"
        " (the paper's constancy hypothesis).",
        "",
    ]
    fig3 = build_fig3(seed=seed)
    worst_r2 = min(s.meta["r2"] for s in fig3.values())
    lines += [
        "## Figure 3 -- SPI_mem linearity over frequency",
        "",
        f"Worst r^2 across panels: **{worst_r2:.3f}** (paper: >= 0.94).",
        "",
    ]

    # ---- Tables 3-4 ------------------------------------------------------
    if include_validation:
        table3, reports3 = build_table3(seed=seed)
        worst3 = max(
            max(r.time_errors.mean, r.energy_errors.mean) for r in reports3
        )
        lines += [
            "## Table 3 -- single-node validation",
            "",
            _code_block(table3.render()),
            f"Worst cell mean error: **{worst3:.1f}%** (paper bound: 15%).",
            "",
        ]
        table4, reports4 = build_table4(seed=seed)
        worst4 = max(
            max(r.time_error_pct, r.energy_error_pct) for r in reports4
        )
        lines += [
            "## Table 4 -- cluster validation",
            "",
            _code_block(table4.render()),
            f"Worst cell error: **{worst4:.1f}%**.",
            "",
        ]

    # ---- Table 5 ---------------------------------------------------------
    table5, _ = build_table5(seed=seed)
    lines += ["## Table 5 -- performance-to-power ratios", "", _code_block(table5.render())]

    # ---- Figures 4-5 -----------------------------------------------------
    for workload, fig_id in ((EP, 4), (MEMCACHED, 5)):
        fig = build_fig4_fig5(workload, seed=seed)
        write_csv(
            output_dir / f"fig{fig_id}.csv",
            ["time_ms", "energy_j", "n_arm", "n_amd"],
            [
                [
                    seconds_to_ms(fig.space.times_s[i]),
                    fig.space.energies_j[i],
                    int(fig.space.n_a[i]),
                    int(fig.space.n_b[i]),
                ]
                for i in range(len(fig.space))
            ],
        )
        regions = fig.regions
        lines += [
            f"## Figure {fig_id} -- Pareto frontier, {workload.name}",
            "",
            f"- configurations: {len(fig.space):,}",
            f"- frontier: {len(fig.frontier)} points, "
            f"{seconds_to_ms(fig.frontier.fastest_time_s):.1f} ms fastest, "
            f"{fig.frontier.min_energy_j:.2f} J minimum",
            f"- sweet region: {'yes' if regions.has_sweet_region else 'no'}"
            + (
                f" (r^2 = {regions.sweet.linearity_r2():.3f})"
                if regions.sweet and regions.sweet.linearity_r2() is not None
                else ""
            ),
            f"- overlap region: "
            f"{'yes' if regions.has_overlap_region else 'no'} "
            f"(energy drop {regions.overlap_energy_drop:.1%})",
            f"- data: `fig{fig_id}.csv`",
            "",
        ]

    # ---- Figures 6-9 -----------------------------------------------------
    for builder, workload, fig_id in (
        (build_fig6_fig7, MEMCACHED, 6),
        (build_fig6_fig7, EP, 7),
        (build_fig8_fig9, MEMCACHED, 8),
        (build_fig8_fig9, EP, 9),
    ):
        series = builder(workload, seed=seed)
        write_csv(
            output_dir / f"fig{fig_id}.csv",
            ["series", "deadline_ms", "min_energy_j"],
            [
                [label, float(x), float(y)]
                for label, s in series.items()
                for x, y in zip(s.x, s.y)
            ],
        )
        minima = {label: float(np.nanmin(s.y)) for label, s in series.items()}
        best = min(minima, key=minima.get)
        lines += [
            f"## Figure {fig_id} -- {workload.name} "
            + ("budget mixes" if fig_id in (6, 7) else "cluster scaling"),
            "",
            f"- {len(series)} mixes; most efficient: **{best}** "
            f"({minima[best]:.1f} J)",
            f"- data: `fig{fig_id}.csv`",
            "",
        ]

    # ---- Figure 10 -------------------------------------------------------
    fig10 = build_fig10(seed=seed)
    write_csv(
        output_dir / "fig10.csv",
        ["utilization", "response_ms", "window_energy_j", "n_arm", "n_amd"],
        [
            [u, seconds_to_ms(p.response_s), p.window_energy_j, p.n_a, p.n_b]
            for u, points in sorted(fig10.items())
            for p in points
        ],
    )
    lines += ["## Figure 10 -- queueing-aware window energy", ""]
    for u, points in sorted(fig10.items()):
        energies = [p.window_energy_j for p in points]
        lines.append(
            f"- U = {u:.0%}: {len(points)} frontier points, energy "
            f"{min(energies):.0f}..{max(energies):.0f} J "
            f"({max(energies) / min(energies):.0f}x span)"
        )
    lines += ["- data: `fig10.csv`", ""]

    lines += [
        "---",
        f"Generated in {time.time() - started:.1f} s by `python -m repro report`.",
        "",
    ]
    path = output_dir / "report.md"
    path.write_text("\n".join(lines))
    return path
