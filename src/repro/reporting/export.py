"""CSV export of report data."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence, Union


def write_csv(
    path: Union[str, Path],
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> Path:
    """Write ``rows`` under ``headers`` to ``path``; returns the path.

    Parent directories are created.  Every row must match the header
    width -- a mismatch is a caller bug and raises immediately rather
    than producing a ragged file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            row = list(row)
            if len(row) != len(headers):
                raise ValueError(
                    f"row width {len(row)} does not match header width {len(headers)}"
                )
            writer.writerow(row)
    return path
