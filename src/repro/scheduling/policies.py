"""Work-splitting policies: mix-and-match vs naive baselines.

Every policy maps ``(total_units, group_a, group_b)`` to a split
``(units_a, units_b)``.  :func:`evaluate_split` then computes the job
time (max of the groups' completion times) and the energy including the
idle-wait of the early finisher -- the term matching is designed to
eliminate (Section I: "by finishing at the same time, the energy
incurred by idling in the cluster is minimized").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.core.energymodel import predict_node_energy
from repro.core.matching import GroupSetting, match_split
from repro.core.timemodel import predict_node_time

Splitter = Callable[[float, GroupSetting, GroupSetting], Tuple[float, float]]


@dataclass(frozen=True)
class SplitOutcome:
    """Job-level consequences of one split."""

    units_a: float
    units_b: float
    time_a_s: float
    time_b_s: float
    job_time_s: float
    energy_j: float
    #: Energy burned by the early group idling until the late one finishes.
    idle_wait_energy_j: float

    @property
    def imbalance_s(self) -> float:
        """How far apart the two groups finish."""
        return abs(self.time_a_s - self.time_b_s)


def evaluate_split(
    units_a: float,
    units_b: float,
    a: GroupSetting,
    b: GroupSetting,
    energy_proportional: bool = False,
) -> SplitOutcome:
    """Evaluate an arbitrary split under the analytical model.

    The energy model's idle term runs to the *job* completion time on
    both groups (Eq. 14 with the job's T), so a mismatched split pays
    ``n * P_idle * (T_job - T_group)`` extra on the early group.

    ``energy_proportional=True`` ablates the paper's C-state-0
    assumption: nodes power off the instant their own share completes,
    so the idle-wait term vanishes and only the per-unit energy
    difference between groups distinguishes split policies.  This
    isolates how much of mix-and-match's benefit comes from the
    never-sleep idling the paper assumes for datacenter nodes.
    """
    if units_a < 0 or units_b < 0:
        raise ValueError("split cannot be negative")
    if units_a + units_b <= 0:
        raise ValueError("job must contain positive work")
    if units_a > 0 and a.n_nodes == 0:
        raise ValueError("cannot assign work to an empty group a")
    if units_b > 0 and b.n_nodes == 0:
        raise ValueError("cannot assign work to an empty group b")

    time_a = a.time(units_a) if a.n_nodes > 0 else 0.0
    time_b = b.time(units_b) if b.n_nodes > 0 else 0.0
    job_time = max(time_a, time_b)

    energy = 0.0
    idle_wait = 0.0
    for units, group, own_time in ((units_a, a, time_a), (units_b, b, time_b)):
        if group.n_nodes == 0:
            continue
        times = predict_node_time(
            group.params, units, group.n_nodes, group.cores, group.f_ghz
        )
        charge_until = own_time if energy_proportional else job_time
        breakdown = predict_node_energy(
            group.params, times, job_time_s=charge_until
        )
        energy += breakdown.energy_j
        if not energy_proportional:
            idle_wait += (
                (job_time - own_time) * group.params.p_idle_w * group.n_nodes
            )
    return SplitOutcome(
        units_a=units_a,
        units_b=units_b,
        time_a_s=time_a,
        time_b_s=time_b,
        job_time_s=job_time,
        energy_j=energy,
        idle_wait_energy_j=idle_wait,
    )


# ---------------------------------------------------------------------------
# Splitting policies
# ---------------------------------------------------------------------------


def equal_per_node_split(
    units: float, a: GroupSetting, b: GroupSetting
) -> Tuple[float, float]:
    """Every node gets the same share, regardless of its speed.

    The "fair" heuristic of homogeneous-cluster schedulers applied
    blindly to a heterogeneous cluster.
    """
    total_nodes = a.n_nodes + b.n_nodes
    if total_nodes == 0:
        raise ValueError("no nodes to split over")
    units_a = units * a.n_nodes / total_nodes
    return units_a, units - units_a


def equal_per_type_split(
    units: float, a: GroupSetting, b: GroupSetting
) -> Tuple[float, float]:
    """Half the job to each node type (when both are present)."""
    if a.n_nodes == 0:
        return 0.0, units
    if b.n_nodes == 0:
        return units, 0.0
    return units / 2.0, units / 2.0


def nominal_rate_split(
    units: float, a: GroupSetting, b: GroupSetting
) -> Tuple[float, float]:
    """Split proportional to nominal compute capacity ``n * c * f``.

    Smarter than equal shares but still ISA-blind: it ignores that the
    same work unit costs different instructions, stalls, and I/O on each
    node type.
    """
    cap_a = a.n_nodes * a.cores * a.f_ghz
    cap_b = b.n_nodes * b.cores * b.f_ghz
    total = cap_a + cap_b
    if total == 0:
        raise ValueError("no capacity to split over")
    units_a = units * cap_a / total
    return units_a, units - units_a


def matched_split(
    units: float, a: GroupSetting, b: GroupSetting
) -> Tuple[float, float]:
    """The paper's mix-and-match split (delegates to the core matcher)."""
    result = match_split(units, a, b)
    return result.units_a, result.units_b


#: The policies compared by the matching ablation bench.
POLICIES: Dict[str, Splitter] = {
    "matched": matched_split,
    "nominal-rate": nominal_rate_split,
    "equal-per-node": equal_per_node_split,
    "equal-per-type": equal_per_type_split,
}


def compare_policies(
    units: float,
    a: GroupSetting,
    b: GroupSetting,
    energy_proportional: bool = False,
) -> Dict[str, SplitOutcome]:
    """Evaluate every policy on the same job and cluster."""
    outcomes: Dict[str, SplitOutcome] = {}
    for name, splitter in POLICIES.items():
        units_a, units_b = splitter(units, a, b)
        outcomes[name] = evaluate_split(
            units_a, units_b, a, b, energy_proportional=energy_proportional
        )
    return outcomes
