"""The switching baseline: low-power *or* high-performance, never both.

Section I: "the state of the art currently argues that the best approach
is to use low-power nodes when the arrival rate of requests is small, and
then switch to high-performance nodes when arrival rate grows past a set
threshold" (KnightShift-style).  This module implements that policy at
the window level so it can be compared with mix-and-match on equal terms:

* **switching**: at a given arrival rate, pick the cheapest *homogeneous*
  configuration (low-power side if it meets the response deadline,
  otherwise the high-performance side);
* **mix-and-match**: pick the cheapest configuration from the *full*
  heterogeneous frontier that meets the deadline.

Because the heterogeneous frontier is a superset of the two homogeneous
ones, mix-and-match can never lose; the interesting output is *by how
much* it wins between the two homogeneous operating points -- the
"linear reduction as the deadline is relaxed" the paper claims is
unreachable for a switching policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.evaluate import ConfigSpaceResult
from repro.core.pareto import ParetoFrontier
from repro.queueing.dispatcher import window_energy


@dataclass(frozen=True)
class SwitchingDecision:
    """Outcome of one policy invocation."""

    #: "low", "high", or "mix"; None when no option meets the deadline.
    chosen: Optional[str]
    response_s: Optional[float]
    window_energy_j: Optional[float]
    service_s: Optional[float]

    @property
    def feasible(self) -> bool:
        return self.chosen is not None


def _best_window_choice(
    space: ConfigSpaceResult,
    mask: np.ndarray,
    idle_power_a_w: float,
    idle_power_b_w: float,
    deadline_s: float,
    utilization: float,
    window_s: float,
    label: str,
) -> SwitchingDecision:
    """Cheapest window energy among ``mask`` configs meeting the deadline."""
    subset = space.subset(mask)
    best_energy = None
    best_response = None
    best_service = None
    if len(subset) > 0:
        frontier = ParetoFrontier.from_points(subset.times_s, subset.energies_j)
        for pos in range(len(frontier)):
            idx = int(frontier.indices[pos])
            service = float(subset.times_s[idx])
            idle_w = (
                int(subset.n_a[idx]) * idle_power_a_w
                + int(subset.n_b[idx]) * idle_power_b_w
            )
            point = window_energy(
                service,
                float(subset.energies_j[idx]),
                idle_w,
                utilization,
                window_s,
            )
            if point.response_s > deadline_s:
                continue
            if best_energy is None or point.window_energy_j < best_energy:
                best_energy = point.window_energy_j
                best_response = point.response_s
                best_service = service
    if best_energy is None:
        return SwitchingDecision(None, None, None, None)
    return SwitchingDecision(label, best_response, best_energy, best_service)


def switching_policy(
    space: ConfigSpaceResult,
    idle_power_a_w: float,
    idle_power_b_w: float,
    deadline_s: float,
    utilization: float,
    window_s: float = 20.0,
) -> SwitchingDecision:
    """KnightShift-style choice: low-power side if feasible, else high side.

    Group ``a`` is the low-power type throughout this library.
    """
    low = _best_window_choice(
        space,
        space.is_only_a,
        idle_power_a_w,
        idle_power_b_w,
        deadline_s,
        utilization,
        window_s,
        "low",
    )
    if low.feasible:
        return low
    return _best_window_choice(
        space,
        space.is_only_b,
        idle_power_a_w,
        idle_power_b_w,
        deadline_s,
        utilization,
        window_s,
        "high",
    )


def mix_and_match_policy(
    space: ConfigSpaceResult,
    idle_power_a_w: float,
    idle_power_b_w: float,
    deadline_s: float,
    utilization: float,
    window_s: float = 20.0,
) -> SwitchingDecision:
    """The paper's policy: cheapest configuration from the full space."""
    all_mask = np.ones(len(space), dtype=bool)
    decision = _best_window_choice(
        space,
        all_mask,
        idle_power_a_w,
        idle_power_b_w,
        deadline_s,
        utilization,
        window_s,
        "mix",
    )
    return decision


def compare_switching_vs_mix(
    space: ConfigSpaceResult,
    idle_power_a_w: float,
    idle_power_b_w: float,
    deadlines_s: Sequence[float],
    utilization: float,
    window_s: float = 20.0,
) -> Dict[float, Dict[str, Optional[float]]]:
    """Sweep deadlines; report both policies' window energies and the saving.

    Returns ``{deadline: {"switching": E, "mix": E, "saving": frac}}``
    with ``None`` entries where a policy has no feasible configuration.
    """
    out: Dict[float, Dict[str, Optional[float]]] = {}
    for d in deadlines_s:
        sw = switching_policy(
            space, idle_power_a_w, idle_power_b_w, float(d), utilization, window_s
        )
        mx = mix_and_match_policy(
            space, idle_power_a_w, idle_power_b_w, float(d), utilization, window_s
        )
        saving = None
        if sw.feasible and mx.feasible and sw.window_energy_j:
            saving = (sw.window_energy_j - mx.window_energy_j) / sw.window_energy_j
        out[float(d)] = {
            "switching": sw.window_energy_j,
            "mix": mx.window_energy_j,
            "saving": saving,
        }
    return out
