"""Scheduling baselines the paper argues against.

Two families:

* **Unmatched splitters** (:mod:`repro.scheduling.policies`): divide the
  job between node types by naive rules (equal per node, equal per type,
  nominal core*GHz rate).  Whatever finishes early idles until the whole
  job completes, so these quantify exactly the energy that execution-time
  matching recovers.
* **Switching** (:mod:`repro.scheduling.switching`): the state of the art
  the paper contrasts in Section I -- run the low-power cluster below an
  arrival-rate threshold, switch to the high-performance cluster above
  it, never both at once (KnightShift-style).
"""

from repro.scheduling.policies import (
    SplitOutcome,
    evaluate_split,
    equal_per_node_split,
    equal_per_type_split,
    nominal_rate_split,
    matched_split,
    compare_policies,
)
from repro.scheduling.switching import (
    SwitchingDecision,
    switching_policy,
    mix_and_match_policy,
    compare_switching_vs_mix,
)
from repro.scheduling.hedging import FaultExposure, expected_imbalance, hedged_split

__all__ = [
    "SplitOutcome",
    "evaluate_split",
    "equal_per_node_split",
    "equal_per_type_split",
    "nominal_rate_split",
    "matched_split",
    "compare_policies",
    "SwitchingDecision",
    "switching_policy",
    "mix_and_match_policy",
    "compare_switching_vs_mix",
    "FaultExposure",
    "expected_imbalance",
    "hedged_split",
]
