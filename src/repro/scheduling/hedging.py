"""Hedged matching: splitting work when some nodes may straggle.

Plain mix-and-match assumes every node runs at its calibrated speed; a
straggler (see :mod:`repro.simulator.noise` fault injection) stretches
its whole group and burns idle-wait energy everywhere else.  When the
two node types have *different* fault exposure (e.g. cheap ARM boards
throttle more often than server-grade AMD nodes), the expected-time-
optimal split is no longer the healthy-rate match.

Hedging derates each group's effective rate by its expected slowdown.
With per-run straggler probability ``p`` and slowdown ``s``, a group of
``n`` nodes finishes with its slowest member; the probability at least
one straggles is ``1 - (1 - p)^n``, in which case the group's completion
stretches by ``s``.  The expected completion of a group given work ``w``
is therefore

.. math::

    E[T] = \\gamma w \\, [ (1-q) + q s ], \\quad q = 1 - (1-p)^{n}

and hedged matching equalizes *expected* completions by inflating each
group's time slope with that factor.  This is a static policy -- it
hedges before the job starts; reactive re-balancing is out of scope.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Tuple

from repro.core.matching import GroupSetting, MatchResult, match_split


@dataclass(frozen=True)
class FaultExposure:
    """Per-node straggler model for one group."""

    probability: float
    slowdown: float = 3.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("straggler probability must be in [0, 1]")
        if self.slowdown < 1.0:
            raise ValueError("slowdown must be >= 1")

    def group_stretch(self, n_nodes: int) -> float:
        """Expected completion stretch of an ``n_nodes`` group.

        The group finishes with its slowest node: if any node straggles
        (probability ``1 - (1-p)^n``) the whole group stretches by the
        slowdown.
        """
        if n_nodes < 1:
            raise ValueError("group must have at least one node")
        q = 1.0 - (1.0 - self.probability) ** n_nodes
        return (1.0 - q) + q * self.slowdown


def _derated(group: GroupSetting, exposure: FaultExposure) -> GroupSetting:
    """A copy of ``group`` whose time slope carries the expected stretch.

    Implemented by inflating the instruction count -- the one parameter
    that scales the CPU slope without touching power or I/O.  (For I/O-
    bound groups the NIC is derated instead, since stragglers slow DMA
    servicing too.)
    """
    stretch = exposure.group_stretch(group.n_nodes)
    params = dataclasses.replace(
        group.params,
        instructions_per_unit=group.params.instructions_per_unit * stretch,
        io_bandwidth_bytes_s=group.params.io_bandwidth_bytes_s / stretch,
    )
    return dataclasses.replace(group, params=params)


def hedged_split(
    total_units: float,
    a: GroupSetting,
    b: GroupSetting,
    exposure_a: FaultExposure,
    exposure_b: FaultExposure,
) -> MatchResult:
    """Match on *expected* rates under the groups' fault exposures.

    Returns the split computed against the derated groups; the reported
    ``time_s`` is the expected completion time (healthy completion is
    shorter).  With zero exposure on both sides this reduces exactly to
    :func:`repro.core.matching.match_split`.
    """
    result = match_split(
        total_units, _derated(a, exposure_a), _derated(b, exposure_b)
    )
    return MatchResult(
        units_a=result.units_a,
        units_b=result.units_b,
        time_s=result.time_s,
        method=f"hedged/{result.method}",
    )


def expected_imbalance(
    split: Tuple[float, float],
    a: GroupSetting,
    b: GroupSetting,
    exposure_a: FaultExposure,
    exposure_b: FaultExposure,
) -> float:
    """Expected |E[T_a] - E[T_b]| of a split under the fault model.

    Hedged splits drive this to ~0; healthy-rate matching leaves a gap
    whenever exposures differ.
    """
    w_a, w_b = split
    t_a = a.time(w_a) * exposure_a.group_stretch(max(1, a.n_nodes))
    t_b = b.time(w_b) * exposure_b.group_stretch(max(1, b.n_nodes))
    return abs(t_a - t_b)
