"""The durable run queue: crash-safe job rows inside the artifact store.

A *job* is one requested scenario run.  Its row lives in the store's
``jobs`` table (:mod:`repro.store.store`), so enqueueing, leasing, and
completion ride the same sqlite transactions as the artifacts the run
produces -- a killed process can never strand a job in a state that
disagrees with the store's contents.

State machine::

    queued --lease--> leased --mark_running--> running --complete--> done
      ^                 |                        |
      |                 +--- lease expiry -------+--> queued   (crash recovery)
      |                 |                        |
      +--- retryable ---+------- fail -----------+--> failed   (permanent)
      |
    cancel (queued only; leased/running jobs get cancel_requested)

Every transition is guarded: leases carry an owner + expiry, and the
``done``/``failed`` transitions require the caller to still *hold* the
lease -- a supervisor whose lease expired mid-run (its job re-leased by
a healthier worker) has its late result discarded instead of clobbering
the newer attempt.  That, plus content-addressed artifacts (a duplicate
run writes byte-identical rows), is what makes crash recovery safe
without distributed locking.

Retry discipline: a failure classified *retryable* (the engine's
:data:`repro.engine.resilience.RETRYABLE` taxonomy) re-queues the job
with a deterministic exponential backoff (``not_before``); a permanent
failure -- or exhausting ``max_attempts`` -- parks it in ``failed`` with
the error record preserved.  Lease expiry consumes an attempt the same
way, so a job whose payload kills its worker cannot crash-loop forever.
"""

from __future__ import annotations

import json
import time
import uuid
from typing import Any, Dict, List, Optional, Tuple

from repro.store.store import JOB_ACTIVE_STATES, ArtifactStore

__all__ = [
    "JOB_STATES",
    "JOB_ACTIVE_STATES",
    "JobQueue",
    "QueueFull",
    "UnknownJob",
]

#: Every state a job row can hold.
JOB_STATES = ("queued", "leased", "running", "done", "failed", "cancelled")

#: Backoff before retry attempt ``a`` (seconds): ``BASE * FACTOR**(a-1)``
#: capped at ``MAX`` -- deterministic, so chaos tests can pin schedules.
BACKOFF_BASE_S = 0.25
BACKOFF_FACTOR = 2.0
BACKOFF_MAX_S = 30.0


class QueueFull(RuntimeError):
    """Enqueue refused: the queued backlog is at its configured bound.

    Carries ``retry_after_s``, the client-facing load-shedding hint
    (HTTP maps it to ``429`` + ``Retry-After``).
    """

    def __init__(self, depth: int, bound: int, retry_after_s: float = 1.0):
        super().__init__(
            f"run queue is full ({depth} queued >= bound {bound}); "
            "retry later"
        )
        self.depth = depth
        self.bound = bound
        self.retry_after_s = retry_after_s


class UnknownJob(KeyError):
    """A job id that is not in the queue."""

    def __init__(self, job_id: str):
        super().__init__(job_id)
        self.job_id = job_id

    def __str__(self) -> str:
        return f"unknown job {self.job_id!r}"


def retry_backoff_s(attempt: int) -> float:
    """Deterministic backoff before retry ``attempt`` (>= 1)."""
    if attempt < 1:
        return 0.0
    return min(BACKOFF_BASE_S * BACKOFF_FACTOR ** (attempt - 1), BACKOFF_MAX_S)


def _row_to_job(row: Tuple) -> Dict[str, Any]:
    (
        job_id, idempotency_key, scenario_json, scenario_name, state,
        attempts, max_attempts, not_before, lease_owner, lease_expires_at,
        cancel_requested, error_json, result_json, created_at, updated_at,
    ) = row
    return {
        "id": job_id,
        "idempotency_key": idempotency_key,
        "scenario_json": scenario_json,
        "scenario_name": scenario_name,
        "state": state,
        "attempts": attempts,
        "max_attempts": max_attempts,
        "not_before": not_before,
        "lease_owner": lease_owner,
        "lease_expires_at": lease_expires_at,
        "cancel_requested": bool(cancel_requested),
        "error": json.loads(error_json) if error_json else None,
        "result": json.loads(result_json) if result_json else None,
        "created_at": created_at,
        "updated_at": updated_at,
    }


_COLUMNS = (
    "id, idempotency_key, scenario_json, scenario_name, state, attempts, "
    "max_attempts, not_before, lease_owner, lease_expires_at, "
    "cancel_requested, error_json, result_json, created_at, updated_at"
)


class JobQueue:
    """Queue operations over one :class:`~repro.store.ArtifactStore`.

    Stateless besides the store handle: any number of queues (HTTP
    handler threads, supervisor workers, CLI invocations, separate
    processes) may operate on the same store concurrently.  Within one
    process the store lock serializes transitions; across processes
    every transition runs inside ``BEGIN IMMEDIATE`` (see
    :meth:`repro.store.ArtifactStore.transaction`), so read-then-write
    transitions take sqlite's write lock up front and wait on the busy
    handler instead of failing on a WAL snapshot conflict.
    """

    def __init__(self, store: ArtifactStore):
        self.store = store

    def _emit(self, event: str, **payload: Any) -> None:
        self.store._emit(event, **payload)

    # ---- write path ----------------------------------------------------

    def enqueue(
        self,
        scenario_json: str,
        idempotency_key: Optional[str] = None,
        max_attempts: int = 3,
        max_queued: Optional[int] = None,
        scenario_name: Optional[str] = None,
    ) -> Tuple[Dict[str, Any], bool]:
        """Admit one scenario run; returns ``(job, created)``.

        ``idempotency_key`` dedupes: re-enqueueing an existing key
        returns the existing job (whatever its state) with ``created``
        False -- the client-safe retry for a lost HTTP response.
        ``max_queued`` bounds the *queued* backlog; at the bound the
        enqueue is refused with :class:`QueueFull` (load shedding)
        inside the same transaction that measured the depth, so the
        bound can never be overshot by a race.
        """
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        now = time.time()
        job_id = uuid.uuid4().hex[:16]
        with self.store.transaction() as conn:
            if idempotency_key is not None:
                row = conn.execute(
                    f"SELECT {_COLUMNS} FROM jobs WHERE idempotency_key = ?",
                    (idempotency_key,),
                ).fetchone()
                if row is not None:
                    return _row_to_job(row), False
            if max_queued is not None:
                depth = conn.execute(
                    "SELECT COUNT(*) FROM jobs WHERE state = 'queued'"
                ).fetchone()[0]
                if depth >= max_queued:
                    raise QueueFull(depth, max_queued)
            conn.execute(
                "INSERT INTO jobs (id, idempotency_key, scenario_json, "
                "scenario_name, state, attempts, max_attempts, not_before, "
                "created_at, updated_at) "
                "VALUES (?, ?, ?, ?, 'queued', 0, ?, 0, ?, ?)",
                (job_id, idempotency_key, scenario_json, scenario_name,
                 max_attempts, now, now),
            )
        self._emit("jobs.enqueued", job=job_id, name=scenario_name)
        return self.get(job_id), True

    def lease(
        self, owner: str, lease_s: float = 30.0
    ) -> Optional[Dict[str, Any]]:
        """Claim the oldest runnable queued job for ``owner``, or ``None``.

        Claiming consumes one attempt; jobs whose ``not_before`` backoff
        has not elapsed, and jobs with a pending cancel, are skipped
        (the latter are flipped to ``cancelled`` on the way past).
        """
        now = time.time()
        with self.store.transaction() as conn:
            conn.execute(
                "UPDATE jobs SET state = 'cancelled', updated_at = ? "
                "WHERE state = 'queued' AND cancel_requested = 1",
                (now,),
            )
            row = conn.execute(
                "SELECT id FROM jobs WHERE state = 'queued' "
                "AND not_before <= ? ORDER BY created_at, id LIMIT 1",
                (now,),
            ).fetchone()
            if row is None:
                return None
            job_id = row[0]
            claimed = conn.execute(
                "UPDATE jobs SET state = 'leased', lease_owner = ?, "
                "lease_expires_at = ?, attempts = attempts + 1, "
                "updated_at = ? WHERE id = ? AND state = 'queued'",
                (owner, now + lease_s, now, job_id),
            )
            if not claimed.rowcount:
                # Defense in depth: the transaction serialization above
                # should make this unreachable, but if the row moved
                # under us we must not double-claim it.
                return None
        job = self.get(job_id)
        self._emit("jobs.leased", job=job_id, owner=owner,
                   attempt=job["attempts"])
        return job

    def heartbeat(
        self, job_id: str, owner: str, lease_s: float = 30.0
    ) -> bool:
        """Extend ``owner``'s lease; False when the lease was lost."""
        now = time.time()
        with self.store.transaction() as conn:
            cur = conn.execute(
                "UPDATE jobs SET lease_expires_at = ?, updated_at = ? "
                "WHERE id = ? AND lease_owner = ? "
                "AND state IN ('leased', 'running')",
                (now + lease_s, now, job_id, owner),
            )
        return bool(cur.rowcount)

    def mark_running(self, job_id: str, owner: str) -> bool:
        """``leased`` -> ``running``; False when the lease was lost or a
        cancel arrived first (the job flips to ``cancelled`` instead)."""
        now = time.time()
        with self.store.transaction() as conn:
            cancelled = conn.execute(
                "UPDATE jobs SET state = 'cancelled', lease_owner = NULL, "
                "lease_expires_at = NULL, updated_at = ? "
                "WHERE id = ? AND lease_owner = ? AND state = 'leased' "
                "AND cancel_requested = 1",
                (now, job_id, owner),
            )
            if cancelled.rowcount:
                return False
            cur = conn.execute(
                "UPDATE jobs SET state = 'running', updated_at = ? "
                "WHERE id = ? AND lease_owner = ? AND state = 'leased'",
                (now, job_id, owner),
            )
        return bool(cur.rowcount)

    def complete(
        self, job_id: str, owner: str, result: Optional[Dict[str, Any]] = None
    ) -> bool:
        """``running`` -> ``done`` -- only while ``owner`` still holds the
        lease, so a superseded worker's late result is discarded."""
        now = time.time()
        with self.store.transaction() as conn:
            cur = conn.execute(
                "UPDATE jobs SET state = 'done', result_json = ?, "
                "lease_owner = NULL, lease_expires_at = NULL, "
                "updated_at = ? WHERE id = ? AND lease_owner = ? "
                "AND state = 'running'",
                (json.dumps(result or {}, sort_keys=True), now, job_id, owner),
            )
        done = bool(cur.rowcount)
        if done:
            self._emit("jobs.done", job=job_id, owner=owner)
        return done

    def fail(
        self,
        job_id: str,
        owner: str,
        error: Dict[str, Any],
        retryable: bool,
    ) -> Optional[str]:
        """Record a failed attempt; returns the resulting state.

        Retryable failures below the attempt budget go back to
        ``queued`` with deterministic backoff; everything else parks in
        ``failed``.  ``None`` when ``owner`` no longer holds the lease.
        """
        now = time.time()
        with self.store.transaction() as conn:
            row = conn.execute(
                "SELECT attempts, max_attempts FROM jobs "
                "WHERE id = ? AND lease_owner = ? "
                "AND state IN ('leased', 'running')",
                (job_id, owner),
            ).fetchone()
            if row is None:
                return None
            attempts, max_attempts = row
            retry = retryable and attempts < max_attempts
            state = "queued" if retry else "failed"
            conn.execute(
                "UPDATE jobs SET state = ?, error_json = ?, "
                "lease_owner = NULL, lease_expires_at = NULL, "
                "not_before = ?, updated_at = ? WHERE id = ?",
                (
                    state,
                    json.dumps(dict(error, retryable=bool(retryable)),
                               sort_keys=True),
                    now + retry_backoff_s(attempts) if retry else 0.0,
                    now,
                    job_id,
                ),
            )
        self._emit("jobs.failed", job=job_id, owner=owner, state=state,
                   retryable=retryable)
        return state

    def release(self, job_id: str, owner: str) -> bool:
        """Give a held lease back unconsumed (graceful drain).

        The job returns to ``queued`` immediately runnable, and the
        attempt the lease consumed is refunded -- a drain is not a
        failure.
        """
        now = time.time()
        with self.store.transaction() as conn:
            cur = conn.execute(
                "UPDATE jobs SET state = 'queued', lease_owner = NULL, "
                "lease_expires_at = NULL, not_before = 0, "
                "attempts = MAX(attempts - 1, 0), updated_at = ? "
                "WHERE id = ? AND lease_owner = ? "
                "AND state IN ('leased', 'running')",
                (now, job_id, owner),
            )
        released = bool(cur.rowcount)
        if released:
            self._emit("jobs.released", job=job_id, owner=owner)
        return released

    def reclaim_expired(self) -> List[str]:
        """Re-queue (or permanently fail) jobs whose lease expired.

        The crash-recovery path: a SIGKILLed supervisor's lease runs
        out, and the next ``reclaim_expired`` -- every supervisor calls
        it each poll -- hands the job to a live worker, which resumes
        from the job's checkpoint.  A job that already burned its
        attempt budget is parked in ``failed`` instead, so a
        worker-killing payload cannot crash-loop the fleet.
        """
        now = time.time()
        reclaimed: List[str] = []
        with self.store.transaction() as conn:
            rows = conn.execute(
                "SELECT id, attempts, max_attempts FROM jobs "
                "WHERE state IN ('leased', 'running') "
                "AND lease_expires_at IS NOT NULL AND lease_expires_at < ?",
                (now,),
            ).fetchall()
            for job_id, attempts, max_attempts in rows:
                if attempts >= max_attempts:
                    conn.execute(
                        "UPDATE jobs SET state = 'failed', error_json = ?, "
                        "lease_owner = NULL, lease_expires_at = NULL, "
                        "updated_at = ? WHERE id = ?",
                        (
                            json.dumps({
                                "type": "LeaseExpired",
                                "message": f"lease expired after "
                                           f"{attempts} attempt(s)",
                                "retryable": False,
                            }, sort_keys=True),
                            now,
                            job_id,
                        ),
                    )
                else:
                    conn.execute(
                        "UPDATE jobs SET state = 'queued', "
                        "lease_owner = NULL, lease_expires_at = NULL, "
                        "not_before = 0, updated_at = ? WHERE id = ?",
                        (now, job_id),
                    )
                reclaimed.append(job_id)
        for job_id in reclaimed:
            self._emit("jobs.reclaimed", job=job_id)
        return reclaimed

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a job: immediate while ``queued``, requested otherwise.

        A leased/running job cannot be yanked out of its worker, so the
        cancel is recorded (``cancel_requested``) and honored at the
        next transition the supervisor drives (before execution starts,
        or when the job returns to ``queued`` on retry/reclaim).
        Terminal jobs are left untouched.
        """
        now = time.time()
        with self.store.transaction() as conn:
            exists = conn.execute(
                "SELECT state FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            if exists is None:
                raise UnknownJob(job_id)
            conn.execute(
                "UPDATE jobs SET state = 'cancelled', updated_at = ? "
                "WHERE id = ? AND state = 'queued'",
                (now, job_id),
            )
            conn.execute(
                "UPDATE jobs SET cancel_requested = 1, updated_at = ? "
                "WHERE id = ? AND state IN ('leased', 'running')",
                (now, job_id),
            )
        job = self.get(job_id)
        self._emit("jobs.cancel", job=job_id, state=job["state"])
        return job

    def retry(self, job_id: str) -> Dict[str, Any]:
        """Operator re-queue of a ``failed``/``cancelled`` job.

        Resets the attempt counter and the cancel flag; the error
        record stays visible until the next attempt overwrites it.
        """
        now = time.time()
        with self.store.transaction() as conn:
            row = conn.execute(
                "SELECT state FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            if row is None:
                raise UnknownJob(job_id)
            if row[0] not in ("failed", "cancelled"):
                raise ValueError(
                    f"job {job_id} is {row[0]!r}; only failed/cancelled "
                    "jobs can be retried"
                )
            conn.execute(
                "UPDATE jobs SET state = 'queued', attempts = 0, "
                "cancel_requested = 0, not_before = 0, lease_owner = NULL, "
                "lease_expires_at = NULL, updated_at = ? WHERE id = ?",
                (now, job_id),
            )
        self._emit("jobs.retry", job=job_id)
        return self.get(job_id)

    # ---- read path -----------------------------------------------------

    def get(self, job_id: str) -> Dict[str, Any]:
        with self.store._lock:
            row = self.store._conn.execute(
                f"SELECT {_COLUMNS} FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise UnknownJob(job_id)
        return _row_to_job(row)

    def list_jobs(
        self, state: Optional[str] = None, limit: int = 200
    ) -> List[Dict[str, Any]]:
        """Jobs newest-first, optionally filtered by state."""
        if state is not None and state not in JOB_STATES:
            raise ValueError(
                f"unknown job state {state!r}; known: {list(JOB_STATES)}"
            )
        query = f"SELECT {_COLUMNS} FROM jobs"
        args: Tuple = ()
        if state is not None:
            query += " WHERE state = ?"
            args = (state,)
        query += " ORDER BY created_at DESC, id DESC LIMIT ?"
        with self.store._lock:
            rows = self.store._conn.execute(query, args + (limit,)).fetchall()
        return [_row_to_job(r) for r in rows]

    def depth(self) -> int:
        """Jobs currently in ``queued`` (the load-shedding measure)."""
        with self.store._lock:
            return self.store._conn.execute(
                "SELECT COUNT(*) FROM jobs WHERE state = 'queued'"
            ).fetchone()[0]

    def counts(self) -> Dict[str, int]:
        """Job counts per state (absent states omitted)."""
        with self.store._lock:
            rows = self.store._conn.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ).fetchall()
        return dict(rows)
