"""Frontier-as-a-service: queries *and* a durable run queue over HTTP.

``python -m repro serve --store-dir results/store`` starts a small
stdlib-only (:mod:`http.server`) service with two faces:

* **Read path** -- the paper's planner questions (cheapest configuration
  meeting a deadline, the energy-deadline frontier under a power budget,
  region lookups, what-if deltas between stored scenarios) answered from
  the persistent :class:`~repro.store.ArtifactStore` at interactive
  latency, never touching the evaluator.
* **Write path** -- ``POST /v1/runs`` enqueues scenario runs into the
  store's durable job queue (:mod:`repro.service.jobs`); supervisor
  workers (:mod:`repro.service.supervisor`) lease, execute, checkpoint,
  and retry them, surviving crashes with bit-identical artifacts.  The
  queue is bounded: past ``--max-queued`` the service sheds load with
  429 + ``Retry-After`` instead of falling over.
"""

from repro.service.jobs import JobQueue, QueueFull, UnknownJob
from repro.service.server import ServiceState, create_server, serve
from repro.service.supervisor import Supervisor

__all__ = [
    "JobQueue",
    "QueueFull",
    "ServiceState",
    "Supervisor",
    "UnknownJob",
    "create_server",
    "serve",
]
