"""Frontier-as-a-service: the store's planner queries over HTTP/JSON.

``python -m repro serve --store-dir results/store`` starts a small
stdlib-only (:mod:`http.server`) service answering the paper's planner
questions -- cheapest configuration meeting a deadline, the
energy-deadline frontier under a power budget, region lookups, what-if
deltas between stored scenarios -- from the persistent
:class:`~repro.store.ArtifactStore` at interactive latency.  The query
path never touches the evaluator: the heavy enumeration ran when each
scenario was stored, and every answer is a frontier-sized lookup.
"""

from repro.service.server import create_server, serve

__all__ = ["create_server", "serve"]
