"""The stdlib HTTP/JSON layer over the store: queries *and* the run queue.

Read routes (``GET``, all ``application/json``):

``/health``
    Liveness only: the process is up and answering.  Stays 200 during a
    drain -- orchestrators should restart on /health, route on /ready.
``/ready``
    Readiness: the store answers, every supervisor's heartbeat is
    fresh, and the service is not draining; otherwise 503.
``/v1/scenarios``, ``/v1/scenarios/<ref>``
    Stored scenario listing / detail (identity, stages, artifact states).
``/v1/query/cheapest|frontier|regions|whatif``
    Planner queries answered from stored artifacts (see
    :mod:`repro.store.queries`); never touch the evaluator.
``/v1/runs``
    Queue listing (``?state=queued|leased|running|done|failed|cancelled``)
    plus per-state counts.
``/v1/runs/<id>``
    One job: state, attempts, lease, error record, result summary.

Write routes (``POST``):

``/v1/runs``
    Idempotent enqueue.  Body: ``{"scenario": {...},
    "idempotency_key": "...", "max_attempts": 3}``; returns 202 with the
    job id (200 when the idempotency key deduped to an existing job).
    When the queued backlog is at ``max_queued`` the request is shed
    with 429 + ``Retry-After`` -- the depth bound is checked inside the
    enqueue transaction, so it can never be overshot by a race.
``/v1/runs/<id>/cancel``
    Cancel: immediate while queued; recorded (and honored at the next
    supervisor transition) while leased/running.

Errors are JSON: 400 for malformed parameters/bodies, 404 for unknown
scenarios/jobs/routes, 503 for stale artifacts and not-ready, 429 for
load shedding.  Status selection is *typed* -- every
:class:`~repro.store.queries.QueryError` subclass carries its
``http_status`` -- never matched on message text.

The server is a :class:`~http.server.ThreadingHTTPServer` with a
per-request socket timeout; the store's sqlite handle is internally
locked, so concurrent queries and enqueues are safe.  Client
disconnects mid-response (``BrokenPipeError`` / ``ConnectionResetError``)
are swallowed, not stack-traced.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Sequence
from urllib.parse import parse_qs, urlparse

from repro.engine.scenario import Scenario
from repro.service.jobs import JobQueue, QueueFull, UnknownJob
from repro.store import queries
from repro.store.queries import QueryError
from repro.store.store import ArtifactStore

#: Largest accepted POST body; a scenario declaration is a few KiB.
MAX_BODY_BYTES = 1 << 20

#: A supervisor whose loop has not beaten for this long is unhealthy.
READY_HEARTBEAT_S = 30.0


class _BadRequest(ValueError):
    """A malformed query parameter or request body (HTTP 400)."""


def _param(params: Dict[str, list], name: str, required: bool = False) -> Optional[str]:
    values = params.get(name)
    if not values:
        if required:
            raise _BadRequest(f"missing required query parameter {name!r}")
        return None
    return values[0]


def _float_param(
    params: Dict[str, list], name: str, required: bool = False
) -> Optional[float]:
    raw = _param(params, name, required=required)
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError:
        raise _BadRequest(f"query parameter {name!r} must be a number, got {raw!r}")


def job_body(job: Dict[str, Any], include_spec: bool = False) -> Dict[str, Any]:
    """The client-facing shape of one queue row (spec omitted in lists)."""
    body = {
        "id": job["id"],
        "state": job["state"],
        "scenario_name": job["scenario_name"],
        "idempotency_key": job["idempotency_key"],
        "attempts": job["attempts"],
        "max_attempts": job["max_attempts"],
        "cancel_requested": job["cancel_requested"],
        "lease_owner": job["lease_owner"],
        "lease_expires_at": job["lease_expires_at"],
        "error": job["error"],
        "result": job["result"],
        "created_at": job["created_at"],
        "updated_at": job["updated_at"],
    }
    if include_spec:
        body["scenario"] = json.loads(job["scenario_json"])
    return body


class ServiceState:
    """Everything the handler threads share beyond the store itself."""

    def __init__(
        self,
        store: ArtifactStore,
        supervisors: Sequence[Any] = (),
        max_queued: int = 64,
        ready_heartbeat_s: float = READY_HEARTBEAT_S,
    ):
        self.store = store
        self.queue = JobQueue(store)
        self.supervisors = list(supervisors)
        self.max_queued = int(max_queued)
        self.ready_heartbeat_s = float(ready_heartbeat_s)
        self.draining = threading.Event()

    def readiness(self) -> Dict[str, Any]:
        """``{"ready": bool, ...probe detail...}`` for ``/ready``."""
        body: Dict[str, Any] = {"draining": self.draining.is_set()}
        try:
            body["scenarios"] = len(self.store.scenarios())
            body["store"] = "ok"
        except Exception as exc:
            body["store"] = f"{type(exc).__name__}: {exc}"
        stale = [
            s.worker_id
            for s in self.supervisors
            if not s.alive or s.heartbeat_age_s() > self.ready_heartbeat_s
        ]
        body["supervisors"] = len(self.supervisors)
        if stale:
            body["stale_supervisors"] = stale
        body["ready"] = (
            not self.draining.is_set() and body["store"] == "ok" and not stale
        )
        return body


class StoreQueryHandler(BaseHTTPRequestHandler):
    """One request: route, query the store or the queue, emit JSON."""

    server_version = "repro-serve/2.0"
    #: Per-request socket timeout (seconds); a stalled client cannot
    #: pin a handler thread forever.  Applied by ``setup()``.
    timeout: Optional[float] = 30.0
    #: Set by :func:`create_server`.
    service: ServiceState = None  # type: ignore[assignment]
    quiet: bool = True

    @property
    def store(self) -> ArtifactStore:
        return self.service.store

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.quiet:
            super().log_message(format, *args)

    def _send(
        self,
        status: int,
        body: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        payload = json.dumps(body, indent=2, sort_keys=True).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError, TimeoutError):
            # The client went away (or stalled past the socket timeout)
            # mid-response; there is nobody left to answer and nothing
            # to clean up -- the connection is torn down by the server.
            self.close_connection = True

    def _dispatch(self, handler: Callable[[], None]) -> None:
        try:
            handler()
        except _BadRequest as exc:
            self._send(400, {"error": str(exc)})
        except QueryError as exc:
            # Typed statuses: unknown scenario 404, stale artifact 503,
            # other client mistakes 400 -- by class, never by message.
            self._send(exc.http_status, {"error": str(exc)})
        except UnknownJob as exc:
            self._send(404, {"error": str(exc)})
        except QueueFull as exc:
            self._send(
                429,
                {
                    "error": str(exc),
                    "depth": exc.depth,
                    "max_queued": exc.bound,
                    "retry_after_s": exc.retry_after_s,
                },
                headers={"Retry-After": str(max(1, int(exc.retry_after_s)))},
            )
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        except Exception as exc:  # never leak a stack trace as HTML
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    # ---- GET -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server convention)
        url = urlparse(self.path)
        params = parse_qs(url.query)

        def handle() -> None:
            handler = self._route(url.path, params)
            if handler is None:
                self._send(404, {"error": f"unknown route {url.path!r}"})
                return
            status, body = handler()
            self._send(status, body)

        self._dispatch(handle)

    def _route(self, path: str, params: Dict[str, list]):
        store = self.store
        service = self.service
        if path == "/health":
            return lambda: (200, {
                "status": "ok",
                "scenarios": len(store.scenarios()),
                "jobs": service.queue.counts(),
                "store": str(store.path),
            })
        if path == "/ready":
            def ready():
                body = service.readiness()
                return (200 if body["ready"] else 503), body
            return ready
        if path == "/v1/scenarios":
            return lambda: (200, {"scenarios": store.scenarios()})
        if path.startswith("/v1/scenarios/"):
            ref = path[len("/v1/scenarios/"):]
            return lambda: (200, queries.scenario_detail(store, ref))
        if path == "/v1/runs":
            def runs():
                state = _param(params, "state")
                try:
                    jobs = service.queue.list_jobs(state=state)
                except ValueError as exc:
                    raise _BadRequest(str(exc))
                return 200, {
                    "jobs": [job_body(j) for j in jobs],
                    "counts": service.queue.counts(),
                    "max_queued": service.max_queued,
                }
            return runs
        if path.startswith("/v1/runs/"):
            job_id = path[len("/v1/runs/"):]
            if "/" not in job_id:
                return lambda: (
                    200,
                    job_body(service.queue.get(job_id), include_spec=True),
                )
        if path == "/v1/query/cheapest":
            return lambda: (200, queries.cheapest_for_deadline(
                store,
                _param(params, "scenario", required=True),
                _float_param(params, "deadline_s", required=True),
                power_budget_w=_float_param(params, "power_budget_w"),
            ))
        if path == "/v1/query/frontier":
            return lambda: (200, queries.frontier_points(
                store,
                _param(params, "scenario", required=True),
                power_budget_w=_float_param(params, "power_budget_w"),
            ))
        if path == "/v1/query/regions":
            return lambda: (200, queries.regions_summary(
                store, _param(params, "scenario", required=True)
            ))
        if path == "/v1/query/whatif":
            return lambda: (200, queries.whatif_delta(
                store,
                _param(params, "scenario", required=True),
                _param(params, "against", required=True),
                deadline_s=_float_param(params, "deadline_s"),
            ))
        return None

    # ---- POST ----------------------------------------------------------

    def _read_body(self) -> Dict[str, Any]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise _BadRequest("Content-Length must be an integer")
        if length > MAX_BODY_BYTES:
            raise _BadRequest(
                f"request body too large ({length} > {MAX_BODY_BYTES} bytes)"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise _BadRequest("request body required")
        try:
            body = json.loads(raw)
        except ValueError as exc:
            raise _BadRequest(f"request body is not valid JSON: {exc}")
        if not isinstance(body, dict):
            raise _BadRequest("request body must be a JSON object")
        return body

    def do_POST(self) -> None:  # noqa: N802 (http.server convention)
        url = urlparse(self.path)

        def handle() -> None:
            if url.path == "/v1/runs":
                self._enqueue_run()
                return
            if url.path.startswith("/v1/runs/") and url.path.endswith("/cancel"):
                job_id = url.path[len("/v1/runs/"):-len("/cancel")]
                job = self.service.queue.cancel(job_id)
                self._send(200, job_body(job))
                return
            self._send(404, {"error": f"unknown route {url.path!r}"})

        self._dispatch(handle)

    def _enqueue_run(self) -> None:
        service = self.service
        if service.draining.is_set():
            self._send(
                503,
                {"error": "service is draining; retry against a live replica"},
                headers={"Retry-After": "1"},
            )
            return
        body = self._read_body()
        spec = body.get("scenario")
        if not isinstance(spec, dict):
            raise _BadRequest(
                "body must carry a 'scenario' object (the declarative "
                "scenario JSON run_scenario accepts)"
            )
        try:
            scenario = Scenario.from_dict(spec)
        except (ValueError, TypeError) as exc:
            raise _BadRequest(f"invalid scenario: {exc}")
        max_attempts = body.get("max_attempts", 3)
        if not isinstance(max_attempts, int) or max_attempts < 1:
            raise _BadRequest("max_attempts must be a positive integer")
        idempotency_key = body.get("idempotency_key")
        if idempotency_key is not None and not isinstance(idempotency_key, str):
            raise _BadRequest("idempotency_key must be a string")
        job, created = service.queue.enqueue(
            scenario.to_json(),
            idempotency_key=idempotency_key,
            max_attempts=max_attempts,
            max_queued=service.max_queued,
            scenario_name=scenario.name or scenario.workload,
        )
        self._send(
            202 if created else 200,
            dict(job_body(job), created=created),
        )


def create_server(
    store: ArtifactStore,
    host: str = "127.0.0.1",
    port: int = 8734,
    quiet: bool = True,
    supervisors: Sequence[Any] = (),
    max_queued: int = 64,
    request_timeout_s: Optional[float] = 30.0,
    state: Optional[ServiceState] = None,
) -> ThreadingHTTPServer:
    """A ready-to-``serve_forever`` HTTP server bound to ``host:port``.

    ``port=0`` binds an ephemeral port (tests); read it back from
    ``server.server_address[1]``.  The returned server carries its
    :class:`ServiceState` as ``server.service`` (drain flag, queue,
    supervisor registry).
    """
    if state is None:
        state = ServiceState(
            store, supervisors=supervisors, max_queued=max_queued
        )
    handler = type(
        "BoundStoreQueryHandler",
        (StoreQueryHandler,),
        {"service": state, "quiet": quiet, "timeout": request_timeout_s},
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.service = state  # type: ignore[attr-defined]
    return server


def serve(
    store_dir,
    host: str = "127.0.0.1",
    port: int = 8734,
    quiet: bool = False,
    runners: int = 1,
    max_queued: int = 64,
    lease_s: float = 30.0,
    drain_grace_s: float = 10.0,
    install_signal_handlers: bool = True,
) -> None:
    """Open the store at ``store_dir``, start ``runners`` supervisors,
    and serve queries + the run queue until interrupted.

    SIGTERM (and SIGINT) triggers a graceful drain: ``/ready`` flips to
    503 (``/health`` stays 200), supervisors stop leasing and get
    ``drain_grace_s`` to finish or checkpoint their in-flight job, held
    leases are released for the next replica, and the store is closed.
    """
    from repro.service.supervisor import Supervisor

    store = ArtifactStore(store_dir)
    supervisors = [
        Supervisor(store, worker_id=f"serve-runner-{i}", lease_s=lease_s)
        for i in range(max(0, runners))
    ]
    state = ServiceState(store, supervisors=supervisors, max_queued=max_queued)
    server = create_server(store, host=host, port=port, quiet=quiet, state=state)
    for supervisor in supervisors:
        supervisor.start()
    bound_host, bound_port = server.server_address[:2]
    print(
        f"repro serve: {len(store.scenarios())} stored scenario(s) from "
        f"{store.path} on http://{bound_host}:{bound_port} "
        f"({len(supervisors)} runner(s), max {max_queued} queued)",
        flush=True,
    )

    drained = threading.Event()

    def shutdown() -> None:
        if drained.is_set():
            return
        drained.set()
        state.draining.set()
        for supervisor in supervisors:
            supervisor.stop(grace_s=drain_grace_s)
        server.shutdown()

    def on_signal(signum, frame) -> None:
        # serve_forever() runs in this thread; shutdown() would deadlock
        # waiting for the serve loop to notice, so drain from the side.
        threading.Thread(target=shutdown, daemon=True).start()

    if install_signal_handlers:
        signal.signal(signal.SIGTERM, on_signal)
        signal.signal(signal.SIGINT, on_signal)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        shutdown()
        server.server_close()
        store.close()
