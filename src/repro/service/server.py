"""The stdlib HTTP/JSON layer over :mod:`repro.store.queries`.

Routes (all ``GET``, all returning ``application/json``):

``/health``
    Liveness plus the number of stored scenarios.
``/v1/scenarios``
    Every stored scenario (identity, name, workload, timestamp).
``/v1/scenarios/<ref>``
    One scenario's declaration, stage mapping, and artifact states;
    ``<ref>`` is a scenario name, full identity, or unique prefix.
``/v1/query/cheapest?scenario=<ref>&deadline_s=<s>[&power_budget_w=<w>]``
    Minimum-energy stored frontier point meeting the deadline (and
    fitting the node-peak power budget when given).
``/v1/query/frontier?scenario=<ref>[&power_budget_w=<w>]``
    The stored energy-deadline frontier, optionally power-filtered.
``/v1/query/regions?scenario=<ref>``
    Sweet/overlap region decomposition.
``/v1/query/whatif?scenario=<ref>&against=<ref>[&deadline_s=<s>]``
    Frontier deltas between two stored scenarios.

Errors are JSON too: ``404`` for unknown scenarios/routes, ``400`` for
malformed parameters, ``503`` when a referenced stage artifact is
missing or was invalidated (the client should re-run the scenario).

The server is a :class:`~http.server.ThreadingHTTPServer`; the store's
sqlite handle is internally locked, so concurrent queries are safe.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional
from urllib.parse import parse_qs, urlparse

from repro.store import queries
from repro.store.queries import QueryError
from repro.store.store import ArtifactStore


class _BadRequest(ValueError):
    """A malformed query parameter (HTTP 400)."""


def _param(params: Dict[str, list], name: str, required: bool = False) -> Optional[str]:
    values = params.get(name)
    if not values:
        if required:
            raise _BadRequest(f"missing required query parameter {name!r}")
        return None
    return values[0]


def _float_param(
    params: Dict[str, list], name: str, required: bool = False
) -> Optional[float]:
    raw = _param(params, name, required=required)
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError:
        raise _BadRequest(f"query parameter {name!r} must be a number, got {raw!r}")


class StoreQueryHandler(BaseHTTPRequestHandler):
    """One request: route, query the store, emit JSON."""

    server_version = "repro-serve/1.0"
    #: Set by :func:`create_server`.
    store: ArtifactStore = None  # type: ignore[assignment]
    quiet: bool = True

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.quiet:
            super().log_message(format, *args)

    def _send(self, status: int, body: Dict[str, Any]) -> None:
        payload = json.dumps(body, indent=2, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 (http.server convention)
        url = urlparse(self.path)
        params = parse_qs(url.query)
        try:
            handler = self._route(url.path)
            if handler is None:
                self._send(404, {"error": f"unknown route {url.path!r}"})
                return
            self._send(200, handler(params))
        except _BadRequest as exc:
            self._send(400, {"error": str(exc)})
        except QueryError as exc:
            # Unknown scenario vs missing/stale artifact: the former is
            # a plain 404, the latter tells the client to re-run.
            status = 404 if "unknown scenario" in str(exc) else 503
            self._send(status, {"error": str(exc)})
        except Exception as exc:  # never leak a stack trace as HTML
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _route(
        self, path: str
    ) -> Optional[Callable[[Dict[str, list]], Dict[str, Any]]]:
        store = self.store
        if path == "/health":
            return lambda params: {
                "status": "ok",
                "scenarios": len(store.scenarios()),
                "store": str(store.path),
            }
        if path == "/v1/scenarios":
            return lambda params: {"scenarios": store.scenarios()}
        if path.startswith("/v1/scenarios/"):
            ref = path[len("/v1/scenarios/"):]
            return lambda params: queries.scenario_detail(store, ref)
        if path == "/v1/query/cheapest":
            return lambda params: queries.cheapest_for_deadline(
                store,
                _param(params, "scenario", required=True),
                _float_param(params, "deadline_s", required=True),
                power_budget_w=_float_param(params, "power_budget_w"),
            )
        if path == "/v1/query/frontier":
            return lambda params: queries.frontier_points(
                store,
                _param(params, "scenario", required=True),
                power_budget_w=_float_param(params, "power_budget_w"),
            )
        if path == "/v1/query/regions":
            return lambda params: queries.regions_summary(
                store, _param(params, "scenario", required=True)
            )
        if path == "/v1/query/whatif":
            return lambda params: queries.whatif_delta(
                store,
                _param(params, "scenario", required=True),
                _param(params, "against", required=True),
                deadline_s=_float_param(params, "deadline_s"),
            )
        return None


def create_server(
    store: ArtifactStore,
    host: str = "127.0.0.1",
    port: int = 8734,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """A ready-to-``serve_forever`` HTTP server bound to ``host:port``.

    ``port=0`` binds an ephemeral port (tests); read it back from
    ``server.server_address[1]``.
    """
    handler = type(
        "BoundStoreQueryHandler",
        (StoreQueryHandler,),
        {"store": store, "quiet": quiet},
    )
    return ThreadingHTTPServer((host, port), handler)


def serve(
    store_dir,
    host: str = "127.0.0.1",
    port: int = 8734,
    quiet: bool = False,
) -> None:
    """Open the store at ``store_dir`` and serve queries until interrupted."""
    store = ArtifactStore(store_dir)
    server = create_server(store, host=host, port=port, quiet=quiet)
    bound_host, bound_port = server.server_address[:2]
    print(
        f"repro serve: {len(store.scenarios())} stored scenario(s) from "
        f"{store.path} on http://{bound_host}:{bound_port}"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        store.close()
