"""Supervised job execution: lease, run, checkpoint, classify, retry.

A :class:`Supervisor` is one worker loop over the durable run queue
(:mod:`repro.service.jobs`): reclaim expired leases, lease the oldest
runnable job, execute it through :func:`~repro.engine.runner.run_scenario`
with the store attached, and drive the job's state machine from the
outcome.  Several supervisors -- threads inside ``repro serve`` or
separate ``python -m repro.service.supervisor`` processes -- can share
one store; lease ownership keeps them from treading on each other.

Crash safety is the point:

* Streaming/search scenarios get a **per-job checkpoint directory**
  (``<store>/jobs/<id>/``), so a supervisor killed mid-reduction leaves
  a resumable prefix; the worker that reclaims the expired lease resumes
  from it and produces artifacts *bit-identical* to an uninterrupted
  run (the PR 5 checkpoint guarantee, now applied per job).
* A **heartbeat thread** extends the lease while the run is in flight;
  a SIGKILLed supervisor simply stops beating, the lease expires, and
  ``reclaim_expired`` re-queues the job.
* Failures are **classified** with the engine's typed taxonomy
  (:data:`repro.engine.resilience.RETRYABLE`): worker crashes, broken
  pools, and OS flakiness re-queue with deterministic backoff; a
  ``ValueError`` from a malformed scenario parks the job in ``failed``
  immediately -- no retry budget wasted on a permanent error.
* **Graceful drain** (:meth:`Supervisor.stop`): stop leasing, signal
  the in-flight run to abort at its next event boundary (its periodic
  checkpoints bound the lost work), and release the lease unconsumed so
  the next supervisor resumes it.  The lease is released only once the
  worker thread has actually stopped -- a run that ignores the abort
  keeps its lease (and its heartbeat), because releasing it would let a
  rescuer resume from a checkpoint directory this thread is still
  writing to.  If the process then exits anyway (SIGTERM path), the
  heartbeat dies with it and lease expiry hands the job over safely.
* The **worker loop** survives transient store errors (a busy sqlite
  handle, a disk hiccup): the loop body is guarded, errors are reported
  as ``supervisor.loop_error`` events, and the loop backs off and
  retries instead of dying silently under ``repro serve``.
"""

from __future__ import annotations

import json
import shutil
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, Optional

from repro.engine.context import RunContext
from repro.engine.resilience import RETRYABLE
from repro.engine.runner import run_scenario
from repro.engine.scenario import Scenario
from repro.service.jobs import JobQueue
from repro.store.store import ArtifactStore

__all__ = ["DrainAborted", "Supervisor", "job_checkpoint_dir"]

#: Ceiling on the loop's error backoff; transient store errors retry at
#: ``poll_s * 2**n`` up to this.
_ERROR_BACKOFF_MAX_S = 30.0


class DrainAborted(Exception):
    """The supervisor is draining: the in-flight run stopped itself.

    Raised from the run context's reporting sink at the next event the
    run emits after :meth:`Supervisor.stop` -- block boundaries, stage
    transitions -- so an aborted streaming run leaves a clean
    checkpoint prefix behind.  Handled inside the supervisor (the job
    is released unconsumed); never a job failure.
    """


def job_checkpoint_dir(store: ArtifactStore, job_id: str) -> Path:
    """Where one job's checkpoint files live (inside the store root)."""
    return store.directory / "jobs" / job_id


class Supervisor:
    """One worker loop executing queued jobs against a shared store.

    Parameters
    ----------
    store:
        The artifact store holding both the queue and the artifacts.
    worker_id:
        Lease-owner identity; generated when omitted.  Two live
        supervisors must not share one.
    lease_s:
        Lease duration; heartbeats extend it at ``lease_s / 3`` cadence,
        so a worker must miss several beats before its job is reclaimed.
    poll_s:
        Idle sleep between queue polls.
    checkpoint_every:
        Block cadence for the per-job checkpoints (streaming scenarios).
    fault_plan:
        Optional :class:`~repro.engine.faults.FaultPlan` (or path to
        one) threaded into each job's run context -- the chaos-test
        hook.
    on_event:
        ``on_event(event, **payload)`` reporting callback; job
        lifecycle events are also mirrored to the store's callback.
    """

    def __init__(
        self,
        store: ArtifactStore,
        worker_id: Optional[str] = None,
        lease_s: float = 30.0,
        poll_s: float = 0.5,
        checkpoint_every: int = 1,
        fault_plan: Optional[Any] = None,
        on_event: Optional[Any] = None,
    ):
        self.store = store
        self.queue = JobQueue(store)
        self.worker_id = worker_id or f"supervisor-{uuid.uuid4().hex[:8]}"
        self.lease_s = float(lease_s)
        self.poll_s = float(poll_s)
        self.checkpoint_every = int(checkpoint_every)
        self.fault_plan = fault_plan
        self.on_event = on_event
        self.jobs_done = 0
        self.jobs_failed = 0
        #: Monotonic timestamp of the last loop iteration; the service's
        #: ``/ready`` probe calls :meth:`heartbeat_age_s` against it.
        self._last_beat = time.monotonic()
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._current_job: Optional[str] = None

    # ---- liveness ------------------------------------------------------

    def heartbeat_age_s(self) -> float:
        """Seconds since the loop last made progress."""
        return time.monotonic() - self._last_beat

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def _emit(self, event: str, **payload: Any) -> None:
        if self.on_event is not None:
            self.on_event(event, **payload)

    # ---- execution -----------------------------------------------------

    def _abort_sink(self, event: str, payload: Dict[str, Any]) -> None:
        """Cooperative drain: every event the run emits checks the stop
        flag, so a draining supervisor's in-flight run aborts at its
        next block/stage boundary instead of running to completion."""
        if self._stop.is_set():
            raise DrainAborted(event)

    def _build_context(self, scenario: Scenario) -> RunContext:
        sinks = [self._abort_sink]
        if self.on_event is not None:
            sinks.append(lambda event, payload: self._emit(event, **payload))
        return RunContext(
            seed=scenario.seed,
            faults=self.fault_plan,
            sinks=sinks,
        )

    def _discard_checkpoints(self, job_id: str) -> None:
        """Drop a job's checkpoint directory once it can never resume.

        Called on completion and on terminal parking (permanent fail,
        cancel): the prefix is dead weight.  Retryable/queued jobs keep
        theirs -- the next attempt resumes from it.  A failed cleanup
        is harmless (store gc also prunes terminal jobs' directories).
        """
        shutil.rmtree(job_checkpoint_dir(self.store, job_id),
                      ignore_errors=True)

    def run_job(self, job: Dict[str, Any]) -> str:
        """Execute one leased job to a terminal transition; returns the
        resulting state (``done``/``failed``/``queued``/``cancelled``)."""
        job_id = job["id"]
        self._current_job = job_id
        try:
            return self._run_leased(job)
        finally:
            self._current_job = None

    def _run_leased(self, job: Dict[str, Any]) -> str:
        job_id = job["id"]
        if self._stop.is_set():
            # Drain won the race with the lease: hand the job back
            # before execution starts.
            self.queue.release(job_id, self.worker_id)
            self._emit("supervisor.drain_released", job=job_id)
            return self.queue.get(job_id)["state"]
        if not self.queue.mark_running(job_id, self.worker_id):
            # Cancel won the race, or the lease was already reclaimed.
            state = self.queue.get(job_id)["state"]
            if state in ("cancelled", "failed"):
                self._discard_checkpoints(job_id)
            return state

        beat_stop = threading.Event()

        def _beat() -> None:
            while not beat_stop.wait(self.lease_s / 3.0):
                if not self.queue.heartbeat(
                    job_id, self.worker_id, self.lease_s
                ):
                    return  # lease lost; the result will be discarded

        beater = threading.Thread(target=_beat, daemon=True)
        beater.start()
        try:
            scenario = Scenario.from_json(job["scenario_json"])
            ctx = self._build_context(scenario)
            ckpt_dir = None
            if scenario.space_mode == "streaming" or scenario.search_active:
                ckpt_dir = job_checkpoint_dir(self.store, job_id)
            result = run_scenario(
                scenario,
                ctx,
                store=self.store,
                checkpoint_dir=ckpt_dir,
                # Attempt 1 starts clean (no checkpoint file -> no-op);
                # a reclaimed or re-queued attempt resumes the prefix.
                resume=ckpt_dir is not None,
                checkpoint_every=self.checkpoint_every,
            )
        except DrainAborted:
            # The run stopped itself at an event boundary (see
            # :meth:`stop`); its checkpoint prefix is intact, so the
            # job goes back unconsumed for the next worker to resume.
            self.queue.release(job_id, self.worker_id)
            self._emit("supervisor.drain_released", job=job_id)
            return self.queue.get(job_id)["state"]
        except Exception as exc:
            retryable = isinstance(exc, RETRYABLE)
            state = self.queue.fail(
                job_id,
                self.worker_id,
                {
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "attempt": job["attempts"],
                    "worker": self.worker_id,
                },
                retryable=retryable,
            )
            self.jobs_failed += 1
            if state == "failed":
                # Parked permanently: the checkpoint prefix can never
                # be resumed (an operator retry starts clean).
                self._discard_checkpoints(job_id)
            self._emit(
                "supervisor.job_failed",
                job=job_id,
                error=type(exc).__name__,
                retryable=retryable,
                state=state,
            )
            return state or self.queue.get(job_id)["state"]
        finally:
            beat_stop.set()
            beater.join(timeout=self.lease_s)

        summary = result.summary()
        completed = self.queue.complete(
            job_id,
            self.worker_id,
            {
                "scenario_identity": _scenario_identity(scenario),
                "configurations": summary.get("configurations"),
                "frontier_points": summary.get("frontier_points"),
                "stage_statuses": dict(result.stage_statuses),
            },
        )
        if completed:
            self.jobs_done += 1
            # The job's checkpoint prefix is dead weight once the
            # artifacts are stored; a failed cleanup is harmless.
            if ckpt_dir is not None:
                shutil.rmtree(ckpt_dir, ignore_errors=True)
            self._emit("supervisor.job_done", job=job_id)
            return "done"
        # Lease lost mid-run: a healthier worker owns (or finished) the
        # job now.  The artifacts this run stored are content-addressed
        # and byte-identical to that worker's, so nothing is wasted --
        # only the job-state transition is ceded.
        self._emit("supervisor.result_discarded", job=job_id)
        return self.queue.get(job_id)["state"]

    # ---- loop ----------------------------------------------------------

    def _error_backoff(self, consecutive: int, exc: Exception) -> None:
        """Report a loop-body error and back off before retrying.

        ``run_job`` already converts *job* failures into state-machine
        transitions; what lands here is infrastructure trouble -- a
        busy/locked store, a disk hiccup -- which must never kill the
        worker loop (under ``repro serve`` the daemon thread would die
        silently and queued jobs would stall).
        """
        self._emit(
            "supervisor.loop_error",
            error=type(exc).__name__,
            message=str(exc),
            consecutive=consecutive,
        )
        backoff = min(
            max(self.poll_s, 0.05) * 2.0 ** min(consecutive, 10),
            _ERROR_BACKOFF_MAX_S,
        )
        self._stop.wait(backoff)

    def run_until_idle(self) -> int:
        """Drain the queue in this thread; returns jobs completed.

        Transient store errors back off and retry; after five
        consecutive failures the error propagates (a caller waiting for
        an idle queue must see a wedged store, not an infinite loop).
        """
        done = 0
        errors = 0
        while not self._stop.is_set():
            self._last_beat = time.monotonic()
            try:
                self.queue.reclaim_expired()
                job = self.queue.lease(self.worker_id, self.lease_s)
                if job is None:
                    break
                if self.run_job(job) == "done":
                    done += 1
                errors = 0
            except Exception as exc:
                errors += 1
                if errors >= 5:
                    raise
                self._error_backoff(errors, exc)
        return done

    def run_forever(self) -> None:
        errors = 0
        while not self._stop.is_set():
            self._last_beat = time.monotonic()
            try:
                self.queue.reclaim_expired()
                job = None
                if not self._draining.is_set():
                    job = self.queue.lease(self.worker_id, self.lease_s)
                if job is not None:
                    self.run_job(job)
                    errors = 0
                    continue
            except Exception as exc:
                errors += 1
                self._error_backoff(errors, exc)
                continue
            errors = 0
            self._stop.wait(self.poll_s)

    def start(self) -> "Supervisor":
        """Run the loop in a daemon thread (the ``repro serve`` mode)."""
        if self._thread is not None:
            raise RuntimeError("supervisor already started")
        self._thread = threading.Thread(
            target=self.run_forever, name=self.worker_id, daemon=True
        )
        self._thread.start()
        return self

    @property
    def alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def stop(self, grace_s: float = 10.0) -> None:
        """Graceful drain: stop leasing and abort the in-flight run.

        Setting the stop flag makes the in-flight run raise
        :class:`DrainAborted` at its next event boundary (every run
        context carries the abort sink), after which the worker thread
        releases the job's lease unconsumed -- the released job resumes
        from its last checkpoint, so the grace window bounds
        *wall-clock* lost to the drain, not correctness.  Safe to call
        without :meth:`start` (just sets the flags).

        A run that emits no event within ``grace_s`` keeps its lease: a
        lease must never be released while the thread that owns it may
        still be writing the job's checkpoint directory (a rescuer
        would resume from files being mutated under it).  Such a job
        either finishes normally under its own heartbeat, or -- when
        the draining process exits -- stops beating, expires, and is
        reclaimed by the next worker.
        """
        self._draining.set()
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=grace_s)
            if thread.is_alive():
                self._emit(
                    "supervisor.drain_timeout",
                    job=self._current_job,
                    grace_s=grace_s,
                )
                return
        in_flight = self._current_job
        if in_flight is not None:
            # Defensive: only reachable if the worker thread died
            # without running run_job's cleanup; the thread is gone, so
            # releasing is safe.
            self.queue.release(in_flight, self.worker_id)
            self._emit("supervisor.drain_released", job=in_flight)


def _scenario_identity(scenario: Scenario) -> str:
    from repro.engine.stagegraph import scenario_identity

    return scenario_identity(scenario)


def main(argv=None) -> int:
    """``python -m repro.service.supervisor``: a standalone worker process.

    Used by the chaos CI leg (it is the process that gets SIGKILLed) and
    for running workers on machines other than the one serving HTTP.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-supervisor",
        description="Execute queued scenario runs from a repro artifact store",
    )
    parser.add_argument("--store-dir", type=Path, required=True)
    parser.add_argument("--worker-id", default=None)
    parser.add_argument("--lease-s", type=float, default=30.0)
    parser.add_argument("--poll-s", type=float, default=0.5)
    parser.add_argument("--checkpoint-every", type=int, default=1)
    parser.add_argument(
        "--until-idle",
        action="store_true",
        help="exit once the queue is empty instead of polling forever",
    )
    parser.add_argument(
        "--fault-plan",
        type=Path,
        default=None,
        help="JSON fault plan injected into every job run (chaos tests)",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    fault_plan = None
    if args.fault_plan is not None:
        from repro.engine.faults import FaultPlan

        fault_plan = FaultPlan.from_file(args.fault_plan)

    def _log(event: str, **payload: Any) -> None:
        if args.verbose:
            print(f"[supervisor] {event}: {json.dumps(payload, default=str)}",
                  flush=True)

    with ArtifactStore(args.store_dir) as store:
        supervisor = Supervisor(
            store,
            worker_id=args.worker_id,
            lease_s=args.lease_s,
            poll_s=args.poll_s,
            checkpoint_every=args.checkpoint_every,
            fault_plan=fault_plan,
            on_event=_log,
        )
        print(
            f"supervisor {supervisor.worker_id} on {store.path}", flush=True
        )
        if args.until_idle:
            done = supervisor.run_until_idle()
            print(f"queue idle after {done} job(s)", flush=True)
        else:
            try:
                supervisor.run_forever()
            except KeyboardInterrupt:
                supervisor.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
