"""Stable content hashing for cache keys.

The result cache is *content-addressed*: two requests with equal inputs
must map to the same key in every process, on every platform, in every
run.  That rules out ``hash()`` (salted per process) and ``pickle``
(protocol- and memo-order dependent); instead we feed a canonical token
stream into SHA-256.

Supported value shapes -- everything a :class:`~repro.engine.scenario.Scenario`
or a model-input object is made of:

* ``None``, ``bool``, ``int``, ``str``, ``bytes``;
* ``float`` via ``repr`` (shortest round-trip representation, stable
  across CPython versions >= 3.1);
* ``list`` / ``tuple`` (ordered), ``dict`` / ``Mapping`` (sorted by the
  hash of each key so insertion order is irrelevant), ``set`` /
  ``frozenset`` (sorted likewise);
* NumPy arrays and scalars via dtype + shape + raw bytes;
* enums via class name + value;
* dataclasses via class name + field name/value pairs, recursively --
  which covers :class:`NodeSpec`, :class:`WorkloadSpec`,
  :class:`NodeModelParams`, :class:`NoiseModel`, and the engine's own
  declarative objects.

Anything else raises :class:`TypeError` loudly: silently hashing an
unstable ``repr`` would poison the cache with false hits or misses.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Any, Mapping

import numpy as np

#: Bump when the hashing scheme (or the semantics of cached values)
#: changes, so stale on-disk entries can never be mistaken for current.
HASH_SCHEME_VERSION = 1


def stable_hash(obj: Any) -> str:
    """Hex digest of ``obj``'s canonical content, stable across processes."""
    h = hashlib.sha256()
    h.update(f"v{HASH_SCHEME_VERSION}|".encode())
    _feed(h, obj)
    return h.hexdigest()


def _feed(h, obj: Any) -> None:
    """Append ``obj``'s canonical token stream to hasher ``h``."""
    if obj is None:
        h.update(b"N|")
    elif isinstance(obj, bool):  # before int: bool is an int subclass
        h.update(b"b1|" if obj else b"b0|")
    elif isinstance(obj, enum.Enum):
        h.update(f"e{type(obj).__name__}|".encode())
        _feed(h, obj.value)
    elif isinstance(obj, np.generic):
        # Before int/float: np.float64 subclasses float but reprs differently.
        _feed(h, obj.item())
    elif isinstance(obj, int):
        h.update(f"i{obj}|".encode())
    elif isinstance(obj, float):
        h.update(f"f{obj!r}|".encode())
    elif isinstance(obj, str):
        h.update(f"s{len(obj)}|".encode())
        h.update(obj.encode("utf-8"))
    elif isinstance(obj, bytes):
        h.update(f"y{len(obj)}|".encode())
        h.update(obj)
    elif isinstance(obj, np.ndarray):
        h.update(f"a{obj.dtype.str}{obj.shape}|".encode())
        h.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, (list, tuple)):
        h.update(f"l{len(obj)}|".encode())
        for item in obj:
            _feed(h, item)
    elif isinstance(obj, (set, frozenset)):
        h.update(f"S{len(obj)}|".encode())
        for digest in sorted(stable_hash(item) for item in obj):
            h.update(digest.encode())
    elif isinstance(obj, Mapping):
        h.update(f"m{len(obj)}|".encode())
        entries = sorted(
            (stable_hash(key), key, value) for key, value in obj.items()
        )
        for _, key, value in entries:
            _feed(h, key)
            _feed(h, value)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        h.update(f"d{type(obj).__name__}|".encode())
        for f in dataclasses.fields(obj):
            _feed(h, f.name)
            _feed(h, getattr(obj, f.name))
    else:
        raise TypeError(
            f"cannot stably hash {type(obj).__name__!r}: add explicit support "
            "or key the cache on a hashable summary of this value"
        )
