"""Fault-tolerant task execution: retry, timeouts, pool replacement.

The executor's fan-out (:mod:`repro.engine.executor`) is pure -- every
task is a deterministic function of its arguments -- which makes failure
recovery semantically free: re-running a task can never change the
result, only salvage it.  This module supplies the recovery machinery:

* :class:`ResiliencePolicy` -- per-task retry budget, exponential
  backoff with *deterministic* jitter (derived from the policy seed via
  the :class:`~repro.util.rng.RngStream` discipline, so chaos tests are
  reproducible), an optional per-task timeout, and a pool-failure budget
  before degrading to in-process serial execution;
* :func:`iter_tasks_resilient` -- the one scheduling loop every executor
  entry point shares: a sliding submission window over a process pool,
  results yielded strictly in task order (the plan-order guarantee the
  streaming reducers rely on), per-task retry with backoff on
  :class:`~repro.engine.faults.WorkerCrash`-class failures, dead-worker
  detection (a broken pool is rebuilt and its in-flight tasks
  resubmitted), per-task timeouts that replace the pool (a stuck worker
  cannot be reclaimed), and graceful degradation to serial execution
  after the pool has failed too often;
* :func:`terminate_pool` -- hard cleanup (terminate + join the worker
  processes) used when a run is abandoned mid-flight
  (``KeyboardInterrupt``, an abandoned generator), so interrupted runs
  never leak worker processes.

Failures are *typed* (:mod:`repro.engine.faults`): only
:class:`ResilienceError` subclasses, broken-pool conditions, and
OS-level flakiness are retried -- a genuine programming error
(``ValueError`` from the evaluator) propagates immediately, attempts
budget or not.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, fields
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Sequence, Tuple

from repro.engine.faults import (
    FaultInjector,
    ResilienceError,
    TaskTimeout,
    WorkerCrash,
)
from repro.util.rng import RngStream

#: ``emit(event, **payload)`` -- the reporting-sink shape RunContext uses.
Emit = Callable[..., None]

#: Exceptions that mean "the task may succeed if retried": typed
#: resilience failures, pool breakage, and OS-level flakiness.
RETRYABLE = (ResilienceError, BrokenProcessPool, OSError)


@dataclass(frozen=True)
class ResiliencePolicy:
    """How hard the executor fights before giving up.

    ``max_task_retries`` bounds *re*-executions per task (0 = fail on
    first error).  Backoff before attempt ``a`` is
    ``min(backoff_base_s * backoff_factor**(a-1), backoff_max_s)``
    scaled by ``1 + jitter * u`` where ``u`` is drawn from the
    deterministic stream ``RngStream(seed).child("retry", task)`` --
    identical across runs, so tests can pin even the sleep schedule.
    ``task_timeout_s`` bounds the wait for the task at the head of the
    reordering window (``None`` = wait forever); a timeout replaces the
    pool, because a stuck worker cannot be reclaimed.  After
    ``max_pool_failures`` pool replacements the runner degrades to
    serial in-process execution -- slower, but it terminates.
    """

    max_task_retries: int = 2
    task_timeout_s: Optional[float] = None
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    jitter: float = 0.1
    max_pool_failures: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_task_retries < 0:
            raise ValueError("retry budget must be non-negative")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ValueError("task timeout must be positive")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff bounds must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.max_pool_failures < 0:
            raise ValueError("pool-failure budget must be non-negative")

    def backoff_s(self, task: int, attempt: int) -> float:
        """Deterministic sleep before retry ``attempt`` (>= 1) of ``task``."""
        if attempt < 1 or self.backoff_base_s == 0:
            return 0.0
        base = min(
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
            self.backoff_max_s,
        )
        if self.jitter == 0:
            return base
        u = float(
            RngStream(self.seed).child("retry", task).child("attempt", attempt)
            .rng.random()
        )
        return base * (1.0 + self.jitter * u)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResiliencePolicy":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown policy fields {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**data)


#: The module default: a couple of retries, modest backoff, no timeout.
DEFAULT_POLICY = ResiliencePolicy()


def call_with_faults(
    fn: Callable[..., Any],
    args: Tuple,
    task_index: int,
    attempt: int,
    injector: Optional[FaultInjector],
) -> Any:
    """Worker-side task wrapper: apply injected faults, then evaluate.

    Top-level so process pools can pickle it; the injector hook runs
    *inside* the worker, which is what lets a ``kill`` fault take down a
    real worker process.  ``net_delay`` faults sleep *after* the
    evaluation -- the result exists but has not been returned yet, the
    shape of injected network latency on any backend.
    """
    if injector is not None:
        injector.on_task(task_index, attempt)
    result = fn(*args)
    if injector is not None:
        net_delay = injector.net_delay_s(task_index, attempt)
        if net_delay > 0:
            time.sleep(net_delay)
    return result


def terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Shut a pool down *now*: cancel queued work, terminate, join.

    ``ProcessPoolExecutor.shutdown`` alone leaves workers running their
    current task (and, pre-cancel, the whole queue) -- after a
    ``KeyboardInterrupt`` that is a process leak.  Terminating the
    worker processes is safe here because every task is pure: killing a
    half-finished evaluation abandons no external state.

    Idempotent: calling it on an already-terminated (or already
    shut-down) pool is a no-op, so backend ``close()`` paths and
    generator ``finally`` blocks can both run it without coordination.
    """
    procs = list((getattr(pool, "_processes", None) or {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        # A pool whose manager thread already died can raise here; the
        # process termination below is what actually matters.
        pass
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
    for proc in procs:
        proc.join(timeout=5.0)


def _try_create_pool(
    workers: int,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
) -> Optional[ProcessPoolExecutor]:
    try:
        return ProcessPoolExecutor(
            max_workers=workers, initializer=initializer, initargs=initargs
        )
    except (OSError, PermissionError, RuntimeError):
        # Restricted sandbox (no fork / no semaphores): serial fallback.
        return None


def iter_tasks_resilient(
    fn: Callable[..., Any],
    args_list: Sequence[Tuple],
    max_workers: int,
    window: Optional[int] = None,
    policy: Optional[ResiliencePolicy] = None,
    injector: Optional[FaultInjector] = None,
    emit: Optional[Emit] = None,
    start_index: int = 0,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
) -> Iterator[Tuple[int, Any]]:
    """Run ``fn(*args_list[i])`` for ``i >= start_index``, yielding in order.

    The scheduling core shared by every executor entry point: results
    are yielded strictly as ``(index, result)`` in ascending index order
    regardless of completion order, with at most ``window`` tasks in
    flight (default: everything).  Recovery semantics are the policy's;
    ``start_index`` supports checkpoint resume (earlier tasks are never
    evaluated).  On abandonment (an exception, or the consumer dropping
    the generator) the pool's workers are terminated, not leaked.
    ``initializer``/``initargs`` seed every worker process -- including
    the workers of a replacement pool after a failure -- which is how a
    :class:`~repro.engine.job.SpaceJob` ships once per worker instead of
    once per task.
    """
    policy = DEFAULT_POLICY if policy is None else policy
    n_tasks = len(args_list)
    if start_index < 0 or start_index > n_tasks:
        raise ValueError(
            f"start_index {start_index} outside 0..{n_tasks}"
        )
    window = n_tasks if window is None else max(1, int(window))
    attempts = {i: 0 for i in range(start_index, n_tasks)}

    def _notify(event: str, **payload: Any) -> None:
        if emit is not None:
            emit(event, **payload)

    def _run_serial(idx: int) -> Any:
        while True:
            try:
                return call_with_faults(fn, args_list[idx], idx, attempts[idx], injector)
            except RETRYABLE as exc:
                attempts[idx] += 1
                if attempts[idx] > policy.max_task_retries:
                    raise
                delay = policy.backoff_s(idx, attempts[idx])
                _notify(
                    "resilience.retry",
                    task=idx,
                    attempt=attempts[idx],
                    error=type(exc).__name__,
                    backoff_s=delay,
                    serial=True,
                )
                if delay > 0:
                    time.sleep(delay)

    serial = max_workers <= 1 or (n_tasks - start_index) < 2
    pool: Optional[ProcessPoolExecutor] = None
    pool_failures = 0
    futures: Dict[int, Any] = {}
    next_idx = start_index
    submit_idx = start_index
    completed = False

    def _replace_pool(reason: str) -> None:
        """Tear the pool down and decide between a fresh pool and serial."""
        nonlocal pool, pool_failures, serial, submit_idx
        if pool is not None:
            terminate_pool(pool)
            pool = None
        futures.clear()
        submit_idx = next_idx
        pool_failures += 1
        if pool_failures > policy.max_pool_failures:
            serial = True
            _notify(
                "resilience.degraded",
                reason=reason,
                pool_failures=pool_failures,
                remaining_tasks=n_tasks - next_idx,
            )
        else:
            _notify(
                "resilience.pool_replaced",
                reason=reason,
                pool_failures=pool_failures,
            )

    try:
        while next_idx < n_tasks:
            if not serial and pool is None:
                pool = _try_create_pool(
                    min(max_workers, n_tasks - next_idx),
                    initializer=initializer,
                    initargs=initargs,
                )
                if pool is None:
                    serial = True
                futures.clear()
                submit_idx = next_idx
            if serial:
                result = _run_serial(next_idx)
                yield next_idx, result
                next_idx += 1
                continue

            try:
                while submit_idx < n_tasks and len(futures) < window:
                    futures[submit_idx] = pool.submit(
                        call_with_faults,
                        fn,
                        args_list[submit_idx],
                        submit_idx,
                        attempts[submit_idx],
                        injector,
                    )
                    submit_idx += 1
                result = futures[next_idx].result(timeout=policy.task_timeout_s)
            except FuturesTimeoutError:
                # The head task is stuck; the worker running it cannot be
                # reclaimed, so the whole pool is replaced and in-flight
                # tasks resubmitted.
                attempts[next_idx] += 1
                _notify(
                    "resilience.timeout",
                    task=next_idx,
                    attempt=attempts[next_idx],
                    timeout_s=policy.task_timeout_s,
                )
                if attempts[next_idx] > policy.max_task_retries:
                    raise TaskTimeout(
                        f"task {next_idx} exceeded {policy.task_timeout_s}s "
                        f"on every one of {attempts[next_idx]} attempts"
                    ) from None
                _replace_pool("task timeout")
                continue
            except (BrokenProcessPool, OSError) as exc:
                # A worker died (or the pool's plumbing failed).  The
                # killer is *some* in-flight task; all of them get their
                # attempt bumped so a deterministic kill fault cannot
                # re-fire forever.
                for idx in list(futures):
                    attempts[idx] += 1
                    if attempts[idx] > policy.max_task_retries:
                        raise WorkerCrash(
                            f"task {idx} implicated in {pool_failures + 1} "
                            f"pool failures ({type(exc).__name__}: {exc})"
                        ) from exc
                _replace_pool(f"{type(exc).__name__}: {exc}")
                continue
            except ResilienceError as exc:
                # Typed failure raised inside the worker and shipped back
                # through the future: the pool is healthy, retry the one task.
                attempts[next_idx] += 1
                if attempts[next_idx] > policy.max_task_retries:
                    raise
                delay = policy.backoff_s(next_idx, attempts[next_idx])
                _notify(
                    "resilience.retry",
                    task=next_idx,
                    attempt=attempts[next_idx],
                    error=type(exc).__name__,
                    backoff_s=delay,
                    serial=False,
                )
                if delay > 0:
                    time.sleep(delay)
                futures[next_idx] = pool.submit(
                    call_with_faults,
                    fn,
                    args_list[next_idx],
                    next_idx,
                    attempts[next_idx],
                    injector,
                )
                continue

            del futures[next_idx]
            yield next_idx, result
            next_idx += 1
        completed = True
    finally:
        if pool is not None:
            if completed:
                pool.shutdown(wait=True, cancel_futures=True)
            else:
                # Abandoned mid-run (exception, KeyboardInterrupt, or the
                # consumer dropped the generator): leave no worker behind.
                terminate_pool(pool)


def run_tasks_resilient(
    fn: Callable[..., Any],
    args_list: Sequence[Tuple],
    max_workers: int,
    policy: Optional[ResiliencePolicy] = None,
    injector: Optional[FaultInjector] = None,
    emit: Optional[Emit] = None,
) -> list:
    """Collect :func:`iter_tasks_resilient` into an ordered result list."""
    return [
        result
        for _, result in iter_tasks_resilient(
            fn,
            args_list,
            max_workers=max_workers,
            policy=policy,
            injector=injector,
            emit=emit,
        )
    ]
