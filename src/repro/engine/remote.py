"""The ``tcp_remote`` backend: block tasks over a socket wire protocol.

Multi-host execution for the engine's pure fan-outs: pickled task frames
ship to worker agents (:mod:`repro.engine.remote_worker`, started as
``python -m repro.engine.remote_worker``) over plain TCP, results ship
back, and a heartbeat loop stands in for the liveness signal a local
process pool gets for free.

Wire protocol (version 2)
-------------------------
Every frame is an 8-byte big-endian length prefix followed by a pickled
``dict`` with a ``"type"`` key.  The prefix's high bit flags a
zlib-compressed payload: the sender compresses any frame at or above
:data:`_COMPRESS_MIN_BYTES` when compression actually shrinks it, and
the reader transparently inflates -- columnar block results and reducer
states are low-entropy float arrays that routinely compress severalfold,
which is most of what "fast" means on a real network link.

``hello``    worker -> client on accept: ``{version, pid}``.
``job``      client -> worker, right after ``hello``: ``{job}`` -- one
             :class:`~repro.engine.job.SpaceJob` carrying a fan-out's
             immutable plan/params, shipped once per (re)connected
             worker instead of once per task.
``task``     client -> worker: ``{task, attempt, fn, args, injector}``.
             ``fn`` is pickled by reference, so the worker must be able
             to ``import repro`` (spawned localhost agents inherit a
             ``PYTHONPATH`` pointing at this checkout).  Under a job,
             ``fn`` is :func:`repro.engine.job.run_block` and ``args``
             is just ``(job_id, block_index)``.
``result``   worker -> client: ``{task, ok, value}`` on success,
             ``{task, ok, error}`` with the pickled exception otherwise.
``ping`` / ``pong``  liveness probes, either direction, ``{seq}``.
``shutdown`` client -> worker: finish up and exit the serve loop.

A worker agent runs one task at a time per connection but keeps
answering pings from its connection loop while the task evaluates, so a
*slow* worker and a *dead* worker are distinguishable.

Liveness model
--------------
The local pool's ``BrokenProcessPool`` generalizes to heartbeat-timeout
liveness: each worker channel sends a ``ping`` whenever the link has
been quiet for ``heartbeat_interval_s``, and declares the worker dead
when nothing (pong, result, anything) has been heard for
``heartbeat_timeout_s``.  EOF (the worker process dying outright) is
just the fast special case.  A dead worker triggers exactly the local
pool's recovery ladder, with the same ``resilience.*`` events: the
failed task's attempt is bumped (``WorkerCrash`` when its retry budget
is exhausted), the worker is respawned/reconnected while the policy's
``max_pool_failures`` budget lasts, and past the budget the remaining
tasks degrade to in-process serial execution.  Typed retryable failures
(:class:`~repro.engine.faults.ResilienceError`, ``OSError``) shipped
back in a ``result`` frame retry with the policy's deterministic
backoff; anything else propagates immediately.  ``task_timeout_s``
bounds each assignment: a worker that heartbeats but never answers is
treated as stuck and replaced, raising
:class:`~repro.engine.faults.TaskTimeout` once the task's budget is
spent.

Results are delivered strictly in plan order, so artifacts are
bit-identical to the serial and process-pool backends -- the conformance
suite (``tests/engine/test_backends.py``) holds this backend to the same
byte-for-byte standard, including under ``worker_vanish`` fault plans.
"""

from __future__ import annotations

import os
import pickle
import queue
import select
import socket
import struct
import subprocess
import sys
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.engine.backends import (
    BACKEND_ENV_VAR,
    BACKEND_OPTIONS_ENV_VAR,
    ExecutionBackend,
    register_backend,
    validate_workers,
)
from repro.engine.faults import (
    FaultInjector,
    ResilienceError,
    TaskTimeout,
    WorkerCrash,
)
from repro.engine.resilience import (
    DEFAULT_POLICY,
    RETRYABLE,
    Emit,
    ResiliencePolicy,
    call_with_faults,
)

#: Wire protocol version carried in the ``hello`` frame.  Version 2
#: added compressed frames (length-prefix high bit) and ``job`` frames;
#: client and worker ship from the same checkout, so no negotiation.
PROTOCOL_VERSION = 2

#: Line a spawned worker prints once it is listening: ``REPRO_WORKER_PORT <n>``.
PORT_BANNER = "REPRO_WORKER_PORT"

DEFAULT_SPAWN_WORKERS = 2
DEFAULT_HEARTBEAT_INTERVAL_S = 0.5
DEFAULT_HEARTBEAT_TIMEOUT_S = 5.0
DEFAULT_CONNECT_TIMEOUT_S = 10.0

_LEN = struct.Struct(">Q")
_RECV_CHUNK = 1 << 16
#: High bit of the length prefix: payload is zlib-compressed.
_FLAG_ZLIB = 1 << 63
#: Frames below this many pickled bytes ship uncompressed (pings, small
#: results): the deflate call costs more than the copy it saves.
_COMPRESS_MIN_BYTES = 4096


class RemoteProtocolError(RuntimeError):
    """The peer sent something that is not a valid protocol frame."""


class RemoteTaskError(RuntimeError):
    """A non-retryable task failure whose original exception could not
    cross the wire (unpicklable error, unpicklable result)."""


def send_frame(sock: socket.socket, obj: Mapping[str, Any]) -> None:
    """Pickle ``obj`` and send it as one length-prefixed frame.

    Large payloads are zlib-compressed (level 1 -- block columns are
    low-entropy enough that speed beats ratio) when that actually
    shrinks them, flagged via the length prefix's high bit.
    """
    payload = pickle.dumps(dict(obj), protocol=pickle.HIGHEST_PROTOCOL)
    header = len(payload)
    if len(payload) >= _COMPRESS_MIN_BYTES:
        packed = zlib.compress(payload, 1)
        if len(packed) < len(payload):
            payload = packed
            header = len(payload) | _FLAG_ZLIB
    sock.sendall(_LEN.pack(header) + payload)


class FrameReader:
    """Buffered frame reader that survives partial reads and timeouts.

    Socket timeouts can interrupt a frame mid-transfer; the reader keeps
    the partial bytes and resumes on the next call, so a ``ping``-paced
    receive loop never desynchronizes from the stream.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buf = bytearray()

    def read(self, timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """Next frame; ``None`` if none completes within ``timeout``.

        Raises ``ConnectionError`` when the peer closes the stream.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            frame = self._pop_frame()
            if frame is not None:
                return frame
            if deadline is None:
                self._sock.settimeout(None)
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._sock.settimeout(remaining)
            try:
                chunk = self._sock.recv(_RECV_CHUNK)
            except socket.timeout:
                return None
            except InterruptedError:
                continue
            if not chunk:
                raise ConnectionError("peer closed the connection")
            self._buf += chunk

    def _pop_frame(self) -> Optional[Dict[str, Any]]:
        if len(self._buf) < _LEN.size:
            return None
        (raw,) = _LEN.unpack_from(self._buf, 0)
        compressed = bool(raw & _FLAG_ZLIB)
        length = raw & (_FLAG_ZLIB - 1)
        end = _LEN.size + length
        if len(self._buf) < end:
            return None
        payload = bytes(self._buf[_LEN.size : end])
        del self._buf[:end]
        if compressed:
            try:
                payload = zlib.decompress(payload)
            except zlib.error as exc:
                raise RemoteProtocolError(
                    f"undecodable compressed frame: {exc}"
                ) from None
        frame = pickle.loads(payload)
        if not isinstance(frame, dict) or "type" not in frame:
            raise RemoteProtocolError(f"malformed frame: {frame!r}")
        return frame


def parse_hosts(value: Any) -> List[Tuple[str, int]]:
    """Normalize a ``worker_hosts`` option to ``[(host, port), ...]``.

    Accepts a comma-separated string or a sequence of ``"host:port"``
    entries; a bad entry raises a ``ValueError`` naming it.
    """
    if value is None:
        return []
    if isinstance(value, str):
        entries = [e.strip() for e in value.split(",") if e.strip()]
    else:
        entries = [str(e).strip() for e in value if str(e).strip()]
    hosts: List[Tuple[str, int]] = []
    for entry in entries:
        host, sep, port_text = entry.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"invalid worker host {entry!r}; expected 'host:port'"
            )
        try:
            port = int(port_text)
        except ValueError:
            raise ValueError(
                f"invalid worker host {entry!r}; expected 'host:port'"
            ) from None
        if not 0 < port < 65536:
            raise ValueError(
                f"invalid worker host {entry!r}; port must be in 1..65535"
            )
        hosts.append((host, port))
    return hosts


def _positive_float(value: Any, name: str) -> float:
    try:
        number = float(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"{name} must be a positive number, got {value!r}"
        ) from None
    if number <= 0:
        raise ValueError(f"{name} must be a positive number, got {value!r}")
    return number


@dataclass
class _WorkerSlot:
    """One worker the backend can assign tasks to.

    ``spawned`` slots own their localhost agent process and can respawn
    it after a failure; configured-host slots can only reconnect.
    """

    index: int
    host: str
    port: int
    proc: Optional[subprocess.Popen] = None
    spawned: bool = False


@register_backend
class TcpRemoteBackend(ExecutionBackend):
    """Ship block tasks to TCP worker agents; heartbeat-timeout liveness.

    With ``worker_hosts`` the backend connects to already-running agents
    (one ``python -m repro.engine.remote_worker`` per host); without, it
    spawns ``spawn_workers`` localhost agents on ephemeral ports and
    keeps them across fan-outs until :meth:`close` (registered shared
    instances are closed at interpreter exit, so no agent outlives the
    client process).
    """

    name = "tcp_remote"
    options: ClassVar[Mapping[str, str]] = {
        "worker_hosts": "comma-separated 'host:port' worker agents",
        "spawn_workers": "localhost agents to spawn when no hosts given "
        f"(positive int; default {DEFAULT_SPAWN_WORKERS})",
        "heartbeat_interval_s": "quiet-link seconds between pings "
        f"(default {DEFAULT_HEARTBEAT_INTERVAL_S})",
        "heartbeat_timeout_s": "silence seconds before a worker is dead "
        f"(default {DEFAULT_HEARTBEAT_TIMEOUT_S})",
        "connect_timeout_s": "seconds to establish a worker connection "
        f"(default {DEFAULT_CONNECT_TIMEOUT_S})",
    }
    is_remote = True
    stateful = True

    def __init__(
        self,
        worker_hosts: Any = None,
        spawn_workers: Optional[int] = None,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
        heartbeat_timeout_s: float = DEFAULT_HEARTBEAT_TIMEOUT_S,
        connect_timeout_s: float = DEFAULT_CONNECT_TIMEOUT_S,
    ) -> None:
        super().__init__()
        self._hosts = parse_hosts(worker_hosts)
        if self._hosts and spawn_workers is not None:
            raise ValueError(
                "spawn_workers only applies when no worker_hosts are "
                "configured; drop one of the two options"
            )
        self.spawn_workers = (
            DEFAULT_SPAWN_WORKERS
            if spawn_workers is None
            else validate_workers(spawn_workers, name="spawn_workers")
        )
        self.heartbeat_interval_s = _positive_float(
            heartbeat_interval_s, "heartbeat_interval_s"
        )
        self.heartbeat_timeout_s = _positive_float(
            heartbeat_timeout_s, "heartbeat_timeout_s"
        )
        self.connect_timeout_s = _positive_float(
            connect_timeout_s, "connect_timeout_s"
        )
        self._slots: Dict[int, _WorkerSlot] = {}
        self._lock = threading.Lock()

    # ---- lifecycle -----------------------------------------------------

    @property
    def parallelism(self) -> int:
        return len(self._hosts) if self._hosts else self.spawn_workers

    def close(self) -> None:
        """Terminate spawned agents and drop every slot.  Idempotent."""
        if self.closed:
            return
        with self._lock:
            slots = list(self._slots.values())
            self._slots.clear()
        for slot in slots:
            self._terminate_proc(slot)
        super().close()

    @staticmethod
    def _terminate_proc(slot: _WorkerSlot) -> None:
        proc = slot.proc
        slot.proc = None
        if proc is None or proc.poll() is not None:
            return
        proc.terminate()
        try:
            proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=5.0)

    def _spawn_worker_proc(self) -> Tuple[subprocess.Popen, int]:
        """Start a localhost agent and learn its ephemeral port."""
        import repro

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = os.environ.copy()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_dir + os.pathsep + existing if existing else src_dir
        )
        # A worker must never itself resolve a remote backend -- that
        # would recurse into spawning workers from workers.
        env.pop(BACKEND_ENV_VAR, None)
        env.pop(BACKEND_OPTIONS_ENV_VAR, None)
        cmd = [
            sys.executable,
            "-u",
            "-m",
            "repro.engine.remote_worker",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
        ]
        proc = subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        line = ""
        deadline = time.monotonic() + self.connect_timeout_s
        while time.monotonic() < deadline:
            ready, _, _ = select.select([proc.stdout], [], [], 0.1)
            if ready:
                line = proc.stdout.readline()
                break
            if proc.poll() is not None:
                break
        if not line.startswith(PORT_BANNER):
            self._terminate_proc(_WorkerSlot(index=-1, host="", port=0, proc=proc))
            raise RuntimeError(
                f"failed to start local worker agent ({' '.join(cmd)})"
            )
        return proc, int(line.split()[1])

    def _ensure_workers(self) -> None:
        with self._lock:
            if self._slots:
                return
            if self._hosts:
                for i, (host, port) in enumerate(self._hosts):
                    self._slots[i] = _WorkerSlot(index=i, host=host, port=port)
            else:
                for i in range(self.spawn_workers):
                    proc, port = self._spawn_worker_proc()
                    self._slots[i] = _WorkerSlot(
                        index=i, host="127.0.0.1", port=port,
                        proc=proc, spawned=True,
                    )

    def _respawn_slot(self, slot: _WorkerSlot) -> None:
        """Replace a spawned slot's agent process (stuck or dead)."""
        self._terminate_proc(slot)
        proc, port = self._spawn_worker_proc()
        slot.proc = proc
        slot.port = port

    # ---- channel thread ------------------------------------------------

    def _channel_main(
        self,
        slot: _WorkerSlot,
        assign_q: "queue.Queue",
        results_q: "queue.Queue",
        policy: ResiliencePolicy,
        job: Optional[Any] = None,
    ) -> None:
        """One worker's channel: connect, then serve assignments.

        Terminal conditions report exactly one event to ``results_q``:
        ``connect_failed`` (never served), ``dead`` (EOF or heartbeat
        silence), ``timeout`` (task deadline passed), or per-task
        ``result`` frames followed by a clean sentinel exit.  ``job``,
        when given, is shipped once right after the hello -- including
        on the fresh channel of a respawned/reconnected worker, so a
        replacement worker is job-complete before its first task.
        """
        sock: Optional[socket.socket] = None
        current_task: Optional[int] = None

        def report(kind: str, frame: Optional[Dict[str, Any]] = None) -> None:
            nonlocal current_task
            results_q.put((kind, slot.index, current_task, frame))
            current_task = None

        try:
            try:
                sock = socket.create_connection(
                    (slot.host, slot.port), timeout=self.connect_timeout_s
                )
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                reader = FrameReader(sock)
                hello = reader.read(timeout=self.connect_timeout_s)
            except (ConnectionError, OSError):
                report("connect_failed")
                return
            if hello is None or hello.get("type") != "hello":
                report("connect_failed")
                return
            if job is not None:
                try:
                    send_frame(sock, {"type": "job", "job": job})
                except OSError:
                    report("connect_failed")
                    return
            while True:
                item = assign_q.get()
                if item is None:
                    return
                task_idx, attempt, fn, args, injector = item
                current_task = task_idx
                try:
                    send_frame(
                        sock,
                        {
                            "type": "task",
                            "task": task_idx,
                            "attempt": attempt,
                            "fn": fn,
                            "args": tuple(args),
                            "injector": injector,
                        },
                    )
                except OSError:
                    report("dead")
                    return
                deadline = (
                    time.monotonic() + policy.task_timeout_s
                    if policy.task_timeout_s is not None
                    else None
                )
                last_heard = time.monotonic()
                seq = 0
                while current_task is not None:
                    if deadline is not None and time.monotonic() >= deadline:
                        report("timeout")
                        return
                    wait = self.heartbeat_interval_s
                    if deadline is not None:
                        wait = min(wait, max(0.01, deadline - time.monotonic()))
                    try:
                        frame = reader.read(timeout=wait)
                    except (ConnectionError, OSError):
                        report("dead")
                        return
                    now = time.monotonic()
                    if frame is None:
                        if now - last_heard >= self.heartbeat_timeout_s:
                            report("dead")
                            return
                        try:
                            send_frame(sock, {"type": "ping", "seq": seq})
                            seq += 1
                        except OSError:
                            report("dead")
                            return
                        continue
                    last_heard = now
                    ftype = frame.get("type")
                    if ftype == "result":
                        report("result", frame)
                    # pongs (and anything unknown) only refresh liveness
        finally:
            if current_task is not None:
                # A bug above must not strand the dispatcher waiting on
                # an event that will never arrive.
                results_q.put(("dead", slot.index, current_task, None))
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass

    # ---- dispatcher ----------------------------------------------------

    def submit_blocks(
        self,
        fn: Callable[..., Any],
        args_list: Sequence[Tuple],
        window: Optional[int] = None,
        policy: Optional[ResiliencePolicy] = None,
        injector: Optional[FaultInjector] = None,
        emit: Optional[Emit] = None,
        start_index: int = 0,
        job: Optional[Any] = None,
    ) -> Iterator[Tuple[int, Any]]:
        if self.closed:
            raise RuntimeError("tcp_remote backend is closed")
        policy = DEFAULT_POLICY if policy is None else policy
        n_tasks = len(args_list)
        if start_index < 0 or start_index > n_tasks:
            raise ValueError(f"start_index {start_index} outside 0..{n_tasks}")
        return self._dispatch(
            fn, args_list, n_tasks, window, policy, injector, emit,
            start_index, job,
        )

    def _dispatch(
        self,
        fn: Callable[..., Any],
        args_list: Sequence[Tuple],
        n_tasks: int,
        window: Optional[int],
        policy: ResiliencePolicy,
        injector: Optional[FaultInjector],
        emit: Optional[Emit],
        start_index: int,
        job: Optional[Any] = None,
    ) -> Iterator[Tuple[int, Any]]:
        if start_index == n_tasks:
            return
        if job is not None:
            from repro.engine.job import install_job

            # In-process too: serial degradation runs tasks right here.
            install_job(job)
        window = n_tasks if window is None else max(1, int(window))
        self._ensure_workers()

        attempts = {i: 0 for i in range(start_index, n_tasks)}
        pending = deque(range(start_index, n_tasks))
        buffered: Dict[int, Any] = {}
        next_idx = start_index
        pool_failures = 0
        serial = False
        results_q: "queue.Queue" = queue.Queue()
        assign_qs: Dict[int, "queue.Queue"] = {}
        idle: deque = deque()
        in_flight: Dict[int, int] = {}
        alive: set = set()

        def _notify(event: str, **payload: Any) -> None:
            if emit is not None:
                emit(event, **payload)

        def _start_channel(sid: int) -> None:
            assign_qs[sid] = queue.Queue()
            alive.add(sid)
            threading.Thread(
                target=self._channel_main,
                args=(
                    self._slots[sid], assign_qs[sid], results_q, policy, job,
                ),
                daemon=True,
                name=f"repro-remote-ch{sid}",
            ).start()

        def _detach(sid: int) -> None:
            alive.discard(sid)
            try:
                idle.remove(sid)
            except ValueError:
                pass

        def _go_serial(reason: str) -> None:
            nonlocal serial
            serial = True
            for sid in list(in_flight):
                pending.appendleft(in_flight.pop(sid))
            for q in assign_qs.values():
                q.put(None)
            idle.clear()
            alive.clear()
            _notify(
                "resilience.degraded",
                reason=reason,
                pool_failures=pool_failures,
                remaining_tasks=n_tasks - next_idx,
            )

        def _revive(sid: int, reason: str) -> None:
            nonlocal pool_failures
            pool_failures += 1
            if pool_failures > policy.max_pool_failures:
                _go_serial(reason)
                return
            slot = self._slots[sid]
            if slot.spawned:
                try:
                    self._respawn_slot(slot)
                except RuntimeError:
                    if not alive:
                        _go_serial(f"{reason}; respawn failed")
                    return
            _notify(
                "resilience.pool_replaced",
                reason=reason,
                pool_failures=pool_failures,
            )
            _start_channel(sid)
            idle.append(sid)

        def _run_serial_task(idx: int) -> Any:
            while True:
                try:
                    return call_with_faults(
                        fn, args_list[idx], idx, attempts[idx], injector
                    )
                except RETRYABLE as exc:
                    attempts[idx] += 1
                    if attempts[idx] > policy.max_task_retries:
                        raise
                    delay = policy.backoff_s(idx, attempts[idx])
                    _notify(
                        "resilience.retry",
                        task=idx,
                        attempt=attempts[idx],
                        error=type(exc).__name__,
                        backoff_s=delay,
                        serial=True,
                    )
                    if delay > 0:
                        time.sleep(delay)

        # Generous stall bound: nothing legitimate outlasts heartbeat
        # detection plus a task timeout; past it, assume every channel
        # died unreported and degrade rather than hang.
        stall_s = (
            self.heartbeat_timeout_s
            + self.connect_timeout_s
            + (policy.task_timeout_s or 0.0)
            + 60.0
        )

        for sid in self._slots:
            _start_channel(sid)
            idle.append(sid)

        try:
            while next_idx < n_tasks:
                while next_idx in buffered:
                    yield next_idx, buffered.pop(next_idx)
                    next_idx += 1
                if next_idx >= n_tasks:
                    break
                if serial:
                    yield next_idx, _run_serial_task(next_idx)
                    next_idx += 1
                    continue
                while (
                    pending
                    and idle
                    and (len(in_flight) + len(buffered)) < window
                ):
                    sid = idle.popleft()
                    idx = pending.popleft()
                    in_flight[sid] = idx
                    assign_qs[sid].put(
                        (idx, attempts[idx], fn, args_list[idx], injector)
                    )
                if not in_flight:
                    if not alive:
                        _go_serial("no live workers")
                    continue
                try:
                    event, sid, task, frame = results_q.get(timeout=stall_s)
                except queue.Empty:
                    _go_serial("scheduler stall: no worker events")
                    continue

                if event == "result":
                    in_flight.pop(sid, None)
                    if sid in alive:
                        idle.append(sid)
                    if frame.get("ok"):
                        buffered[task] = frame.get("value")
                        continue
                    exc = frame.get("error")
                    if not isinstance(exc, BaseException):
                        exc = RemoteTaskError(f"task {task} failed: {exc!r}")
                    if isinstance(exc, (ResilienceError, OSError)):
                        attempts[task] += 1
                        if attempts[task] > policy.max_task_retries:
                            raise exc
                        delay = policy.backoff_s(task, attempts[task])
                        _notify(
                            "resilience.retry",
                            task=task,
                            attempt=attempts[task],
                            error=type(exc).__name__,
                            backoff_s=delay,
                            serial=False,
                        )
                        if delay > 0:
                            time.sleep(delay)
                        pending.appendleft(task)
                        continue
                    raise exc

                if event == "connect_failed":
                    # Any assignment queued before the connect failed
                    # never ran: requeue without charging its budget.
                    stale = in_flight.pop(sid, None)
                    if stale is not None:
                        pending.appendleft(stale)
                    _detach(sid)
                    slot = self._slots[sid]
                    _revive(sid, f"worker {slot.host}:{slot.port} unreachable")
                    continue

                # "dead" (EOF or heartbeat silence) or "timeout".
                _detach(sid)
                assigned = in_flight.pop(sid, None)
                idx = task if task is not None else assigned
                if idx is not None:
                    attempts[idx] += 1
                    if event == "timeout":
                        _notify(
                            "resilience.timeout",
                            task=idx,
                            attempt=attempts[idx],
                            timeout_s=policy.task_timeout_s,
                        )
                        if attempts[idx] > policy.max_task_retries:
                            raise TaskTimeout(
                                f"task {idx} exceeded {policy.task_timeout_s}s "
                                f"on every one of {attempts[idx]} attempts"
                            )
                    elif attempts[idx] > policy.max_task_retries:
                        raise WorkerCrash(
                            f"task {idx} implicated in {pool_failures + 1} "
                            f"worker failures (heartbeat lost)"
                        )
                    pending.appendleft(idx)
                _revive(
                    sid,
                    "task timeout" if event == "timeout"
                    else "worker heartbeat lost",
                )
        finally:
            for q in assign_qs.values():
                q.put(None)
