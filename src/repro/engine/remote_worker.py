"""Standalone TCP worker agent: ``python -m repro.engine.remote_worker``.

The server half of the ``tcp_remote`` backend's wire protocol
(:mod:`repro.engine.remote`): listen, accept one client at a time, and
for each connection run one task at a time while keeping the liveness
conversation going.  The agent binds ``--host``/``--port`` (port ``0``
picks an ephemeral one) and prints ``REPRO_WORKER_PORT <port>`` on
stdout once it is accepting, which is how the backend's localhost
spawner learns where to connect.

Layout per connection: a reader thread turns the byte stream into
frames; the connection loop owns the socket's *send* side exclusively,
answering ``ping`` frames even while a task evaluates in its own
(daemon) thread -- that split is what makes a busy worker look alive and
a dead one look dead.  Task evaluation goes through the same
:func:`~repro.engine.resilience.call_with_faults` wrapper as every other
backend, so fault plans (``crash``/``kill``/``delay``/``net_delay``)
behave identically here; ``worker_vanish`` is intercepted *before*
dispatch because it must silence the connection loop itself -- the agent
sleeps with the socket open and then hard-exits, so the client can only
detect it via heartbeat timeout, never EOF.

The agent calls :func:`repro.engine.faults.mark_worker_process` at
startup: it is a disposable worker, and injected ``kill`` faults take
down the real process.
"""

from __future__ import annotations

import argparse
import os
import queue
import socket
import threading
import time
from typing import Any, Dict, Optional, Sequence

from repro.engine.faults import (
    KILL_EXIT_CODE,
    VANISH_SILENCE_S,
    ResilienceError,
    WorkerCrash,
    mark_worker_process,
)
from repro.engine.remote import (
    PORT_BANNER,
    PROTOCOL_VERSION,
    FrameReader,
    RemoteTaskError,
    send_frame,
)
from repro.engine.resilience import call_with_faults

#: How often the connection loop polls for frames / task completion.
_POLL_S = 0.05


def _reader_loop(conn: socket.socket, inbox: "queue.Queue") -> None:
    """Feed decoded frames to the connection loop; ``None`` marks EOF."""
    reader = FrameReader(conn)
    while True:
        try:
            frame = reader.read()
        except (ConnectionError, OSError):
            inbox.put(None)
            return
        inbox.put(frame)


def _send_result(
    conn: socket.socket, task: int, outcome: Dict[str, Any]
) -> bool:
    """Ship a task outcome; degrade unpicklable payloads, not the link."""
    if outcome["ok"]:
        frame = {"type": "result", "task": task, "ok": True,
                 "value": outcome["value"]}
    else:
        frame = {"type": "result", "task": task, "ok": False,
                 "error": outcome["error"]}
    try:
        send_frame(conn, frame)
        return True
    except OSError:
        return False
    except Exception:
        # The payload would not pickle.  Preserve retryability: a typed
        # retryable failure crosses as WorkerCrash, anything else (bad
        # error, unpicklable result) as non-retryable RemoteTaskError.
        if outcome["ok"]:
            error: Exception = RemoteTaskError(
                f"task {task} returned an unpicklable result"
            )
        else:
            original = outcome["error"]
            text = f"{type(original).__name__}: {original}"
            if isinstance(original, (ResilienceError, OSError)):
                error = WorkerCrash(text)
            else:
                error = RemoteTaskError(text)
        try:
            send_frame(
                conn, {"type": "result", "task": task, "ok": False,
                       "error": error}
            )
            return True
        except OSError:
            return False


def _handle_connection(conn: socket.socket) -> bool:
    """Serve one client; returns True when it requested shutdown."""
    conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    conn.settimeout(None)
    try:
        send_frame(
            conn, {"type": "hello", "version": PROTOCOL_VERSION,
                   "pid": os.getpid()}
        )
    except OSError:
        return False
    inbox: "queue.Queue" = queue.Queue()
    threading.Thread(
        target=_reader_loop, args=(conn, inbox), daemon=True
    ).start()

    task_thread: Optional[threading.Thread] = None
    task_id: Optional[int] = None
    outcome: Dict[str, Any] = {}

    while True:
        if task_thread is not None and not task_thread.is_alive():
            if not _send_result(conn, task_id, outcome):
                return False
            task_thread, task_id, outcome = None, None, {}
        try:
            msg = inbox.get(timeout=_POLL_S)
        except queue.Empty:
            continue
        if msg is None:
            # Client went away; any still-running task is abandoned (its
            # daemon thread finishes into the void) and we re-accept.
            return False
        mtype = msg.get("type")
        if mtype == "ping":
            try:
                send_frame(conn, {"type": "pong", "seq": msg.get("seq")})
            except OSError:
                return False
        elif mtype == "shutdown":
            return True
        elif mtype == "job":
            # One-time shipment of a fan-out's immutable plan/params;
            # subsequent task frames reference it by id only.
            from repro.engine.job import install_job

            install_job(msg["job"])
        elif mtype == "task":
            idx = msg["task"]
            attempt = msg["attempt"]
            injector = msg.get("injector")
            if injector is not None:
                spec = injector.vanish_spec(idx, attempt)
                if spec is not None:
                    # Vanish: keep the socket open but answer nothing,
                    # so the client can only see us die by heartbeat
                    # timeout -- then actually die.
                    time.sleep(
                        spec.delay_s if spec.delay_s > 0 else VANISH_SILENCE_S
                    )
                    os._exit(KILL_EXIT_CODE)
            fn = msg["fn"]
            args = tuple(msg.get("args") or ())
            outcome = {}
            task_id = idx

            def _run(
                fn=fn, args=args, idx=idx, attempt=attempt,
                injector=injector, outcome=outcome,
            ) -> None:
                try:
                    outcome["value"] = call_with_faults(
                        fn, args, idx, attempt, injector
                    )
                    outcome["ok"] = True
                except BaseException as exc:
                    outcome["error"] = exc
                    outcome["ok"] = False

            task_thread = threading.Thread(target=_run, daemon=True)
            task_thread.start()
        # Unknown frame types are ignored (forward compatibility).


def serve(host: str, port: int, once: bool = False) -> int:
    """Accept clients until shutdown (or forever); returns an exit code."""
    mark_worker_process()
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        listener.bind((host, port))
        listener.listen(8)
        print(f"{PORT_BANNER} {listener.getsockname()[1]}", flush=True)
        while True:
            conn, _ = listener.accept()
            try:
                shutdown = _handle_connection(conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass
            if shutdown or once:
                return 0
    finally:
        listener.close()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.remote_worker",
        description="TCP worker agent for the tcp_remote execution backend.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="interface to bind (default %(default)s)"
    )
    parser.add_argument(
        "--port", type=int, default=0,
        help="port to bind; 0 picks an ephemeral port (default %(default)s)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="exit after the first client disconnects",
    )
    args = parser.parse_args(argv)
    return serve(args.host, args.port, once=args.once)


if __name__ == "__main__":
    raise SystemExit(main())
