"""Deterministic fault injection and the resilience error taxonomy.

Fault tolerance that is only exercised by real outages is untested fault
tolerance.  This module makes failure a first-class, *reproducible*
input: a :class:`FaultPlan` is plain data (JSON round-trippable, usable
from the CLI via ``--fault-plan plan.json``) describing exactly which
task crashes, which worker dies, which cache entry is corrupted, and
which reducer fold raises -- and a :class:`FaultInjector` realizes the
plan through hooks the executor (:mod:`repro.engine.resilience`), the
result cache (:mod:`repro.engine.cache`), and the streaming reducer pass
(:func:`repro.core.streaming.reduce_space_blocks`) call at the right
moments.  Because every fault is keyed by deterministic coordinates
(task index, attempt number, block index, cache-key substring), a chaos
run is as reproducible as a clean one.

Fault kinds
-----------
``crash``
    Raise :class:`WorkerCrash` inside the worker while evaluating task
    ``task`` (on attempts ``< times``) -- a clean, picklable failure the
    retry loop recovers from.
``kill``
    Hard-kill the worker *process* (``os._exit``) while it evaluates
    task ``task`` -- breaks the whole pool, exercising dead-worker
    detection and pool replacement.  Outside a worker process (serial
    execution) it degrades to ``crash``, so a degraded run still
    terminates.
``delay``
    Sleep ``delay_s`` seconds before evaluating task ``task`` -- with a
    per-task timeout configured this exercises the
    :class:`TaskTimeout` path, without one it is a latency fault.
``corrupt_cache``
    Flip bytes of the on-disk cache entry whose key contains
    ``key_substring`` the next ``times`` times it is read, exercising
    checksum verification and quarantine.
``fold_error``
    Raise :class:`InjectedFault` in the main-process reducer loop just
    before folding block ``task`` -- the deterministic stand-in for a
    mid-stream kill, used by the checkpoint/resume tests.
``worker_vanish``
    Make the worker assigned task ``task`` *disappear* without a clean
    error.  A remote worker (:mod:`repro.engine.remote_worker`) goes
    silent -- it stops answering heartbeats while keeping its socket
    open, exercising the heartbeat-timeout liveness path rather than the
    EOF path -- and a process-pool worker hard-exits like ``kill``.
    Serial execution degrades to ``crash``.  ``delay_s`` optionally caps
    how long a remote worker stays silent before exiting (default long
    enough to outlive any reasonable heartbeat timeout).
``net_delay``
    Sleep ``delay_s`` seconds *after* evaluating task ``task`` but
    before the result is returned/sent -- injected network latency.  On
    the remote backend the worker keeps answering heartbeats during the
    delay, so this exercises per-task timeouts and window stalls, not
    liveness.

Attempt discipline
------------------
``crash``/``kill``/``delay`` faults fire while ``attempt < times``
(attempt numbers are threaded by the resilient runner), so a fault with
``times=1`` fails the first attempt and lets the retry succeed --
stateless, hence correct even when the check runs in a freshly forked
worker that shares no memory with previous attempts.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------


class ResilienceError(RuntimeError):
    """Base of the engine's typed failure taxonomy.

    Everything the fault-tolerance layer can recover from (or
    deliberately surfaces after exhausting recovery) derives from this,
    so callers can catch one type instead of bare ``Exception``.
    """


class WorkerCrash(ResilienceError):
    """A worker failed while evaluating a task (retryable)."""


class TaskTimeout(ResilienceError):
    """A task exceeded the per-task timeout (retryable until exhausted)."""


class CheckpointCorrupt(ResilienceError):
    """A checkpoint file failed its checksum or structural validation."""


class CacheCorrupt(ResilienceError):
    """An on-disk cache entry failed its checksum or format validation."""


class InjectedFault(ResilienceError):
    """A fault plan's ``fold_error`` fired (simulated mid-stream abort)."""


#: Exit code a ``kill`` fault uses, distinguishable from ordinary crashes.
KILL_EXIT_CODE = 86

_FAULT_KINDS = (
    "crash",
    "kill",
    "delay",
    "corrupt_cache",
    "fold_error",
    "worker_vanish",
    "net_delay",
)

#: Fault kinds addressed by a task index.
_TASK_KINDS = ("crash", "kill", "delay", "fold_error", "worker_vanish", "net_delay")

#: How long a vanished remote worker stays silent before exiting, when
#: the fault does not pin its own ``delay_s`` -- far beyond any sane
#: heartbeat timeout, so the client always detects the silence first.
VANISH_SILENCE_S = 600.0


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    ``task`` is the coordinate: the block/task index for
    ``crash``/``kill``/``delay``/``fold_error``; ignored for
    ``corrupt_cache`` (which matches on ``key_substring`` instead).
    ``times`` bounds how often the fault fires -- attempts below it for
    task faults, reads for cache corruption.
    """

    kind: str
    task: Optional[int] = None
    delay_s: float = 0.0
    key_substring: Optional[str] = None
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {list(_FAULT_KINDS)}"
            )
        if self.kind in _TASK_KINDS:
            if self.task is None or int(self.task) < 0:
                raise ValueError(f"{self.kind!r} fault needs a task index >= 0")
            object.__setattr__(self, "task", int(self.task))
        if self.kind == "corrupt_cache" and not self.key_substring:
            raise ValueError("'corrupt_cache' fault needs a key_substring")
        if self.kind in ("delay", "net_delay") and self.delay_s <= 0:
            raise ValueError(f"{self.kind!r} fault needs a positive delay_s")
        if self.times < 1:
            raise ValueError("a fault must fire at least once (times >= 1)")

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown fault fields {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic chaos schedule: plain data, JSON round-trippable.

    ``seed`` feeds whatever randomness a fault realization needs (the
    corruption byte pattern); the *schedule* itself is fully explicit,
    so two runs of the same plan inject identical faults.
    """

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "faults",
            tuple(
                f if isinstance(f, FaultSpec) else FaultSpec.from_dict(f)
                for f in self.faults
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "faults": [f.to_dict() for f in self.faults]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown fault plan fields {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text())


#: Set by :func:`mark_worker_process` in processes that are workers but
#: not multiprocessing children (the TCP remote worker agent).
_EXPLICIT_WORKER = False


def mark_worker_process() -> None:
    """Declare this process a disposable worker (safe to hard-exit).

    Multiprocessing children are detected automatically; standalone
    worker agents (``python -m repro.engine.remote_worker``) call this at
    startup so ``kill``/``worker_vanish`` faults take down the real
    process instead of degrading to a clean ``crash``.
    """
    global _EXPLICIT_WORKER
    _EXPLICIT_WORKER = True


def _in_worker_process() -> bool:
    """Whether we are inside a worker process (safe to hard-exit)."""
    import multiprocessing

    return _EXPLICIT_WORKER or multiprocessing.parent_process() is not None


@dataclass
class FaultInjector:
    """Realizes a :class:`FaultPlan` through executor/cache/reducer hooks.

    Task-fault decisions (``crash``/``kill``/``delay``) are *stateless*
    functions of ``(task, attempt)`` so they stay correct when evaluated
    inside forked workers; ``corrupt_cache`` and ``fold_error`` keep
    main-process counters (cache reads and reducer folds only happen
    there).  The injector is picklable: it ships to workers alongside
    each task.
    """

    plan: FaultPlan = field(default_factory=FaultPlan)
    _fired: Dict[int, int] = field(default_factory=dict, repr=False)

    # ---- executor hooks ------------------------------------------------

    def task_delay_s(self, task: int, attempt: int) -> float:
        """Total injected delay before evaluating ``(task, attempt)``."""
        return sum(
            f.delay_s
            for f in self.plan.faults
            if f.kind == "delay" and f.task == task and attempt < f.times
        )

    def net_delay_s(self, task: int, attempt: int) -> float:
        """Injected latency between evaluating ``task`` and returning it."""
        return sum(
            f.delay_s
            for f in self.plan.faults
            if f.kind == "net_delay" and f.task == task and attempt < f.times
        )

    def vanish_spec(self, task: int, attempt: int) -> Optional["FaultSpec"]:
        """The ``worker_vanish`` fault firing on ``(task, attempt)``, if any."""
        for f in self.plan.faults:
            if f.kind == "worker_vanish" and f.task == task and attempt < f.times:
                return f
        return None

    def crash_mode(self, task: int, attempt: int) -> Optional[str]:
        """``"vanish"``/``"kill"``/``"crash"`` when a fault fires, else ``None``."""
        if self.vanish_spec(task, attempt) is not None:
            return "vanish"
        for f in self.plan.faults:
            if f.kind == "kill" and f.task == task and attempt < f.times:
                return "kill"
        for f in self.plan.faults:
            if f.kind == "crash" and f.task == task and attempt < f.times:
                return "crash"
        return None

    def on_task(self, task: int, attempt: int) -> None:
        """Executor hook: runs in the worker just before evaluating a task.

        The remote worker agent intercepts ``vanish`` before dispatching
        (it must silence its heartbeat loop, which lives outside the task
        thread); here -- process-pool workers and serial execution --
        ``vanish`` behaves like ``kill``: a hard exit inside a worker, a
        clean retryable crash otherwise.
        """
        delay = self.task_delay_s(task, attempt)
        if delay > 0:
            time.sleep(delay)
        mode = self.crash_mode(task, attempt)
        if mode in ("kill", "vanish") and _in_worker_process():
            os._exit(KILL_EXIT_CODE)
        if mode is not None:
            raise WorkerCrash(
                f"injected {mode} fault on task {task} (attempt {attempt})"
            )

    # ---- reducer hook --------------------------------------------------

    def on_fold(self, block_index: int) -> None:
        """Streaming hook: runs in the main process before folding a block."""
        for i, f in enumerate(self.plan.faults):
            if f.kind != "fold_error" or f.task != block_index:
                continue
            if self._fired.get(i, 0) < f.times:
                self._fired[i] = self._fired.get(i, 0) + 1
                raise InjectedFault(
                    f"injected fold_error before block {block_index}"
                )

    # ---- cache hook ----------------------------------------------------

    def on_cache_read(self, key: str, path) -> None:
        """Cache hook: may corrupt the entry at ``path`` before it is read."""
        path = Path(path)
        for i, f in enumerate(self.plan.faults):
            if f.kind != "corrupt_cache" or f.key_substring not in key:
                continue
            if self._fired.get(i, 0) >= f.times or not path.exists():
                continue
            self._fired[i] = self._fired.get(i, 0) + 1
            raw = bytearray(path.read_bytes())
            if not raw:
                continue
            # Deterministic damage: XOR a seed-derived pattern over the
            # tail, which breaks the payload checksum but not the magic,
            # exercising the verify path rather than the format check.
            pattern = (self.plan.seed * 0x9E3779B1 + i) & 0xFF or 0xA5
            lo = len(raw) // 2
            for j in range(lo, len(raw)):
                raw[j] ^= pattern
            path.write_bytes(bytes(raw))


def normalize_injector(
    faults: Optional[Any],
) -> Optional[FaultInjector]:
    """Coerce a plan / injector / fault sequence to an injector (or None)."""
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultPlan):
        return FaultInjector(faults)
    if isinstance(faults, Sequence):
        return FaultInjector(FaultPlan(faults=tuple(faults)))
    raise TypeError(
        f"faults must be a FaultPlan, FaultInjector, or fault list, "
        f"got {type(faults).__name__}"
    )
