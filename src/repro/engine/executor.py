"""Parallel execution: chunked space evaluation and replication fan-out.

Two fan-out shapes cover the engine's needs:

* :func:`evaluate_space_groups_chunked` splits a k-group configuration
  space into node-count blocks -- each presence-mask block partitioned
  over its first present group's counts -- evaluates the blocks
  independently (optionally on a process pool), and concatenates in
  exactly :func:`repro.core.evaluate.evaluate_space_groups`'s row order,
  which downstream code and tests rely on.
  :func:`evaluate_space_chunked` is the two-type entry point.  A
  property test pins the chunked result against the whole-space
  evaluation bit-for-bit.
* :func:`iter_space_groups_chunked` is the streaming twin: it yields the
  same blocks as :class:`~repro.core.streaming.SpaceBlock` records *as
  workers complete them*, re-ordered deterministically, so reducers can consume
  the space while later blocks are still being evaluated -- the engine's
  ``space_mode="streaming"`` block source.
* :func:`parallel_map` fans independent replications (validation sweep
  points, noise replicates) across a process pool.

Block sizes default to the memory budget: the number of chunks is derived
from ``memory_budget_mb`` and the per-row width
(:func:`repro.core.streaming.max_rows_for_budget`), not from a fixed
node-count split, so four-group spaces split finely while a 10x10 pair
space stays in one piece.  An explicit ``n_chunks`` still pins the
partition count exactly (property tests rely on that branch).

Process pools pay a fork + pickle toll, so both helpers run serially for
small inputs (below :data:`PARALLEL_THRESHOLD_ROWS` rows / fewer than two
tasks) and degrade to serial execution if a pool cannot be created at all
(restricted sandboxes) -- parallelism here is an optimization, never a
semantic.

*Where* tasks run is delegated to a pluggable
:class:`~repro.engine.backends.ExecutionBackend`: every fan-out accepts
``backend``/``backend_options`` (a registered name like ``"serial"``,
``"process_pool"``, ``"tcp_remote"``, or a ready instance) and resolves
them through :func:`repro.engine.backends.resolve_backend` -- which
preserves the historical default (a process pool sized by
``max_workers``, serial when that pins one worker) and honors the
``REPRO_BACKEND`` environment variable.  Because every backend delivers
results in plan order and bit-identical, the choice never changes an
artifact, only where the work happened.

Failure handling is delegated to :mod:`repro.engine.resilience`: every
fan-out accepts a :class:`~repro.engine.resilience.ResiliencePolicy`
(per-task retry with deterministic backoff, per-task timeouts,
dead-worker detection with pool replacement, serial degradation) and an
optional :class:`~repro.engine.faults.FaultInjector` for deterministic
chaos runs.  Because tasks are pure and results are re-ordered to plan
order, a run that survives injected faults stays bit-identical to a
fault-free one.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core import evaluate as _evaluate
from repro.core.configuration import GroupSpec, node_settings, presence_masks
from repro.core.evaluate import ConfigSpaceResult, _concat_results, _normalize_counts
from repro.core.params import NodeModelParams
from repro.core.streaming import (
    DEFAULT_MEMORY_BUDGET_MB,
    BlockReduction,
    SpaceBlock,
    count_space_rows,
    evaluate_block_task,
    max_rows_for_budget,
    plan_block_tasks,
)
from repro.engine.backends import (
    ExecutionBackend,
    default_max_workers,  # noqa: F401  (historical import point)
    resolve_backend,
    validate_workers,
)
from repro.engine.faults import FaultInjector
from repro.engine.job import build_job, run_block
from repro.engine.resilience import Emit, ResiliencePolicy
from repro.hardware.specs import NodeSpec

#: Below this many estimated rows the fork+pickle toll outweighs the win.
PARALLEL_THRESHOLD_ROWS = 100_000

#: Adaptive planner: aim for this many blocks per worker, so one
#: straggler block cannot serialize the whole tail of the plan.
OVERSUBSCRIPTION = 4

#: Adaptive planner: blocks below this row count are dispatch overhead
#: (submission + result frames cost more than the evaluation).
MIN_ADAPTIVE_BLOCK_ROWS = 32_768

#: "No row budget": large enough that only ``min_chunks`` drives the plan.
_UNBOUNDED_ROWS = 2**62


def _plan_workers(max_workers: Optional[int], backend: ExecutionBackend) -> int:
    """The worker count that sizes a block plan.

    An explicit ``max_workers`` wins (and is validated -- a non-positive
    count raises instead of silently clamping); otherwise the backend's
    parallelism decides, so e.g. a two-agent ``tcp_remote`` backend plans
    two-chunk-minimum partitions.  The same rule feeds
    :func:`space_block_plan` and the fan-outs, keeping checkpoint plan
    fingerprints consistent with actual execution.
    """
    if max_workers is not None:
        return validate_workers(max_workers, name="max_workers")
    return max(1, backend.parallelism)


def _chunk(values: np.ndarray, n_chunks: int) -> List[np.ndarray]:
    """Split ``values`` into up to ``n_chunks`` contiguous, order-preserving parts."""
    n_chunks = max(1, min(int(n_chunks), values.size))
    return [c for c in np.array_split(values, n_chunks) if c.size]


# One node-count block (top-level so process pools can pickle it); the
# canonical implementation lives with the block planner in core.streaming.
_evaluate_block = evaluate_block_task


def _plan_tasks(
    group_specs: Tuple[GroupSpec, ...],
    workers: int,
    n_chunks: Optional[int],
    memory_budget_mb: Optional[float],
    inflight_blocks: int = 1,
    chunk_rows: Optional[int] = None,
):
    """The deterministic block plan for a chunked/streamed evaluation.

    Precedence: an explicit ``chunk_rows`` pins the per-block row budget
    exactly (the ``--chunk-rows`` override); an explicit ``n_chunks``
    pins the partition count per presence-mask block (no row budget);
    otherwise the plan is *adaptive* -- block rows target
    ``total_rows / (workers * OVERSUBSCRIPTION)`` (floored at
    :data:`MIN_ADAPTIVE_BLOCK_ROWS` so tiny blocks don't drown in
    dispatch overhead), with the memory budget
    (:func:`~repro.core.streaming.max_rows_for_budget` over
    ``inflight_blocks``) as a hard cap and at least ``workers``
    partitions so the pool stays busy.  Single-worker plans skip the
    oversubscription math and take the budget-sized blocks directly --
    bit-for-bit the historical serial plan.
    """
    if chunk_rows is not None:
        return plan_block_tasks(
            group_specs, max(1, int(chunk_rows)), min_chunks=1
        )
    if n_chunks is not None:
        return plan_block_tasks(
            group_specs, _UNBOUNDED_ROWS, min_chunks=max(1, int(n_chunks))
        )
    budget = (
        DEFAULT_MEMORY_BUDGET_MB if memory_budget_mb is None
        else float(memory_budget_mb)
    )
    budget_rows = max_rows_for_budget(budget, len(group_specs), inflight_blocks)
    target_rows = budget_rows
    if workers > 1:
        total_rows = count_space_rows(group_specs)
        per_task = -(-total_rows // (workers * OVERSUBSCRIPTION))
        target_rows = min(budget_rows, max(MIN_ADAPTIVE_BLOCK_ROWS, per_task))
    return plan_block_tasks(
        group_specs, max(1, target_rows), min_chunks=workers
    )


def space_block_plan(
    group_specs: Sequence[GroupSpec],
    max_workers: Optional[int] = None,
    n_chunks: Optional[int] = None,
    memory_budget_mb: Optional[float] = None,
    backend: Optional[Any] = None,
    backend_options: Optional[Mapping[str, Any]] = None,
    chunk_rows: Optional[int] = None,
):
    """The exact block plan :func:`iter_space_groups_chunked` will stream.

    Exposed so checkpointing can fingerprint the decomposition (block
    boundaries depend on the worker count -- explicit or the resolved
    backend's parallelism -- and the memory budget) before a single
    block is evaluated.
    """
    group_specs = tuple(group_specs)
    be = resolve_backend(backend, backend_options, max_workers=max_workers)
    workers = _plan_workers(max_workers, be)
    window = workers + 1
    return _plan_tasks(
        group_specs, workers, n_chunks, memory_budget_mb,
        inflight_blocks=window if workers > 1 else 1,
        chunk_rows=chunk_rows,
    )


def evaluate_space_groups_chunked(
    group_specs: Sequence[GroupSpec],
    params: Mapping[str, NodeModelParams],
    units: float,
    max_workers: Optional[int] = None,
    n_chunks: Optional[int] = None,
    memory_budget_mb: Optional[float] = None,
    policy: Optional[ResiliencePolicy] = None,
    injector: Optional[FaultInjector] = None,
    emit: Optional[Emit] = None,
    backend: Optional[Any] = None,
    backend_options: Optional[Mapping[str, Any]] = None,
    chunk_rows: Optional[int] = None,
) -> ConfigSpaceResult:
    """Evaluate a k-group space in node-count blocks, optionally parallel.

    Semantics and row order are identical to
    :func:`repro.core.evaluate.evaluate_space_groups`; only the execution
    shape differs.  ``max_workers`` caps the process pool (``1`` forces
    in-process execution); ``n_chunks`` pins the number of chunks per
    presence-mask block, and when omitted the chunk size is derived from
    ``memory_budget_mb`` and the per-row width (at least one chunk per
    worker).  Small spaces take the direct path -- chunking is pure
    overhead below :data:`PARALLEL_THRESHOLD_ROWS` rows.
    ``backend``/``backend_options`` pick the execution backend (see
    :func:`repro.engine.backends.resolve_backend`); results are
    bit-identical whichever runs the blocks.
    """
    group_specs = tuple(group_specs)
    counts = [_normalize_counts(gs.counts, gs.max_nodes) for gs in group_specs]
    pos = [c[c > 0] for c in counts]

    be = resolve_backend(backend, backend_options, max_workers=max_workers)
    workers = _plan_workers(max_workers, be)
    masks = list(presence_masks(group_specs))
    rows = _estimate_rows(group_specs, pos, masks)
    small = (
        rows < PARALLEL_THRESHOLD_ROWS
        and n_chunks is None
        and chunk_rows is None
    )
    if small or not masks:
        # Degenerate count lists also land here; the reference path
        # raises its own error for them.
        return _evaluate.evaluate_space_groups(group_specs, params, units)

    tasks = _plan_tasks(
        group_specs, workers, n_chunks, memory_budget_mb,
        chunk_rows=chunk_rows,
    )
    if len(tasks) < 2:
        return _evaluate.evaluate_space_groups(group_specs, params, units)

    job = build_job(group_specs, params, units, tasks)
    blocks = be.run_tasks(
        run_block, [(job.job_id, i) for i in range(len(tasks))],
        policy=policy, injector=injector, emit=emit, job=job,
    )
    return _concat_results(blocks)


def _space_job_stream(
    group_specs: Tuple[GroupSpec, ...],
    params: Mapping[str, NodeModelParams],
    units: float,
    max_workers: Optional[int],
    n_chunks: Optional[int],
    memory_budget_mb: Optional[float],
    chunk_rows: Optional[int],
    policy: Optional[ResiliencePolicy],
    injector: Optional[FaultInjector],
    emit: Optional[Emit],
    start_block: int,
    backend: Optional[Any],
    backend_options: Optional[Mapping[str, Any]],
    reduce: Optional[Mapping[str, Any]],
) -> Iterator[Tuple[int, int, Any]]:
    """Plan, build the :class:`~repro.engine.job.SpaceJob`, stream results.

    The shared core of :func:`iter_space_groups_chunked` (``reduce`` is
    ``None``; results are block columns) and
    :func:`iter_space_reductions` (``reduce`` holds the fold options;
    results are :class:`~repro.core.streaming.BlockReduction`\\ s).
    Yields ``(index, start_row, result)`` in plan order.
    """
    if units <= 0:
        raise ValueError("job must contain positive work")
    if not group_specs:
        raise ValueError("need at least one node-type group")
    be = resolve_backend(backend, backend_options, max_workers=max_workers)
    workers = _plan_workers(max_workers, be)
    window = workers + 1
    tasks = _plan_tasks(
        group_specs, workers, n_chunks, memory_budget_mb,
        inflight_blocks=window if workers > 1 else 1,
        chunk_rows=chunk_rows,
    )
    if not tasks:
        # Let the reference path raise its own error message.
        _evaluate.evaluate_space_groups(group_specs, params, units)
        raise AssertionError("unreachable: empty plan must raise above")
    if not 0 <= start_block <= len(tasks):
        raise ValueError(
            f"start_block {start_block} outside 0..{len(tasks)} for this plan"
        )
    job = build_job(group_specs, params, units, tasks, reduce=reduce)
    for idx, result in be.submit_blocks(
        run_block,
        [(job.job_id, i) for i in range(len(tasks))],
        window=window,
        policy=policy,
        injector=injector,
        emit=emit,
        start_index=start_block,
        job=job,
    ):
        yield idx, job.starts[idx], result


def iter_space_groups_chunked(
    group_specs: Sequence[GroupSpec],
    params: Mapping[str, NodeModelParams],
    units: float,
    max_workers: Optional[int] = None,
    n_chunks: Optional[int] = None,
    memory_budget_mb: Optional[float] = None,
    policy: Optional[ResiliencePolicy] = None,
    injector: Optional[FaultInjector] = None,
    emit: Optional[Emit] = None,
    start_block: int = 0,
    backend: Optional[Any] = None,
    backend_options: Optional[Mapping[str, Any]] = None,
    chunk_rows: Optional[int] = None,
) -> Iterator[SpaceBlock]:
    """Stream a k-group space as :class:`SpaceBlock`\\ s, backend-evaluated.

    Blocks are yielded in the exact global row order of
    :func:`repro.core.evaluate.evaluate_space_groups` -- a sliding window
    of at most ``workers + 1`` blocks is in flight, and completed blocks
    are re-ordered before yielding, so concatenating the stream
    reproduces the materialized space bit-for-bit while peak memory
    stays within ``memory_budget_mb``.  The re-ordering is the
    *backend's* contract (:meth:`~repro.engine.backends.ExecutionBackend.submit_blocks`
    yields in plan order whatever the completion order), so the reducer
    feed is identical under serial, pooled, or remote execution; local
    backends still fall back to serial in-process evaluation, mid-stream
    if necessary, when no pool is available.

    ``policy``/``injector`` select the fault-tolerance behavior (see
    :func:`repro.engine.resilience.iter_tasks_resilient`): failed tasks
    are retried with deterministic backoff, dead workers replace the
    pool, and abandoning the iterator terminates the workers instead of
    leaking them.  ``start_block`` skips the first blocks of the plan
    without evaluating them -- checkpoint resume; the yielded blocks
    keep their global indices and row offsets.
    """
    for idx, start_row, data in _space_job_stream(
        tuple(group_specs), params, units, max_workers, n_chunks,
        memory_budget_mb, chunk_rows, policy, injector, emit, start_block,
        backend, backend_options, reduce=None,
    ):
        yield SpaceBlock(index=idx, start_row=start_row, data=data)


def iter_space_reductions(
    group_specs: Sequence[GroupSpec],
    params: Mapping[str, NodeModelParams],
    units: float,
    max_workers: Optional[int] = None,
    n_chunks: Optional[int] = None,
    memory_budget_mb: Optional[float] = None,
    policy: Optional[ResiliencePolicy] = None,
    injector: Optional[FaultInjector] = None,
    emit: Optional[Emit] = None,
    start_block: int = 0,
    backend: Optional[Any] = None,
    backend_options: Optional[Mapping[str, Any]] = None,
    chunk_rows: Optional[int] = None,
    composition: bool = True,
    group_frontiers: bool = True,
    queueing: Optional[Mapping[str, Any]] = None,
) -> Iterator[BlockReduction]:
    """Stream a k-group space as worker-folded reducer states.

    The ``reduce_at="worker"`` twin of :func:`iter_space_groups_chunked`:
    each block task evaluates its rows *and* folds them through local
    reducers (:func:`~repro.core.streaming.fold_block_reduction`), so
    only the compact :class:`~repro.core.streaming.BlockReduction`
    states cross the worker boundary -- kilobytes per block instead of
    the block's full column stack.  States arrive in plan order;
    :func:`~repro.core.streaming.merge_block_reductions` folds them into
    a :class:`~repro.core.streaming.ReducedSpace` bit-identical to the
    coordinator-side pass.  A retried task re-evaluates and re-folds its
    block from the first row, so the retry/replace/degrade ladder and
    ``start_block`` resume work exactly as they do for raw blocks.
    ``queueing``, when given, is the keyword mapping for the worker-side
    :class:`~repro.queueing.dispatcher.Figure10Reducer`.
    """
    reduce_options: dict = {
        "composition": bool(composition),
        "group_frontiers": bool(group_frontiers),
        "queueing": None if queueing is None else dict(queueing),
    }
    for _, _, reduction in _space_job_stream(
        tuple(group_specs), params, units, max_workers, n_chunks,
        memory_budget_mb, chunk_rows, policy, injector, emit, start_block,
        backend, backend_options, reduce=reduce_options,
    ):
        yield reduction


def evaluate_space_chunked(
    spec_a: NodeSpec,
    max_a: int,
    spec_b: NodeSpec,
    max_b: int,
    params: Mapping[str, NodeModelParams],
    units: float,
    counts_a: Optional[Sequence[int]] = None,
    counts_b: Optional[Sequence[int]] = None,
    settings_a: Optional[Sequence[Tuple[int, float]]] = None,
    settings_b: Optional[Sequence[Tuple[int, float]]] = None,
    max_workers: Optional[int] = None,
    n_chunks: Optional[int] = None,
    backend: Optional[Any] = None,
    backend_options: Optional[Mapping[str, Any]] = None,
) -> ConfigSpaceResult:
    """Two-type entry point of :func:`evaluate_space_groups_chunked`.

    Signature mirrors :func:`repro.core.evaluate.evaluate_space`.
    """
    if max_a < 0 or max_b < 0:
        raise ValueError("maximum node counts must be non-negative")
    if max_a == 0 and max_b == 0:
        raise ValueError("space is empty with zero nodes of both types")
    return evaluate_space_groups_chunked(
        (
            GroupSpec(spec_a, max_a, counts=counts_a, settings=settings_a),
            GroupSpec(spec_b, max_b, counts=counts_b, settings=settings_b),
        ),
        params,
        units,
        max_workers=max_workers,
        n_chunks=n_chunks,
        backend=backend,
        backend_options=backend_options,
    )


def _estimate_rows(
    group_specs: Sequence[GroupSpec],
    pos: Sequence[np.ndarray],
    masks: Sequence[Tuple[int, ...]],
) -> int:
    dims = [
        len(node_settings(gs.spec, gs.settings)) for gs in group_specs
    ]
    total = 0
    for present in masks:
        block = 1
        for g in present:
            block *= int(pos[g].size) * dims[g]
        total += block
    return total


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    max_workers: Optional[int] = None,
    policy: Optional[ResiliencePolicy] = None,
    injector: Optional[FaultInjector] = None,
    emit: Optional[Emit] = None,
    backend: Optional[Any] = None,
    backend_options: Optional[Mapping[str, Any]] = None,
) -> List[Any]:
    """Map a picklable top-level function over items, pooled when possible.

    Order is preserved.  Used to fan sweep replications
    (:mod:`repro.validation.sweeps`) and noise replicates across cores;
    falls back to a serial map when pooling is unavailable or pointless,
    and inherits the resilient runner's retry/pool-replacement behavior
    for transient worker failures.  ``backend``/``backend_options``
    select where the map runs, like every other fan-out.
    """
    items = list(items)
    be = resolve_backend(backend, backend_options, max_workers=max_workers)
    if max_workers is not None:
        validate_workers(max_workers, name="max_workers")
    return be.map(
        fn,
        items,
        policy=policy,
        injector=injector,
        emit=emit,
    )
