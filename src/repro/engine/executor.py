"""Parallel execution: chunked space evaluation and replication fan-out.

Two fan-out shapes cover the engine's needs:

* :func:`evaluate_space_chunked` splits a configuration space into
  node-count blocks -- the heterogeneous block partitioned over the
  type-a counts, then each homogeneous block -- evaluates the blocks
  independently (optionally on a process pool), and concatenates in
  exactly :func:`repro.core.evaluate.evaluate_space`'s row order, which
  downstream code and tests rely on.  A property test pins the chunked
  result against the whole-space evaluation bit-for-bit.
* :func:`parallel_map` fans independent replications (validation sweep
  points, noise replicates) across a process pool.

Process pools pay a fork + pickle toll, so both helpers run serially for
small inputs (below :data:`PARALLEL_THRESHOLD_ROWS` rows / fewer than two
tasks) and degrade to serial execution if a pool cannot be created at all
(restricted sandboxes) -- parallelism here is an optimization, never a
semantic.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core import evaluate as _evaluate
from repro.core.evaluate import ConfigSpaceResult, _concat_results, _normalize_counts
from repro.core.params import NodeModelParams
from repro.hardware.specs import NodeSpec

#: Below this many estimated rows the fork+pickle toll outweighs the win.
PARALLEL_THRESHOLD_ROWS = 100_000


def default_max_workers() -> int:
    """Worker count when the caller does not pin one."""
    return max(1, min(8, os.cpu_count() or 1))


def _chunk(values: np.ndarray, n_chunks: int) -> List[np.ndarray]:
    """Split ``values`` into up to ``n_chunks`` contiguous, order-preserving parts."""
    n_chunks = max(1, min(int(n_chunks), values.size))
    return [c for c in np.array_split(values, n_chunks) if c.size]


def _evaluate_block(
    spec_a: NodeSpec,
    max_a: int,
    spec_b: NodeSpec,
    max_b: int,
    params: Mapping[str, NodeModelParams],
    units: float,
    counts_a: Sequence[int],
    counts_b: Sequence[int],
    settings_a: Optional[Sequence[Tuple[int, float]]],
    settings_b: Optional[Sequence[Tuple[int, float]]],
) -> ConfigSpaceResult:
    """One node-count block (top-level so process pools can pickle it)."""
    return _evaluate.evaluate_space(
        spec_a,
        max_a,
        spec_b,
        max_b,
        params,
        units,
        counts_a=counts_a,
        counts_b=counts_b,
        settings_a=settings_a,
        settings_b=settings_b,
    )


def evaluate_space_chunked(
    spec_a: NodeSpec,
    max_a: int,
    spec_b: NodeSpec,
    max_b: int,
    params: Mapping[str, NodeModelParams],
    units: float,
    counts_a: Optional[Sequence[int]] = None,
    counts_b: Optional[Sequence[int]] = None,
    settings_a: Optional[Sequence[Tuple[int, float]]] = None,
    settings_b: Optional[Sequence[Tuple[int, float]]] = None,
    max_workers: Optional[int] = None,
    n_chunks: Optional[int] = None,
) -> ConfigSpaceResult:
    """Evaluate a configuration space in node-count blocks, optionally parallel.

    Semantics and row order are identical to
    :func:`repro.core.evaluate.evaluate_space`; only the execution shape
    differs.  ``max_workers`` caps the process pool (``<= 1`` forces
    in-process execution); ``n_chunks`` pins the number of type-a blocks
    (defaults to the worker count).  Small spaces take the direct path --
    chunking is pure overhead below :data:`PARALLEL_THRESHOLD_ROWS` rows.
    """
    counts_a_arr = _normalize_counts(counts_a, max_a)
    counts_b_arr = _normalize_counts(counts_b, max_b)
    pos_a = counts_a_arr[counts_a_arr > 0]
    pos_b = counts_b_arr[counts_b_arr > 0]

    workers = default_max_workers() if max_workers is None else max(1, int(max_workers))
    chunks = workers if n_chunks is None else max(1, int(n_chunks))
    rows = _estimate_rows(spec_a, pos_a, spec_b, pos_b)
    small = rows < PARALLEL_THRESHOLD_ROWS and n_chunks is None
    if chunks == 1 or pos_a.size < 2 or small:
        return _evaluate.evaluate_space(
            spec_a,
            max_a,
            spec_b,
            max_b,
            params,
            units,
            counts_a=counts_a,
            counts_b=counts_b,
            settings_a=settings_a,
            settings_b=settings_b,
        )

    # Block decomposition mirroring evaluate_space's row order: the
    # heterogeneous block partitioned over type-a counts, then the a-only
    # block (again over type-a counts), then the b-only block.
    tasks: List[Tuple[List[int], List[int]]] = []
    if pos_a.size > 0 and pos_b.size > 0:
        for part in _chunk(pos_a, chunks):
            tasks.append((part.tolist(), pos_b.tolist()))
    if 0 in counts_b_arr and pos_a.size > 0:
        for part in _chunk(pos_a, chunks):
            tasks.append((part.tolist(), [0]))
    if 0 in counts_a_arr and pos_b.size > 0:
        tasks.append(([0], pos_b.tolist()))
    if not tasks:
        # Degenerate count lists; let the reference path raise its error.
        return _evaluate.evaluate_space(
            spec_a, max_a, spec_b, max_b, params, units,
            counts_a=counts_a, counts_b=counts_b,
            settings_a=settings_a, settings_b=settings_b,
        )

    arg_sets = [
        (spec_a, max_a, spec_b, max_b, params, units, ca, cb, settings_a, settings_b)
        for ca, cb in tasks
    ]
    blocks = _run_tasks(_evaluate_block, arg_sets, workers)
    return _concat_results(blocks)


def _estimate_rows(
    spec_a: NodeSpec, pos_a: np.ndarray, spec_b: NodeSpec, pos_b: np.ndarray
) -> int:
    dims_a = spec_a.cores.count * len(spec_a.cores.pstates_ghz)
    dims_b = spec_b.cores.count * len(spec_b.cores.pstates_ghz)
    return int(
        pos_a.size * dims_a * pos_b.size * dims_b
        + pos_a.size * dims_a
        + pos_b.size * dims_b
    )


def _run_tasks(
    fn: Callable[..., Any],
    arg_sets: Sequence[Tuple],
    max_workers: int,
) -> List[Any]:
    """Run ``fn(*args)`` for each arg tuple, pooled when it pays off."""
    if max_workers <= 1 or len(arg_sets) < 2:
        return [fn(*args) for args in arg_sets]
    try:
        with ProcessPoolExecutor(max_workers=min(max_workers, len(arg_sets))) as pool:
            futures = [pool.submit(fn, *args) for args in arg_sets]
            return [f.result() for f in futures]
    except (OSError, PermissionError, RuntimeError):
        # No fork / no semaphores available: correctness over speed.
        return [fn(*args) for args in arg_sets]


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    max_workers: Optional[int] = None,
) -> List[Any]:
    """Map a picklable top-level function over items, pooled when possible.

    Order is preserved.  Used to fan sweep replications
    (:mod:`repro.validation.sweeps`) and noise replicates across cores;
    falls back to a serial map when pooling is unavailable or pointless.
    """
    items = list(items)
    workers = default_max_workers() if max_workers is None else max(1, int(max_workers))
    if workers <= 1 or len(items) < 2:
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
            return list(pool.map(fn, items))
    except (OSError, PermissionError, RuntimeError):
        return [fn(item) for item in items]
