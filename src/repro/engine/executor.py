"""Parallel execution: chunked space evaluation and replication fan-out.

Two fan-out shapes cover the engine's needs:

* :func:`evaluate_space_groups_chunked` splits a k-group configuration
  space into node-count blocks -- each presence-mask block partitioned
  over its first present group's counts -- evaluates the blocks
  independently (optionally on a process pool), and concatenates in
  exactly :func:`repro.core.evaluate.evaluate_space_groups`'s row order,
  which downstream code and tests rely on.
  :func:`evaluate_space_chunked` is the two-type entry point.  A
  property test pins the chunked result against the whole-space
  evaluation bit-for-bit.
* :func:`parallel_map` fans independent replications (validation sweep
  points, noise replicates) across a process pool.

Process pools pay a fork + pickle toll, so both helpers run serially for
small inputs (below :data:`PARALLEL_THRESHOLD_ROWS` rows / fewer than two
tasks) and degrade to serial execution if a pool cannot be created at all
(restricted sandboxes) -- parallelism here is an optimization, never a
semantic.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core import evaluate as _evaluate
from repro.core.configuration import GroupSpec, node_settings, presence_masks
from repro.core.evaluate import ConfigSpaceResult, _concat_results, _normalize_counts
from repro.core.params import NodeModelParams
from repro.hardware.specs import NodeSpec

#: Below this many estimated rows the fork+pickle toll outweighs the win.
PARALLEL_THRESHOLD_ROWS = 100_000


def default_max_workers() -> int:
    """Worker count when the caller does not pin one."""
    return max(1, min(8, os.cpu_count() or 1))


def _chunk(values: np.ndarray, n_chunks: int) -> List[np.ndarray]:
    """Split ``values`` into up to ``n_chunks`` contiguous, order-preserving parts."""
    n_chunks = max(1, min(int(n_chunks), values.size))
    return [c for c in np.array_split(values, n_chunks) if c.size]


def _evaluate_block(
    group_specs: Tuple[GroupSpec, ...],
    params: Mapping[str, NodeModelParams],
    units: float,
    task_counts: Tuple[Tuple[int, ...], ...],
) -> ConfigSpaceResult:
    """One node-count block (top-level so process pools can pickle it)."""
    adjusted = tuple(
        dataclasses.replace(gs, counts=counts)
        for gs, counts in zip(group_specs, task_counts)
    )
    return _evaluate.evaluate_space_groups(adjusted, params, units)


def evaluate_space_groups_chunked(
    group_specs: Sequence[GroupSpec],
    params: Mapping[str, NodeModelParams],
    units: float,
    max_workers: Optional[int] = None,
    n_chunks: Optional[int] = None,
) -> ConfigSpaceResult:
    """Evaluate a k-group space in node-count blocks, optionally parallel.

    Semantics and row order are identical to
    :func:`repro.core.evaluate.evaluate_space_groups`; only the execution
    shape differs.  ``max_workers`` caps the process pool (``<= 1``
    forces in-process execution); ``n_chunks`` pins the number of chunks
    per presence-mask block (defaults to the worker count).  Small
    spaces take the direct path -- chunking is pure overhead below
    :data:`PARALLEL_THRESHOLD_ROWS` rows.
    """
    group_specs = tuple(group_specs)
    counts = [_normalize_counts(gs.counts, gs.max_nodes) for gs in group_specs]
    pos = [c[c > 0] for c in counts]

    workers = default_max_workers() if max_workers is None else max(1, int(max_workers))
    chunks = workers if n_chunks is None else max(1, int(n_chunks))
    masks = list(presence_masks(group_specs))
    rows = _estimate_rows(group_specs, pos, masks)
    lead_width = max((pos[present[0]].size for present in masks), default=0)
    small = rows < PARALLEL_THRESHOLD_ROWS and n_chunks is None
    if chunks == 1 or lead_width < 2 or small or not masks:
        # Degenerate count lists also land here; the reference path
        # raises its own error for them.
        return _evaluate.evaluate_space_groups(group_specs, params, units)

    # Block decomposition mirroring evaluate_space_groups' row order:
    # every presence-mask block partitioned over its first present
    # group's counts, mask blocks in canonical (descending) order.
    tasks: List[Tuple[Tuple[int, ...], ...]] = []
    for present in masks:
        lead = present[0]
        for part in _chunk(pos[lead], chunks):
            task_counts = tuple(
                tuple(int(c) for c in part)
                if g == lead
                else (tuple(int(c) for c in pos[g]) if g in present else (0,))
                for g in range(len(group_specs))
            )
            tasks.append(task_counts)

    arg_sets = [(group_specs, params, units, tc) for tc in tasks]
    blocks = _run_tasks(_evaluate_block, arg_sets, workers)
    return _concat_results(blocks)


def evaluate_space_chunked(
    spec_a: NodeSpec,
    max_a: int,
    spec_b: NodeSpec,
    max_b: int,
    params: Mapping[str, NodeModelParams],
    units: float,
    counts_a: Optional[Sequence[int]] = None,
    counts_b: Optional[Sequence[int]] = None,
    settings_a: Optional[Sequence[Tuple[int, float]]] = None,
    settings_b: Optional[Sequence[Tuple[int, float]]] = None,
    max_workers: Optional[int] = None,
    n_chunks: Optional[int] = None,
) -> ConfigSpaceResult:
    """Two-type entry point of :func:`evaluate_space_groups_chunked`.

    Signature mirrors :func:`repro.core.evaluate.evaluate_space`.
    """
    if max_a < 0 or max_b < 0:
        raise ValueError("maximum node counts must be non-negative")
    if max_a == 0 and max_b == 0:
        raise ValueError("space is empty with zero nodes of both types")
    return evaluate_space_groups_chunked(
        (
            GroupSpec(spec_a, max_a, counts=counts_a, settings=settings_a),
            GroupSpec(spec_b, max_b, counts=counts_b, settings=settings_b),
        ),
        params,
        units,
        max_workers=max_workers,
        n_chunks=n_chunks,
    )


def _estimate_rows(
    group_specs: Sequence[GroupSpec],
    pos: Sequence[np.ndarray],
    masks: Sequence[Tuple[int, ...]],
) -> int:
    dims = [
        len(node_settings(gs.spec, gs.settings)) for gs in group_specs
    ]
    total = 0
    for present in masks:
        block = 1
        for g in present:
            block *= int(pos[g].size) * dims[g]
        total += block
    return total


def _run_tasks(
    fn: Callable[..., Any],
    arg_sets: Sequence[Tuple],
    max_workers: int,
) -> List[Any]:
    """Run ``fn(*args)`` for each arg tuple, pooled when it pays off."""
    if max_workers <= 1 or len(arg_sets) < 2:
        return [fn(*args) for args in arg_sets]
    try:
        with ProcessPoolExecutor(max_workers=min(max_workers, len(arg_sets))) as pool:
            futures = [pool.submit(fn, *args) for args in arg_sets]
            return [f.result() for f in futures]
    except (OSError, PermissionError, RuntimeError):
        # No fork / no semaphores available: correctness over speed.
        return [fn(*args) for args in arg_sets]


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    max_workers: Optional[int] = None,
) -> List[Any]:
    """Map a picklable top-level function over items, pooled when possible.

    Order is preserved.  Used to fan sweep replications
    (:mod:`repro.validation.sweeps`) and noise replicates across cores;
    falls back to a serial map when pooling is unavailable or pointless.
    """
    items = list(items)
    workers = default_max_workers() if max_workers is None else max(1, int(max_workers))
    if workers <= 1 or len(items) < 2:
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
            return list(pool.map(fn, items))
    except (OSError, PermissionError, RuntimeError):
        return [fn(item) for item in items]
