"""Pluggable execution backends: one dispatch seam for every fan-out.

Everything the engine runs in parallel -- chunked space evaluation,
streamed block sources, replication maps -- flows through one abstract
:class:`ExecutionBackend`.  A backend is *where tasks run*; the plan
(which blocks exist, in what order) and the artifacts (bit-identical
however the blocks were computed) belong to the caller.  Three
implementations ship:

``serial``
    In-process execution, one task at a time -- the zero-dependency
    reference every other backend must match bit-for-bit.
``process_pool``
    The historical ``concurrent.futures`` process pool, with the full
    resilience stack (retry, dead-worker pool replacement, timeouts,
    serial degradation).  ``shared_memory=True`` adds a single-host
    fast path: block results travel through
    :mod:`multiprocessing.shared_memory` segments instead of the result
    pipe (see :mod:`repro.engine.shm`), skipping the pickle round-trip
    for the columnar arrays.
``tcp_remote``
    Block tasks shipped to worker agents on other hosts over a
    length-prefixed socket protocol (:mod:`repro.engine.remote`), with
    heartbeat-timeout liveness standing in for ``BrokenProcessPool``:
    a vanished worker triggers the same typed retry/replacement path.

Selection is threaded end to end: ``Scenario.backend`` /
``backend_options`` (excluded from the cache identity -- artifacts are
bit-identical across backends), ``RunContext(backend=...)``, CLI
``--backend/--backend-option/--worker-hosts``, and the ``REPRO_BACKEND``
environment variable (with ``REPRO_BACKEND_OPTIONS`` as a JSON dict) for
running an unmodified test suite against a different backend.

Every backend passes one shared conformance suite
(``tests/engine/test_backends.py``): plan-order delivery, bit-identical
outputs, fault-plan recovery, idempotent teardown.
"""

from __future__ import annotations

import abc
import atexit
import json
import os
import threading
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.engine.faults import FaultInjector
from repro.engine.resilience import (
    Emit,
    ResiliencePolicy,
    iter_tasks_resilient,
)

#: Environment variable naming the default backend (same values as
#: ``Scenario.backend``); ``REPRO_BACKEND_OPTIONS`` may hold a JSON dict
#: of backend options.  Used by the CI matrix leg that replays the whole
#: tier-1 suite over ``tcp_remote`` localhost workers.
BACKEND_ENV_VAR = "REPRO_BACKEND"
BACKEND_OPTIONS_ENV_VAR = "REPRO_BACKEND_OPTIONS"


def default_max_workers() -> int:
    """Worker count when the caller does not pin one."""
    return max(1, min(8, os.cpu_count() or 1))


def validate_workers(value: Any, name: str = "workers") -> int:
    """A positive integer worker count, or a naming ``ValueError``."""
    try:
        workers = int(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"{name} must be a positive integer (or None for auto-sizing), "
            f"got {value!r}"
        ) from None
    if workers < 1:
        raise ValueError(
            f"{name} must be a positive integer (or None for auto-sizing), "
            f"got {value!r}"
        )
    return workers


class ExecutionBackend(abc.ABC):
    """Where the engine's pure tasks execute.

    The contract every implementation must honor (and the conformance
    suite enforces):

    * :meth:`submit_blocks` yields ``(index, result)`` strictly in
      ascending index order, whatever the completion order -- the
      plan-order guarantee the streaming reducers and ``_concat_results``
      rely on;
    * results are **bit-identical** to in-process evaluation: a backend
      moves bytes, it never rounds them;
    * recovery follows the :class:`~repro.engine.resilience.ResiliencePolicy`:
      typed failures retry with deterministic backoff, vanished workers
      are replaced within the pool-failure budget, then execution
      degrades to in-process serial rather than failing the run;
    * :meth:`close` is idempotent and leak-free -- after it returns, no
      worker process started by this backend is still alive.

    Class attributes double as capability flags: ``supports_shared_memory``
    (results can travel out-of-band) and ``is_remote`` (workers live in
    other processes/hosts that must be able to ``import repro``).
    """

    #: Registry key; subclasses override.
    name: ClassVar[str] = ""
    #: Accepted constructor options, option name -> short description.
    options: ClassVar[Mapping[str, str]] = {}
    #: Whether results can bypass the pickle pipe on this backend.
    supports_shared_memory: ClassVar[bool] = False
    #: Whether tasks leave this host (workers need an importable repro).
    is_remote: ClassVar[bool] = False
    #: Whether instances hold live resources worth sharing process-wide.
    stateful: ClassVar[bool] = False

    def __init__(self) -> None:
        self._closed = False

    # ---- execution -----------------------------------------------------

    @abc.abstractmethod
    def submit_blocks(
        self,
        fn: Callable[..., Any],
        args_list: Sequence[Tuple],
        window: Optional[int] = None,
        policy: Optional[ResiliencePolicy] = None,
        injector: Optional[FaultInjector] = None,
        emit: Optional[Emit] = None,
        start_index: int = 0,
        job: Optional[Any] = None,
    ) -> Iterator[Tuple[int, Any]]:
        """Run ``fn(*args_list[i])`` for ``i >= start_index``, in order.

        At most ``window`` tasks are in flight or buffered for
        re-ordering (``None``: unbounded); ``start_index`` supports
        checkpoint resume (earlier tasks are never evaluated).  ``job``
        is an optional :class:`~repro.engine.job.SpaceJob` the backend
        must install in every process that may run a task (including
        this one, for serial degradation) *before* the task executes --
        the once-per-worker shipment of a fan-out's immutable inputs.
        """

    def run_tasks(
        self,
        fn: Callable[..., Any],
        args_list: Sequence[Tuple],
        policy: Optional[ResiliencePolicy] = None,
        injector: Optional[FaultInjector] = None,
        emit: Optional[Emit] = None,
        job: Optional[Any] = None,
    ) -> List[Any]:
        """Collect :meth:`submit_blocks` into an ordered result list."""
        return [
            result
            for _, result in self.submit_blocks(
                fn, args_list, policy=policy, injector=injector, emit=emit,
                job=job,
            )
        ]

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        policy: Optional[ResiliencePolicy] = None,
        injector: Optional[FaultInjector] = None,
        emit: Optional[Emit] = None,
    ) -> List[Any]:
        """Order-preserving map of a one-argument task over ``items``."""
        return self.run_tasks(
            fn,
            [(item,) for item in items],
            policy=policy,
            injector=injector,
            emit=emit,
        )

    # ---- capability / lifecycle ----------------------------------------

    @property
    @abc.abstractmethod
    def parallelism(self) -> int:
        """How many tasks can make progress at once (plan sizing hint)."""

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release workers/sockets.  Idempotent; safe to call twice."""
        self._closed = True

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} parallelism={self.parallelism}>"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Type[ExecutionBackend]] = {}
_SHARED: Dict[Tuple[str, Tuple[Tuple[str, Any], ...]], ExecutionBackend] = {}
_SHARED_LOCK = threading.Lock()


def register_backend(cls: Type[ExecutionBackend]) -> Type[ExecutionBackend]:
    """Register a backend class under ``cls.name`` (usable as decorator)."""
    if not cls.name:
        raise ValueError("a backend class must define a non-empty name")
    _REGISTRY[cls.name] = cls
    return cls


def backend_names() -> List[str]:
    """Registered backend names, sorted."""
    _ensure_builtin_backends()
    return sorted(_REGISTRY)


def backend_class(name: str) -> Type[ExecutionBackend]:
    """The registered class for ``name``, or a naming ``ValueError``."""
    _ensure_builtin_backends()
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown execution backend {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]


def validate_backend_options(name: str, options: Mapping[str, Any]) -> Dict[str, Any]:
    """Check option *keys* against the backend's declared set.

    Unknown keys raise a ``ValueError`` naming the bad key and the
    accepted options (value validation happens in the constructor).
    Returns a plain dict copy.
    """
    cls = backend_class(name)
    options = dict(options or {})
    for key in options:
        if key not in cls.options:
            raise ValueError(
                f"unknown option {key!r} for backend {name!r}; "
                f"accepted: {sorted(cls.options)}"
            )
    return options


def create_backend(
    name: str,
    options: Optional[Mapping[str, Any]] = None,
    max_workers: Optional[int] = None,
) -> ExecutionBackend:
    """Instantiate backend ``name`` with validated ``options``.

    ``max_workers`` seeds the ``workers`` option where the backend
    accepts one and the options did not pin it -- how the historical
    ``--workers`` knob keeps meaning "pool width" under every backend.
    """
    cls = backend_class(name)
    opts = validate_backend_options(name, options or {})
    if max_workers is not None and "workers" in cls.options and "workers" not in opts:
        opts["workers"] = validate_workers(max_workers, name="max_workers")
    return cls(**opts)


def _options_fingerprint(options: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(
        (k, tuple(v) if isinstance(v, (list, tuple)) else v)
        for k, v in sorted(options.items())
    )


def shared_backend(
    name: str,
    options: Optional[Mapping[str, Any]] = None,
    max_workers: Optional[int] = None,
) -> ExecutionBackend:
    """A process-wide instance of backend ``name`` for these options.

    Stateless backends are constructed fresh (cheap, nothing to share);
    stateful ones (``tcp_remote`` keeps spawned workers and sockets) are
    cached so repeated runs reuse the same worker fleet, and closed at
    interpreter exit so no worker outlives the process.
    """
    cls = backend_class(name)
    if not cls.stateful:
        return create_backend(name, options, max_workers=max_workers)
    opts = validate_backend_options(name, options or {})
    if max_workers is not None and "workers" in cls.options and "workers" not in opts:
        opts["workers"] = validate_workers(max_workers, name="max_workers")
    key = (name, _options_fingerprint(opts))
    with _SHARED_LOCK:
        backend = _SHARED.get(key)
        if backend is None or backend.closed:
            backend = cls(**opts)
            _SHARED[key] = backend
    return backend


def close_shared_backends() -> None:
    """Tear down every cached shared backend (idempotent)."""
    with _SHARED_LOCK:
        backends = list(_SHARED.values())
        _SHARED.clear()
    for backend in backends:
        backend.close()


atexit.register(close_shared_backends)


def _env_backend() -> Tuple[Optional[str], Dict[str, Any]]:
    """Backend (name, options) requested through the environment."""
    name = os.environ.get(BACKEND_ENV_VAR) or None
    options: Dict[str, Any] = {}
    raw = os.environ.get(BACKEND_OPTIONS_ENV_VAR)
    if name is not None and raw:
        try:
            options = dict(json.loads(raw))
        except (ValueError, TypeError):
            raise ValueError(
                f"{BACKEND_OPTIONS_ENV_VAR} must be a JSON object, got {raw!r}"
            ) from None
    return name, options


def resolve_backend(
    backend: Optional[Any] = None,
    options: Optional[Mapping[str, Any]] = None,
    max_workers: Optional[int] = None,
) -> ExecutionBackend:
    """The backend a fan-out should run on.

    ``backend`` may be an :class:`ExecutionBackend` instance (used as
    is; the caller owns its lifecycle), a registered name, or ``None``
    -- which consults ``REPRO_BACKEND`` and finally falls back to the
    historical heuristic: ``process_pool`` sized by ``max_workers``
    (``serial`` when that pins a single worker).  Named/env selections
    come from :func:`shared_backend`, so a stateful backend's workers
    are reused across calls and reaped at exit.
    """
    if isinstance(backend, ExecutionBackend):
        if options:
            raise ValueError(
                "backend options only apply when selecting by name; "
                "configure the instance instead"
            )
        return backend
    if backend is not None and not isinstance(backend, str):
        raise TypeError(
            f"backend must be an ExecutionBackend, a name, or None, "
            f"got {type(backend).__name__}"
        )
    name = backend
    merged: Dict[str, Any] = dict(options or {})
    if name is None:
        env_name, env_options = _env_backend()
        if env_name is not None:
            name = env_name
            merged = {**env_options, **merged}
    if name is None:
        workers = (
            default_max_workers() if max_workers is None
            else validate_workers(max_workers, name="max_workers")
        )
        name = "serial" if workers <= 1 else "process_pool"
    return shared_backend(name, merged, max_workers=max_workers)


# ---------------------------------------------------------------------------
# Built-in backends
# ---------------------------------------------------------------------------


@register_backend
class SerialBackend(ExecutionBackend):
    """In-process, one task at a time: the bit-identity reference.

    Shares the resilient runner's serial path, so typed failures are
    still retried with the policy's deterministic backoff -- a fault
    plan behaves the same here as on any pool, minus the process churn.
    """

    name = "serial"
    options: ClassVar[Mapping[str, str]] = {}

    @property
    def parallelism(self) -> int:
        return 1

    def submit_blocks(
        self,
        fn: Callable[..., Any],
        args_list: Sequence[Tuple],
        window: Optional[int] = None,
        policy: Optional[ResiliencePolicy] = None,
        injector: Optional[FaultInjector] = None,
        emit: Optional[Emit] = None,
        start_index: int = 0,
        job: Optional[Any] = None,
    ) -> Iterator[Tuple[int, Any]]:
        if job is not None:
            from repro.engine.job import install_job

            install_job(job)
        return iter_tasks_resilient(
            fn,
            args_list,
            max_workers=1,
            window=window,
            policy=policy,
            injector=injector,
            emit=emit,
            start_index=start_index,
        )


@register_backend
class ProcessPoolBackend(ExecutionBackend):
    """The historical single-host process pool, lifted behind the seam.

    Execution semantics are exactly :func:`~repro.engine.resilience.iter_tasks_resilient`
    -- sliding submission window, plan-order delivery, retry/pool
    replacement/serial degradation -- with pools created per fan-out and
    torn down when it completes or is abandoned (the instance itself
    holds no processes, so ``close()`` has nothing to leak).

    ``shared_memory=True`` routes block results through
    :mod:`repro.engine.shm`: workers park the columnar arrays in one
    POSIX shared-memory segment each and ship back a tiny descriptor,
    skipping the pickle round-trip on single-host many-core runs.
    Results are bit-identical either way.
    """

    name = "process_pool"
    options: ClassVar[Mapping[str, str]] = {
        "workers": "pool width (positive int; default: auto-sized)",
        "shared_memory": "ship block results via shared memory (bool)",
    }
    supports_shared_memory = True

    def __init__(
        self,
        workers: Optional[int] = None,
        shared_memory: bool = False,
    ) -> None:
        super().__init__()
        self.workers = (
            default_max_workers() if workers is None
            else validate_workers(workers)
        )
        if not isinstance(shared_memory, bool):
            raise ValueError(
                f"shared_memory must be a bool, got {shared_memory!r}"
            )
        self.shared_memory = shared_memory

    @property
    def parallelism(self) -> int:
        return self.workers

    def submit_blocks(
        self,
        fn: Callable[..., Any],
        args_list: Sequence[Tuple],
        window: Optional[int] = None,
        policy: Optional[ResiliencePolicy] = None,
        injector: Optional[FaultInjector] = None,
        emit: Optional[Emit] = None,
        start_index: int = 0,
        job: Optional[Any] = None,
    ) -> Iterator[Tuple[int, Any]]:
        initializer = None
        initargs: Tuple = ()
        if job is not None:
            from repro.engine.job import install_job

            # In-process for the serial-degradation path; as the pool
            # initializer so spawned (and replacement-pool) workers get
            # the job without per-task re-pickling.  Forked workers
            # additionally inherit the registry for free.
            install_job(job)
            initializer = install_job
            initargs = (job,)
        task_fn = fn
        decode = None
        if self.shared_memory:
            from repro.engine.shm import ShmTaskWrapper, decode_shared

            task_fn = ShmTaskWrapper(fn)
            decode = decode_shared
        for index, result in iter_tasks_resilient(
            task_fn,
            args_list,
            max_workers=self.workers,
            window=window,
            policy=policy,
            injector=injector,
            emit=emit,
            start_index=start_index,
            initializer=initializer,
            initargs=initargs,
        ):
            yield index, (decode(result) if decode is not None else result)


def _ensure_builtin_backends() -> None:
    """Import-register backends living in their own modules."""
    if "tcp_remote" not in _REGISTRY:
        from repro.engine import remote  # noqa: F401  (registers itself)
