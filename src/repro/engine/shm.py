"""Shared-memory result transport for single-host many-core pools.

A pooled space evaluation returns :class:`~repro.core.evaluate.ConfigSpaceResult`
column stacks -- for large blocks, megabytes of float64/int64 arrays that
``concurrent.futures`` would otherwise pickle in the worker, copy through
a pipe, and unpickle in the parent.  This module gives the process-pool
backend a zero-pickle fast path: the worker copies the columns into one
:class:`multiprocessing.shared_memory.SharedMemory` segment and returns a
tiny :class:`ShmResultRef` descriptor (segment name, per-column shapes/
dtypes/offsets); the parent maps the segment read-only and builds
zero-copy column views straight over the mapping (unlinking the segment
immediately -- the kernel keeps the memory while the views live), with
a copy-out fallback for platforms without a real ``/dev/shm``.

The payload bytes travel verbatim either way, so results are
**bit-identical** to the pickle path -- the transport changes where the
bytes travel, never what they are.  Everything degrades gracefully:

* results that are not ``ConfigSpaceResult`` pass through untouched;
* in-process (serial) execution skips the segment entirely -- there is
  no pipe to avoid;
* a platform without usable POSIX shared memory raises on the *first*
  encode, which the resilient runner surfaces as an ordinary task error.

Lifecycle: the worker creates the segment and immediately unregisters it
from its own ``resource_tracker`` (the parent owns cleanup -- without
this, the worker's tracker would whine about, or double-unlink, a
segment the parent already released); the parent unlinks after decoding.
A segment whose descriptor is lost to a dying pool leaks until the OS
reclaims ``/dev/shm`` -- the same torn-state window any shared-memory
protocol has -- which is why the fault-injection chaos tests run the shm
path too.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Tuple

import numpy as np

from repro.core.evaluate import ConfigSpaceResult

#: The columns shipped through the segment, in a fixed order.
_COLUMNS = ("n", "cores", "f", "units", "times_s", "energies_j")


@dataclass(frozen=True)
class ShmResultRef:
    """A :class:`ConfigSpaceResult` parked in a shared-memory segment.

    ``columns`` holds ``(name, shape, dtype_str, offset)`` per column in
    :data:`_COLUMNS` order; the descriptor itself is a few hundred bytes
    however large the block is.
    """

    segment: str
    columns: Tuple[Tuple[str, Tuple[int, ...], str, int], ...]
    nodes: Tuple[str, ...]
    units_total: float


def _unregister_from_tracker(shm) -> None:
    """Opt this process's resource tracker out of owning ``shm``.

    The decoding side unlinks the segment; leaving the creating worker's
    tracker registered would double-unlink (KeyError noise at worker
    exit) or, worse, reap a segment the parent has not read yet.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def encode_shared(result: Any) -> Any:
    """Worker-side: park a ``ConfigSpaceResult`` in shared memory.

    Anything else (plain map results, error sentinels) passes through
    unchanged, so the wrapper is safe around arbitrary task functions.
    """
    if not isinstance(result, ConfigSpaceResult):
        return result
    from multiprocessing import shared_memory

    arrays = [np.ascontiguousarray(getattr(result, name)) for name in _COLUMNS]
    total = sum(a.nbytes for a in arrays)
    shm = shared_memory.SharedMemory(create=True, size=max(1, total))
    try:
        columns = []
        offset = 0
        for name, array in zip(_COLUMNS, arrays):
            view = np.ndarray(
                array.shape, dtype=array.dtype, buffer=shm.buf, offset=offset
            )
            view[...] = array
            columns.append((name, tuple(array.shape), array.dtype.str, offset))
            offset += array.nbytes
        ref = ShmResultRef(
            segment=shm.name,
            columns=tuple(columns),
            nodes=result.nodes,
            units_total=result.units_total,
        )
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    _unregister_from_tracker(shm)
    shm.close()
    return ref


def _decode_zero_copy(obj: ShmResultRef) -> Any:
    """Map the segment read-only and build column *views* over it.

    No byte of the columns is ever copied: the segment file is opened
    directly from ``/dev/shm``, ``mmap``-ed ``ACCESS_READ``, and
    unlinked immediately -- POSIX keeps the memory alive while the
    mapping exists, and the mapping lives exactly as long as the numpy
    arrays referencing it (``np.frombuffer`` holds the mmap object), so
    when the block's arrays are garbage-collected the kernel reclaims
    the segment with no explicit close anywhere.  That sidesteps
    ``SharedMemory.close()``'s ``BufferError`` on exported views *and*
    its leaked-fd failure mode.  Returns ``None`` when the platform has
    no ``/dev/shm`` (caller falls back to the copy path).
    """
    import mmap

    path = f"/dev/shm/{obj.segment.lstrip('/')}"
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return None
    try:
        mapped = mmap.mmap(fd, 0, access=mmap.ACCESS_READ)
    except (OSError, ValueError):
        return None
    finally:
        os.close(fd)
    try:
        os.unlink(path)
    except OSError:
        pass
    fields = {}
    for name, shape, dtype_str, offset in obj.columns:
        dtype = np.dtype(dtype_str)
        count = 1
        for dim in shape:
            count *= int(dim)
        fields[name] = np.frombuffer(
            mapped, dtype=dtype, count=count, offset=offset
        ).reshape(shape)
    return ConfigSpaceResult(
        nodes=obj.nodes, units_total=obj.units_total, **fields
    )


def decode_shared(obj: Any) -> Any:
    """Parent-side: rebuild the result and release the segment.

    Prefers the zero-copy mapping (:func:`_decode_zero_copy`) -- the
    reducers only ever *read* block columns, so read-only views are as
    good as owned arrays and skip one full copy of every block.  Falls
    back to the historical copy-out path where ``/dev/shm`` is not a
    real filesystem.
    """
    if not isinstance(obj, ShmResultRef):
        return obj
    result = _decode_zero_copy(obj)
    if result is not None:
        return result
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=obj.segment)
    try:
        fields = {}
        for name, shape, dtype, offset in obj.columns:
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
            fields[name] = view.copy()
    finally:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
    return ConfigSpaceResult(
        nodes=obj.nodes, units_total=obj.units_total, **fields
    )


class ShmTaskWrapper:
    """Picklable task wrapper: evaluate, then encode through shared memory.

    Wraps the task function the backend submits to the pool.  Encoding
    only happens inside a forked worker -- in-process (serial-degraded)
    execution returns the raw result, since a segment round-trip within
    one process is pure overhead.
    """

    __slots__ = ("fn",)

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, *args):
        from repro.engine.faults import _in_worker_process

        result = self.fn(*args)
        if not _in_worker_process():
            return result
        return encode_shared(result)

    def __reduce__(self):
        return (ShmTaskWrapper, (self.fn,))
