"""Content-addressed result cache: memory first, optional disk layer.

The engine caches the two expensive pipeline stages -- per-node
calibration and configuration-space evaluation -- keyed by a
:func:`~repro.engine.hashing.stable_hash` of *everything* that determines
the result (node spec, workload spec, noise model, seed, space bounds,
model parameters).  Identical requests in one process are answered from a
dict; an optional on-disk layer under ``results/.cache/`` carries results
across processes (pickle, written atomically).

The cache returns the *same object* on a memory hit -- cached values are
treated as immutable, which every engine-cached type satisfies
(``NodeModelParams`` is frozen; ``ConfigSpaceResult`` arrays are never
mutated by library code).
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from repro.engine.hashing import stable_hash


@dataclass
class CacheStats:
    """Hit/miss counters, exposed for tests and reporting sinks."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses + self.disk_hits

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
        }


@dataclass
class ResultCache:
    """Memoization table keyed by stable content hashes.

    Parameters
    ----------
    disk_dir:
        When set, results are also pickled under this directory
        (conventionally ``results/.cache/``) and later processes can warm
        from it.  Disk failures (unreadable entry, full disk) degrade to
        recomputation, never to an exception.
    """

    disk_dir: Optional[Path] = None
    stats: CacheStats = field(default_factory=CacheStats)
    _memory: Dict[str, Any] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.disk_dir is not None:
            self.disk_dir = Path(self.disk_dir)
            self.disk_dir.mkdir(parents=True, exist_ok=True)

    def __len__(self) -> int:
        return len(self._memory)

    def key(self, kind: str, key_obj: Any) -> str:
        """The cache key for a (kind, content) pair."""
        return f"{kind}-{stable_hash(key_obj)}"

    def get_or_compute(
        self,
        kind: str,
        key_obj: Any,
        compute: Callable[[], Any],
    ) -> Any:
        """Return the cached value for ``(kind, key_obj)``, computing on miss.

        ``kind`` namespaces the key (``"params"``, ``"space"``, ...) so
        unrelated stages can never collide even on equal content.
        """
        key = self.key(kind, key_obj)
        if key in self._memory:
            self.stats.hits += 1
            return self._memory[key]
        value = self._disk_read(key)
        if value is not None:
            self.stats.disk_hits += 1
            self._memory[key] = value
            return value
        self.stats.misses += 1
        value = compute()
        self._memory[key] = value
        self._disk_write(key, value)
        return value

    def clear(self) -> None:
        """Drop every in-memory entry (the disk layer is left alone)."""
        self._memory.clear()

    # ---- disk layer ----------------------------------------------------

    def _disk_path(self, key: str) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / f"{key}.pkl"

    def _disk_read(self, key: str) -> Optional[Any]:
        if self.disk_dir is None:
            return None
        path = self._disk_path(key)
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None

    def _disk_write(self, key: str, value: Any) -> None:
        if self.disk_dir is None:
            return
        path = self._disk_path(key)
        try:
            fd, tmp = tempfile.mkstemp(dir=self.disk_dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except (OSError, pickle.PicklingError, AttributeError, TypeError):
            pass  # a cold disk cache is always acceptable
