"""Content-addressed result cache: memory first, optional disk layer.

The engine caches the two expensive pipeline stages -- per-node
calibration and configuration-space evaluation -- keyed by a
:func:`~repro.engine.hashing.stable_hash` of *everything* that determines
the result (node spec, workload spec, noise model, seed, space bounds,
model parameters).  Identical requests in one process are answered from a
dict; an optional on-disk layer under ``results/.cache/`` carries results
across processes.

Disk entries are written atomically (temp file + ``os.replace``, so a
killed process can never leave a truncated entry under the real name)
and carry a content checksum: the format is a magic header, the SHA-256
of the pickled payload, then the payload.  Every read verifies the
checksum; an entry that fails (truncated, bit-flipped, wrong magic, or
a pre-checksum legacy entry) is *quarantined* -- moved aside into a
``quarantine/`` subdirectory, counted in :attr:`CacheStats.quarantined`,
reported through the optional event callback -- and treated as a miss,
never raised mid-run.

The cache returns the *same object* on a memory hit -- cached values are
treated as immutable, which every engine-cached type satisfies
(``NodeModelParams`` is frozen; ``ConfigSpaceResult`` arrays are never
mutated by library code).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from repro.engine.faults import CacheCorrupt, FaultInjector
from repro.engine.hashing import stable_hash

#: On-disk entry header; bump the digit when the entry format changes so
#: older layouts are quarantined instead of misread.
CACHE_MAGIC = b"RPCACHE1\n"

#: Directory name (under ``disk_dir``) where corrupt entries are moved.
QUARANTINE_DIR = "quarantine"


@dataclass
class CacheStats:
    """Hit/miss counters, exposed for tests and reporting sinks."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    quarantined: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses + self.disk_hits

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "quarantined": self.quarantined,
        }


@dataclass
class ResultCache:
    """Memoization table keyed by stable content hashes.

    Parameters
    ----------
    disk_dir:
        When set, results are also pickled under this directory
        (conventionally ``results/.cache/``) and later processes can warm
        from it.  Disk failures (unreadable entry, full disk) degrade to
        recomputation, never to an exception; entries failing checksum
        verification are quarantined and recomputed.
    on_event:
        Optional callback ``on_event(event, **payload)`` (the engine
        wires :meth:`RunContext.emit` here) notified of quarantines.
    fault_injector:
        Deterministic chaos hook (:class:`~repro.engine.faults.FaultInjector`);
        when set, its ``corrupt_cache`` faults damage entries just before
        they are read, exercising the verify/quarantine path.
    """

    disk_dir: Optional[Path] = None
    stats: CacheStats = field(default_factory=CacheStats)
    on_event: Optional[Callable[..., None]] = None
    fault_injector: Optional[FaultInjector] = None
    _memory: Dict[str, Any] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.disk_dir is not None:
            self.disk_dir = Path(self.disk_dir)
            self.disk_dir.mkdir(parents=True, exist_ok=True)

    def __len__(self) -> int:
        return len(self._memory)

    def key(self, kind: str, key_obj: Any) -> str:
        """The cache key for a (kind, content) pair."""
        return f"{kind}-{stable_hash(key_obj)}"

    # The memory-tier API: the persistent artifact store
    # (:class:`repro.store.ArtifactStore`) fronts its sqlite layer with a
    # ResultCache instead of growing a second in-process table, so one
    # process shares a single memoization surface (and one set of
    # counters) across both layers.

    def peek(self, key: str, default: Any = None) -> Any:
        """The stored value for a pre-built ``key``, without computing.

        Does not touch the hit/miss counters -- callers layering their
        own accounting (the artifact store) count at their level.
        """
        return self._memory.get(key, default)

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under a pre-built ``key`` in the memory tier."""
        self._memory[key] = value

    def get_or_compute(
        self,
        kind: str,
        key_obj: Any,
        compute: Callable[[], Any],
    ) -> Any:
        """Return the cached value for ``(kind, key_obj)``, computing on miss.

        ``kind`` namespaces the key (``"params"``, ``"space"``, ...) so
        unrelated stages can never collide even on equal content.
        """
        key = self.key(kind, key_obj)
        if key in self._memory:
            self.stats.hits += 1
            return self._memory[key]
        value = self._disk_read(key)
        if value is not None:
            self.stats.disk_hits += 1
            self._memory[key] = value
            return value
        self.stats.misses += 1
        value = compute()
        self._memory[key] = value
        self._disk_write(key, value)
        return value

    def clear(self) -> None:
        """Drop every in-memory entry (the disk layer is left alone)."""
        self._memory.clear()

    # ---- disk layer ----------------------------------------------------

    def _emit(self, event: str, **payload: Any) -> None:
        if self.on_event is not None:
            self.on_event(event, **payload)

    def _disk_path(self, key: str) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / f"{key}.pkl"

    def _verify_entry(self, raw: bytes) -> Any:
        """Decode one on-disk entry, raising :class:`CacheCorrupt` on damage."""
        header = len(CACHE_MAGIC) + 32
        if len(raw) < header or not raw.startswith(CACHE_MAGIC):
            raise CacheCorrupt("bad magic or truncated header")
        digest = raw[len(CACHE_MAGIC):header]
        payload = raw[header:]
        if hashlib.sha256(payload).digest() != digest:
            raise CacheCorrupt("payload checksum mismatch")
        try:
            return pickle.loads(payload)
        except Exception as exc:  # checksum passed but unpicklable: stale class?
            raise CacheCorrupt(f"payload failed to unpickle: {exc}") from exc

    def _quarantine(self, key: str, path: Path, reason: str) -> None:
        """Move a corrupt entry aside so it can never poison another run."""
        qdir = self.disk_dir / QUARANTINE_DIR
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
        except OSError:
            try:  # quarantine dir unavailable: deleting still un-poisons
                os.unlink(path)
            except OSError:
                pass
        self.stats.quarantined += 1
        self._emit("cache.quarantined", key=key, reason=reason)

    def _disk_read(self, key: str) -> Optional[Any]:
        if self.disk_dir is None:
            return None
        path = self._disk_path(key)
        if self.fault_injector is not None:
            self.fault_injector.on_cache_read(key, path)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            return self._verify_entry(raw)
        except CacheCorrupt as exc:
            self._quarantine(key, path, str(exc))
            return None

    def _disk_write(self, key: str, value: Any) -> None:
        if self.disk_dir is None:
            return
        path = self._disk_path(key)
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, AttributeError, TypeError):
            return  # a cold disk cache is always acceptable
        try:
            fd, tmp = tempfile.mkstemp(dir=self.disk_dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(CACHE_MAGIC)
                    fh.write(hashlib.sha256(payload).digest())
                    fh.write(payload)
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            pass  # full disk / permissions: recomputation beats raising
