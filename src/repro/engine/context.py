"""The run context: one object threading seed, cache, catalog, and sinks.

Every pipeline stage -- simulator-backed calibration, vectorized space
evaluation, frontier/region/queueing analysis -- runs *through* a
:class:`RunContext`.  The context owns:

* **RNG discipline**: a :class:`~repro.util.rng.RngStream` tree rooted at
  the context seed, with the exact child-derivation convention the
  reporting layer has always used (``"params-<node>"`` children for
  calibration campaigns), so engine-routed runs reproduce pre-engine
  outputs bit-for-bit;
* **the result cache**: calibrations and :class:`ConfigSpaceResult`s are
  memoized content-addressed (see :mod:`repro.engine.cache`), so a
  process that builds Fig. 4, Fig. 10, and three examples performs each
  distinct calibration and space evaluation exactly once;
* **the hardware/workload registries**: catalog lookups plus
  per-context extension registration (an Atom-class third node type, a
  synthetic workload) without touching global state;
* **reporting sinks**: callables receiving ``(event, payload)`` pairs as
  stages start and finish, for progress lines, logging, or test capture;
* **the executor knobs**: worker counts and the execution backend
  (serial / process pool / TCP remote, see
  :mod:`repro.engine.backends`) for chunked space evaluation and
  replication fan-out.

Use :func:`default_context` for the shared process-wide context (what the
CLI, the figure builders, and the benchmarks share), or construct an
isolated one in tests.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core import calibration as _calibration
from repro.core.configuration import GroupSpec
from repro.core.evaluate import ConfigSpaceResult, _concat_results
from repro.core.params import NodeModelParams
from repro.core.streaming import (
    ReducedSpace,
    SpaceBlock,
    merge_block_reductions,
    reduce_space_blocks,
)
from repro.engine import executor as _executor
from repro.engine.cache import ResultCache
from repro.engine.checkpoint import CheckpointManager
from repro.engine.faults import FaultInjector, normalize_injector
from repro.engine.hashing import stable_hash
from repro.engine.resilience import ResiliencePolicy
from repro.hardware import catalog as _catalog
from repro.hardware.specs import NodeSpec
from repro.simulator.noise import CALIBRATED_NOISE, NoiseModel
from repro.util.rng import RngStream, SeedLike
from repro.workloads import suite as _suite
from repro.workloads.base import WorkloadSpec

Sink = Callable[[str, Dict[str, Any]], None]

#: Row count above which a search batch fans out over the execution
#: backend (one chunk per this many rows); below it, evaluating
#: in-process beats the serialization overhead.
_SEARCH_PARALLEL_ROWS = 8192


def _plain_search_key(search: Mapping[str, Any], seed: int) -> Tuple:
    """A search config as a deterministic, content-addressable tuple."""
    options = dict(search.get("options") or {})
    return (
        str(search.get("strategy", "random")),
        None if search.get("budget_rows") is None else int(search["budget_rows"]),
        None if search.get("batch_rows") is None else int(search["batch_rows"]),
        int(seed),
        tuple(sorted(
            (k, tuple(v) if isinstance(v, (list, tuple)) else v)
            for k, v in options.items()
        )),
    )


def _plain_queueing_key(queue_kw: Optional[Mapping[str, Any]]) -> Any:
    """Queueing knobs as a deterministic, content-addressable tuple."""
    if queue_kw is None:
        return None
    return tuple(
        sorted(
            (k, tuple(v) if isinstance(v, (list, tuple)) else v)
            for k, v in queue_kw.items()
        )
    )


class RunContext:
    """Shared state for one family of engine runs.

    Parameters
    ----------
    seed:
        Default root seed when a call does not bring its own.
    cache:
        Result cache; defaults to a fresh in-memory one.  Pass
        ``ResultCache(disk_dir=Path("results/.cache"))`` for the on-disk
        layer.
    sinks:
        Reporting callbacks ``sink(event, payload)``.
    max_workers:
        Process-pool width for chunked evaluation and replication
        fan-out; ``None`` auto-sizes, ``1`` forces serial.
    memory_budget_mb:
        Default peak-memory budget for streaming/chunked space
        evaluation; ``None`` uses
        :data:`repro.core.streaming.DEFAULT_MEMORY_BUDGET_MB`.
    resilience:
        Fault-tolerance policy (retries, backoff, timeouts, pool
        replacement; see :class:`~repro.engine.resilience.ResiliencePolicy`)
        applied to every pooled stage; ``None`` uses the defaults.
    faults:
        Deterministic fault-injection plan -- a
        :class:`~repro.engine.faults.FaultPlan`, ``FaultInjector``, or
        sequence of :class:`~repro.engine.faults.FaultSpec` -- threaded
        through the executor, the cache, and the reducer pass.  ``None``
        (the default) injects nothing.
    store:
        Optional persistent artifact store
        (:class:`repro.store.ArtifactStore`) consulted by
        :func:`~repro.engine.runner.run_scenario` before computing any
        stage; construct it with ``memory=ctx.cache`` so the two layers
        share one memoization surface.
    backend, backend_options:
        Default execution backend for every fan-out this context runs --
        a registered name (``"serial"``, ``"process_pool"``,
        ``"tcp_remote"``), an :class:`~repro.engine.backends.ExecutionBackend`
        instance, or ``None`` for the historical auto-selection (see
        :func:`repro.engine.backends.resolve_backend`; the
        ``REPRO_BACKEND`` environment variable is honored).  Artifacts
        and cache keys are bit-identical across backends.
    """

    def __init__(
        self,
        seed: int = 0,
        cache: Optional[ResultCache] = None,
        sinks: Sequence[Sink] = (),
        max_workers: Optional[int] = None,
        memory_budget_mb: Optional[float] = None,
        resilience: Optional[ResiliencePolicy] = None,
        faults: Optional[Any] = None,
        backend: Optional[Any] = None,
        backend_options: Optional[Mapping[str, Any]] = None,
        store: Optional[Any] = None,
    ):
        self.seed = seed
        self.cache = cache if cache is not None else ResultCache()
        #: Optional persistent :class:`~repro.store.ArtifactStore`; when
        #: set, ``run_scenario`` loads/persists stage artifacts through
        #: it (the store's memory tier should be this context's cache).
        self.store = store
        self.sinks: List[Sink] = list(sinks)
        self.max_workers = max_workers
        self.memory_budget_mb = memory_budget_mb
        self.resilience = resilience
        self.backend = backend
        self.backend_options = (
            dict(backend_options) if backend_options is not None else None
        )
        self.faults: Optional[FaultInjector] = normalize_injector(faults)
        if self.cache.on_event is None:
            self.cache.on_event = self.emit
        if self.faults is not None and self.cache.fault_injector is None:
            self.cache.fault_injector = self.faults
        self._extra_nodes: Dict[str, NodeSpec] = {}
        self._extra_workloads: Dict[str, WorkloadSpec] = {}

    # ---- reporting -----------------------------------------------------

    def emit(self, event: str, **payload: Any) -> None:
        """Publish a progress/reporting event to every sink."""
        for sink in self.sinks:
            sink(event, payload)

    # ---- registries ----------------------------------------------------

    def register_node(self, spec: NodeSpec) -> None:
        """Make an extension node type resolvable by name in this context."""
        self._extra_nodes[spec.name] = spec

    def register_workload(self, spec: WorkloadSpec) -> None:
        """Make an extension workload resolvable by name in this context."""
        self._extra_workloads[spec.name] = spec

    def resolve_node(self, name: str) -> NodeSpec:
        if name in self._extra_nodes:
            return self._extra_nodes[name]
        return _catalog.node_by_name(name)

    def resolve_workload(self, name: str) -> WorkloadSpec:
        if name in self._extra_workloads:
            return self._extra_workloads[name]
        return _suite.workload_by_name(name)

    # ---- RNG discipline ------------------------------------------------

    def rng_stream(self, seed: Optional[SeedLike] = None) -> RngStream:
        """The reproducible stream tree rooted at ``seed`` (context default)."""
        return RngStream(self.seed if seed is None else seed)

    # ---- backend selection ---------------------------------------------

    def _backend_args(
        self, backend: Optional[Any], backend_options: Optional[Mapping[str, Any]]
    ) -> Tuple[Optional[Any], Optional[Mapping[str, Any]]]:
        """Per-call backend override, falling back to the context default."""
        if backend is None and backend_options is None:
            return self.backend, self.backend_options
        return backend, backend_options

    # ---- cached pipeline stages ----------------------------------------

    def params(
        self,
        node: NodeSpec,
        workload: WorkloadSpec,
        calibrated: bool = False,
        noise: NoiseModel = CALIBRATED_NOISE,
        seed: Optional[SeedLike] = None,
        label: Optional[str] = None,
        index: int = 0,
        baseline_units: float = 5_000.0,
        repetitions: int = 3,
        batched: bool = True,
    ) -> NodeModelParams:
        """Model inputs for one (node, workload) pair, memoized.

        Ground truth is derived from the specs; ``calibrated=True`` runs
        the trace-driven campaign on the simulated testbed, seeding it
        from ``RngStream(seed).child(label, index)`` with
        ``label="params-<node>"`` by default -- the exact derivation the
        reporting layer used pre-engine, so figures are unchanged.

        ``batched`` selects the measurement-layer implementation (see
        :func:`repro.core.calibration.calibrate_node`); both paths are
        bit-identical, so it deliberately stays out of the cache key.
        """
        if not calibrated:
            key = ("ground-truth", node, workload)
            return self.cache.get_or_compute(
                "params", key, lambda: _calibration.ground_truth_params(node, workload)
            )
        seed = self.seed if seed is None else seed
        label = label if label is not None else f"params-{node.name}"

        def compute() -> NodeModelParams:
            rng = RngStream(seed).child(label, index).rng
            return _calibration.calibrate_node(
                node,
                workload,
                noise=noise,
                seed=rng,
                baseline_units=baseline_units,
                repetitions=repetitions,
                batched=batched,
            )

        if not isinstance(seed, int):
            # Generator/SeedSequence seeds are stateful: not content-addressable.
            return compute()
        key = (
            "calibrated", node, workload, noise, seed, label, index,
            baseline_units, repetitions,
        )
        return self.cache.get_or_compute("params", key, compute)

    def params_for(
        self,
        nodes: Iterable[NodeSpec],
        workload: WorkloadSpec,
        calibrated: bool = False,
        noise: NoiseModel = CALIBRATED_NOISE,
        seed: Optional[SeedLike] = None,
        batched: bool = True,
    ) -> Dict[str, NodeModelParams]:
        """Model inputs for several node types, keyed by node name."""
        return {
            node.name: self.params(
                node, workload, calibrated=calibrated, noise=noise,
                seed=seed, index=index, batched=batched,
            )
            for index, node in enumerate(nodes)
        }

    def space_groups(
        self,
        group_specs: Sequence[GroupSpec],
        params: Mapping[str, NodeModelParams],
        units: float,
        backend: Optional[Any] = None,
        backend_options: Optional[Mapping[str, Any]] = None,
        chunk_rows: Optional[int] = None,
    ) -> ConfigSpaceResult:
        """Evaluate a k-group configuration space, memoized, chunk-parallel.

        Signature mirrors :func:`repro.core.evaluate.evaluate_space_groups`;
        the result is cached on the full content of every group axis and
        every model parameter, so two identical requests anywhere in the
        process evaluate once -- whether they arrive through this method
        or through the two-type :meth:`space` sugar.  ``backend``
        overrides the context's execution backend for this call;
        ``chunk_rows`` pins the block row budget.  The cache key is
        independent of both (the bytes are identical).
        """
        group_specs = tuple(
            gs if isinstance(gs, GroupSpec) else GroupSpec(*gs)
            for gs in group_specs
        )
        backend, backend_options = self._backend_args(backend, backend_options)
        key = self._space_key(group_specs, params, units)

        def compute() -> ConfigSpaceResult:
            start = time.perf_counter()
            result = _executor.evaluate_space_groups_chunked(
                group_specs, params, units, max_workers=self.max_workers,
                policy=self.resilience, injector=self.faults, emit=self.emit,
                backend=backend, backend_options=backend_options,
                chunk_rows=chunk_rows,
            )
            self.emit(
                "space.evaluated",
                rows=len(result),
                elapsed_s=time.perf_counter() - start,
            )
            return result

        return self.cache.get_or_compute("space", key, compute)

    @staticmethod
    def _space_key(
        group_specs: Sequence[GroupSpec],
        params: Mapping[str, NodeModelParams],
        units: float,
    ) -> Tuple:
        """Content key of one space evaluation (shared by both modes)."""
        return (
            tuple(
                (gs.spec, int(gs.max_nodes), gs.counts, gs.settings)
                for gs in group_specs
            ),
            {name: params[name] for name in sorted(params)},
            units,
        )

    def space_blocks(
        self,
        group_specs: Sequence[GroupSpec],
        params: Mapping[str, NodeModelParams],
        units: float,
        memory_budget_mb: Optional[float] = None,
        start_block: int = 0,
        backend: Optional[Any] = None,
        backend_options: Optional[Mapping[str, Any]] = None,
        chunk_rows: Optional[int] = None,
    ) -> Iterable[SpaceBlock]:
        """Stream a k-group space as memory-bounded blocks, in row order.

        The streaming twin of :meth:`space_groups`: blocks come from the
        pool-backed :func:`repro.engine.executor.iter_space_groups_chunked`
        (deterministically re-ordered), sized so that in-flight blocks
        stay under ``memory_budget_mb`` (context default when omitted).
        ``start_block`` skips the first blocks of the plan (checkpoint
        resume).  The stream itself is not cached -- cache the
        *reductions* via :meth:`space_reduced`.
        """
        group_specs = tuple(
            gs if isinstance(gs, GroupSpec) else GroupSpec(*gs)
            for gs in group_specs
        )
        budget = (
            self.memory_budget_mb if memory_budget_mb is None
            else memory_budget_mb
        )
        backend, backend_options = self._backend_args(backend, backend_options)
        return _executor.iter_space_groups_chunked(
            group_specs,
            params,
            units,
            max_workers=self.max_workers,
            memory_budget_mb=budget,
            policy=self.resilience,
            injector=self.faults,
            emit=self.emit,
            start_block=start_block,
            backend=backend,
            backend_options=backend_options,
            chunk_rows=chunk_rows,
        )

    def space_reduced(
        self,
        group_specs: Sequence[GroupSpec],
        params: Mapping[str, NodeModelParams],
        units: float,
        memory_budget_mb: Optional[float] = None,
        queueing: Optional[Mapping[str, Any]] = None,
        consumers: Sequence[Any] = (),
        checkpoint: Optional[CheckpointManager] = None,
        resume: bool = False,
        backend: Optional[Any] = None,
        backend_options: Optional[Mapping[str, Any]] = None,
        reduce_at: Optional[str] = None,
        chunk_rows: Optional[int] = None,
    ) -> ReducedSpace:
        """Stream-reduce a k-group space to its compact artifact, memoized.

        One block pass computes the whole-space frontier (with
        composition labels and per-point node counts), the per-group
        homogeneous frontiers, and -- when ``queueing`` passes
        :class:`~repro.queueing.dispatcher.Figure10Reducer` keyword
        arguments -- the window-level series, all bounded by the memory
        budget.  The cache key is the space content plus the queueing
        knobs; the budget is an execution detail and deliberately stays
        out of it (the reduced artifacts are identical at any budget).
        ``consumers`` (e.g. a :class:`~repro.core.streaming.SpaceSpill`)
        are side effects: passing any bypasses the cache so they always
        observe the full stream.

        ``reduce_at`` picks where the fold happens: ``"coordinator"``
        (default) streams full blocks here and folds them; ``"worker"``
        folds inside each block task and streams only compact reducer
        states, which the coordinator merges in plan order -- artifacts
        bit-identical either way, so both modes share cache entries (and
        checkpoints: the snapshot shape is mode-independent).  Worker
        mode cannot feed block ``consumers`` (they need the columns the
        workers no longer ship).  ``chunk_rows`` pins the block row
        budget; like the backend, both knobs stay out of the cache key.

        ``checkpoint`` persists reducer state every ``checkpoint.every``
        blocks; with ``resume=True`` a valid saved state (same scenario
        *and* same block plan -- worker count and memory budget changes
        invalidate it) restores the reducers and skips the already-folded
        prefix, producing artifacts bit-identical to an uninterrupted
        run.  Checkpointed runs bypass the result cache: the point is to
        observe (and survive) the stream.
        """
        if resume and checkpoint is None:
            raise ValueError("resume=True requires a checkpoint manager")
        mode = "coordinator" if reduce_at is None else str(reduce_at)
        if mode not in ("coordinator", "worker"):
            raise ValueError(
                f"reduce_at must be 'coordinator' or 'worker', got {reduce_at!r}"
            )
        if mode == "worker" and consumers:
            raise ValueError(
                "reduce_at='worker' cannot feed block consumers (spill, "
                "custom observers): workers ship reducer states, not block "
                "columns -- use reduce_at='coordinator' for this run"
            )
        group_specs = tuple(
            gs if isinstance(gs, GroupSpec) else GroupSpec(*gs)
            for gs in group_specs
        )
        backend, backend_options = self._backend_args(backend, backend_options)
        queue_kw = dict(queueing) if queueing is not None else None
        fold_hook = self.faults.on_fold if self.faults is not None else None

        def compute() -> ReducedSpace:
            from repro.queueing.dispatcher import Figure10Reducer

            f10 = None
            if queue_kw is not None:
                f10 = Figure10Reducer(**queue_kw)
            start_block = 0
            initial = None
            checkpoint_save = None
            budget = (
                self.memory_budget_mb if memory_budget_mb is None
                else memory_budget_mb
            )
            if checkpoint is not None:
                plan = _executor.space_block_plan(
                    group_specs,
                    max_workers=self.max_workers,
                    memory_budget_mb=budget,
                    backend=backend,
                    backend_options=backend_options,
                    chunk_rows=chunk_rows,
                )
                plan_fp = stable_hash(
                    ("block-plan", tuple((t.counts, t.rows) for t in plan))
                )
                if resume:
                    initial = checkpoint.load(plan_fingerprint=plan_fp)
                    if initial is not None:
                        start_block = int(initial["blocks_done"])

                def checkpoint_save(state: Dict[str, Any]) -> None:
                    state["plan_fingerprint"] = plan_fp
                    checkpoint.save(state)

            checkpoint_every = (
                checkpoint.every if checkpoint is not None else 8
            )
            start = time.perf_counter()
            if mode == "worker":
                reduced = merge_block_reductions(
                    _executor.iter_space_reductions(
                        group_specs, params, units,
                        max_workers=self.max_workers,
                        memory_budget_mb=budget,
                        policy=self.resilience,
                        injector=self.faults,
                        emit=self.emit,
                        start_block=start_block,
                        backend=backend,
                        backend_options=backend_options,
                        chunk_rows=chunk_rows,
                        queueing=queue_kw,
                    ),
                    consumers=[f10] if f10 is not None else [],
                    fold_hook=fold_hook,
                    checkpoint_save=checkpoint_save,
                    checkpoint_every=checkpoint_every,
                    initial=initial,
                )
            else:
                extra = list(consumers)
                if f10 is not None:
                    extra.append(f10)
                reduced = reduce_space_blocks(
                    self.space_blocks(
                        group_specs, params, units,
                        memory_budget_mb=memory_budget_mb,
                        start_block=start_block,
                        backend=backend,
                        backend_options=backend_options,
                        chunk_rows=chunk_rows,
                    ),
                    consumers=extra,
                    fold_hook=fold_hook,
                    checkpoint_save=checkpoint_save,
                    checkpoint_every=checkpoint_every,
                    initial=initial,
                )
            if f10 is not None:
                reduced.queueing = f10.finish()
            self.emit(
                "space.reduced",
                rows=reduced.total_rows,
                blocks=reduced.num_blocks,
                full_nbytes=reduced.full_nbytes,
                peak_block_nbytes=reduced.peak_block_nbytes,
                resumed_from_block=start_block,
                reduce_at=mode,
                elapsed_s=time.perf_counter() - start,
            )
            return reduced

        if consumers or checkpoint is not None or fold_hook is not None:
            return compute()
        key = (
            self._space_key(group_specs, params, units),
            _plain_queueing_key(queue_kw),
        )
        return self.cache.get_or_compute("reduced", key, compute)

    def space_searched(
        self,
        group_specs: Sequence[GroupSpec],
        params: Mapping[str, NodeModelParams],
        units: float,
        search: Mapping[str, Any],
        best_known: Optional[Any] = None,
        checkpoint: Optional[CheckpointManager] = None,
        resume: bool = False,
        backend: Optional[Any] = None,
        backend_options: Optional[Mapping[str, Any]] = None,
    ):
        """Explore a k-group space with a search agent, memoized.

        The sampled twin of :meth:`space_reduced`: a
        :mod:`repro.search` agent (``search["strategy"]`` of
        ``"random"``/``"ga"``/``"anneal"``) proposes candidate batches
        under ``search["budget_rows"]`` (default: 5% of the space), the
        batches are evaluated through the context's execution backend,
        and the rows fold through the exact streaming reducer structure
        -- so the returned
        :class:`~repro.search.driver.SearchedSpace`'s ``reduced`` field
        feeds the frontier/regions stages unchanged.  The cache key is
        the space content *plus the full search config*: a sampled
        frontier is approximate and must never alias the exhaustive
        artifact.  ``best_known`` (a frontier) enables exact recall
        tracking in the trajectory; ``checkpoint``/``resume`` snapshot
        and restore the whole search loop bit-identically.
        """
        from repro.search import SearchSpace, make_source, run_search
        from repro.search.evaluator import _eval_candidate_chunk

        group_specs = tuple(
            gs if isinstance(gs, GroupSpec) else GroupSpec(*gs)
            for gs in group_specs
        )
        strategy = str(search.get("strategy", "random"))
        seed = search.get("seed")
        seed = self.seed if seed is None else int(seed)
        options = dict(search.get("options") or {})
        backend, backend_options = self._backend_args(backend, backend_options)

        def compute():
            space = SearchSpace(group_specs)
            budget = search.get("budget_rows")
            if budget is None:
                budget = max(1, int(0.05 * space.total_rows))
            batch_rows = int(search.get("batch_rows") or 4096)
            source = make_source(strategy, space, seed, options)

            def evaluate_fn(n, cores, f):
                rows = n.shape[1]
                if rows <= _SEARCH_PARALLEL_ROWS:
                    return _eval_candidate_chunk(
                        (group_specs, params, units, n, cores, f)
                    )
                step = _SEARCH_PARALLEL_ROWS // 4
                chunks = [
                    (
                        group_specs, params, units,
                        n[:, lo:lo + step],
                        cores[:, lo:lo + step],
                        f[:, lo:lo + step],
                    )
                    for lo in range(0, rows, step)
                ]
                results = _executor.parallel_map(
                    _eval_candidate_chunk, chunks,
                    max_workers=self.max_workers,
                    policy=self.resilience, injector=self.faults,
                    emit=self.emit, backend=backend,
                    backend_options=backend_options,
                )
                return _concat_results(results)

            start = time.perf_counter()
            searched = run_search(
                group_specs, params, units,
                source=source,
                budget_rows=int(budget),
                batch_rows=batch_rows,
                evaluate_fn=evaluate_fn,
                best_known=best_known,
                seed=seed,
                space=space,
                emit=self.emit,
                checkpoint=checkpoint,
                resume=resume,
            )
            self.emit(
                "space.searched",
                strategy=strategy,
                rows_evaluated=searched.rows_evaluated,
                space_rows=searched.space_rows,
                coverage=searched.coverage,
                rounds=len(searched.trajectory.rounds),
                elapsed_s=time.perf_counter() - start,
            )
            return searched

        if checkpoint is not None or best_known is not None:
            # Observed (checkpointed) or instrumented (recall-tracked)
            # runs must actually run.
            return compute()
        key = (
            self._space_key(group_specs, params, units),
            _plain_search_key(search, seed),
        )
        return self.cache.get_or_compute("searched", key, compute)

    def space(
        self,
        spec_a: NodeSpec,
        max_a: int,
        spec_b: NodeSpec,
        max_b: int,
        params: Mapping[str, NodeModelParams],
        units: float,
        counts_a: Optional[Sequence[int]] = None,
        counts_b: Optional[Sequence[int]] = None,
        settings_a: Optional[Sequence[Tuple[int, float]]] = None,
        settings_b: Optional[Sequence[Tuple[int, float]]] = None,
    ) -> ConfigSpaceResult:
        """Two-type sugar for :meth:`space_groups`.

        Signature mirrors :func:`repro.core.evaluate.evaluate_space`;
        delegates to the group-table path (sharing its cache entries).
        """
        return self.space_groups(
            (
                GroupSpec(spec_a, max_a, counts=counts_a, settings=settings_a),
                GroupSpec(spec_b, max_b, counts=counts_b, settings=settings_b),
            ),
            params,
            units,
        )

    # ---- replication fan-out -------------------------------------------

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        backend: Optional[Any] = None,
        backend_options: Optional[Mapping[str, Any]] = None,
    ) -> List[Any]:
        """Order-preserving parallel map over independent replications.

        ``fn`` must be a picklable top-level callable (process pools
        cannot ship closures -- and the remote backend additionally
        needs it importable on the worker); execution degrades to a
        serial map when pooling is unavailable.
        """
        backend, backend_options = self._backend_args(backend, backend_options)
        return _executor.parallel_map(
            fn, items, max_workers=self.max_workers,
            backend=backend, backend_options=backend_options,
        )


_DEFAULT_CONTEXT: Optional[RunContext] = None


def default_context() -> RunContext:
    """The process-wide shared context (created on first use).

    The CLI, the reporting builders, and the benchmark fixtures all share
    this context, which is what lets one process build many artifacts
    while performing each distinct calibration and space evaluation once.
    """
    global _DEFAULT_CONTEXT
    if _DEFAULT_CONTEXT is None:
        _DEFAULT_CONTEXT = RunContext()
    return _DEFAULT_CONTEXT


def set_default_context(ctx: Optional[RunContext]) -> Optional[RunContext]:
    """Swap the process-wide context (pass ``None`` to reset); returns the old one."""
    global _DEFAULT_CONTEXT
    old, _DEFAULT_CONTEXT = _DEFAULT_CONTEXT, ctx
    return old
