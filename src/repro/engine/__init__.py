"""The experiment engine: one cached, parallel path through the pipeline.

The paper's workflow is a single pipeline -- calibrate per-node model
inputs from simulator traces, evaluate the configuration space, derive
the energy-deadline Pareto frontier, layer region and queueing analysis
on top.  This package is the one place that pipeline is wired:

* :class:`Scenario` -- a whole experiment as declarative, JSON
  round-trippable data;
* :class:`RunContext` -- seed discipline, the content-addressed result
  cache, hardware/workload resolution, reporting sinks, and the parallel
  executor, threaded through every stage;
* :func:`run_scenario` -- execute a scenario end-to-end into a
  :class:`ScenarioResult`;
* :func:`evaluate_space_chunked` / :func:`parallel_map` -- the executor
  primitives, usable directly;
* :class:`ResultCache` -- the memoization layer, with an optional
  on-disk tier (conventionally ``results/.cache/``), checksummed and
  self-quarantining;
* :mod:`repro.engine.backends` -- the pluggable execution-backend
  registry (``serial``, ``process_pool``, ``tcp_remote``) every
  executor entry point resolves through; backends are selected by
  name, per :class:`Scenario`, per :class:`RunContext`, or via the
  ``REPRO_BACKEND`` environment variable, and all of them produce
  bit-identical artifacts;
* :mod:`repro.engine.resilience` / :mod:`repro.engine.faults` /
  :mod:`repro.engine.checkpoint` -- the fault-tolerance layer: retries
  with deterministic backoff, dead-worker pool replacement, graceful
  degradation to serial execution, checkpoint/resume for streaming
  runs, and a seedable fault-injection harness for testing all of it.

The CLI, the reporting builders, the examples, and the benchmarks all run
through :func:`default_context`, so one process performs each distinct
calibration and space evaluation exactly once however many artifacts it
builds.
"""

from repro.engine.backends import (
    ExecutionBackend,
    backend_class,
    backend_names,
    close_shared_backends,
    create_backend,
    register_backend,
    resolve_backend,
    validate_backend_options,
)
from repro.engine.cache import CacheStats, ResultCache
from repro.engine.checkpoint import CheckpointManager
from repro.engine.context import RunContext, default_context, set_default_context
from repro.engine.executor import (
    evaluate_space_chunked,
    iter_space_groups_chunked,
    parallel_map,
)
from repro.engine.faults import (
    CacheCorrupt,
    CheckpointCorrupt,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ResilienceError,
    TaskTimeout,
    WorkerCrash,
)
from repro.engine.hashing import stable_hash
from repro.engine.resilience import ResiliencePolicy
from repro.engine.runner import ScenarioResult, explain_scenario, run_scenario
from repro.engine.scenario import STAGES, Scenario
from repro.engine.stagegraph import (
    FrontierArtifact,
    StageNode,
    StagePlan,
    build_stage_plan,
    scenario_identity,
)

__all__ = [
    "CacheCorrupt",
    "CacheStats",
    "ExecutionBackend",
    "backend_class",
    "backend_names",
    "close_shared_backends",
    "create_backend",
    "register_backend",
    "resolve_backend",
    "validate_backend_options",
    "CheckpointCorrupt",
    "CheckpointManager",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FrontierArtifact",
    "InjectedFault",
    "ResilienceError",
    "ResiliencePolicy",
    "ResultCache",
    "RunContext",
    "STAGES",
    "Scenario",
    "ScenarioResult",
    "StageNode",
    "StagePlan",
    "TaskTimeout",
    "WorkerCrash",
    "build_stage_plan",
    "default_context",
    "evaluate_space_chunked",
    "explain_scenario",
    "iter_space_groups_chunked",
    "parallel_map",
    "run_scenario",
    "scenario_identity",
    "set_default_context",
    "stable_hash",
]
