"""The scenario pipeline as an explicit stage graph.

:func:`repro.engine.runner.run_scenario` used to be one monolithic
function: calibrate, evaluate, frontier, regions, queueing inlined in
sequence, with the result cache as the only record that any of it
happened.  This module makes the pipeline's real shape a first-class
value: a :class:`StagePlan` of declared :class:`StageNode`\\ s -- one
calibrate node per node type, then ``space`` -> ``frontier`` ->
``regions`` / ``queueing`` -- each with named dependencies and a
*content-addressed identity* derived through
:func:`repro.engine.hashing.stable_hash` from everything that determines
its artifact (resolved hardware/workload specs, space axes, queueing
knobs, and upstream identities, so edits propagate exactly as far as
they reach).

A small DAG driver (:func:`run_plan`) executes a plan in topological
order through the existing :class:`~repro.engine.context.RunContext`
machinery (backends, resilience, worker-side reduction all apply
per stage), consulting an optional
:class:`~repro.store.ArtifactStore` before computing anything: a stage
whose identity is already stored is a pure load, and a run against a
warm store recomputes nothing at all.  :func:`explain_plan` is the
dry-run twin -- it reports each stage's identity and store status
(``hit`` / ``stale`` / ``miss``) without executing a thing.

Identities are *mode-independent* for the analysis stages: streaming
and materialized runs produce bit-identical frontier/region/queueing
artifacts (pinned by the PR 4 property suite), so they share stage
identities; only the ``space`` stage -- whose artifact genuinely
differs in shape (full columns vs reduced summary) -- keys on the mode.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.configuration import GroupSpec
from repro.core.evaluate import ConfigSpaceResult
from repro.core.pareto import ParetoFrontier
from repro.core.streaming import ReducedSpace
from repro.engine.hashing import stable_hash
from repro.engine.scenario import Scenario
from repro.hardware.specs import NodeSpec
from repro.simulator.noise import CALIBRATED_NOISE, NoiseModel
from repro.workloads.base import WorkloadSpec

#: Calibration-campaign constants mirrored from ``RunContext.params``
#: defaults; part of the calibrate stage identity so a changed campaign
#: shape could never alias a stored artifact.
_BASELINE_UNITS = 5_000.0
_REPETITIONS = 3


def scenario_identity(scenario: Scenario) -> str:
    """Content-addressed identity of a scenario's *declaration*.

    Built on :meth:`Scenario.cache_identity`, so it is stable across the
    pair/group spellings and across every execution knob -- but note it
    references node types and workload *by name*: editing a spec behind
    a name changes the affected stage identities, not the scenario's.
    That is what lets a store track one scenario across hardware edits
    and tell exactly which of its stages went stale.
    """
    return stable_hash(("scenario", scenario.cache_identity()))


def spec_key(kind: str, name: str) -> str:
    """The dependency-graph pseudo-node for a named hardware/workload spec."""
    return f"spec:{kind}:{name}"


@dataclass(frozen=True)
class StageNode:
    """One declared pipeline stage: identity, dependencies, artifact kind.

    ``name`` is unique within a plan (``calibrate:<node>``, ``space``,
    ``frontier``, ...); ``kind`` selects the compute implementation;
    ``deps`` are upstream stage names in the same plan; ``spec_deps``
    are the :func:`spec_key` pseudo-nodes the stage reads, recorded as
    store dependency edges so spec edits invalidate exactly this
    stage's cone.
    """

    name: str
    kind: str
    identity: str
    deps: Tuple[str, ...] = ()
    spec_deps: Tuple[str, ...] = ()


@dataclass(frozen=True)
class FrontierArtifact:
    """The frontier stage's artifact, mode-independent and store-friendly.

    Everything the regions stage, the reporting layer, and the query
    service need about a frontier: the Pareto points themselves, the
    per-group homogeneous frontiers, per-point composition labels, and
    the ``(G, F)`` node counts of each frontier point (the deployable
    answer to "cheapest config for deadline D").  Streaming and
    materialized runs produce bit-identical instances.
    """

    frontier: ParetoFrontier
    group_frontiers: Tuple[Optional[ParetoFrontier], ...]
    composition: Tuple[str, ...]
    frontier_n: np.ndarray


@dataclass
class StagePlan:
    """A scenario resolved against a context: stages, identities, inputs.

    Plans are cheap to build -- resolution and hashing only, no
    simulation or evaluation -- which is what makes ``--explain``
    (and store-status queries) free.
    """

    scenario: Scenario
    scenario_id: str
    workload: WorkloadSpec
    units: float
    #: Ordered as ``scenario.groups``; duplicates collapse by name with
    #: the last index winning, mirroring ``RunContext.params_for``.
    calibrations: Dict[str, Tuple[int, NodeSpec]]
    group_specs: Tuple[GroupSpec, ...]
    noise: NoiseModel
    queue_kw: Optional[Dict[str, Any]]
    nodes: Tuple[StageNode, ...] = ()
    space_content_id: str = ""
    _by_name: Dict[str, StageNode] = field(default_factory=dict, repr=False)

    def node(self, name: str) -> StageNode:
        return self._by_name[name]

    @property
    def stage_names(self) -> Tuple[str, ...]:
        return tuple(n.name for n in self.nodes)

    def spec_records(self) -> List[Tuple[str, str, Any]]:
        """Every (kind, name, spec) this plan resolved, for store recording."""
        records: List[Tuple[str, str, Any]] = [
            ("workload", self.workload.name, self.workload)
        ]
        for name, (_, spec) in self.calibrations.items():
            records.append(("node", name, spec))
        return records


def _calibrate_identity(
    scenario: Scenario,
    spec: NodeSpec,
    workload: WorkloadSpec,
    noise: NoiseModel,
    index: int,
) -> str:
    """Mirror of the ``RunContext.params`` content key, as a stage identity."""
    if not scenario.calibrated:
        return stable_hash(("stage:calibrate", "ground-truth", spec, workload))
    return stable_hash(
        (
            "stage:calibrate", "calibrated", spec, workload, noise,
            scenario.seed, f"params-{spec.name}", index,
            _BASELINE_UNITS, _REPETITIONS,
        )
    )


def _queueing_key(queue_kw: Mapping[str, Any]) -> Tuple:
    """Queueing knobs as a canonical hashable tuple."""
    return tuple(
        sorted(
            (k, tuple(v) if isinstance(v, (list, tuple)) else v)
            for k, v in queue_kw.items()
        )
    )


def build_stage_plan(scenario: Scenario, ctx) -> StagePlan:
    """Resolve ``scenario`` through ``ctx`` into an executable stage plan.

    Resolution (catalog/registry lookups) and identity hashing happen
    here; nothing is simulated or evaluated.  The returned plan's
    ``nodes`` are in topological order.
    """
    workload = ctx.resolve_workload(scenario.workload)
    groups = scenario.groups
    specs = [ctx.resolve_node(g.node) for g in groups]
    units = scenario.units
    if units is None:
        units = workload.problem_sizes.get("analysis", workload.default_job_units)
    noise = CALIBRATED_NOISE.scaled(scenario.noise_scale)
    group_specs = tuple(
        GroupSpec(spec, g.max_nodes, counts=g.counts, settings=g.settings)
        for spec, g in zip(specs, groups)
    )
    queue_kw = (
        {
            "idle_powers_w": tuple(spec.idle_power_w for spec in specs),
            "utilizations": scenario.utilizations,
            "window_s": scenario.window_s,
        }
        if scenario.wants("queueing")
        else None
    )

    calibrations: Dict[str, Tuple[int, NodeSpec]] = {}
    for index, spec in enumerate(specs):
        calibrations[spec.name] = (index, spec)

    plan = StagePlan(
        scenario=scenario,
        scenario_id=scenario_identity(scenario),
        workload=workload,
        units=float(units),
        calibrations=calibrations,
        group_specs=group_specs,
        noise=noise,
        queue_kw=queue_kw,
    )

    nodes: List[StageNode] = []
    cal_ids: Dict[str, str] = {}
    for name, (index, spec) in calibrations.items():
        identity = _calibrate_identity(scenario, spec, workload, noise, index)
        cal_ids[name] = identity
        nodes.append(
            StageNode(
                name=f"calibrate:{name}",
                kind="calibrate",
                identity=identity,
                spec_deps=(spec_key("node", name), spec_key("workload", workload.name)),
            )
        )

    axes = tuple(
        (g.node, int(g.max_nodes), g.counts, g.settings) for g in groups
    )
    # An active search IS part of the space-content identity -- unlike
    # ``space_mode``, a sampled frontier is approximate, so it must never
    # alias the exhaustive artifact (or a differently-budgeted sample).
    # Exhaustive scenarios hash exactly as before the search layer existed.
    content_token: Tuple = (
        "stage:space-content", tuple(sorted(cal_ids.items())), axes, plan.units,
    )
    if scenario.search_active:
        content_token = content_token + (scenario.search_config(),)
    space_content_id = stable_hash(content_token)
    plan.space_content_id = space_content_id

    streaming = scenario.space_mode == "streaming"
    queueing_key = _queueing_key(queue_kw) if queue_kw is not None else None
    # The space artifact's *shape* depends on the mode (full columns vs
    # reduced summary -- and streaming folds the queueing series into the
    # same pass, so its knobs join the key there); the analysis stages
    # below it are bit-identical across modes and share identities.
    space_id = stable_hash(
        (
            "stage:space",
            scenario.space_mode,
            space_content_id,
            queueing_key if streaming else None,
        )
    )
    cal_names = tuple(f"calibrate:{name}" for name in calibrations)
    nodes.append(
        StageNode(name="space", kind="space", identity=space_id, deps=cal_names)
    )

    frontier_id = stable_hash(("stage:frontier", space_content_id))
    if scenario.wants("frontier"):
        nodes.append(
            StageNode(
                name="frontier", kind="frontier",
                identity=frontier_id, deps=("space",),
            )
        )
    if scenario.wants("regions"):
        nodes.append(
            StageNode(
                name="regions", kind="regions",
                identity=stable_hash(("stage:regions", frontier_id)),
                deps=("space", "frontier"),
            )
        )
    if scenario.wants("queueing"):
        nodes.append(
            StageNode(
                name="queueing", kind="queueing",
                identity=stable_hash(
                    ("stage:queueing", space_content_id, queueing_key)
                ),
                deps=("space",),
            )
        )

    plan.nodes = tuple(nodes)
    plan._by_name = {n.name: n for n in nodes}
    return plan


# ---- execution -----------------------------------------------------------


@dataclass
class PlanExecution:
    """What :func:`run_plan` produced: artifacts plus per-stage accounting."""

    artifacts: Dict[str, Any] = field(default_factory=dict)
    #: Wall time per stage *kind* (calibrate nodes aggregate), matching
    #: the historical ``ScenarioResult.timings_s`` keys.
    timings_s: Dict[str, float] = field(default_factory=dict)
    #: Per-stage-kind cache/store counter deltas (hits, misses,
    #: disk_hits, quarantined) observed while the stage ran.
    stage_cache: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: ``"stored"`` for store hits, ``"computed"`` otherwise.
    statuses: Dict[str, str] = field(default_factory=dict)


def run_plan(
    plan: StagePlan,
    ctx,
    compute_fns: Mapping[str, Callable[[StageNode, Dict[str, Any]], Any]],
    store=None,
    bypass_store: Sequence[str] = (),
) -> PlanExecution:
    """Execute ``plan`` in topological order; load stored stages, compute the rest.

    ``compute_fns`` maps a stage *kind* to its implementation, called as
    ``fn(node, inputs)`` with ``inputs`` keyed by dependency stage name.
    When ``store`` is given, each stage first tries
    ``store.get(node.identity)``; hits skip compute entirely, misses
    compute and persist the artifact with its dependency edges.  Stage
    names in ``bypass_store`` always compute (used when side effects --
    spill consumers, checkpoint observers -- must see the real stream),
    though their artifacts are still stored for later runs.
    """
    execution = PlanExecution()
    bypass = set(bypass_store)
    stats = ctx.cache.stats
    if store is not None:
        for kind, name, spec in plan.spec_records():
            staled = store.record_spec(kind, name, spec)
            if staled:
                ctx.emit(
                    "store.invalidated",
                    spec=spec_key(kind, name),
                    downstream=len(staled),
                )
        store.record_scenario(plan.scenario_id, plan.scenario)

    for node in plan.nodes:
        inputs = {dep: execution.artifacts[dep] for dep in node.deps}
        before = stats.as_dict()
        start = time.perf_counter()
        value = None
        loaded = False
        if store is not None and node.name not in bypass:
            value, loaded = store.get(node.identity)
        if not loaded:
            value = compute_fns[node.kind](node, inputs)
            if store is not None:
                parents = [plan.node(d).identity for d in node.deps]
                parents.extend(node.spec_deps)
                store.put(
                    node.identity,
                    value,
                    kind=node.kind,
                    scenario_id=plan.scenario_id,
                    stage=node.name,
                    deps=parents,
                )
        elapsed = time.perf_counter() - start
        execution.artifacts[node.name] = value
        execution.statuses[node.name] = "stored" if loaded else "computed"
        execution.timings_s[node.kind] = (
            execution.timings_s.get(node.kind, 0.0) + elapsed
        )
        after = stats.as_dict()
        delta = {k: after[k] - before[k] for k in after}
        bucket = execution.stage_cache.setdefault(
            node.kind, {k: 0 for k in after}
        )
        for k, v in delta.items():
            bucket[k] += v
        ctx.emit(
            "stage.done",
            stage=node.name,
            kind=node.kind,
            identity=node.identity,
            status=execution.statuses[node.name],
            elapsed_s=elapsed,
            **{f"cache_{k}": v for k, v in delta.items()},
        )
    return execution


def explain_plan(plan: StagePlan, store=None) -> List[Dict[str, Any]]:
    """Dry-run report: one row per stage with identity and store status.

    Status is ``"hit"`` (a fresh artifact is stored under this exact
    identity), ``"stale"`` (the store holds a superseded or invalidated
    artifact for this scenario stage -- an upstream spec changed), or
    ``"miss"``.  Without a store every stage reports ``"miss"``: there
    is nowhere an artifact could be waiting.
    """
    rows: List[Dict[str, Any]] = []
    for node in plan.nodes:
        if store is None:
            status = "miss"
        else:
            status = store.stage_status(
                plan.scenario_id, node.name, node.identity
            )
        rows.append(
            {
                "stage": node.name,
                "kind": node.kind,
                "identity": node.identity,
                "deps": list(node.deps),
                "status": status,
            }
        )
    return rows


# ---- stage artifact derivations (shared by runner and tests) -------------


def frontier_artifact_from_space(space: ConfigSpaceResult) -> FrontierArtifact:
    """Derive the frontier artifact from a materialized space.

    Bit-identical to the streaming reducer's frontier fields (pinned by
    ``tests/property/test_streaming_properties.py`` equivalences):
    composition labels follow the same hetero/only-<letter> convention
    and ``frontier_n`` stacks ``space.n[:, frontier.indices]``.
    """
    frontier = ParetoFrontier.from_points(space.times_s, space.energies_j)
    hetero = space.is_heterogeneous
    only = [space.is_only(g) for g in range(space.num_groups)]
    composition: List[str] = []
    for idx in frontier.indices:
        if hetero[idx]:
            composition.append("hetero")
        else:
            for g in range(space.num_groups):
                if only[g][idx]:
                    composition.append(f"only-{chr(ord('a') + g)}")
                    break
    group_frontiers = tuple(
        _subset_frontier(space, space.is_only(g))
        for g in range(space.num_groups)
    )
    return FrontierArtifact(
        frontier=frontier,
        group_frontiers=group_frontiers,
        composition=tuple(composition),
        frontier_n=space.n[:, frontier.indices],
    )


def frontier_artifact_from_reduced(reduced: ReducedSpace) -> FrontierArtifact:
    """Lift the streaming pass's frontier fields into the stage artifact."""
    assert reduced.frontier is not None
    return FrontierArtifact(
        frontier=reduced.frontier,
        group_frontiers=reduced.group_frontiers,
        composition=reduced.composition,
        frontier_n=reduced.frontier_n,
    )


def _subset_frontier(
    space: ConfigSpaceResult, mask: np.ndarray
) -> Optional[ParetoFrontier]:
    """Frontier of a masked subset, or ``None`` when the mask is empty."""
    if not bool(np.any(mask)):
        return None
    subset = space.subset(mask)
    return ParetoFrontier.from_points(subset.times_s, subset.energies_j)
