"""One-time job shipment: plan/params cross to each worker exactly once.

Before this module, every block task pickled the full ``group_specs``
tuple, the calibration params mapping, and the work units into its
argument tuple -- identical bytes re-serialized per task, dominating the
submission cost of fine-grained plans.  A :class:`SpaceJob` bundles the
immutable inputs of one space fan-out (specs, params, units, the exact
block plan with its row offsets, and the optional worker-side reduction
options) so they ship **once per worker**:

* process pools install the job via the pool *initializer* (and fork
  inheritance covers the common Linux path for free);
* the ``tcp_remote`` backend sends one ``job`` frame per (re)connected
  worker channel;
* the serial / degraded-to-serial paths install it in-process.

Each task then carries only ``(job_id, block_index)`` -- a few dozen
bytes -- and resolves the heavy state from the process-local registry.
:func:`run_block` is the universal task body: evaluate the indexed block
and either return its columns (``reduce_at="coordinator"``) or fold it
through local reducers and return the compact
:class:`~repro.core.streaming.BlockReduction`
(``reduce_at="worker"``).  Because a retried task re-runs
:func:`run_block` from scratch, a worker-side fold always restarts from
its block's first row -- reduction state never leaks across attempts.

The registry is a small LRU (jobs are per-fan-out, workers outlive
fan-outs on stateful backends), keyed by an id that is unique per
coordinator process -- routing only, never cache identity.
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Tuple

from repro.core.configuration import GroupSpec
from repro.core.evaluate import ConfigSpaceResult
from repro.core.params import NodeModelParams
from repro.core.streaming import (
    SpaceBlock,
    evaluate_block_task,
    fold_block_reduction,
)

#: Jobs kept per process; one fan-out needs one, stateful backends a few.
_MAX_JOBS = 8

_JOBS: "OrderedDict[str, SpaceJob]" = OrderedDict()
_JOBS_LOCK = threading.Lock()
_COUNTER = itertools.count()


@dataclass(frozen=True)
class SpaceJob:
    """The immutable inputs of one space fan-out, shipped once per worker.

    ``task_counts[i]`` is block ``i``'s per-group count tuple (the shape
    :func:`~repro.core.streaming.evaluate_block_task` consumes) and
    ``starts[i]`` its global row offset.  ``reduce`` is ``None`` for
    coordinator-side reduction (tasks return raw columns) or the keyword
    mapping for :func:`~repro.core.streaming.fold_block_reduction`
    (``composition`` / ``group_frontiers`` / ``queueing``) for
    worker-side reduction.
    """

    job_id: str
    group_specs: Tuple[GroupSpec, ...]
    params: Mapping[str, NodeModelParams]
    units: float
    task_counts: Tuple[Tuple[Tuple[int, ...], ...], ...]
    starts: Tuple[int, ...]
    reduce: Optional[Mapping[str, Any]] = None


def new_job_id() -> str:
    """A job id unique within this coordinator process (routing only)."""
    return f"job-{os.getpid()}-{next(_COUNTER)}"


def install_job(job: SpaceJob) -> None:
    """Register ``job`` in this process (idempotent; pool-initializer safe).

    Top-level and picklable, so it doubles as a
    ``ProcessPoolExecutor`` initializer with ``initargs=(job,)``.
    """
    with _JOBS_LOCK:
        _JOBS[job.job_id] = job
        _JOBS.move_to_end(job.job_id)
        while len(_JOBS) > _MAX_JOBS:
            _JOBS.popitem(last=False)


def get_job(job_id: str) -> SpaceJob:
    """The installed job, or a diagnosing ``KeyError``-free error."""
    with _JOBS_LOCK:
        job = _JOBS.get(job_id)
        if job is not None:
            _JOBS.move_to_end(job_id)
    if job is None:
        raise RuntimeError(
            f"job {job_id!r} is not installed in this process; the backend "
            f"must ship the SpaceJob before submitting its block tasks"
        )
    return job


def run_block(job_id: str, index: int) -> Any:
    """Evaluate (and optionally fold) one block of an installed job.

    The task body every space fan-out submits: a few-byte argument tuple
    instead of the re-pickled plan.  Returns the block's
    :class:`~repro.core.evaluate.ConfigSpaceResult` when the job reduces
    at the coordinator, or its folded
    :class:`~repro.core.streaming.BlockReduction` when it reduces at the
    worker.
    """
    job = get_job(job_id)
    data: ConfigSpaceResult = evaluate_block_task(
        job.group_specs, job.params, job.units, job.task_counts[index]
    )
    if job.reduce is None:
        return data
    block = SpaceBlock(index=index, start_row=job.starts[index], data=data)
    return fold_block_reduction(block, **dict(job.reduce))


def build_job(
    group_specs: Tuple[GroupSpec, ...],
    params: Mapping[str, NodeModelParams],
    units: float,
    tasks: Any,
    reduce: Optional[Mapping[str, Any]] = None,
) -> SpaceJob:
    """A :class:`SpaceJob` over a :func:`plan_block_tasks` plan."""
    starts = [0]
    for task in tasks[:-1]:
        starts.append(starts[-1] + task.rows)
    return SpaceJob(
        job_id=new_job_id(),
        group_specs=tuple(group_specs),
        params=params,
        units=float(units),
        task_counts=tuple(t.counts for t in tasks),
        starts=tuple(starts),
        reduce=None if reduce is None else dict(reduce),
    )
