"""Atomic, checksummed checkpoints for interrupted streaming runs.

A checkpoint is one file per scenario fingerprint holding the pickled
reducer-pass state produced by
:func:`repro.core.streaming.reduce_space_blocks` -- every reducer's
arrays plus the count of blocks already folded.  Because blocks stream
in deterministic plan order, the folded blocks always form a prefix of
the plan, so resuming is "skip the first ``blocks_done`` tasks, restore
the reducers, keep folding" and the final artifacts are bit-identical
to an uninterrupted run.

The on-disk format mirrors the result cache: a magic header, the
SHA-256 of the pickled payload, then the payload, written via temp file
+ ``os.replace`` so a crash mid-save can never leave a torn checkpoint
under the real name.  A checkpoint that fails verification is renamed
to ``<name>.corrupt`` (never deleted -- it is evidence) and reported as
absent, so the run restarts from scratch rather than aborting.

Checkpoints embed a *plan fingerprint* -- a stable hash of the block
plan's task sizes -- because block boundaries depend on the worker
count and memory budget.  Resuming under a different plan would
misalign block indices, so a fingerprint mismatch invalidates the
checkpoint (reported through the event callback) instead of silently
corrupting results.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from repro.engine.faults import CheckpointCorrupt

#: Checkpoint file header; bump the digit on any payload layout change.
CHECKPOINT_MAGIC = b"RPCKPT1\n"

#: Format version stored inside the payload (belt to the magic's braces).
CHECKPOINT_VERSION = 1


@dataclass
class CheckpointManager:
    """Save/load the reducer-pass state for one scenario.

    Parameters
    ----------
    directory:
        Where checkpoint files live; created on first save.
    fingerprint:
        Stable hash identifying *what is being computed* (the engine uses
        the scenario's cache identity).  Names the file, so different
        scenarios sharing a directory never collide.
    every:
        Save cadence in blocks, forwarded to the reducer pass.
    on_event:
        Optional ``on_event(event, **payload)`` callback notified of
        saves, resumes, invalidations, and corruption.
    """

    directory: Path
    fingerprint: str
    every: int = 8
    on_event: Optional[Callable[..., None]] = None
    saves: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        if self.every < 1:
            raise ValueError("checkpoint interval must be at least one block")

    @property
    def path(self) -> Path:
        return self.directory / f"checkpoint-{self.fingerprint}.ckpt"

    def _emit(self, event: str, **payload: Any) -> None:
        if self.on_event is not None:
            self.on_event(event, **payload)

    # ---- write ---------------------------------------------------------

    def save(self, state: Dict[str, Any]) -> None:
        """Atomically persist one reducer-pass snapshot."""
        payload = pickle.dumps(
            {"version": CHECKPOINT_VERSION, "state": state},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(CHECKPOINT_MAGIC)
                fh.write(hashlib.sha256(payload).digest())
                fh.write(payload)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.saves += 1
        self._emit(
            "checkpoint.saved",
            path=str(self.path),
            blocks_done=state.get("blocks_done"),
        )

    # ---- read ----------------------------------------------------------

    def _verify(self, raw: bytes) -> Dict[str, Any]:
        header = len(CHECKPOINT_MAGIC) + 32
        if len(raw) < header or not raw.startswith(CHECKPOINT_MAGIC):
            raise CheckpointCorrupt("bad magic or truncated header")
        digest = raw[len(CHECKPOINT_MAGIC):header]
        payload = raw[header:]
        if hashlib.sha256(payload).digest() != digest:
            raise CheckpointCorrupt("payload checksum mismatch")
        try:
            decoded = pickle.loads(payload)
        except Exception as exc:
            raise CheckpointCorrupt(
                f"payload failed to unpickle: {exc}"
            ) from exc
        if not isinstance(decoded, dict) or "state" not in decoded:
            raise CheckpointCorrupt("payload is not a checkpoint record")
        return decoded

    def load(self, plan_fingerprint: Optional[str] = None) -> Optional[Dict[str, Any]]:
        """The saved state, or ``None`` when absent/corrupt/mismatched.

        ``plan_fingerprint``, when given, must equal the fingerprint the
        state was saved under -- a mismatch means the block plan changed
        (different worker count or memory budget) and the checkpoint's
        block indices no longer line up, so it is invalidated.
        """
        try:
            raw = self.path.read_bytes()
        except OSError:
            return None
        try:
            decoded = self._verify(raw)
        except CheckpointCorrupt as exc:
            corrupt = self.path.with_suffix(".corrupt")
            try:
                os.replace(self.path, corrupt)
            except OSError:
                corrupt = self.path
            self._emit(
                "checkpoint.corrupt",
                path=str(corrupt),
                reason=str(exc),
            )
            return None
        if decoded.get("version") != CHECKPOINT_VERSION:
            self._emit(
                "checkpoint.invalidated",
                path=str(self.path),
                reason=f"format version {decoded.get('version')} "
                f"!= {CHECKPOINT_VERSION}",
            )
            return None
        state = decoded["state"]
        if (
            plan_fingerprint is not None
            and state.get("plan_fingerprint") != plan_fingerprint
        ):
            self._emit(
                "checkpoint.invalidated",
                path=str(self.path),
                reason="block plan changed (workers or memory budget)",
            )
            return None
        self._emit(
            "checkpoint.resumed",
            path=str(self.path),
            blocks_done=state.get("blocks_done"),
        )
        return state

    def clear(self) -> None:
        """Delete the checkpoint (called after a successful finish)."""
        try:
            os.unlink(self.path)
        except OSError:
            pass
