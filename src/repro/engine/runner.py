"""Execute a :class:`~repro.engine.scenario.Scenario` end-to-end.

One call runs the paper's whole pipeline -- simulator-backed calibration
(or catalog ground truth), vectorized configuration-space evaluation
over any number of node-type groups, the energy-deadline Pareto
frontier (whole-space and per-group homogeneous), sweet/overlap region
decomposition, and the Fig. 10 queueing extension -- through a cached,
parallel :class:`~repro.engine.context.RunContext`.  Re-running the same
scenario on the same context is a pure cache hit: calibration and space
evaluation each execute exactly once per distinct content.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.configuration import GroupSpec
from repro.core.evaluate import ConfigSpaceResult
from repro.core.params import NodeModelParams
from repro.core.pareto import ParetoFrontier
from repro.core.regions import RegionReport, analyze_regions
from repro.engine.context import RunContext, default_context
from repro.engine.scenario import Scenario
from repro.queueing.dispatcher import WindowPoint, figure10_series
from repro.simulator.noise import CALIBRATED_NOISE


@dataclass
class ScenarioResult:
    """Everything a scenario produced, stage by stage.

    Stages the scenario did not request are ``None``.  ``timings_s``
    records wall time per stage (cache hits show up as ~0), and
    ``cache_stats`` snapshots the context cache counters after the run.
    ``group_frontiers`` holds one homogeneous frontier per node-type
    group (``None`` where that group alone never appears);
    ``only_a_frontier``/``only_b_frontier`` mirror its first two entries.
    """

    scenario: Scenario
    params: Dict[str, NodeModelParams]
    space: ConfigSpaceResult
    frontier: Optional[ParetoFrontier] = None
    group_frontiers: Optional[Tuple[Optional[ParetoFrontier], ...]] = None
    only_a_frontier: Optional[ParetoFrontier] = None
    only_b_frontier: Optional[ParetoFrontier] = None
    regions: Optional[RegionReport] = None
    queueing: Optional[Dict[float, List[WindowPoint]]] = None
    timings_s: Dict[str, float] = field(default_factory=dict)
    cache_stats: Dict[str, int] = field(default_factory=dict)

    def min_energy_for_deadline(self, deadline_s: float) -> Optional[float]:
        """Frontier lookup sugar (requires the ``frontier`` stage)."""
        if self.frontier is None:
            raise ValueError("scenario did not run the 'frontier' stage")
        return self.frontier.min_energy_for_deadline(deadline_s)

    def summary(self) -> Dict[str, object]:
        """Small plain-data digest for reporting sinks and CLIs."""
        out: Dict[str, object] = {
            "workload": self.scenario.workload,
            "node_types": [g.node for g in self.scenario.groups],
            "configurations": len(self.space),
            "timings_s": dict(self.timings_s),
        }
        if self.frontier is not None:
            out["frontier_points"] = len(self.frontier)
            out["fastest_time_s"] = self.frontier.fastest_time_s
            out["min_energy_j"] = self.frontier.min_energy_j
        if self.regions is not None:
            out["has_sweet_region"] = self.regions.has_sweet_region
            out["has_overlap_region"] = self.regions.has_overlap_region
        if self.queueing is not None:
            out["queueing_utilizations"] = sorted(self.queueing)
        return out


def run_scenario(scenario: Scenario, ctx: Optional[RunContext] = None) -> ScenarioResult:
    """Run ``scenario`` through ``ctx`` (the shared default when omitted)."""
    ctx = ctx if ctx is not None else default_context()
    timings: Dict[str, float] = {}
    ctx.emit("scenario.start", scenario=scenario.cache_identity())

    workload = ctx.resolve_workload(scenario.workload)
    groups = scenario.groups
    specs = [ctx.resolve_node(g.node) for g in groups]
    units = scenario.units
    if units is None:
        units = workload.problem_sizes.get("analysis", workload.default_job_units)

    # ---- calibrate -----------------------------------------------------
    start = time.perf_counter()
    params = ctx.params_for(
        tuple(specs),
        workload,
        calibrated=scenario.calibrated,
        noise=CALIBRATED_NOISE.scaled(scenario.noise_scale),
        seed=scenario.seed,
        batched=scenario.simulation == "batched",
    )
    timings["calibrate"] = time.perf_counter() - start

    # ---- space ---------------------------------------------------------
    start = time.perf_counter()
    space = ctx.space_groups(
        tuple(
            GroupSpec(spec, g.max_nodes, counts=g.counts, settings=g.settings)
            for spec, g in zip(specs, groups)
        ),
        params,
        units,
    )
    timings["space"] = time.perf_counter() - start
    result = ScenarioResult(scenario=scenario, params=params, space=space)

    # ---- frontier ------------------------------------------------------
    if scenario.wants("frontier"):
        start = time.perf_counter()
        result.frontier = ParetoFrontier.from_points(space.times_s, space.energies_j)
        result.group_frontiers = tuple(
            _subset_frontier(space, space.is_only(g))
            for g in range(space.num_groups)
        )
        result.only_a_frontier = result.group_frontiers[0]
        if space.num_groups >= 2:
            result.only_b_frontier = result.group_frontiers[1]
        timings["frontier"] = time.perf_counter() - start

    # ---- regions -------------------------------------------------------
    if scenario.wants("regions") and result.frontier is not None:
        start = time.perf_counter()
        result.regions = analyze_regions(space, result.frontier)
        timings["regions"] = time.perf_counter() - start

    # ---- queueing ------------------------------------------------------
    if scenario.wants("queueing"):
        start = time.perf_counter()
        result.queueing = figure10_series(
            space,
            idle_powers_w=tuple(spec.idle_power_w for spec in specs),
            utilizations=scenario.utilizations,
            window_s=scenario.window_s,
        )
        timings["queueing"] = time.perf_counter() - start

    result.timings_s = timings
    result.cache_stats = ctx.cache.stats.as_dict()
    ctx.emit("scenario.done", summary=result.summary())
    return result


def _subset_frontier(space: ConfigSpaceResult, mask: np.ndarray) -> Optional[ParetoFrontier]:
    """Frontier of a masked subset, or ``None`` when the mask is empty."""
    if not bool(np.any(mask)):
        return None
    subset = space.subset(mask)
    return ParetoFrontier.from_points(subset.times_s, subset.energies_j)
