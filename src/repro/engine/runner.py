"""Execute a :class:`~repro.engine.scenario.Scenario` end-to-end.

One call runs the paper's whole pipeline -- simulator-backed calibration
(or catalog ground truth), vectorized configuration-space evaluation
over any number of node-type groups, the energy-deadline Pareto
frontier (whole-space and per-group homogeneous), sweet/overlap region
decomposition, and the Fig. 10 queueing extension -- as an explicit
*stage graph* (:mod:`repro.engine.stagegraph`): one calibrate node per
node type, then ``space`` -> ``frontier`` -> ``regions`` / ``queueing``,
each with a content-addressed identity, executed in topological order
through a cached, parallel :class:`~repro.engine.context.RunContext`.

Re-running the same scenario on the same context is a pure cache hit;
attaching a persistent :class:`~repro.store.ArtifactStore` (``store=``
or ``ctx.store``) makes the same true *across processes*: stages whose
identities are already stored load instead of computing, and an edited
hardware or workload spec invalidates -- and recomputes -- exactly the
stages downstream of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.configuration import GroupSpec  # noqa: F401  (re-export compat)
from repro.core.evaluate import ConfigSpaceResult
from repro.core.params import NodeModelParams
from repro.core.pareto import ParetoFrontier
from repro.core.regions import RegionReport, regions_from_composition
from repro.core.streaming import ReducedSpace, SpaceSpill, count_space_rows
from repro.engine.checkpoint import CheckpointManager
from repro.engine.context import RunContext, default_context
from repro.engine.hashing import stable_hash
from repro.engine.scenario import Scenario
from repro.engine.stagegraph import (
    StageNode,
    StagePlan,
    build_stage_plan,
    frontier_artifact_from_reduced,
    frontier_artifact_from_space,
    run_plan,
)
from repro.queueing.dispatcher import WindowPoint, figure10_series
from repro.search.driver import SearchedSpace


@dataclass
class ScenarioResult:
    """Everything a scenario produced, stage by stage.

    Stages the scenario did not request are ``None``.  ``timings_s``
    records wall time per stage (cache hits show up as ~0),
    ``stage_cache_stats`` records the cache/store counter deltas each
    stage observed (hits, misses, disk reads, quarantines), and
    ``cache_stats`` snapshots the aggregate context counters after the
    run.  ``group_frontiers`` holds one homogeneous frontier per
    node-type group (``None`` where that group alone never appears);
    ``only_a_frontier``/``only_b_frontier`` mirror its first two entries.
    """

    scenario: Scenario
    params: Dict[str, NodeModelParams]
    #: The materialized column stacks; ``None`` in streaming mode unless
    #: a spill directory retained the full space (then memmap-backed).
    space: Optional[ConfigSpaceResult]
    #: The streamed pipeline's compact artifact; ``None`` in
    #: materialized mode.
    reduced: Optional[ReducedSpace] = None
    frontier: Optional[ParetoFrontier] = None
    group_frontiers: Optional[Tuple[Optional[ParetoFrontier], ...]] = None
    only_a_frontier: Optional[ParetoFrontier] = None
    only_b_frontier: Optional[ParetoFrontier] = None
    regions: Optional[RegionReport] = None
    queueing: Optional[Dict[float, List[WindowPoint]]] = None
    #: The search provenance (strategy, budget, convergence trajectory)
    #: when a non-exhaustive ``scenario.search`` drove the space stage;
    #: ``None`` on exhaustive runs.  ``reduced`` aliases
    #: ``search.reduced`` so downstream consumers are uniform.
    search: Optional[SearchedSpace] = None
    timings_s: Dict[str, float] = field(default_factory=dict)
    cache_stats: Dict[str, int] = field(default_factory=dict)
    stage_cache_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Per-stage execution statuses (``"stored"`` / ``"computed"``).
    stage_statuses: Dict[str, str] = field(default_factory=dict)

    def min_energy_for_deadline(self, deadline_s: float) -> Optional[float]:
        """Frontier lookup sugar (requires the ``frontier`` stage)."""
        if self.frontier is None:
            raise ValueError("scenario did not run the 'frontier' stage")
        return self.frontier.min_energy_for_deadline(deadline_s)

    @property
    def num_configurations(self) -> int:
        """Rows in the evaluated space, whichever mode produced it."""
        if self.space is not None:
            return len(self.space)
        assert self.reduced is not None
        return self.reduced.total_rows

    def summary(self) -> Dict[str, object]:
        """Small plain-data digest for reporting sinks and CLIs."""
        out: Dict[str, object] = {
            "workload": self.scenario.workload,
            "node_types": [g.node for g in self.scenario.groups],
            "configurations": self.num_configurations,
            "space_mode": self.scenario.space_mode,
            "timings_s": dict(self.timings_s),
            "cache_per_stage": {
                stage: dict(counters)
                for stage, counters in self.stage_cache_stats.items()
            },
        }
        if self.frontier is not None:
            out["frontier_points"] = len(self.frontier)
            out["fastest_time_s"] = self.frontier.fastest_time_s
            out["min_energy_j"] = self.frontier.min_energy_j
        if self.regions is not None:
            out["has_sweet_region"] = self.regions.has_sweet_region
            out["has_overlap_region"] = self.regions.has_overlap_region
        if self.search is not None:
            out["search_strategy"] = self.search.strategy
            out["search_budget_rows"] = self.search.budget_rows
            out["search_space_rows"] = self.search.space_rows
            out["search_coverage"] = self.search.coverage
            out["search_rounds"] = len(self.search.trajectory.rounds)
        if self.queueing is not None:
            out["queueing_utilizations"] = sorted(self.queueing)
        return out


def run_scenario(
    scenario: Scenario,
    ctx: Optional[RunContext] = None,
    spill_dir=None,
    checkpoint_dir=None,
    resume: bool = False,
    checkpoint_every: int = 8,
    store=None,
) -> ScenarioResult:
    """Run ``scenario`` through ``ctx`` (the shared default when omitted).

    ``spill_dir`` only matters in streaming mode: when set, the streamed
    blocks are additionally spilled to memory-mapped ``.npy`` columns
    there, and ``result.space`` comes back memmap-backed -- full-space
    reporting without a full-space allocation.

    ``checkpoint_dir`` (streaming mode only) persists reducer state
    every ``checkpoint_every`` blocks under a file named by the
    scenario's cache identity; ``resume=True`` restores a valid
    checkpoint and re-evaluates only the unfinished blocks, producing
    artifacts bit-identical to an uninterrupted run.  ``checkpoint_dir``
    and ``spill_dir`` are mutually exclusive -- the spill consumer is
    append-only and cannot be snapshotted -- and passing both raises
    ``ValueError`` immediately, before any work starts.

    ``store`` attaches a persistent :class:`~repro.store.ArtifactStore`
    (defaulting to ``ctx.store`` when the context carries one): stage
    artifacts load from it when their content identities match and are
    persisted into it otherwise, so a warm-store rerun computes nothing
    and produces bit-identical results.
    """
    if checkpoint_dir is not None and spill_dir is not None:
        raise ValueError(
            "run_scenario() cannot take both checkpoint_dir and spill_dir: "
            "they are incompatible because the spill consumer is append-only "
            "and cannot be snapshotted; run the spill pass and the "
            "checkpointed pass separately"
        )
    searching = scenario.search_active
    if searching and scenario.wants("queueing"):
        raise ValueError(
            "search strategies cannot run the queueing stage: the window "
            "series is a full-space aggregate and a sampled subset would "
            "silently misstate it -- drop 'queueing' from stages or use "
            "search={'strategy': 'exhaustive'}"
        )
    if searching and spill_dir is not None:
        raise ValueError(
            "spill_dir requires an exhaustive sweep: a searched run "
            "evaluates a budgeted subset in discovery order, so spilled "
            "columns would not be the configuration space"
        )
    ctx = ctx if ctx is not None else default_context()
    if store is None:
        store = getattr(ctx, "store", None)
    checkpoint = None
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires checkpoint_dir")
    if checkpoint_dir is not None:
        if scenario.space_mode != "streaming" and not searching:
            raise ValueError(
                "checkpointing requires space_mode='streaming' (the "
                "materialized path has no incremental state to save) "
                "or an active search (whose loop state is snapshotted)"
            )
        fingerprint = stable_hash(
            ("scenario-checkpoint", scenario.cache_identity())
        )
        checkpoint = CheckpointManager(
            directory=Path(checkpoint_dir),
            fingerprint=fingerprint,
            every=checkpoint_every,
            on_event=ctx.emit,
        )
    # A scenario that names its backend wins over the context default;
    # with no scenario backend, both None defers to the context/env.
    backend_kw = (
        {"backend": scenario.backend,
         "backend_options": scenario.backend_options}
        if scenario.backend is not None
        else {}
    )
    ctx.emit("scenario.start", scenario=scenario.cache_identity())

    plan = build_stage_plan(scenario, ctx)
    streaming = scenario.space_mode == "streaming"
    # Side-effect observers (spill, checkpoint) must see the real block
    # stream, so the space stage bypasses store *reads* on those runs;
    # its artifact is still persisted for later runs.
    bypass = ("space",) if (spill_dir is not None or checkpoint is not None) else ()
    spill_box: Dict[str, Any] = {}

    def compute_calibrate(node: StageNode, inputs: Dict[str, Any]):
        name = node.name.split(":", 1)[1]
        index, spec = plan.calibrations[name]
        return ctx.params(
            spec,
            plan.workload,
            calibrated=scenario.calibrated,
            noise=plan.noise,
            seed=scenario.seed,
            index=index,
            batched=scenario.simulation == "batched",
        )

    def compute_space(node: StageNode, inputs: Dict[str, Any]):
        params = {
            name: inputs[f"calibrate:{name}"] for name in plan.calibrations
        }
        if searching:
            searched = ctx.space_searched(
                plan.group_specs,
                params,
                plan.units,
                scenario.search_config(),
                checkpoint=checkpoint,
                resume=resume,
                **backend_kw,
            )
            ctx.emit(
                "space.memory",
                mode="searched",
                rows=searched.rows_evaluated,
                peak_estimate_nbytes=searched.reduced.peak_block_nbytes,
                full_nbytes=searched.reduced.full_nbytes,
                budget_mb=None,
            )
            return searched
        if streaming:
            spill = None
            if spill_dir is not None:
                spill = SpaceSpill(
                    directory=spill_dir,
                    nodes=tuple(plan.calibrations),
                    units_total=plan.units,
                    total_rows=count_space_rows(plan.group_specs),
                )
            reduced = ctx.space_reduced(
                plan.group_specs,
                params,
                plan.units,
                memory_budget_mb=scenario.memory_budget_mb,
                queueing=plan.queue_kw,
                consumers=(spill,) if spill is not None else (),
                checkpoint=checkpoint,
                resume=resume,
                reduce_at=scenario.reduce_at,
                chunk_rows=scenario.chunk_rows,
                **backend_kw,
            )
            if spill is not None:
                spill_box["space"] = spill.finish()
            ctx.emit(
                "space.memory",
                mode="streaming",
                rows=reduced.total_rows,
                peak_estimate_nbytes=reduced.peak_block_nbytes,
                full_nbytes=reduced.full_nbytes,
                budget_mb=scenario.memory_budget_mb,
            )
            return reduced
        space = ctx.space_groups(
            plan.group_specs, params, plan.units,
            chunk_rows=scenario.chunk_rows, **backend_kw,
        )
        ctx.emit(
            "space.memory",
            mode="materialized",
            rows=len(space),
            peak_estimate_nbytes=space.nbytes,
            full_nbytes=space.nbytes,
            budget_mb=None,
        )
        return space

    def compute_frontier(node: StageNode, inputs: Dict[str, Any]):
        space_art = inputs["space"]
        if isinstance(space_art, SearchedSpace):
            return frontier_artifact_from_reduced(space_art.reduced)
        if isinstance(space_art, ReducedSpace):
            return frontier_artifact_from_reduced(space_art)
        return frontier_artifact_from_space(space_art)

    def compute_regions(node: StageNode, inputs: Dict[str, Any]):
        art = inputs["frontier"]
        return regions_from_composition(
            art.frontier, art.composition, len(plan.group_specs)
        )

    def compute_queueing(node: StageNode, inputs: Dict[str, Any]):
        space_art = inputs["space"]
        if isinstance(space_art, ReducedSpace):
            # Folded into the block pass; this stage just surfaces it.
            return space_art.queueing
        return figure10_series(space_art, **plan.queue_kw)

    execution = run_plan(
        plan,
        ctx,
        {
            "calibrate": compute_calibrate,
            "space": compute_space,
            "frontier": compute_frontier,
            "regions": compute_regions,
            "queueing": compute_queueing,
        },
        store=store,
        bypass_store=bypass,
    )

    artifacts = execution.artifacts
    params = {
        name: artifacts[f"calibrate:{name}"] for name in plan.calibrations
    }
    space_art = artifacts["space"]
    if isinstance(space_art, SearchedSpace):
        result = ScenarioResult(
            scenario=scenario,
            params=params,
            space=None,
            reduced=space_art.reduced,
            search=space_art,
        )
    elif isinstance(space_art, ReducedSpace):
        result = ScenarioResult(
            scenario=scenario,
            params=params,
            space=spill_box.get("space"),
            reduced=space_art,
        )
    else:
        result = ScenarioResult(scenario=scenario, params=params, space=space_art)

    if "frontier" in artifacts:
        art = artifacts["frontier"]
        result.frontier = art.frontier
        result.group_frontiers = art.group_frontiers
        result.only_a_frontier = art.group_frontiers[0]
        if len(plan.group_specs) >= 2:
            result.only_b_frontier = art.group_frontiers[1]
    if "regions" in artifacts:
        result.regions = artifacts["regions"]
    if "queueing" in artifacts:
        result.queueing = artifacts["queueing"]

    result.timings_s = execution.timings_s
    result.cache_stats = ctx.cache.stats.as_dict()
    result.stage_cache_stats = execution.stage_cache
    result.stage_statuses = execution.statuses
    ctx.emit("scenario.done", summary=result.summary())
    return result


def explain_scenario(
    scenario: Scenario,
    ctx: Optional[RunContext] = None,
    store=None,
) -> Tuple[StagePlan, List[Dict[str, Any]]]:
    """Dry-run: the resolved stage plan plus per-stage store status.

    Nothing is calibrated, evaluated, or stored -- resolution and
    hashing only.  Returns ``(plan, rows)`` where each row carries the
    stage name, kind, dependencies, content identity, and store status
    (``hit`` / ``stale`` / ``miss``; always ``miss`` without a store).
    """
    from repro.engine.stagegraph import explain_plan

    ctx = ctx if ctx is not None else default_context()
    if store is None:
        store = getattr(ctx, "store", None)
    plan = build_stage_plan(scenario, ctx)
    return plan, explain_plan(plan, store)
