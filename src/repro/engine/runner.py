"""Execute a :class:`~repro.engine.scenario.Scenario` end-to-end.

One call runs the paper's whole pipeline -- simulator-backed calibration
(or catalog ground truth), vectorized configuration-space evaluation,
the energy-deadline Pareto frontier, sweet/overlap region decomposition,
and the Fig. 10 queueing extension -- through a cached, parallel
:class:`~repro.engine.context.RunContext`.  Re-running the same scenario
on the same context is a pure cache hit: calibration and space
evaluation each execute exactly once per distinct content.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.evaluate import ConfigSpaceResult
from repro.core.params import NodeModelParams
from repro.core.pareto import ParetoFrontier
from repro.core.regions import RegionReport, analyze_regions
from repro.engine.context import RunContext, default_context
from repro.engine.scenario import Scenario
from repro.queueing.dispatcher import WindowPoint, figure10_series
from repro.simulator.noise import CALIBRATED_NOISE


@dataclass
class ScenarioResult:
    """Everything a scenario produced, stage by stage.

    Stages the scenario did not request are ``None``.  ``timings_s``
    records wall time per stage (cache hits show up as ~0), and
    ``cache_stats`` snapshots the context cache counters after the run.
    """

    scenario: Scenario
    params: Dict[str, NodeModelParams]
    space: ConfigSpaceResult
    frontier: Optional[ParetoFrontier] = None
    only_a_frontier: Optional[ParetoFrontier] = None
    only_b_frontier: Optional[ParetoFrontier] = None
    regions: Optional[RegionReport] = None
    queueing: Optional[Dict[float, List[WindowPoint]]] = None
    timings_s: Dict[str, float] = field(default_factory=dict)
    cache_stats: Dict[str, int] = field(default_factory=dict)

    def min_energy_for_deadline(self, deadline_s: float) -> Optional[float]:
        """Frontier lookup sugar (requires the ``frontier`` stage)."""
        if self.frontier is None:
            raise ValueError("scenario did not run the 'frontier' stage")
        return self.frontier.min_energy_for_deadline(deadline_s)

    def summary(self) -> Dict[str, object]:
        """Small plain-data digest for reporting sinks and CLIs."""
        out: Dict[str, object] = {
            "workload": self.scenario.workload,
            "configurations": len(self.space),
            "timings_s": dict(self.timings_s),
        }
        if self.frontier is not None:
            out["frontier_points"] = len(self.frontier)
            out["fastest_time_s"] = self.frontier.fastest_time_s
            out["min_energy_j"] = self.frontier.min_energy_j
        if self.regions is not None:
            out["has_sweet_region"] = self.regions.has_sweet_region
            out["has_overlap_region"] = self.regions.has_overlap_region
        if self.queueing is not None:
            out["queueing_utilizations"] = sorted(self.queueing)
        return out


def run_scenario(scenario: Scenario, ctx: Optional[RunContext] = None) -> ScenarioResult:
    """Run ``scenario`` through ``ctx`` (the shared default when omitted)."""
    ctx = ctx if ctx is not None else default_context()
    timings: Dict[str, float] = {}
    ctx.emit("scenario.start", scenario=scenario.cache_identity())

    workload = ctx.resolve_workload(scenario.workload)
    spec_a = ctx.resolve_node(scenario.node_a)
    spec_b = ctx.resolve_node(scenario.node_b)
    units = scenario.units
    if units is None:
        units = workload.problem_sizes.get("analysis", workload.default_job_units)

    # ---- calibrate -----------------------------------------------------
    start = time.perf_counter()
    params = ctx.params_for(
        (spec_a, spec_b),
        workload,
        calibrated=scenario.calibrated,
        noise=CALIBRATED_NOISE.scaled(scenario.noise_scale),
        seed=scenario.seed,
        batched=scenario.simulation == "batched",
    )
    timings["calibrate"] = time.perf_counter() - start

    # ---- space ---------------------------------------------------------
    start = time.perf_counter()
    space = ctx.space(
        spec_a,
        scenario.max_a,
        spec_b,
        scenario.max_b,
        params,
        units,
        counts_a=scenario.counts_a,
        counts_b=scenario.counts_b,
    )
    timings["space"] = time.perf_counter() - start
    result = ScenarioResult(scenario=scenario, params=params, space=space)

    # ---- frontier ------------------------------------------------------
    if scenario.wants("frontier"):
        start = time.perf_counter()
        result.frontier = ParetoFrontier.from_points(space.times_s, space.energies_j)
        result.only_a_frontier = _subset_frontier(space, space.is_only_a)
        result.only_b_frontier = _subset_frontier(space, space.is_only_b)
        timings["frontier"] = time.perf_counter() - start

    # ---- regions -------------------------------------------------------
    if scenario.wants("regions") and result.frontier is not None:
        start = time.perf_counter()
        result.regions = analyze_regions(space, result.frontier)
        timings["regions"] = time.perf_counter() - start

    # ---- queueing ------------------------------------------------------
    if scenario.wants("queueing"):
        start = time.perf_counter()
        result.queueing = figure10_series(
            space,
            spec_a.idle_power_w,
            spec_b.idle_power_w,
            utilizations=scenario.utilizations,
            window_s=scenario.window_s,
        )
        timings["queueing"] = time.perf_counter() - start

    result.timings_s = timings
    result.cache_stats = ctx.cache.stats.as_dict()
    ctx.emit("scenario.done", summary=result.summary())
    return result


def _subset_frontier(space: ConfigSpaceResult, mask: np.ndarray) -> Optional[ParetoFrontier]:
    """Frontier of a masked subset, or ``None`` when the mask is empty."""
    if not bool(np.any(mask)):
        return None
    subset = space.subset(mask)
    return ParetoFrontier.from_points(subset.times_s, subset.energies_j)
