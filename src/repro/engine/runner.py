"""Execute a :class:`~repro.engine.scenario.Scenario` end-to-end.

One call runs the paper's whole pipeline -- simulator-backed calibration
(or catalog ground truth), vectorized configuration-space evaluation
over any number of node-type groups, the energy-deadline Pareto
frontier (whole-space and per-group homogeneous), sweet/overlap region
decomposition, and the Fig. 10 queueing extension -- through a cached,
parallel :class:`~repro.engine.context.RunContext`.  Re-running the same
scenario on the same context is a pure cache hit: calibration and space
evaluation each execute exactly once per distinct content.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.configuration import GroupSpec
from repro.core.evaluate import ConfigSpaceResult
from repro.core.params import NodeModelParams
from repro.core.pareto import ParetoFrontier
from repro.core.regions import RegionReport, analyze_regions, analyze_regions_reduced
from repro.core.streaming import ReducedSpace, SpaceSpill, count_space_rows
from repro.engine.checkpoint import CheckpointManager
from repro.engine.context import RunContext, default_context
from repro.engine.hashing import stable_hash
from repro.engine.scenario import Scenario
from repro.queueing.dispatcher import WindowPoint, figure10_series
from repro.simulator.noise import CALIBRATED_NOISE


@dataclass
class ScenarioResult:
    """Everything a scenario produced, stage by stage.

    Stages the scenario did not request are ``None``.  ``timings_s``
    records wall time per stage (cache hits show up as ~0), and
    ``cache_stats`` snapshots the context cache counters after the run.
    ``group_frontiers`` holds one homogeneous frontier per node-type
    group (``None`` where that group alone never appears);
    ``only_a_frontier``/``only_b_frontier`` mirror its first two entries.
    """

    scenario: Scenario
    params: Dict[str, NodeModelParams]
    #: The materialized column stacks; ``None`` in streaming mode unless
    #: a spill directory retained the full space (then memmap-backed).
    space: Optional[ConfigSpaceResult]
    #: The streamed pipeline's compact artifact; ``None`` in
    #: materialized mode.
    reduced: Optional[ReducedSpace] = None
    frontier: Optional[ParetoFrontier] = None
    group_frontiers: Optional[Tuple[Optional[ParetoFrontier], ...]] = None
    only_a_frontier: Optional[ParetoFrontier] = None
    only_b_frontier: Optional[ParetoFrontier] = None
    regions: Optional[RegionReport] = None
    queueing: Optional[Dict[float, List[WindowPoint]]] = None
    timings_s: Dict[str, float] = field(default_factory=dict)
    cache_stats: Dict[str, int] = field(default_factory=dict)

    def min_energy_for_deadline(self, deadline_s: float) -> Optional[float]:
        """Frontier lookup sugar (requires the ``frontier`` stage)."""
        if self.frontier is None:
            raise ValueError("scenario did not run the 'frontier' stage")
        return self.frontier.min_energy_for_deadline(deadline_s)

    @property
    def num_configurations(self) -> int:
        """Rows in the evaluated space, whichever mode produced it."""
        if self.space is not None:
            return len(self.space)
        assert self.reduced is not None
        return self.reduced.total_rows

    def summary(self) -> Dict[str, object]:
        """Small plain-data digest for reporting sinks and CLIs."""
        out: Dict[str, object] = {
            "workload": self.scenario.workload,
            "node_types": [g.node for g in self.scenario.groups],
            "configurations": self.num_configurations,
            "space_mode": self.scenario.space_mode,
            "timings_s": dict(self.timings_s),
        }
        if self.frontier is not None:
            out["frontier_points"] = len(self.frontier)
            out["fastest_time_s"] = self.frontier.fastest_time_s
            out["min_energy_j"] = self.frontier.min_energy_j
        if self.regions is not None:
            out["has_sweet_region"] = self.regions.has_sweet_region
            out["has_overlap_region"] = self.regions.has_overlap_region
        if self.queueing is not None:
            out["queueing_utilizations"] = sorted(self.queueing)
        return out


def run_scenario(
    scenario: Scenario,
    ctx: Optional[RunContext] = None,
    spill_dir=None,
    checkpoint_dir=None,
    resume: bool = False,
    checkpoint_every: int = 8,
) -> ScenarioResult:
    """Run ``scenario`` through ``ctx`` (the shared default when omitted).

    ``spill_dir`` only matters in streaming mode: when set, the streamed
    blocks are additionally spilled to memory-mapped ``.npy`` columns
    there, and ``result.space`` comes back memmap-backed -- full-space
    reporting without a full-space allocation.

    ``checkpoint_dir`` (streaming mode only) persists reducer state
    every ``checkpoint_every`` blocks under a file named by the
    scenario's cache identity; ``resume=True`` restores a valid
    checkpoint and re-evaluates only the unfinished blocks, producing
    artifacts bit-identical to an uninterrupted run.  Checkpointing is
    incompatible with ``spill_dir`` (the spill consumer is append-only
    and cannot be snapshotted).
    """
    ctx = ctx if ctx is not None else default_context()
    checkpoint = None
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires checkpoint_dir")
    if checkpoint_dir is not None:
        if scenario.space_mode != "streaming":
            raise ValueError(
                "checkpointing requires space_mode='streaming' (the "
                "materialized path has no incremental state to save)"
            )
        if spill_dir is not None:
            raise ValueError("checkpoint_dir and spill_dir are incompatible")
        fingerprint = stable_hash(
            ("scenario-checkpoint", scenario.cache_identity())
        )
        checkpoint = CheckpointManager(
            directory=Path(checkpoint_dir),
            fingerprint=fingerprint,
            every=checkpoint_every,
            on_event=ctx.emit,
        )
    # A scenario that names its backend wins over the context default;
    # with no scenario backend, both None defers to the context/env.
    backend_kw = (
        {"backend": scenario.backend,
         "backend_options": scenario.backend_options}
        if scenario.backend is not None
        else {}
    )
    timings: Dict[str, float] = {}
    ctx.emit("scenario.start", scenario=scenario.cache_identity())

    workload = ctx.resolve_workload(scenario.workload)
    groups = scenario.groups
    specs = [ctx.resolve_node(g.node) for g in groups]
    units = scenario.units
    if units is None:
        units = workload.problem_sizes.get("analysis", workload.default_job_units)

    # ---- calibrate -----------------------------------------------------
    start = time.perf_counter()
    params = ctx.params_for(
        tuple(specs),
        workload,
        calibrated=scenario.calibrated,
        noise=CALIBRATED_NOISE.scaled(scenario.noise_scale),
        seed=scenario.seed,
        batched=scenario.simulation == "batched",
    )
    timings["calibrate"] = time.perf_counter() - start

    # ---- space ---------------------------------------------------------
    group_specs = tuple(
        GroupSpec(spec, g.max_nodes, counts=g.counts, settings=g.settings)
        for spec, g in zip(specs, groups)
    )
    streaming = scenario.space_mode == "streaming"
    queue_kw = (
        {
            "idle_powers_w": tuple(spec.idle_power_w for spec in specs),
            "utilizations": scenario.utilizations,
            "window_s": scenario.window_s,
        }
        if scenario.wants("queueing")
        else None
    )

    start = time.perf_counter()
    if streaming:
        spill = None
        if spill_dir is not None:
            spill = SpaceSpill(
                directory=spill_dir,
                nodes=tuple(spec.name for spec in specs),
                units_total=units,
                total_rows=count_space_rows(group_specs),
            )
        reduced = ctx.space_reduced(
            group_specs,
            params,
            units,
            memory_budget_mb=scenario.memory_budget_mb,
            queueing=queue_kw,
            consumers=(spill,) if spill is not None else (),
            checkpoint=checkpoint,
            resume=resume,
            reduce_at=scenario.reduce_at,
            chunk_rows=scenario.chunk_rows,
            **backend_kw,
        )
        space = spill.finish() if spill is not None else None
        timings["space"] = time.perf_counter() - start
        result = ScenarioResult(
            scenario=scenario, params=params, space=space, reduced=reduced
        )
        ctx.emit(
            "space.memory",
            mode="streaming",
            rows=reduced.total_rows,
            peak_estimate_nbytes=reduced.peak_block_nbytes,
            full_nbytes=reduced.full_nbytes,
            budget_mb=scenario.memory_budget_mb,
        )
    else:
        space = ctx.space_groups(
            group_specs, params, units,
            chunk_rows=scenario.chunk_rows, **backend_kw,
        )
        timings["space"] = time.perf_counter() - start
        result = ScenarioResult(scenario=scenario, params=params, space=space)
        ctx.emit(
            "space.memory",
            mode="materialized",
            rows=len(space),
            peak_estimate_nbytes=space.nbytes,
            full_nbytes=space.nbytes,
            budget_mb=None,
        )

    # ---- frontier ------------------------------------------------------
    if scenario.wants("frontier"):
        start = time.perf_counter()
        if streaming:
            result.frontier = result.reduced.frontier
            result.group_frontiers = result.reduced.group_frontiers
        else:
            result.frontier = ParetoFrontier.from_points(
                space.times_s, space.energies_j
            )
            result.group_frontiers = tuple(
                _subset_frontier(space, space.is_only(g))
                for g in range(space.num_groups)
            )
        result.only_a_frontier = result.group_frontiers[0]
        if len(group_specs) >= 2:
            result.only_b_frontier = result.group_frontiers[1]
        timings["frontier"] = time.perf_counter() - start

    # ---- regions -------------------------------------------------------
    if scenario.wants("regions") and result.frontier is not None:
        start = time.perf_counter()
        if streaming:
            result.regions = analyze_regions_reduced(result.reduced)
        else:
            result.regions = analyze_regions(space, result.frontier)
        timings["regions"] = time.perf_counter() - start

    # ---- queueing ------------------------------------------------------
    if scenario.wants("queueing"):
        start = time.perf_counter()
        if streaming:
            # Folded into the block pass; this stage just surfaces it.
            result.queueing = result.reduced.queueing
        else:
            result.queueing = figure10_series(space, **queue_kw)
        timings["queueing"] = time.perf_counter() - start

    result.timings_s = timings
    result.cache_stats = ctx.cache.stats.as_dict()
    ctx.emit("scenario.done", summary=result.summary())
    return result


def _subset_frontier(space: ConfigSpaceResult, mask: np.ndarray) -> Optional[ParetoFrontier]:
    """Frontier of a masked subset, or ``None`` when the mask is empty."""
    if not bool(np.any(mask)):
        return None
    subset = space.subset(mask)
    return ParetoFrontier.from_points(subset.times_s, subset.energies_j)
