"""Declarative experiment descriptions.

A :class:`Scenario` is the paper's whole workflow as one value: which
workload, which node types from the hardware catalog, the bounds of the
configuration space, which analysis stages to run, and the root RNG
seed.  It is plain data -- ``to_dict``/``from_dict`` round-trip through
JSON -- so scenarios can live in files, travel to worker processes, and
serve as content-addressed cache keys.

Node types come in two spellings.  The paper's two-type case uses the
historical pair fields (``node_a``/``max_a``/``counts_a`` and the b
twins); any number of types uses ``node_types``, an ordered list of
:class:`NodeGroup` entries.  The two spellings are interchangeable for
two groups: ``cache_identity`` canonicalizes both to the group list, so
an A/B scenario written either way shares cache entries.

The imperative twin lives in :mod:`repro.engine.context` (call the
pipeline stages yourself, still cached); :func:`repro.engine.runner.run_scenario`
executes a scenario end-to-end.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

#: Analysis stages, in pipeline order.  ``calibrate`` and ``space`` always
#: run (nothing downstream exists without them); the rest are opt-in.
STAGES = ("calibrate", "space", "frontier", "regions", "queueing")

#: Stages implied by later ones: regions needs the frontier.
_STAGE_IMPLIES = {"regions": ("frontier",), "queueing": ()}

#: The historical two-type spelling of the group axes.
_PAIR_FIELDS = ("node_a", "node_b", "max_a", "max_b", "counts_a", "counts_b")

#: Admissible ``Scenario.search`` strategies.
SEARCH_STRATEGIES = ("exhaustive", "random", "ga", "anneal")

#: Keys a ``Scenario.search`` mapping may carry.
_SEARCH_KEYS = ("strategy", "budget_rows", "seed", "batch_rows", "options")


def _plain(value: Any) -> Any:
    """Recursively turn tuples into lists for JSON-plain dicts."""
    if isinstance(value, (tuple, list)):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {k: _plain(v) for k, v in value.items()}
    return value


@dataclass(frozen=True)
class NodeGroup:
    """One node-type axis of a scenario's configuration space.

    Mirrors :class:`repro.core.configuration.GroupSpec` with the node
    referenced by catalog name instead of spec object, so it stays plain
    data: ``max_nodes`` bounds the count range ``0..max_nodes``,
    ``counts`` pins explicit counts, ``settings`` pins explicit
    (cores, frequency) settings.
    """

    node: str
    max_nodes: int = 10
    counts: Optional[Tuple[int, ...]] = None
    settings: Optional[Tuple[Tuple[int, float], ...]] = None

    def __post_init__(self) -> None:
        if self.max_nodes < 0:
            raise ValueError("maximum node counts must be non-negative")
        if self.counts is not None:
            object.__setattr__(self, "counts", tuple(int(c) for c in self.counts))
        if self.settings is not None:
            object.__setattr__(
                self,
                "settings",
                tuple((int(c), float(f)) for c, f in self.settings),
            )

    def to_dict(self) -> Dict[str, Any]:
        return _plain(asdict(self))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NodeGroup":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown node group fields {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**data)


def _canonical_search(search: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate and canonicalize a ``Scenario.search`` mapping.

    The canonical form always carries every key in a fixed shape, so two
    spellings of the same search share one cache identity.
    """
    if not isinstance(search, Mapping):
        raise ValueError(
            f"search must be a mapping, got {type(search).__name__}"
        )
    unknown = set(search) - set(_SEARCH_KEYS)
    if unknown:
        raise ValueError(
            f"unknown search keys {sorted(unknown)}; "
            f"known: {sorted(_SEARCH_KEYS)}"
        )
    strategy = str(search.get("strategy", "exhaustive"))
    if strategy not in SEARCH_STRATEGIES:
        raise ValueError(
            f"search strategy must be one of {list(SEARCH_STRATEGIES)}, "
            f"got {strategy!r}"
        )
    budget = search.get("budget_rows")
    if budget is not None:
        budget = int(budget)
        if budget < 1:
            raise ValueError("search budget_rows must be at least one row")
    batch = search.get("batch_rows")
    if batch is not None:
        batch = int(batch)
        if batch < 1:
            raise ValueError("search batch_rows must be at least one row")
    seed = search.get("seed")
    options = dict(search.get("options") or {})
    return {
        "strategy": strategy,
        "budget_rows": budget,
        "seed": None if seed is None else int(seed),
        "batch_rows": batch,
        "options": options,
    }


@dataclass(frozen=True)
class Scenario:
    """One reproducible experiment, declaratively.

    Attributes
    ----------
    workload:
        Workload name, resolved through :func:`repro.workloads.suite.workload_by_name`
        (or a workload registered on the :class:`~repro.engine.context.RunContext`).
    node_a, node_b:
        Node-type names, resolved through the hardware catalog; ``a`` is
        conventionally the low-power type, as in the paper.
    max_a, max_b, counts_a, counts_b:
        Configuration-space bounds, mirroring
        :func:`repro.core.evaluate.evaluate_space`: node counts range over
        ``0..max`` unless pinned to an explicit ``counts`` list.
    node_types:
        The k-group generalization: an ordered list of
        :class:`NodeGroup` entries (dicts are coerced).  When set it is
        authoritative and the pair fields above become read-only mirrors
        of the first two groups; when ``None`` the pair fields define a
        two-group scenario.
    units:
        Job size in work units; ``None`` selects the workload's
        ``"analysis"`` problem size (the paper's Section IV default).
    calibrated:
        ``False`` uses catalog ground truth; ``True`` runs the
        trace-driven calibration campaign against the simulated testbed.
    noise_scale:
        Multiplier on the calibrated noise model (only meaningful with
        ``calibrated=True``; 0 gives noiseless calibration).
    seed:
        Root of the scenario's reproducible RNG tree.
    stages:
        Analysis stages to run on top of calibrate+space, any subset of
        ``("frontier", "regions", "queueing")``; implied prerequisites are
        added automatically.
    utilizations, window_s:
        Queueing-stage knobs (Fig. 10 semantics).
    simulation:
        Measurement-layer implementation for calibration campaigns:
        ``"batched"`` runs the counter grid through
        :meth:`~repro.simulator.node.NodeSimulator.run_batch`,
        ``"reference"`` keeps the scalar per-run loop.  Both draw from
        the same seed tree and produce bit-identical results, so the
        choice is excluded from the cache identity.
    space_mode:
        How the configuration space flows through the pipeline:
        ``"materialized"`` holds the full column stacks in RAM (the
        historical behavior), ``"streaming"`` evaluates memory-bounded
        blocks and folds them through incremental reducers
        (:mod:`repro.core.streaming`), caching only the reduced
        artifacts.  Results are bit-identical, so the mode -- like
        ``simulation`` -- is excluded from the cache identity.
    memory_budget_mb:
        Peak-memory budget for streaming evaluation, megabytes;
        ``None`` uses :data:`repro.core.streaming.DEFAULT_MEMORY_BUDGET_MB`.
        An execution knob, excluded from the cache identity.
    reduce_at:
        Where the streaming fold happens: ``"coordinator"`` (default)
        ships full evaluated blocks back and folds them centrally;
        ``"worker"`` folds each block inside the worker that evaluated
        it and ships only compact reducer states, which the coordinator
        merges in plan order.  Artifacts are bit-identical either way,
        so -- like ``space_mode`` -- the knob is excluded from the cache
        identity.  ``"worker"`` requires ``space_mode="streaming"``.
    chunk_rows:
        Explicit row budget per streaming block, overriding the adaptive
        chunk planner.  An execution knob, excluded from the cache
        identity.
    backend, backend_options:
        Execution backend for the scenario's fan-outs -- a registered
        name (``"serial"``, ``"process_pool"``, ``"tcp_remote"``) plus
        its options dict (validated against the backend's accepted
        options at construction).  ``None`` keeps the context/default
        selection.  Every backend produces bit-identical artifacts, so
        both fields are excluded from the cache identity: a scenario run
        remotely shares cache entries (and cache keys) with the same
        scenario run in-process.
    search:
        How the configuration space is *explored*: ``None`` (or
        ``{"strategy": "exhaustive"}``) sweeps every row -- the
        historical behavior -- while ``{"strategy": "random" | "ga" |
        "anneal", "budget_rows": ..., "seed": ..., "batch_rows": ...,
        "options": {...}}`` runs a :mod:`repro.search` agent under a row
        budget.  Unlike ``space_mode``, an active search **is** part of
        the cache identity: a sampled frontier is approximate, so it
        must never share cache entries with the exhaustive one.
        ``budget_rows`` defaults to 5% of the space at run time; ``seed``
        defaults to the scenario seed; remaining ``options`` pass to the
        agent's constructor.
    name:
        Optional human label; excluded from the cache identity so naming
        a scenario never invalidates its results.
    """

    workload: str
    node_a: str = "arm-cortex-a9"
    node_b: str = "amd-k10"
    max_a: int = 10
    max_b: int = 10
    counts_a: Optional[Tuple[int, ...]] = None
    counts_b: Optional[Tuple[int, ...]] = None
    units: Optional[float] = None
    calibrated: bool = False
    noise_scale: float = 1.0
    seed: int = 0
    stages: Tuple[str, ...] = ("frontier", "regions")
    utilizations: Tuple[float, ...] = (0.05, 0.25, 0.50)
    window_s: float = 20.0
    simulation: str = "batched"
    space_mode: str = "materialized"
    memory_budget_mb: Optional[float] = None
    reduce_at: str = "coordinator"
    chunk_rows: Optional[int] = None
    name: Optional[str] = None
    node_types: Optional[Tuple[NodeGroup, ...]] = None
    backend: Optional[str] = None
    backend_options: Optional[Dict[str, Any]] = None
    search: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.node_types is not None:
            groups = tuple(
                g if isinstance(g, NodeGroup) else NodeGroup.from_dict(g)
                for g in self.node_types
            )
            if not groups:
                raise ValueError("node_types cannot be empty")
            object.__setattr__(self, "node_types", groups)
            # The pair fields become read-only mirrors of the first two
            # groups, so legacy consumers keep working on k >= 2 and the
            # two spellings cannot drift apart.
            object.__setattr__(self, "node_a", groups[0].node)
            object.__setattr__(self, "max_a", groups[0].max_nodes)
            object.__setattr__(self, "counts_a", groups[0].counts)
            if len(groups) >= 2:
                object.__setattr__(self, "node_b", groups[1].node)
                object.__setattr__(self, "max_b", groups[1].max_nodes)
                object.__setattr__(self, "counts_b", groups[1].counts)
            else:
                object.__setattr__(self, "max_b", 0)
                object.__setattr__(self, "counts_b", None)
        if self.max_a < 0 or self.max_b < 0:
            raise ValueError("maximum node counts must be non-negative")
        if self.node_types is not None:
            if all(g.max_nodes == 0 for g in self.node_types):
                raise ValueError("a scenario needs at least one node of some type")
        elif self.max_a == 0 and self.max_b == 0:
            raise ValueError("a scenario needs at least one node of some type")
        if self.units is not None and self.units <= 0:
            raise ValueError(f"units must be positive, got {self.units}")
        if self.noise_scale < 0:
            raise ValueError("noise scale must be non-negative")
        if self.window_s <= 0:
            raise ValueError("queueing window must be positive")
        if self.simulation not in ("batched", "reference"):
            raise ValueError(
                f"simulation must be 'batched' or 'reference', got "
                f"{self.simulation!r}"
            )
        if self.space_mode not in ("materialized", "streaming"):
            raise ValueError(
                f"space_mode must be 'materialized' or 'streaming', got "
                f"{self.space_mode!r}"
            )
        if self.memory_budget_mb is not None and self.memory_budget_mb <= 0:
            raise ValueError("memory budget must be positive")
        if self.reduce_at not in ("coordinator", "worker"):
            raise ValueError(
                f"reduce_at must be 'coordinator' or 'worker', got "
                f"{self.reduce_at!r}"
            )
        if self.reduce_at == "worker" and self.space_mode != "streaming":
            raise ValueError(
                "reduce_at='worker' requires space_mode='streaming' -- "
                "materialized runs keep full blocks by definition"
            )
        if self.chunk_rows is not None:
            object.__setattr__(self, "chunk_rows", int(self.chunk_rows))
            if self.chunk_rows <= 0:
                raise ValueError("chunk_rows must be positive")
        if self.backend is not None:
            # Registry validation catches unknown names and unknown
            # option keys here, at construction, not mid-run.
            from repro.engine.backends import validate_backend_options

            object.__setattr__(
                self,
                "backend_options",
                validate_backend_options(
                    self.backend, self.backend_options or {}
                ),
            )
        elif self.backend_options:
            raise ValueError(
                "backend_options require a backend; set backend to one of "
                "the registered names (e.g. 'serial', 'process_pool', "
                "'tcp_remote')"
            )
        if self.search is not None:
            object.__setattr__(
                self, "search", _canonical_search(self.search)
            )
        seen_nodes = set()
        for group in self.groups:
            if group.node in seen_nodes:
                raise ValueError(
                    f"duplicate node type {group.node!r} in node_types: "
                    "each group needs a distinct node-type name, or its "
                    "calibrated parameters would silently shadow another "
                    "group's"
                )
            seen_nodes.add(group.node)
        for tup_field in ("counts_a", "counts_b", "stages", "utilizations"):
            value = getattr(self, tup_field)
            if value is not None and not isinstance(value, tuple):
                object.__setattr__(self, tup_field, tuple(value))
        unknown = set(self.stages) - set(STAGES)
        if unknown:
            raise ValueError(
                f"unknown stages {sorted(unknown)}; available: {list(STAGES[2:])}"
            )
        # Normalize: implied prerequisites in, pipeline order, no dupes.
        wanted = set(self.stages)
        for stage in self.stages:
            wanted.update(_STAGE_IMPLIES.get(stage, ()))
        wanted.update(("calibrate", "space"))
        object.__setattr__(
            self, "stages", tuple(s for s in STAGES if s in wanted)
        )

    def wants(self, stage: str) -> bool:
        """Whether ``stage`` is part of this scenario's pipeline."""
        return stage in self.stages

    @property
    def search_active(self) -> bool:
        """Whether a non-exhaustive search strategy drives the space stage."""
        return self.search is not None and self.search["strategy"] != "exhaustive"

    def search_config(self) -> Optional[Dict[str, Any]]:
        """The effective search configuration, defaults resolved.

        ``None`` for exhaustive scenarios.  ``seed`` falls back to the
        scenario seed; ``budget_rows``/``batch_rows`` stay ``None`` when
        unset (the engine resolves them against the space size).
        """
        if not self.search_active:
            return None
        out = dict(self.search)
        if out["seed"] is None:
            out["seed"] = self.seed
        return out

    @property
    def groups(self) -> Tuple[NodeGroup, ...]:
        """The scenario's node-type groups, whichever spelling defined them."""
        if self.node_types is not None:
            return self.node_types
        return (
            NodeGroup(self.node_a, self.max_a, self.counts_a),
            NodeGroup(self.node_b, self.max_b, self.counts_b),
        )

    # ---- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-able dict (tuples become lists, groups become dicts)."""
        return _plain(asdict(self))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        """Inverse of :meth:`to_dict`; unknown keys raise for typo safety."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown scenario fields {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path) -> "Scenario":
        return cls.from_json(Path(path).read_text())

    # ---- identity ------------------------------------------------------

    def cache_identity(self) -> Dict[str, Any]:
        """The fields that determine results.

        Drops the cosmetic ``name`` and the implementation choices
        (``simulation``, ``space_mode``, ``memory_budget_mb``,
        ``reduce_at``, ``chunk_rows``, ``backend``,
        ``backend_options``) -- batched and reference runs
        are bit-identical, streaming produces the same reduced artifacts
        as materializing, and every execution backend produces the same
        bytes, so they all share cache entries.  The node-type axes are
        canonicalized to the group list, so a two-type scenario written
        with the pair fields and the same one written with
        ``node_types`` share entries too.
        """
        raw = self.to_dict()
        raw.pop("name")
        raw.pop("simulation")
        raw.pop("space_mode")
        raw.pop("memory_budget_mb")
        raw.pop("reduce_at")
        raw.pop("chunk_rows")
        raw.pop("backend")
        raw.pop("backend_options")
        if not self.search_active:
            # An exhaustive sweep -- spelled as None or explicitly -- is
            # the historical computation; its identity must stay
            # bit-identical to pre-search scenarios.
            raw.pop("search")
        for key in _PAIR_FIELDS:
            raw.pop(key)
        raw["node_types"] = [g.to_dict() for g in self.groups]
        return raw

    def with_(self, **changes: Any) -> "Scenario":
        """A copy with ``changes`` applied (``dataclasses.replace`` sugar).

        Changing a pair field (``max_a=5``) on a scenario defined via
        ``node_types`` re-derives the groups from the (synced) pair
        mirrors, which only makes sense for two groups -- scenarios with
        more must be changed through ``node_types``.
        """
        if (
            self.node_types is not None
            and "node_types" not in changes
            and set(changes) & set(_PAIR_FIELDS)
        ):
            if len(self.node_types) != 2:
                raise ValueError(
                    "cannot change pair fields on a scenario with "
                    f"{len(self.node_types)} node types; pass node_types=..."
                )
            changes["node_types"] = None
        return replace(self, **changes)
