"""Declarative experiment descriptions.

A :class:`Scenario` is the paper's whole workflow as one value: which
workload, which two node types from the hardware catalog, the bounds of
the configuration space, which analysis stages to run, and the root RNG
seed.  It is plain data -- ``to_dict``/``from_dict`` round-trip through
JSON -- so scenarios can live in files, travel to worker processes, and
serve as content-addressed cache keys.

The imperative twin lives in :mod:`repro.engine.context` (call the
pipeline stages yourself, still cached); :func:`repro.engine.runner.run_scenario`
executes a scenario end-to-end.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

#: Analysis stages, in pipeline order.  ``calibrate`` and ``space`` always
#: run (nothing downstream exists without them); the rest are opt-in.
STAGES = ("calibrate", "space", "frontier", "regions", "queueing")

#: Stages implied by later ones: regions needs the frontier.
_STAGE_IMPLIES = {"regions": ("frontier",), "queueing": ()}


@dataclass(frozen=True)
class Scenario:
    """One reproducible experiment, declaratively.

    Attributes
    ----------
    workload:
        Workload name, resolved through :func:`repro.workloads.suite.workload_by_name`
        (or a workload registered on the :class:`~repro.engine.context.RunContext`).
    node_a, node_b:
        Node-type names, resolved through the hardware catalog; ``a`` is
        conventionally the low-power type, as in the paper.
    max_a, max_b, counts_a, counts_b:
        Configuration-space bounds, mirroring
        :func:`repro.core.evaluate.evaluate_space`: node counts range over
        ``0..max`` unless pinned to an explicit ``counts`` list.
    units:
        Job size in work units; ``None`` selects the workload's
        ``"analysis"`` problem size (the paper's Section IV default).
    calibrated:
        ``False`` uses catalog ground truth; ``True`` runs the
        trace-driven calibration campaign against the simulated testbed.
    noise_scale:
        Multiplier on the calibrated noise model (only meaningful with
        ``calibrated=True``; 0 gives noiseless calibration).
    seed:
        Root of the scenario's reproducible RNG tree.
    stages:
        Analysis stages to run on top of calibrate+space, any subset of
        ``("frontier", "regions", "queueing")``; implied prerequisites are
        added automatically.
    utilizations, window_s:
        Queueing-stage knobs (Fig. 10 semantics).
    simulation:
        Measurement-layer implementation for calibration campaigns:
        ``"batched"`` runs the counter grid through
        :meth:`~repro.simulator.node.NodeSimulator.run_batch`,
        ``"reference"`` keeps the scalar per-run loop.  Both draw from
        the same seed tree and produce bit-identical results, so the
        choice is excluded from the cache identity.
    name:
        Optional human label; excluded from the cache identity so naming
        a scenario never invalidates its results.
    """

    workload: str
    node_a: str = "arm-cortex-a9"
    node_b: str = "amd-k10"
    max_a: int = 10
    max_b: int = 10
    counts_a: Optional[Tuple[int, ...]] = None
    counts_b: Optional[Tuple[int, ...]] = None
    units: Optional[float] = None
    calibrated: bool = False
    noise_scale: float = 1.0
    seed: int = 0
    stages: Tuple[str, ...] = ("frontier", "regions")
    utilizations: Tuple[float, ...] = (0.05, 0.25, 0.50)
    window_s: float = 20.0
    simulation: str = "batched"
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_a < 0 or self.max_b < 0:
            raise ValueError("maximum node counts must be non-negative")
        if self.max_a == 0 and self.max_b == 0:
            raise ValueError("a scenario needs at least one node of some type")
        if self.units is not None and self.units <= 0:
            raise ValueError(f"units must be positive, got {self.units}")
        if self.noise_scale < 0:
            raise ValueError("noise scale must be non-negative")
        if self.window_s <= 0:
            raise ValueError("queueing window must be positive")
        if self.simulation not in ("batched", "reference"):
            raise ValueError(
                f"simulation must be 'batched' or 'reference', got "
                f"{self.simulation!r}"
            )
        for tup_field in ("counts_a", "counts_b", "stages", "utilizations"):
            value = getattr(self, tup_field)
            if value is not None and not isinstance(value, tuple):
                object.__setattr__(self, tup_field, tuple(value))
        unknown = set(self.stages) - set(STAGES)
        if unknown:
            raise ValueError(
                f"unknown stages {sorted(unknown)}; available: {list(STAGES[2:])}"
            )
        # Normalize: implied prerequisites in, pipeline order, no dupes.
        wanted = set(self.stages)
        for stage in self.stages:
            wanted.update(_STAGE_IMPLIES.get(stage, ()))
        wanted.update(("calibrate", "space"))
        object.__setattr__(
            self, "stages", tuple(s for s in STAGES if s in wanted)
        )

    def wants(self, stage: str) -> bool:
        """Whether ``stage`` is part of this scenario's pipeline."""
        return stage in self.stages

    # ---- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-able dict (tuples become lists)."""
        raw = asdict(self)
        for key, value in raw.items():
            if isinstance(value, tuple):
                raw[key] = list(value)
        return raw

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        """Inverse of :meth:`to_dict`; unknown keys raise for typo safety."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown scenario fields {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path) -> "Scenario":
        return cls.from_json(Path(path).read_text())

    # ---- identity ------------------------------------------------------

    def cache_identity(self) -> Dict[str, Any]:
        """The fields that determine results.

        Drops the cosmetic ``name`` and the ``simulation`` implementation
        choice -- batched and reference runs are bit-identical, so they
        share cache entries.
        """
        raw = self.to_dict()
        raw.pop("name")
        raw.pop("simulation")
        return raw

    def with_(self, **changes: Any) -> "Scenario":
        """A copy with ``changes`` applied (``dataclasses.replace`` sugar)."""
        return replace(self, **changes)
