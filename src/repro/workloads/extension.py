"""Extension workload profiles for the non-paper node types.

The Atom shares the AMD node's ISA, so a workload's Atom profile is
derived from its AMD profile: identical instruction stream, but an
in-order two-issue pipeline retires it with more work cycles and far
more non-memory stalls (no out-of-order latency hiding).
"""

from __future__ import annotations

import dataclasses

from repro.hardware.extension import INTEL_ATOM
from repro.workloads.base import ISAProfile, WorkloadSpec

#: In-order penalty factors relative to the out-of-order AMD K10.
_ATOM_WPI_FACTOR = 1.25
_ATOM_SPI_CORE_FACTOR = 2.2


def atom_profile(amd_profile: ISAProfile) -> ISAProfile:
    """Derive an Atom profile from the same-ISA AMD profile."""
    return dataclasses.replace(
        amd_profile,
        wpi=min(1.5, amd_profile.wpi * _ATOM_WPI_FACTOR),
        spi_core=amd_profile.spi_core * _ATOM_SPI_CORE_FACTOR,
    )


def with_atom(workload: WorkloadSpec, amd_name: str = "amd-k10") -> WorkloadSpec:
    """A copy of ``workload`` additionally characterized on the Atom node.

    Raises ``KeyError`` if the workload has no AMD profile to derive from.
    """
    base = workload.profile_for(amd_name)
    profiles = dict(workload.profiles)
    profiles[INTEL_ATOM.name] = atom_profile(base)
    return dataclasses.replace(workload, profiles=profiles)
