"""Power-characterization micro-benchmarks (Section II-D2).

The paper measures ``P_CPU,act`` with a micro-benchmark that pins CPU
utilization at 100% work cycles, and ``P_CPU,stall`` with one that streams
cache misses to maximize stall cycles.  We express both as ordinary
:class:`WorkloadSpec` instances so the simulator runs them through the
same code path as real workloads; :mod:`repro.core.calibration` then
reads the power meter during their execution to extract the coefficients.
"""

from __future__ import annotations

from typing import Dict

from repro.hardware.specs import NodeSpec
from repro.workloads.base import Bottleneck, ISAProfile, WorkloadSpec


def cpu_max_microbench(node: NodeSpec) -> WorkloadSpec:
    """A pure-compute kernel: every cycle is a work cycle, no stalls.

    Running it with ``c`` cores at frequency ``f`` makes the node's power
    ``P_idle + c * P_CPU,act(f)`` (plus negligible memory/NIC), so a
    single power reading isolates the active-core coefficient.
    """
    profile = ISAProfile(
        instructions_per_unit=1_000.0,
        wpi=1.0,
        spi_core=0.0,
        llc_misses_per_instr=0.0,
    )
    return WorkloadSpec(
        name=f"ubench-cpumax-{node.name}",
        domain="microbenchmark",
        unit_name="iteration",
        bottleneck=Bottleneck.CPU,
        profiles={node.name: profile},
        io_bytes_per_unit=0.0,
        default_job_units=1e6,
        ppr_unit="(iterations/s)/W",
    )


def stall_microbench(node: NodeSpec) -> WorkloadSpec:
    """A pointer-chasing kernel: a dependent LLC miss every few instructions.

    Nearly all core time is spent stalled on memory, so the node's power
    is ``P_idle + c * P_CPU,stall(f) + P_mem`` and a reading isolates the
    stall coefficient.  The miss density is chosen so the memory response
    time dwarfs the work cycles by >50x at any catalog frequency.
    """
    profile = ISAProfile(
        instructions_per_unit=1_000.0,
        wpi=0.1,
        spi_core=0.0,
        # One dependent miss every 20 instructions: at >=60 ns latency and
        # >=0.2 GHz this is >= 0.6 stall cycles/instr vs 0.1 work cycles.
        llc_misses_per_instr=0.05,
    )
    return WorkloadSpec(
        name=f"ubench-stall-{node.name}",
        domain="microbenchmark",
        unit_name="iteration",
        bottleneck=Bottleneck.MEMORY,
        profiles={node.name: profile},
        io_bytes_per_unit=0.0,
        default_job_units=1e6,
        ppr_unit="(iterations/s)/W",
    )


def MICROBENCHES(node: NodeSpec) -> Dict[str, WorkloadSpec]:
    """Both characterization kernels for ``node``, keyed by role."""
    return {
        "cpu_max": cpu_max_microbench(node),
        "stall": stall_microbench(node),
    }
