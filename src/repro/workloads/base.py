"""Workload descriptors: the service demand of one unit of work.

Terminology follows Section II of the paper:

* a *program* ``P`` does ``W`` total units of work (random numbers for EP,
  requests for memcached, frames for x264, ...);
* its *representative subset* ``Ps`` is one repeating parallel phase --
  here, exactly one work unit;
* each node type executes a unit with a different machine-instruction
  count ``IPs`` (different ISAs), different work cycles per instruction
  ``WPI`` and different stall behaviour.

An :class:`ISAProfile` holds those per-node-type quantities as *ground
truth* used by the simulator to generate behaviour.  The analytical model
never reads them directly -- it gets its inputs from
:mod:`repro.core.calibration`, which measures them back off the simulator
with noise, exactly as the paper measures them with ``perf``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple


class Bottleneck(str, enum.Enum):
    """Dominant resource of a workload, as classified in Table 3."""

    CPU = "cpu"
    MEMORY = "memory"
    IO = "io"


@dataclass(frozen=True)
class ISAProfile:
    """Service demand of one work unit on one node type.

    Attributes
    ----------
    instructions_per_unit:
        ``IPs`` -- machine instructions retired per work unit on this ISA.
    wpi:
        Work cycles per instruction (``WPI``): cycles in which the core
        retires useful work.  Constant as the workload scales (validated
        by the paper's Fig. 2 and our property tests).
    spi_core:
        Non-memory stall cycles per instruction (``SPI_core``): pipeline
        hazards, branch mispredictions, FP latency.  Also scale-constant.
    llc_misses_per_instr:
        Last-level-cache misses per instruction.  Memory stall *time* per
        instruction is ``llc_misses_per_instr * latency_ns``; expressed in
        cycles this is ``SPI_mem = llc_misses_per_instr * latency_ns * f``,
        which is why the paper finds SPI_mem linear in frequency (Fig. 3).
    cpu_utilization:
        ``U_CPU`` -- fraction of cores on average kept busy during the CPU
        response time; below 1.0 when request serialization on the I/O
        device starves cores (memcached).
    """

    instructions_per_unit: float
    wpi: float
    spi_core: float
    llc_misses_per_instr: float
    cpu_utilization: float = 1.0

    def __post_init__(self) -> None:
        if self.instructions_per_unit <= 0:
            raise ValueError(
                f"instructions per unit must be positive, got {self.instructions_per_unit}"
            )
        if self.wpi <= 0:
            raise ValueError(f"WPI must be positive, got {self.wpi}")
        if self.spi_core < 0:
            raise ValueError(f"SPI_core must be non-negative, got {self.spi_core}")
        if self.llc_misses_per_instr < 0:
            raise ValueError("LLC miss density must be non-negative")
        if not 0.0 < self.cpu_utilization <= 1.0:
            raise ValueError(
                f"CPU utilization must be in (0, 1], got {self.cpu_utilization}"
            )

    def spi_mem(self, latency_ns: float, f_ghz: float) -> float:
        """Memory stall cycles per instruction at miss latency/frequency.

        ``latency_ns * f_ghz`` is the latency expressed in core cycles
        (1 ns at 1 GHz = 1 cycle).
        """
        if latency_ns < 0 or f_ghz <= 0:
            raise ValueError("latency must be >= 0 and frequency > 0")
        return self.llc_misses_per_instr * latency_ns * f_ghz

    def cycles_per_unit_core(self) -> float:
        """Core-side cycles per unit: work plus non-memory stalls (Eq. 7)."""
        return self.instructions_per_unit * (self.wpi + self.spi_core)


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete scale-out workload.

    Attributes
    ----------
    name, domain, unit_name:
        Identity and the human name of one work unit ("random number",
        "request", "frame", ...), used by Table 5's PPR units column.
    bottleneck:
        Expected dominant resource (Table 3's "Bottleneck" column).  This
        is a *label* for reporting; analyses derive the actual bottleneck
        from the model.
    profiles:
        Mapping from node-type name (:attr:`NodeSpec.name`) to the unit's
        :class:`ISAProfile` on that node.
    io_bytes_per_unit:
        Network bytes transferred per unit (DMA, overlapped with CPU).
    io_job_arrival_rate:
        ``lambda_I/O`` of Eq. 11 -- the rate at which an external load
        generator offers the whole job's I/O, expressed as jobs/second;
        ``1 / io_job_arrival_rate`` is the time for one job's requests to
        arrive at a single node.  ``None`` means arrival never binds
        (saturating generator, the memslap setting).
    default_job_units:
        Units per job in the paper's Section IV analyses (50,000 requests
        for memcached, 50 million random numbers for EP).
    problem_sizes:
        Named problem-size classes (NPB A/B/C for EP) used by the Fig. 2
        scale-constancy experiment.
    """

    name: str
    domain: str
    unit_name: str
    bottleneck: Bottleneck
    profiles: Mapping[str, ISAProfile]
    io_bytes_per_unit: float = 0.0
    io_job_arrival_rate: Optional[float] = None
    default_job_units: float = 1_000_000.0
    problem_sizes: Mapping[str, float] = field(default_factory=dict)
    ppr_unit: str = ""

    def __post_init__(self) -> None:
        if not self.profiles:
            raise ValueError(f"workload {self.name!r} needs at least one ISA profile")
        if self.io_bytes_per_unit < 0:
            raise ValueError("I/O bytes per unit must be non-negative")
        if self.io_job_arrival_rate is not None and self.io_job_arrival_rate <= 0:
            raise ValueError("I/O job arrival rate must be positive or None")
        if self.default_job_units <= 0:
            raise ValueError("default job size must be positive")
        for size_name, units in self.problem_sizes.items():
            if units <= 0 or not math.isfinite(units):
                raise ValueError(f"problem size {size_name!r} must be positive/finite")
        # Freeze the mapping so the spec is safely shareable.
        object.__setattr__(self, "profiles", dict(self.profiles))
        object.__setattr__(self, "problem_sizes", dict(self.problem_sizes))

    def profile_for(self, node_name: str) -> ISAProfile:
        """The unit's service demand on node type ``node_name``."""
        try:
            return self.profiles[node_name]
        except KeyError:
            raise KeyError(
                f"workload {self.name!r} has no profile for node {node_name!r}; "
                f"available: {sorted(self.profiles)}"
            ) from None

    def supports(self, node_name: str) -> bool:
        """Whether this workload was characterized on ``node_name``."""
        return node_name in self.profiles

    def size_names(self) -> Tuple[str, ...]:
        """Problem-size class names, in declaration order."""
        return tuple(self.problem_sizes)

    def scaled(self, name: str, units: float) -> "WorkloadSpec":
        """A copy of this workload with a different default job size.

        Handy for what-if analyses ("the same memcached service demand but
        jobs of 200k requests").
        """
        return WorkloadSpec(
            name=name,
            domain=self.domain,
            unit_name=self.unit_name,
            bottleneck=self.bottleneck,
            profiles=dict(self.profiles),
            io_bytes_per_unit=self.io_bytes_per_unit,
            io_job_arrival_rate=self.io_job_arrival_rate,
            default_job_units=units,
            problem_sizes=dict(self.problem_sizes),
            ppr_unit=self.ppr_unit,
        )

    def __str__(self) -> str:
        nodes = ", ".join(sorted(self.profiles))
        return (
            f"{self.name} [{self.domain}]: {self.default_job_units:g} "
            f"{self.unit_name}s/job, bottleneck={self.bottleneck.value}, on {nodes}"
        )


def merged_profiles(**per_node: ISAProfile) -> Dict[str, ISAProfile]:
    """Convenience: build a profiles mapping from keyword arguments.

    Keyword names use underscores where node names use hyphens
    (``arm_cortex_a9=...`` maps to ``"arm-cortex-a9"``).
    """
    return {key.replace("_", "-"): prof for key, prof in per_node.items()}
