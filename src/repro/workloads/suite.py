"""The six paper workloads (Table 3), as calibrated synthetic descriptors.

The paper characterized real programs with ``perf`` on real ARM/AMD
boards.  We have no boards, so each workload is a descriptor whose
parameters were *calibrated* against the paper's published aggregates
(DESIGN.md, Section 7):

* instruction counts per unit are fitted so each node type's
  performance-to-power ratio lands on Table 5 (ARM wins everywhere except
  RSA-2048, where AMD's crypto instructions cut its instruction count
  ~10x, and x264, where AMD's memory bandwidth dominates);
* ``WPI``/``SPI_core`` magnitudes follow Fig. 2 (AMD around 0.6/0.5, ARM
  around 0.9/0.65);
* LLC miss densities make x264 memory-bound and everything else
  core- or I/O-bound;
* memcached's 1 KiB units over a 100 Mbps ARM NIC reproduce Fig. 6's
  "ARM-only cannot meet deadlines below ~30 ms" at 128 nodes.

Problem-size maps carry both the Table 3 validation sizes and the
Section IV analysis sizes under the keys ``"table3"`` and ``"analysis"``;
EP also has its NPB classes A/B/C for the Fig. 2 constancy experiment.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.base import Bottleneck, ISAProfile, WorkloadSpec

_ARM = "arm-cortex-a9"
_AMD = "amd-k10"

#: NPB EP: embarrassingly parallel Monte-Carlo random-number generation.
EP = WorkloadSpec(
    name="ep",
    domain="HPC",
    unit_name="random number",
    bottleneck=Bottleneck.CPU,
    profiles={
        _AMD: ISAProfile(
            instructions_per_unit=141.0,
            wpi=0.62,
            spi_core=0.53,
            llc_misses_per_instr=2.0e-4,
        ),
        _ARM: ISAProfile(
            instructions_per_unit=224.0,
            wpi=0.88,
            spi_core=0.67,
            llc_misses_per_instr=2.0e-4,
        ),
    },
    io_bytes_per_unit=0.0,
    default_job_units=50e6,
    problem_sizes={
        "A": 2.0**28,
        "B": 2.0**30,
        "C": 2.0**32,
        "table3": 2.0**31,
        "analysis": 50e6,
    },
    ppr_unit="(random no./s)/W",
)

#: memcached: in-memory key-value store; GET/SET units of 1 KiB over the NIC.
MEMCACHED = WorkloadSpec(
    name="memcached",
    domain="Web Server",
    unit_name="request",
    bottleneck=Bottleneck.IO,
    profiles={
        _AMD: ISAProfile(
            instructions_per_unit=9_950.0,
            wpi=0.65,
            spi_core=0.50,
            llc_misses_per_instr=1.0e-3,
            cpu_utilization=0.70,
        ),
        _ARM: ISAProfile(
            instructions_per_unit=8_100.0,
            wpi=0.90,
            spi_core=0.60,
            llc_misses_per_instr=2.0e-3,
            cpu_utilization=0.70,
        ),
    },
    io_bytes_per_unit=1024.0,
    io_job_arrival_rate=None,  # memslap saturates; arrival never binds
    default_job_units=50_000.0,
    problem_sizes={"table3": 600_000.0, "analysis": 50_000.0},
    ppr_unit="(kbytes/s)/W",
)

#: PARSEC x264: streaming video encoder, memory-bandwidth bound.
X264 = WorkloadSpec(
    name="x264",
    domain="Streaming video",
    unit_name="frame",
    bottleneck=Bottleneck.MEMORY,
    profiles={
        _AMD: ISAProfile(
            instructions_per_unit=1.366e8,
            wpi=0.70,
            spi_core=0.30,
            llc_misses_per_instr=4.0e-3,
        ),
        _ARM: ISAProfile(
            instructions_per_unit=1.142e9,
            wpi=0.95,
            spi_core=0.35,
            llc_misses_per_instr=8.0e-3,
        ),
    },
    # One raw 704x576 YUV420 input frame over the wire.
    io_bytes_per_unit=704 * 576 * 1.5,
    default_job_units=600.0,
    problem_sizes={"table3": 600.0, "analysis": 600.0},
    ppr_unit="(frames/s)/W",
)

#: PARSEC blackscholes: option pricing by PDE, floating-point CPU bound.
BLACKSCHOLES = WorkloadSpec(
    name="blackscholes",
    domain="Financial",
    unit_name="option",
    bottleneck=Bottleneck.CPU,
    profiles={
        _AMD: ISAProfile(
            instructions_per_unit=68_500.0,
            wpi=0.62,
            spi_core=0.53,
            llc_misses_per_instr=3.0e-4,
        ),
        _ARM: ISAProfile(
            instructions_per_unit=114_250.0,
            wpi=0.88,
            spi_core=0.67,
            llc_misses_per_instr=3.0e-4,
        ),
    },
    io_bytes_per_unit=36.0,  # one option record
    default_job_units=500_000.0,
    problem_sizes={"table3": 500_000.0, "analysis": 500_000.0},
    ppr_unit="(options/s)/W",
)

#: Julius: real-time large-vocabulary speech recognition.
JULIUS = WorkloadSpec(
    name="julius",
    domain="Speech recognition",
    unit_name="sample",
    bottleneck=Bottleneck.CPU,
    profiles={
        _AMD: ISAProfile(
            instructions_per_unit=9_240.0,
            wpi=0.66,
            spi_core=0.49,
            llc_misses_per_instr=5.0e-4,
        ),
        _ARM: ISAProfile(
            instructions_per_unit=18_830.0,
            wpi=0.92,
            spi_core=0.63,
            llc_misses_per_instr=5.0e-4,
        ),
    },
    io_bytes_per_unit=2.0,  # 16-bit audio sample
    default_job_units=2_310_559.0,
    problem_sizes={"table3": 2_310_559.0, "analysis": 2_310_559.0},
    ppr_unit="(samples/s)/W",
)

#: openssl speed RSA-2048: TLS key verification; AMD has crypto extensions.
RSA2048 = WorkloadSpec(
    name="rsa-2048",
    domain="Web security",
    unit_name="verification",
    bottleneck=Bottleneck.CPU,
    profiles={
        _AMD: ISAProfile(
            instructions_per_unit=16_400.0,
            wpi=0.60,
            spi_core=0.55,
            llc_misses_per_instr=1.0e-4,
        ),
        _ARM: ISAProfile(
            # No crypto acceleration on Cortex-A9: ~10x the instructions.
            instructions_per_unit=168_900.0,
            wpi=0.85,
            spi_core=0.70,
            llc_misses_per_instr=1.0e-4,
        ),
    },
    io_bytes_per_unit=256.0,  # one 2048-bit signature
    default_job_units=5_000.0,
    problem_sizes={"table3": 5_000.0, "analysis": 5_000.0},
    ppr_unit="(verify/s)/W",
)

#: Table 3 order.
PAPER_WORKLOADS: Tuple[WorkloadSpec, ...] = (
    EP,
    MEMCACHED,
    X264,
    BLACKSCHOLES,
    JULIUS,
    RSA2048,
)

_BY_NAME: Dict[str, WorkloadSpec] = {w.name: w for w in PAPER_WORKLOADS}


def workload_by_name(name: str) -> WorkloadSpec:
    """Look up a paper workload by name, with a helpful error for typos."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(_BY_NAME)}"
        ) from None
