"""Random workload generation for property-based testing.

Hypothesis-driven tests need arbitrary-but-valid workloads to check model
invariants (monotonicity in W, matching convergence, Pareto dominance).
:func:`random_workload` draws a workload whose parameters span the
envelope of the real suite -- from tiny CPU kernels to chunky I/O-heavy
request services -- while always satisfying :class:`ISAProfile`'s
validity constraints.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.util.rng import SeedLike, ensure_rng
from repro.workloads.base import Bottleneck, ISAProfile, WorkloadSpec

#: Parameter envelope: (low, high) for log-uniform draws.
_IPS_RANGE = (50.0, 1e9)
_WPI_RANGE = (0.2, 1.5)
_SPI_CORE_RANGE = (0.0, 1.2)
_MISS_RANGE = (0.0, 0.02)
_IO_BYTES_RANGE = (0.0, 1e6)
_JOB_UNITS_RANGE = (1e3, 1e10)


def _log_uniform(rng: np.random.Generator, lo: float, hi: float) -> float:
    """Sample log-uniformly on [lo, hi] (lo > 0)."""
    return float(np.exp(rng.uniform(np.log(lo), np.log(hi))))


def random_profile(seed: SeedLike = None) -> ISAProfile:
    """A random valid :class:`ISAProfile`."""
    rng = ensure_rng(seed)
    return ISAProfile(
        instructions_per_unit=_log_uniform(rng, *_IPS_RANGE),
        wpi=float(rng.uniform(*_WPI_RANGE)),
        spi_core=float(rng.uniform(*_SPI_CORE_RANGE)),
        llc_misses_per_instr=float(rng.uniform(*_MISS_RANGE)),
        cpu_utilization=float(rng.uniform(0.3, 1.0)),
    )


def random_workload(
    node_names: Sequence[str] = ("arm-cortex-a9", "amd-k10"),
    seed: SeedLike = None,
    bottleneck: Optional[Bottleneck] = None,
) -> WorkloadSpec:
    """Draw a random valid workload characterized on ``node_names``.

    Parameters
    ----------
    node_names:
        Node types the workload carries profiles for.
    seed:
        Anything :func:`repro.util.rng.ensure_rng` accepts.
    bottleneck:
        Optional label to force; when ``None`` a label is drawn uniformly
        (the label is informational -- actual bottleneck emerges from the
        parameters).
    """
    rng = ensure_rng(seed)
    if not node_names:
        raise ValueError("need at least one node type")
    label = bottleneck or Bottleneck(
        rng.choice([b.value for b in Bottleneck])
    )
    io_heavy = label is Bottleneck.IO
    io_bytes = (
        _log_uniform(rng, 256.0, _IO_BYTES_RANGE[1])
        if io_heavy
        else float(rng.uniform(*_IO_BYTES_RANGE)) * 0.01
    )
    arrival = None
    if io_heavy and rng.random() < 0.3:
        arrival = _log_uniform(rng, 0.1, 1e4)
    ident = int(rng.integers(0, 10**9))
    return WorkloadSpec(
        name=f"synthetic-{ident:09d}",
        domain="synthetic",
        unit_name="unit",
        bottleneck=label,
        profiles={name: random_profile(rng) for name in node_names},
        io_bytes_per_unit=io_bytes,
        io_job_arrival_rate=arrival,
        default_job_units=_log_uniform(rng, *_JOB_UNITS_RANGE),
        ppr_unit="(units/s)/W",
    )
