"""Workload substrate: scale-out workload descriptors and generators.

The paper's model is *trace-driven*: it never executes application code,
it consumes per-phase hardware-counter traces of a representative subset
``Ps`` (one memcached GET, one encoded frame, one priced option, ...).
This package provides:

* :class:`~repro.workloads.base.ISAProfile` -- the per-node-type service
  demand of one work unit (instructions, work cycles per instruction,
  non-memory stall cycles, LLC miss density, CPU utilization);
* :class:`~repro.workloads.base.WorkloadSpec` -- a whole workload: one
  profile per node type plus I/O demand and problem sizes;
* the six paper workloads (EP, memcached, x264, blackscholes, Julius,
  RSA-2048), calibrated so the paper's Table 5 performance-to-power
  ordering and figure shapes reproduce (see DESIGN.md Section 7);
* the two power-characterization micro-benchmarks (Section II-D2);
* a random workload generator for property-based tests.
"""

from repro.workloads.base import (
    Bottleneck,
    ISAProfile,
    WorkloadSpec,
)
from repro.workloads.suite import (
    EP,
    MEMCACHED,
    X264,
    BLACKSCHOLES,
    JULIUS,
    RSA2048,
    PAPER_WORKLOADS,
    workload_by_name,
)
from repro.workloads.microbench import (
    cpu_max_microbench,
    stall_microbench,
    MICROBENCHES,
)
from repro.workloads.generator import random_workload

__all__ = [
    "Bottleneck",
    "ISAProfile",
    "WorkloadSpec",
    "EP",
    "MEMCACHED",
    "X264",
    "BLACKSCHOLES",
    "JULIUS",
    "RSA2048",
    "PAPER_WORKLOADS",
    "workload_by_name",
    "cpu_max_microbench",
    "stall_microbench",
    "MICROBENCHES",
    "random_workload",
]
