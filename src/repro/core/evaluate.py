"""Evaluate configurations: matched split, execution time, energy.

Two implementations of the same semantics:

* :func:`evaluate_config` -- scalar, readable, built directly from the
  equation-level functions (:mod:`timemodel`, :mod:`energymodel`,
  :mod:`matching`, :mod:`multiway`).  The reference.
* :func:`evaluate_space_groups` -- vectorized over the entire
  configuration space of any number of node-type groups with NumPy
  broadcasting (the 36,380-point space of Fig. 4 evaluates in
  milliseconds); :func:`evaluate_space` is its two-type entry point,
  bit-for-bit identical to the pre-refactor paired evaluator (pinned
  against the frozen copy in :mod:`repro.core._evaluate_pair`).

The space is evaluated block-by-block over presence masks (which subset
of groups participates); within a block the matched split uses the
closed form when no floor binds, the historical two-group
:func:`_vector_match` when exactly two groups are present, and the
k-way capacity bisection of :mod:`repro.core.multiway` -- vectorized in
:func:`_vector_match_groups` -- for three or more.  Everything exploits
the exact linear form ``T(W) = max(gamma W, floor)`` and the fact that
every energy term is ``n * P_idle * T + W * K + P_IO * max(W *
io_slope, floor)`` with a per-setting constant ``K`` (joules per unit,
independent of node count) -- see the derivation in this module's
helpers.

Property-based tests pin the scalar and vectorized paths against each
other and against the scalar k-way solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.configuration import (
    ClusterConfig,
    GroupConfig,
    GroupSpec,
    node_settings,
    presence_masks,
)
from repro.core.energymodel import predict_node_energy
from repro.core.matching import GroupSetting, match_split
from repro.core.multiway import evaluate_multiway
from repro.core.params import NodeModelParams
from repro.core.timemodel import predict_node_time
from repro.hardware.specs import NodeSpec
from repro.util.units import ghz_to_hz


def _params_for(params: Mapping[str, NodeModelParams], name: str) -> NodeModelParams:
    """Look up one node type's model inputs, with a helpful error.

    A missing entry is a configuration mistake (the caller calibrated a
    different set of node types than the space references), so the error
    names both the missing type and what *is* available instead of
    surfacing a bare ``KeyError``.
    """
    try:
        return params[name]
    except KeyError:
        available = ", ".join(sorted(params)) or "none"
        raise ValueError(
            f"no model parameters for node type {name!r}; "
            f"available: {available}"
        ) from None


@dataclass(frozen=True, init=False)
class ConfigPoint:
    """One evaluated configuration: the dot on the paper's scatter plots."""

    config: ClusterConfig
    time_s: float
    energy_j: float
    units: Tuple[float, ...]
    method: str

    def __init__(
        self,
        config: ClusterConfig,
        time_s: float,
        energy_j: float,
        units: Optional[Sequence[float]] = None,
        method: str = "scalar",
        *,
        units_a: Optional[float] = None,
        units_b: Optional[float] = None,
    ):
        if units is None:
            if units_a is None or units_b is None:
                raise TypeError("pass units=(...) or both units_a and units_b")
            units = (units_a, units_b)
        elif units_a is not None or units_b is not None:
            raise TypeError("pass either units or the units_a/units_b pair")
        units = tuple(float(u) for u in units)
        if len(units) != config.num_groups:
            raise ValueError(
                f"{len(units)} unit splits for {config.num_groups} groups"
            )
        if time_s < 0 or energy_j < 0:
            raise ValueError("negative time or energy for a configuration")
        object.__setattr__(self, "config", config)
        object.__setattr__(self, "time_s", float(time_s))
        object.__setattr__(self, "energy_j", float(energy_j))
        object.__setattr__(self, "units", units)
        object.__setattr__(self, "method", method)

    @property
    def is_heterogeneous(self) -> bool:
        return self.config.is_heterogeneous

    def _pair_units(self, index: int) -> float:
        if len(self.units) != 2:
            raise ValueError(
                "units_a/units_b need exactly two groups; use .units"
            )
        return self.units[index]

    @property
    def units_a(self) -> float:
        return self._pair_units(0)

    @property
    def units_b(self) -> float:
        return self._pair_units(1)


def evaluate_config(
    config: ClusterConfig,
    params: Mapping[str, NodeModelParams],
    units: float,
) -> ConfigPoint:
    """Scalar reference evaluation of one configuration.

    ``params`` maps node-type name to that type's calibrated inputs for
    the workload being analyzed.  Two-group configurations go through
    the paper's pairwise :func:`~repro.core.matching.match_split`; any
    other group count uses the k-way solver
    (:func:`~repro.core.multiway.evaluate_multiway`).
    """
    if units <= 0:
        raise ValueError(f"job must contain positive work, got {units}")
    group_params = [_params_for(params, g.node) for g in config.groups]

    if config.num_groups != 2:
        settings = [
            GroupSetting(p, g.n, g.cores, g.f_ghz)
            for p, g in zip(group_params, config.groups)
        ]
        outcome = evaluate_multiway(units, settings)
        return ConfigPoint(
            config=config,
            time_s=outcome.time_s,
            energy_j=outcome.energy_j,
            units=outcome.match.units,
            method=outcome.match.method,
        )

    params_a, params_b = group_params
    ga, gb = config.groups
    group_a = GroupSetting(params_a, ga.n, ga.cores, ga.f_ghz)
    group_b = GroupSetting(params_b, gb.n, gb.cores, gb.f_ghz)

    match = match_split(units, group_a, group_b)

    energy = 0.0
    if ga.n > 0:
        tb_a = predict_node_time(params_a, match.units_a, ga.n, ga.cores, ga.f_ghz)
        energy += predict_node_energy(params_a, tb_a, job_time_s=match.time_s).energy_j
    if gb.n > 0:
        tb_b = predict_node_time(params_b, match.units_b, gb.n, gb.cores, gb.f_ghz)
        energy += predict_node_energy(params_b, tb_b, job_time_s=match.time_s).energy_j

    return ConfigPoint(
        config=config,
        time_s=match.time_s,
        energy_j=energy,
        units=(match.units_a, match.units_b),
        method=match.method,
    )


# ---------------------------------------------------------------------------
# Vectorized space evaluation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _SettingGrid:
    """Per-setting coefficients for one node type (flattened (cores, f) grid)."""

    cores: np.ndarray  # int, per setting
    f_ghz: np.ndarray  # float, per setting
    slope_node: np.ndarray  # seconds per unit for ONE node at this setting
    k_joules_per_unit: np.ndarray  # W * K energy term, node-count independent
    io_slope_node: float  # seconds per unit through one NIC
    floor_job_s: float  # 1/lambda_IO (0 when arrival never binds)
    p_idle_w: float
    p_io_w: float


def _setting_grid(
    spec: NodeSpec,
    params: NodeModelParams,
    settings: Optional[Sequence[Tuple[int, float]]] = None,
) -> _SettingGrid:
    """Precompute every (cores, frequency) setting's coefficients.

    Derivation of ``K`` (energy per work unit, independent of ``n``): with
    ``I_core = W * IPs / (n c_act)`` each per-node time component is
    ``W * X / n`` for a per-setting constant ``X``; multiplying the
    per-node energies by ``n`` cancels the ``1/n``:

    ``E_group = n P_idle T + W [c_act (P_act A + P_stall S) + P_mem M]
      + P_IO max(W io_slope, floor)``

    with ``A = IPs WPI / (c_act f)``, ``S = IPs SPI_core / (c_act f)``,
    ``M = IPs (WPI + SPI_mem) / (c_act f)``.
    """
    settings = node_settings(spec, settings)
    cores_list: List[int] = []
    f_list: List[float] = []
    slope_list: List[float] = []
    k_list: List[float] = []
    ips = params.instructions_per_unit
    for cores, f in settings:
        c_act = params.u_cpu * cores
        f_hz = ghz_to_hz(f)
        spi_mem = params.spi_mem(cores, f)
        spi_eff = max(params.spi_core, spi_mem)
        cpu_slope = ips * (params.wpi + spi_eff) / (c_act * f_hz)
        io_slope = params.io_bytes_per_unit / params.io_bandwidth_bytes_s
        a_coeff = ips * params.wpi / (c_act * f_hz)
        s_coeff = ips * params.spi_core / (c_act * f_hz)
        m_coeff = ips * (params.wpi + spi_mem) / (c_act * f_hz)
        k = (
            c_act * (params.p_act(f) * a_coeff + params.p_stall(f) * s_coeff)
            + params.p_mem_w * m_coeff
        )
        cores_list.append(cores)
        f_list.append(f)
        slope_list.append(max(cpu_slope, io_slope))
        k_list.append(k)
    floor = 0.0
    if params.io_job_arrival_rate is not None:
        floor = 1.0 / params.io_job_arrival_rate
    return _SettingGrid(
        cores=np.asarray(cores_list, dtype=np.int64),
        f_ghz=np.asarray(f_list, dtype=float),
        slope_node=np.asarray(slope_list, dtype=float),
        k_joules_per_unit=np.asarray(k_list, dtype=float),
        io_slope_node=params.io_bytes_per_unit / params.io_bandwidth_bytes_s,
        floor_job_s=floor,
        p_idle_w=params.p_idle_w,
        p_io_w=params.p_io_w,
    )


@dataclass
class ConfigSpaceResult:
    """Column stacks over the evaluated configuration space.

    Per-group arrays are stacked ``(G, N)`` -- ``n[g, i]`` is group
    ``g``'s node count in configuration ``i`` -- and ``times_s``/
    ``energies_j`` are flat ``(N,)``.  Row ``i`` describes one
    configuration; use :meth:`point` to materialize a
    :class:`ConfigPoint` (and its :class:`ClusterConfig`) for reporting.
    Two-group spaces keep the historical ``node_a``/``n_a``-style
    accessors as thin views onto the group table.
    """

    nodes: Tuple[str, ...]
    n: np.ndarray  # (G, N) int
    cores: np.ndarray  # (G, N) int
    f: np.ndarray  # (G, N) float
    units: np.ndarray  # (G, N) float
    times_s: np.ndarray  # (N,)
    energies_j: np.ndarray  # (N,)
    units_total: float

    def __post_init__(self) -> None:
        self.nodes = tuple(self.nodes)

    def __len__(self) -> int:
        return int(self.times_s.size)

    @property
    def num_groups(self) -> int:
        return len(self.nodes)

    @property
    def nbytes(self) -> int:
        """Bytes held by the column stacks (what streaming mode avoids)."""
        return int(
            self.n.nbytes
            + self.cores.nbytes
            + self.f.nbytes
            + self.units.nbytes
            + self.times_s.nbytes
            + self.energies_j.nbytes
        )

    @property
    def present_count(self) -> np.ndarray:
        """How many groups participate in each configuration."""
        return (self.n > 0).sum(axis=0)

    @property
    def is_heterogeneous(self) -> np.ndarray:
        return self.present_count >= 2

    def is_only(self, group: int) -> np.ndarray:
        """Configurations where exactly ``group`` participates."""
        return (self.n[group] > 0) & (self.present_count == 1)

    # ---- legacy pair accessors (two-group spaces only) -----------------

    def _pair(self, index: int) -> int:
        if len(self.nodes) != 2:
            raise ValueError(
                "pair accessors (node_a/n_a/...) need exactly two groups; "
                f"this space has {len(self.nodes)} -- use the group table"
            )
        return index

    @property
    def node_a(self) -> str:
        return self.nodes[self._pair(0)]

    @property
    def node_b(self) -> str:
        return self.nodes[self._pair(1)]

    @property
    def n_a(self) -> np.ndarray:
        return self.n[self._pair(0)]

    @property
    def n_b(self) -> np.ndarray:
        return self.n[self._pair(1)]

    @property
    def cores_a(self) -> np.ndarray:
        return self.cores[self._pair(0)]

    @property
    def cores_b(self) -> np.ndarray:
        return self.cores[self._pair(1)]

    @property
    def f_a(self) -> np.ndarray:
        return self.f[self._pair(0)]

    @property
    def f_b(self) -> np.ndarray:
        return self.f[self._pair(1)]

    @property
    def units_a(self) -> np.ndarray:
        return self.units[self._pair(0)]

    @property
    def units_b(self) -> np.ndarray:
        return self.units[self._pair(1)]

    @property
    def is_only_a(self) -> np.ndarray:
        return self.is_only(self._pair(0))

    @property
    def is_only_b(self) -> np.ndarray:
        return self.is_only(self._pair(1))

    # ---- row materialization -------------------------------------------

    def config(self, i: int) -> ClusterConfig:
        """Materialize row ``i``'s configuration."""
        return ClusterConfig(
            groups=tuple(
                GroupConfig(
                    node=self.nodes[g],
                    n=int(self.n[g, i]),
                    cores=int(self.cores[g, i]),
                    f_ghz=float(self.f[g, i]),
                )
                for g in range(self.num_groups)
            )
        )

    def point(self, i: int) -> ConfigPoint:
        """Materialize row ``i`` as a :class:`ConfigPoint`."""
        return ConfigPoint(
            config=self.config(i),
            time_s=float(self.times_s[i]),
            energy_j=float(self.energies_j[i]),
            units=tuple(float(self.units[g, i]) for g in range(self.num_groups)),
            method="vectorized",
        )

    def subset(self, mask: np.ndarray) -> "ConfigSpaceResult":
        """A copy restricted to the rows where ``mask`` is true."""
        return ConfigSpaceResult(
            nodes=self.nodes,
            n=self.n[:, mask],
            cores=self.cores[:, mask],
            f=self.f[:, mask],
            units=self.units[:, mask],
            times_s=self.times_s[mask],
            energies_j=self.energies_j[mask],
            units_total=self.units_total,
        )


def _vector_match(
    units: float,
    gamma_a: np.ndarray,
    floor_a: np.ndarray,
    gamma_b: np.ndarray,
    floor_b: np.ndarray,
    iterations: int = 80,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized mix-and-match over arrays of two-group coefficients.

    Returns ``(w_a, time)``.  Mirrors :func:`repro.core.matching.match_split`
    case-for-case; the mixed floor regime is resolved by the same
    canonical capacity bisection as the scalar solver (min feasible
    deadline, proportional-to-capacity assignment), so the two paths and
    the k-way matcher all pick identical splits even on tie intervals.
    """
    w_cf = units * gamma_b / (gamma_a + gamma_b)
    t_cf = w_cf * gamma_a
    closed_ok = (t_cf >= floor_a) & (t_cf >= floor_b) & (gamma_a > 0) & (gamma_b > 0)

    t_a_all = np.maximum(gamma_a * units, floor_a)
    t_b_all = np.maximum(gamma_b * units, floor_b)
    excl_a = ~closed_ok & (floor_a > t_b_all)
    excl_b = ~closed_ok & ~excl_a & (floor_b > t_a_all)
    mixed = ~(closed_ok | excl_a | excl_b)

    w_a = np.where(closed_ok, w_cf, 0.0)
    time = np.where(closed_ok, t_cf, 0.0)
    time = np.where(excl_a, t_b_all, time)
    w_a = np.where(excl_b, units, w_a)
    time = np.where(excl_b, t_a_all, time)

    if np.any(mixed):
        ga = gamma_a[mixed]
        gb = gamma_b[mixed]
        fa = floor_a[mixed]
        fb = floor_b[mixed]
        # Capacity bisection on the deadline T (see matching._capacity_match).
        lo = np.zeros(ga.shape)
        hi = np.minimum(np.maximum(ga * units, fa), np.maximum(gb * units, fb))
        for _ in range(iterations):
            mid = 0.5 * (lo + hi)
            cap = np.where(mid >= fa, mid / ga, 0.0) + np.where(
                mid >= fb, mid / gb, 0.0
            )
            feasible = cap >= units
            hi = np.where(feasible, mid, hi)
            lo = np.where(feasible, lo, mid)
        t_star = hi
        cap_a = np.where(t_star >= fa, t_star / ga, 0.0)
        cap_b = np.where(t_star >= fb, t_star / gb, 0.0)
        total_cap = cap_a + cap_b
        w_mixed = units * cap_a / total_cap
        t_mixed = np.maximum(
            np.where(w_mixed > 0, np.maximum(ga * w_mixed, fa), 0.0),
            np.where(
                units - w_mixed > 0,
                np.maximum(gb * (units - w_mixed), fb),
                0.0,
            ),
        )
        w_a[mixed] = w_mixed
        time[mixed] = t_mixed
    return w_a, time


def _vector_match_groups(
    units: float,
    gammas: np.ndarray,
    floors: np.ndarray,
    iterations: int = 200,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized k-way mix-and-match over ``(P, N)`` coefficient stacks.

    Returns ``(w, time)`` with ``w[p, i]`` the work assigned to present
    group ``p`` in configuration ``i``.  Mirrors the scalar
    :func:`repro.core.multiway.match_multiway` arithmetic: the
    harmonic-mean closed form where no group has a floor, and the
    canonical capacity bisection (min feasible deadline, work
    proportional to capacity) elsewhere -- property-tested against the
    scalar solver on random gamma/floor clouds.
    """
    if gammas.ndim != 2 or gammas.shape != floors.shape:
        raise ValueError("gammas and floors must be matching (P, N) stacks")
    if np.any(gammas <= 0):
        raise ValueError("every present group needs a positive time slope")
    n_rows = gammas.shape[1]
    w = np.zeros_like(gammas)
    time = np.zeros(n_rows)

    inv = 1.0 / gammas
    closed = (floors == 0.0).all(axis=0)
    if np.any(closed):
        inv_c = inv[:, closed]
        inv_sum = inv_c.sum(axis=0)
        w[:, closed] = units * inv_c / inv_sum
        time[closed] = units / inv_sum

    mixed = ~closed
    if np.any(mixed):
        g = gammas[:, mixed]
        fl = floors[:, mixed]
        # Upper bound: the best single group running everything.
        hi = np.min(np.maximum(g * units, fl), axis=0)
        lo = np.zeros_like(hi)
        for _ in range(iterations):
            mid = 0.5 * (lo + hi)
            cap = np.where(mid >= fl, mid / g, 0.0).sum(axis=0)
            feasible = cap >= units
            hi = np.where(feasible, mid, hi)
            lo = np.where(feasible, lo, mid)
        t_star = hi
        caps = np.where(t_star >= fl, t_star / g, 0.0)
        total_cap = caps.sum(axis=0)
        w_mixed = caps * (units / total_cap)
        # Realized job time of the proportional assignment (floors of
        # active groups can sit above the balanced time).
        t_mixed = np.where(w_mixed > 0, np.maximum(g * w_mixed, fl), 0.0).max(axis=0)
        w[:, mixed] = w_mixed
        time[mixed] = t_mixed
    return w, time


def _group_energy(
    n: np.ndarray,
    w: np.ndarray,
    time: np.ndarray,
    k: np.ndarray,
    io_slope: float,
    floor_job: float,
    p_idle: float,
    p_io: float,
) -> np.ndarray:
    """Group energy for vectorized settings (see :func:`_setting_grid`)."""
    e_io = np.where(w > 0, p_io * np.maximum(w * io_slope, floor_job), 0.0)
    return n * p_idle * time + w * k + e_io


def _axis_view(arr: np.ndarray, axis: int, naxes: int) -> np.ndarray:
    """``arr`` reshaped to broadcast along one of ``naxes`` axes."""
    shape = [1] * naxes
    shape[axis] = arr.size
    return arr.reshape(shape)


def _evaluate_mask_block(
    group_specs: Sequence[GroupSpec],
    grids: Sequence[_SettingGrid],
    pos: Sequence[np.ndarray],
    present: Tuple[int, ...],
    units: float,
) -> ConfigSpaceResult:
    """Evaluate one presence-mask block of the space, vectorized.

    The block's axes interleave (count, setting) per present group in
    group order and flatten C-order -- the exact nesting of
    :func:`repro.core.configuration.enumerate_configs_groups` (and, for
    two groups, of the historical paired evaluator).
    """
    n_present = len(present)
    naxes = 2 * n_present
    n_views = [_axis_view(pos[g], 2 * i, naxes) for i, g in enumerate(present)]
    s_views = [
        _axis_view(np.arange(grids[g].cores.size), 2 * i + 1, naxes)
        for i, g in enumerate(present)
    ]
    shape = tuple(
        size
        for i, g in enumerate(present)
        for size in (pos[g].size, grids[g].cores.size)
    )

    n_flat = [np.broadcast_to(v, shape).reshape(-1) for v in n_views]
    s_flat = [np.broadcast_to(v, shape).reshape(-1) for v in s_views]

    gammas = [
        np.broadcast_to(
            grids[g].slope_node[s_views[i]] / n_views[i], shape
        ).reshape(-1).copy()
        for i, g in enumerate(present)
    ]
    floors = [
        np.broadcast_to(
            grids[g].floor_job_s / n_views[i], shape
        ).reshape(-1).copy()
        for i, g in enumerate(present)
    ]

    if n_present == 1:
        time = np.maximum(gammas[0] * units, floors[0])
        w = [np.full(time.shape, float(units))]
    elif n_present == 2:
        w_a, time = _vector_match(units, gammas[0], floors[0], gammas[1], floors[1])
        w = [w_a, units - w_a]
    else:
        w_stack, time = _vector_match_groups(
            units, np.stack(gammas), np.stack(floors)
        )
        w = list(w_stack)

    energy: Optional[np.ndarray] = None
    for i, g in enumerate(present):
        e = _group_energy(
            n_flat[i],
            w[i],
            time,
            grids[g].k_joules_per_unit[s_flat[i]],
            grids[g].io_slope_node,
            grids[g].floor_job_s,
            grids[g].p_idle_w,
            grids[g].p_io_w,
        )
        energy = e if energy is None else energy + e

    n_configs = time.size
    k_groups = len(group_specs)
    n_out = np.zeros((k_groups, n_configs), dtype=np.int64)
    cores_out = np.empty((k_groups, n_configs), dtype=np.int64)
    f_out = np.empty((k_groups, n_configs), dtype=float)
    units_out = np.zeros((k_groups, n_configs), dtype=float)
    pos_of = {g: i for i, g in enumerate(present)}
    for g, gs in enumerate(group_specs):
        if g in pos_of:
            i = pos_of[g]
            n_out[g] = n_flat[i]
            cores_out[g] = grids[g].cores[s_flat[i]]
            f_out[g] = grids[g].f_ghz[s_flat[i]]
            units_out[g] = w[i]
        else:
            cores_out[g] = gs.spec.cores.count
            f_out[g] = gs.spec.cores.fmax_ghz
    return ConfigSpaceResult(
        nodes=tuple(gs.spec.name for gs in group_specs),
        n=n_out,
        cores=cores_out,
        f=f_out,
        units=units_out,
        times_s=time,
        energies_j=energy,
        units_total=units,
    )


def evaluate_space_groups(
    group_specs: Sequence[GroupSpec],
    params: Mapping[str, NodeModelParams],
    units: float,
) -> ConfigSpaceResult:
    """Evaluate a k-group configuration space, vectorized.

    ``group_specs`` is an ordered sequence of
    :class:`~repro.core.configuration.GroupSpec`; row order matches
    :func:`repro.core.configuration.enumerate_configs_groups` exactly
    (presence-mask blocks from all-present down to each single group),
    which tests rely on.  ``params`` maps node-type name to model
    inputs; a missing type raises a :class:`ValueError` naming it.
    """
    if units <= 0:
        raise ValueError("job must contain positive work")
    group_specs = tuple(group_specs)
    if not group_specs:
        raise ValueError("need at least one node-type group")
    if all(gs.max_nodes == 0 and gs.counts is None for gs in group_specs):
        raise ValueError("space is empty with zero nodes of every type")
    names = [gs.spec.name for gs in group_specs]
    for g, name in enumerate(names):
        if name in names[:g]:
            raise ValueError(
                f"duplicate node type {name!r} in group_specs: groups must "
                "have distinct node-type names, or their params lookups "
                "would silently shadow each other"
            )
    grids = [
        _setting_grid(gs.spec, _params_for(params, gs.spec.name), gs.settings)
        for gs in group_specs
    ]
    counts = [_normalize_counts(gs.counts, gs.max_nodes) for gs in group_specs]
    pos = [c[c > 0] for c in counts]

    blocks = [
        _evaluate_mask_block(group_specs, grids, pos, present, units)
        for present in presence_masks(group_specs)
    ]
    return _concat_results(blocks)


def evaluate_space(
    spec_a: NodeSpec,
    max_a: int,
    spec_b: NodeSpec,
    max_b: int,
    params: Mapping[str, NodeModelParams],
    units: float,
    counts_a: Optional[Sequence[int]] = None,
    counts_b: Optional[Sequence[int]] = None,
    settings_a: Optional[Sequence[Tuple[int, float]]] = None,
    settings_b: Optional[Sequence[Tuple[int, float]]] = None,
) -> ConfigSpaceResult:
    """Evaluate the paper's two-type configuration space, vectorized.

    Parameters mirror :func:`repro.core.configuration.enumerate_configs`;
    row order matches its yield order exactly (heterogeneous block, then
    a-only, then b-only), which tests rely on.  Bit-for-bit identical to
    the pre-refactor paired evaluator (see
    :mod:`repro.core._evaluate_pair`).

    ``counts_a``/``counts_b`` pin the per-type node counts to an explicit
    list instead of ``0..max`` (0 means "this type absent", producing the
    other type's homogeneous block).  Used by the fixed-mix analyses of
    Figures 6-9 to avoid enumerating every smaller cluster.

    ``settings_a``/``settings_b`` restrict each type's (cores, frequency)
    settings to an explicit list instead of the full rectangle -- the
    hook :mod:`repro.core.reduction` uses to evaluate pruned spaces.
    """
    if max_a < 0 or max_b < 0:
        raise ValueError("maximum node counts must be non-negative")
    if max_a == 0 and max_b == 0:
        raise ValueError("space is empty with zero nodes of both types")
    return evaluate_space_groups(
        (
            GroupSpec(spec_a, max_a, counts=counts_a, settings=settings_a),
            GroupSpec(spec_b, max_b, counts=counts_b, settings=settings_b),
        ),
        params,
        units,
    )


def _normalize_counts(counts: Optional[Sequence[int]], max_n: int) -> np.ndarray:
    """Validate/derive a node-count list; default is ``0..max_n``.

    Zero in the list means configurations where this node type is absent
    (i.e., the *other* types' blocks without it are included).
    """
    if counts is None:
        return np.arange(0, max_n + 1, dtype=np.int64)
    arr = np.asarray(sorted(set(int(c) for c in counts)), dtype=np.int64)
    if arr.size == 0:
        raise ValueError("counts list cannot be empty")
    if np.any(arr < 0):
        raise ValueError(f"node counts must be non-negative, got {arr.tolist()}")
    return arr


def _concat_results(blocks: Sequence[ConfigSpaceResult]) -> ConfigSpaceResult:
    """Concatenate evaluation blocks preserving row order."""
    if not blocks:
        raise ValueError(
            "no configurations to evaluate: the count lists admit neither a "
            "heterogeneous nor a homogeneous block"
        )
    if len(blocks) == 1:
        return blocks[0]
    first = blocks[0]
    if any(b.nodes != first.nodes for b in blocks):
        raise ValueError("cannot concatenate spaces over different group tables")
    return ConfigSpaceResult(
        nodes=first.nodes,
        n=np.concatenate([b.n for b in blocks], axis=1),
        cores=np.concatenate([b.cores for b in blocks], axis=1),
        f=np.concatenate([b.f for b in blocks], axis=1),
        units=np.concatenate([b.units for b in blocks], axis=1),
        times_s=np.concatenate([b.times_s for b in blocks]),
        energies_j=np.concatenate([b.energies_j for b in blocks]),
        units_total=first.units_total,
    )
