"""Evaluate configurations: matched split, execution time, energy.

Two implementations of the same semantics:

* :func:`evaluate_config` -- scalar, readable, built directly from the
  equation-level functions (:mod:`timemodel`, :mod:`energymodel`,
  :mod:`matching`).  The reference.
* :func:`evaluate_space` -- vectorized over the entire configuration
  space with NumPy broadcasting (the 36,380-point space of Fig. 4
  evaluates in milliseconds).  Exploits the exact linear form
  ``T(W) = max(gamma W, floor)`` and the fact that every energy term is
  ``n * P_idle * T + W * K + P_IO * max(W * io_slope, floor)`` with a
  per-setting constant ``K`` (joules per unit, independent of node
  count) -- see the derivation in this module's helpers.

A property-based test pins the two against each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.configuration import ClusterConfig
from repro.core.energymodel import predict_node_energy
from repro.core.matching import GroupSetting, match_split
from repro.core.params import NodeModelParams
from repro.core.timemodel import predict_node_time
from repro.hardware.specs import NodeSpec
from repro.util.units import ghz_to_hz


@dataclass(frozen=True)
class ConfigPoint:
    """One evaluated configuration: the dot on the paper's scatter plots."""

    config: ClusterConfig
    time_s: float
    energy_j: float
    units_a: float
    units_b: float
    method: str

    def __post_init__(self) -> None:
        if self.time_s < 0 or self.energy_j < 0:
            raise ValueError("negative time or energy for a configuration")

    @property
    def is_heterogeneous(self) -> bool:
        return self.config.is_heterogeneous


def evaluate_config(
    config: ClusterConfig,
    params: Mapping[str, NodeModelParams],
    units: float,
) -> ConfigPoint:
    """Scalar reference evaluation of one configuration.

    ``params`` maps node-type name to that type's calibrated inputs for
    the workload being analyzed.
    """
    if units <= 0:
        raise ValueError(f"job must contain positive work, got {units}")
    params_a = params[config.node_a]
    params_b = params[config.node_b]
    group_a = GroupSetting(params_a, config.n_a, config.cores_a, config.f_a_ghz)
    group_b = GroupSetting(params_b, config.n_b, config.cores_b, config.f_b_ghz)

    match = match_split(units, group_a, group_b)

    energy = 0.0
    if config.n_a > 0:
        tb_a = predict_node_time(
            params_a, match.units_a, config.n_a, config.cores_a, config.f_a_ghz
        )
        energy += predict_node_energy(params_a, tb_a, job_time_s=match.time_s).energy_j
    if config.n_b > 0:
        tb_b = predict_node_time(
            params_b, match.units_b, config.n_b, config.cores_b, config.f_b_ghz
        )
        energy += predict_node_energy(params_b, tb_b, job_time_s=match.time_s).energy_j

    return ConfigPoint(
        config=config,
        time_s=match.time_s,
        energy_j=energy,
        units_a=match.units_a,
        units_b=match.units_b,
        method=match.method,
    )


# ---------------------------------------------------------------------------
# Vectorized space evaluation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _SettingGrid:
    """Per-setting coefficients for one node type (flattened (cores, f) grid)."""

    cores: np.ndarray  # int, per setting
    f_ghz: np.ndarray  # float, per setting
    slope_node: np.ndarray  # seconds per unit for ONE node at this setting
    k_joules_per_unit: np.ndarray  # W * K energy term, node-count independent
    io_slope_node: float  # seconds per unit through one NIC
    floor_job_s: float  # 1/lambda_IO (0 when arrival never binds)
    p_idle_w: float
    p_io_w: float


def _setting_grid(
    spec: NodeSpec,
    params: NodeModelParams,
    settings: Optional[Sequence[Tuple[int, float]]] = None,
) -> _SettingGrid:
    """Precompute every (cores, frequency) setting's coefficients.

    Derivation of ``K`` (energy per work unit, independent of ``n``): with
    ``I_core = W * IPs / (n c_act)`` each per-node time component is
    ``W * X / n`` for a per-setting constant ``X``; multiplying the
    per-node energies by ``n`` cancels the ``1/n``:

    ``E_group = n P_idle T + W [c_act (P_act A + P_stall S) + P_mem M]
      + P_IO max(W io_slope, floor)``

    with ``A = IPs WPI / (c_act f)``, ``S = IPs SPI_core / (c_act f)``,
    ``M = IPs (WPI + SPI_mem) / (c_act f)``.
    """
    if settings is None:
        settings = [
            (cores, f)
            for cores in range(1, spec.cores.count + 1)
            for f in spec.cores.pstates_ghz
        ]
    else:
        for cores, f in settings:
            spec.cores.validate_setting(cores, f)
        if not settings:
            raise ValueError(f"empty settings list for {spec.name}")
    cores_list: List[int] = []
    f_list: List[float] = []
    slope_list: List[float] = []
    k_list: List[float] = []
    ips = params.instructions_per_unit
    for cores, f in settings:
        c_act = params.u_cpu * cores
        f_hz = ghz_to_hz(f)
        spi_mem = params.spi_mem(cores, f)
        spi_eff = max(params.spi_core, spi_mem)
        cpu_slope = ips * (params.wpi + spi_eff) / (c_act * f_hz)
        io_slope = params.io_bytes_per_unit / params.io_bandwidth_bytes_s
        a_coeff = ips * params.wpi / (c_act * f_hz)
        s_coeff = ips * params.spi_core / (c_act * f_hz)
        m_coeff = ips * (params.wpi + spi_mem) / (c_act * f_hz)
        k = (
            c_act * (params.p_act(f) * a_coeff + params.p_stall(f) * s_coeff)
            + params.p_mem_w * m_coeff
        )
        cores_list.append(cores)
        f_list.append(f)
        slope_list.append(max(cpu_slope, io_slope))
        k_list.append(k)
    floor = 0.0
    if params.io_job_arrival_rate is not None:
        floor = 1.0 / params.io_job_arrival_rate
    return _SettingGrid(
        cores=np.asarray(cores_list, dtype=np.int64),
        f_ghz=np.asarray(f_list, dtype=float),
        slope_node=np.asarray(slope_list, dtype=float),
        k_joules_per_unit=np.asarray(k_list, dtype=float),
        io_slope_node=params.io_bytes_per_unit / params.io_bandwidth_bytes_s,
        floor_job_s=floor,
        p_idle_w=params.p_idle_w,
        p_io_w=params.p_io_w,
    )


@dataclass
class ConfigSpaceResult:
    """Flat arrays over the evaluated configuration space.

    Row ``i`` describes one configuration; use :meth:`point` to
    materialize a :class:`ConfigPoint` (and its :class:`ClusterConfig`)
    for reporting.
    """

    node_a: str
    node_b: str
    n_a: np.ndarray
    cores_a: np.ndarray
    f_a: np.ndarray
    n_b: np.ndarray
    cores_b: np.ndarray
    f_b: np.ndarray
    units_a: np.ndarray
    units_b: np.ndarray
    times_s: np.ndarray
    energies_j: np.ndarray
    units_total: float

    def __len__(self) -> int:
        return int(self.times_s.size)

    @property
    def is_heterogeneous(self) -> np.ndarray:
        return (self.n_a > 0) & (self.n_b > 0)

    @property
    def is_only_a(self) -> np.ndarray:
        return (self.n_a > 0) & (self.n_b == 0)

    @property
    def is_only_b(self) -> np.ndarray:
        return (self.n_a == 0) & (self.n_b > 0)

    def config(self, i: int) -> ClusterConfig:
        """Materialize row ``i``'s configuration."""
        return ClusterConfig(
            node_a=self.node_a,
            n_a=int(self.n_a[i]),
            cores_a=int(self.cores_a[i]),
            f_a_ghz=float(self.f_a[i]),
            node_b=self.node_b,
            n_b=int(self.n_b[i]),
            cores_b=int(self.cores_b[i]),
            f_b_ghz=float(self.f_b[i]),
        )

    def point(self, i: int) -> ConfigPoint:
        """Materialize row ``i`` as a :class:`ConfigPoint`."""
        return ConfigPoint(
            config=self.config(i),
            time_s=float(self.times_s[i]),
            energy_j=float(self.energies_j[i]),
            units_a=float(self.units_a[i]),
            units_b=float(self.units_b[i]),
            method="vectorized",
        )

    def subset(self, mask: np.ndarray) -> "ConfigSpaceResult":
        """A copy restricted to the rows where ``mask`` is true."""
        return ConfigSpaceResult(
            node_a=self.node_a,
            node_b=self.node_b,
            n_a=self.n_a[mask],
            cores_a=self.cores_a[mask],
            f_a=self.f_a[mask],
            n_b=self.n_b[mask],
            cores_b=self.cores_b[mask],
            f_b=self.f_b[mask],
            units_a=self.units_a[mask],
            units_b=self.units_b[mask],
            times_s=self.times_s[mask],
            energies_j=self.energies_j[mask],
            units_total=self.units_total,
        )


def _vector_match(
    units: float,
    gamma_a: np.ndarray,
    floor_a: np.ndarray,
    gamma_b: np.ndarray,
    floor_b: np.ndarray,
    iterations: int = 80,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized mix-and-match over arrays of group coefficients.

    Returns ``(w_a, time)``.  Mirrors :func:`repro.core.matching.match_split`
    case-for-case; the mixed floor regime is resolved by the same
    canonical capacity bisection as the scalar solver (min feasible
    deadline, proportional-to-capacity assignment), so the two paths and
    the k-way matcher all pick identical splits even on tie intervals.
    """
    w_cf = units * gamma_b / (gamma_a + gamma_b)
    t_cf = w_cf * gamma_a
    closed_ok = (t_cf >= floor_a) & (t_cf >= floor_b) & (gamma_a > 0) & (gamma_b > 0)

    t_a_all = np.maximum(gamma_a * units, floor_a)
    t_b_all = np.maximum(gamma_b * units, floor_b)
    excl_a = ~closed_ok & (floor_a > t_b_all)
    excl_b = ~closed_ok & ~excl_a & (floor_b > t_a_all)
    mixed = ~(closed_ok | excl_a | excl_b)

    w_a = np.where(closed_ok, w_cf, 0.0)
    time = np.where(closed_ok, t_cf, 0.0)
    time = np.where(excl_a, t_b_all, time)
    w_a = np.where(excl_b, units, w_a)
    time = np.where(excl_b, t_a_all, time)

    if np.any(mixed):
        ga = gamma_a[mixed]
        gb = gamma_b[mixed]
        fa = floor_a[mixed]
        fb = floor_b[mixed]
        # Capacity bisection on the deadline T (see matching._capacity_match).
        lo = np.zeros(ga.shape)
        hi = np.minimum(np.maximum(ga * units, fa), np.maximum(gb * units, fb))
        for _ in range(iterations):
            mid = 0.5 * (lo + hi)
            cap = np.where(mid >= fa, mid / ga, 0.0) + np.where(
                mid >= fb, mid / gb, 0.0
            )
            feasible = cap >= units
            hi = np.where(feasible, mid, hi)
            lo = np.where(feasible, lo, mid)
        t_star = hi
        cap_a = np.where(t_star >= fa, t_star / ga, 0.0)
        cap_b = np.where(t_star >= fb, t_star / gb, 0.0)
        total_cap = cap_a + cap_b
        w_mixed = units * cap_a / total_cap
        t_mixed = np.maximum(
            np.where(w_mixed > 0, np.maximum(ga * w_mixed, fa), 0.0),
            np.where(
                units - w_mixed > 0,
                np.maximum(gb * (units - w_mixed), fb),
                0.0,
            ),
        )
        w_a[mixed] = w_mixed
        time[mixed] = t_mixed
    return w_a, time


def _group_energy(
    n: np.ndarray,
    w: np.ndarray,
    time: np.ndarray,
    k: np.ndarray,
    io_slope: float,
    floor_job: float,
    p_idle: float,
    p_io: float,
) -> np.ndarray:
    """Group energy for vectorized settings (see :func:`_setting_grid`)."""
    e_io = np.where(w > 0, p_io * np.maximum(w * io_slope, floor_job), 0.0)
    return n * p_idle * time + w * k + e_io


def evaluate_space(
    spec_a: NodeSpec,
    max_a: int,
    spec_b: NodeSpec,
    max_b: int,
    params: Mapping[str, NodeModelParams],
    units: float,
    counts_a: Optional[Sequence[int]] = None,
    counts_b: Optional[Sequence[int]] = None,
    settings_a: Optional[Sequence[Tuple[int, float]]] = None,
    settings_b: Optional[Sequence[Tuple[int, float]]] = None,
) -> ConfigSpaceResult:
    """Evaluate the full configuration space, vectorized.

    Parameters mirror :func:`repro.core.configuration.enumerate_configs`;
    row order matches its yield order exactly (heterogeneous block, then
    a-only, then b-only), which tests rely on.

    ``counts_a``/``counts_b`` pin the per-type node counts to an explicit
    list instead of ``0..max`` (0 means "this type absent", producing the
    other type's homogeneous block).  Used by the fixed-mix analyses of
    Figures 6-9 to avoid enumerating every smaller cluster.

    ``settings_a``/``settings_b`` restrict each type's (cores, frequency)
    settings to an explicit list instead of the full rectangle -- the
    hook :mod:`repro.core.reduction` uses to evaluate pruned spaces.
    """
    if units <= 0:
        raise ValueError("job must contain positive work")
    if max_a < 0 or max_b < 0:
        raise ValueError("maximum node counts must be non-negative")
    if max_a == 0 and max_b == 0:
        raise ValueError("space is empty with zero nodes of both types")
    grid_a = _setting_grid(spec_a, params[spec_a.name], settings_a)
    grid_b = _setting_grid(spec_b, params[spec_b.name], settings_b)

    counts_a_arr = _normalize_counts(counts_a, max_a)
    counts_b_arr = _normalize_counts(counts_b, max_b)
    pos_a = counts_a_arr[counts_a_arr > 0]
    pos_b = counts_b_arr[counts_b_arr > 0]
    include_a_only = 0 in counts_b_arr and pos_a.size > 0
    include_b_only = 0 in counts_a_arr and pos_b.size > 0

    blocks: List[ConfigSpaceResult] = []

    # ---- heterogeneous block -------------------------------------------
    if pos_a.size > 0 and pos_b.size > 0:
        # Broadcast to shape (|A|, Sa, |B|, Sb), flattened C-order to
        # match enumerate_configs' loop nesting.
        na = pos_a[:, None, None, None]
        sa = np.arange(grid_a.cores.size)[None, :, None, None]
        nb = pos_b[None, None, :, None]
        sb = np.arange(grid_b.cores.size)[None, None, None, :]
        shape = (pos_a.size, grid_a.cores.size, pos_b.size, grid_b.cores.size)

        gamma_a = grid_a.slope_node[sa] / na
        gamma_b = grid_b.slope_node[sb] / nb
        floor_a = grid_a.floor_job_s / na
        floor_b = grid_b.floor_job_s / nb
        gamma_a, gamma_b, floor_a, floor_b = np.broadcast_arrays(
            gamma_a, gamma_b, floor_a, floor_b
        )
        w_a, time = _vector_match(
            units,
            gamma_a.reshape(-1).copy(),
            floor_a.reshape(-1).copy(),
            gamma_b.reshape(-1).copy(),
            floor_b.reshape(-1).copy(),
        )
        w_b = units - w_a
        na_flat = np.broadcast_to(na, shape).reshape(-1)
        nb_flat = np.broadcast_to(nb, shape).reshape(-1)
        sa_flat = np.broadcast_to(sa, shape).reshape(-1)
        sb_flat = np.broadcast_to(sb, shape).reshape(-1)
        energy = _group_energy(
            na_flat,
            w_a,
            time,
            grid_a.k_joules_per_unit[sa_flat],
            grid_a.io_slope_node,
            grid_a.floor_job_s,
            grid_a.p_idle_w,
            grid_a.p_io_w,
        ) + _group_energy(
            nb_flat,
            w_b,
            time,
            grid_b.k_joules_per_unit[sb_flat],
            grid_b.io_slope_node,
            grid_b.floor_job_s,
            grid_b.p_idle_w,
            grid_b.p_io_w,
        )
        blocks.append(
            ConfigSpaceResult(
                node_a=spec_a.name,
                node_b=spec_b.name,
                n_a=na_flat,
                cores_a=grid_a.cores[sa_flat],
                f_a=grid_a.f_ghz[sa_flat],
                n_b=nb_flat,
                cores_b=grid_b.cores[sb_flat],
                f_b=grid_b.f_ghz[sb_flat],
                units_a=w_a,
                units_b=w_b,
                times_s=time,
                energies_j=energy,
                units_total=units,
            )
        )

    # ---- homogeneous blocks --------------------------------------------
    for which, spec, grid, counts, include in (
        ("a", spec_a, grid_a, pos_a, include_a_only),
        ("b", spec_b, grid_b, pos_b, include_b_only),
    ):
        if not include:
            continue
        n = np.repeat(counts, grid.cores.size)
        s = np.tile(np.arange(grid.cores.size), counts.size)
        gamma = grid.slope_node[s] / n
        floor = grid.floor_job_s / n
        time = np.maximum(gamma * units, floor)
        w = np.full(n.shape, float(units))
        energy = _group_energy(
            n,
            w,
            time,
            grid.k_joules_per_unit[s],
            grid.io_slope_node,
            grid.floor_job_s,
            grid.p_idle_w,
            grid.p_io_w,
        )
        zeros_i = np.zeros(n.shape, dtype=np.int64)
        if which == "a":
            blocks.append(
                ConfigSpaceResult(
                    node_a=spec_a.name,
                    node_b=spec_b.name,
                    n_a=n,
                    cores_a=grid.cores[s],
                    f_a=grid.f_ghz[s],
                    n_b=zeros_i,
                    cores_b=np.full(n.shape, spec_b.cores.count, dtype=np.int64),
                    f_b=np.full(n.shape, spec_b.cores.fmax_ghz),
                    units_a=w,
                    units_b=np.zeros(n.shape),
                    times_s=time,
                    energies_j=energy,
                    units_total=units,
                )
            )
        else:
            blocks.append(
                ConfigSpaceResult(
                    node_a=spec_a.name,
                    node_b=spec_b.name,
                    n_a=zeros_i,
                    cores_a=np.full(n.shape, spec_a.cores.count, dtype=np.int64),
                    f_a=np.full(n.shape, spec_a.cores.fmax_ghz),
                    n_b=n,
                    cores_b=grid.cores[s],
                    f_b=grid.f_ghz[s],
                    units_a=np.zeros(n.shape),
                    units_b=w,
                    times_s=time,
                    energies_j=energy,
                    units_total=units,
                )
            )

    return _concat_results(blocks)


def _normalize_counts(counts: Optional[Sequence[int]], max_n: int) -> np.ndarray:
    """Validate/derive a node-count list; default is ``0..max_n``.

    Zero in the list means configurations where this node type is absent
    (i.e., the *other* type's homogeneous block is included).
    """
    if counts is None:
        return np.arange(0, max_n + 1, dtype=np.int64)
    arr = np.asarray(sorted(set(int(c) for c in counts)), dtype=np.int64)
    if arr.size == 0:
        raise ValueError("counts list cannot be empty")
    if np.any(arr < 0):
        raise ValueError(f"node counts must be non-negative, got {arr.tolist()}")
    return arr


def _concat_results(blocks: Sequence[ConfigSpaceResult]) -> ConfigSpaceResult:
    """Concatenate evaluation blocks preserving row order."""
    if not blocks:
        raise ValueError(
            "no configurations to evaluate: the count lists admit neither a "
            "heterogeneous nor a homogeneous block"
        )
    if len(blocks) == 1:
        return blocks[0]
    first = blocks[0]
    return ConfigSpaceResult(
        node_a=first.node_a,
        node_b=first.node_b,
        n_a=np.concatenate([b.n_a for b in blocks]),
        cores_a=np.concatenate([b.cores_a for b in blocks]),
        f_a=np.concatenate([b.f_a for b in blocks]),
        n_b=np.concatenate([b.n_b for b in blocks]),
        cores_b=np.concatenate([b.cores_b for b in blocks]),
        f_b=np.concatenate([b.f_b for b in blocks]),
        units_a=np.concatenate([b.units_a for b in blocks]),
        units_b=np.concatenate([b.units_b for b in blocks]),
        times_s=np.concatenate([b.times_s for b in blocks]),
        energies_j=np.concatenate([b.energies_j for b in blocks]),
        units_total=first.units_total,
    )
