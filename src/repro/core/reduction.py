"""Configuration-space reduction (the paper's stated open problem).

Section IV-B: "An approach to reduce the configuration space is beyond
the scope of this paper."  This module supplies one.

**Per-type setting pruning.**  Fix a workload and node type.  Every
(cores, frequency) setting contributes exactly two per-node constants to
the model (see :func:`repro.core.evaluate._setting_grid`):

* ``s`` -- seconds per work unit per node (``slope_node``), and
* ``k`` -- joules per work unit (``k_joules_per_unit``).

Replace a group's setting by one with ``s' <= s`` and ``k' <= k``,
*keeping the work split fixed*: the group's time can only shrink (so the
job time and every idle term shrink) and its work energy can only
shrink, while the other group and the I/O terms are untouched -- the new
configuration weakly dominates the old one point-for-point.  Pruning
each type's settings to their (s, k) Pareto set before taking the cross
product therefore discards only configurations that a surviving
configuration can mimic *at the same split*.

This makes the reduction a certified heuristic, not a theorem: the
evaluated space holds each configuration at its time-minimal matched
split, and matching can exploit a dominated setting -- slowing the
energy-expensive node sheds work onto the cheap one, occasionally
producing true frontier points the pruned space lacks.  On all six
paper workloads the frontier is preserved *exactly*
(:func:`reduction_summary` certifies it per space, and the benchmark
asserts it); on adversarial random workloads the property tests bound
the coverage gap to a few percent of energy at equal deadlines.

Payoff: the catalog's 20 ARM x 18 AMD settings collapse to a handful per
type, shrinking the 36,380-point space by well over an order of
magnitude with an identical frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

import numpy as np

from repro.core.configuration import GroupSpec
from repro.core.evaluate import ConfigSpaceResult, _setting_grid, evaluate_space
from repro.core.params import NodeModelParams
from repro.core.pareto import ParetoFrontier
from repro.core.streaming import count_space_rows, streaming_frontier
from repro.hardware.specs import NodeSpec


@dataclass(frozen=True)
class ReductionReport:
    """What pruning kept, per node type."""

    node_name: str
    kept: Tuple[Tuple[int, float], ...]  # (cores, f_ghz) settings retained
    total_settings: int

    def __post_init__(self) -> None:
        if not self.kept:
            raise ValueError("pruning must keep at least one setting")
        if self.total_settings < len(self.kept):
            raise ValueError("kept more settings than exist")

    @property
    def kept_count(self) -> int:
        return len(self.kept)

    @property
    def reduction_factor(self) -> float:
        """How many times fewer settings survive."""
        return self.total_settings / self.kept_count


def undominated_settings(spec: NodeSpec, params: NodeModelParams) -> ReductionReport:
    """The (time-slope, energy-per-unit) Pareto set of a node's settings.

    A setting survives unless some other setting is at least as fast
    *and* at least as cheap per unit, with one of the two strict.
    """
    grid = _setting_grid(spec, params)
    s = grid.slope_node
    k = grid.k_joules_per_unit
    n = s.size
    keep = []
    for i in range(n):
        dominated = np.any(
            (s <= s[i]) & (k <= k[i]) & ((s < s[i]) | (k < k[i]))
        )
        if not dominated:
            keep.append(i)
    keep.sort(key=lambda i: (int(grid.cores[i]), float(grid.f_ghz[i])))
    kept = tuple((int(grid.cores[i]), float(grid.f_ghz[i])) for i in keep)
    return ReductionReport(node_name=spec.name, kept=kept, total_settings=n)


def reduced_space(
    spec_a: NodeSpec,
    max_a: int,
    spec_b: NodeSpec,
    max_b: int,
    params: Mapping[str, NodeModelParams],
    units: float,
) -> Tuple[ConfigSpaceResult, ReductionReport, ReductionReport]:
    """Evaluate only the pruned configuration space.

    Returns ``(space, report_a, report_b)``.  Unlike masking the full
    evaluation, this never computes the dominated configurations at all
    -- the point of the reduction.
    """
    report_a = undominated_settings(spec_a, params[spec_a.name])
    report_b = undominated_settings(spec_b, params[spec_b.name])
    space = evaluate_space(
        spec_a,
        max_a,
        spec_b,
        max_b,
        params,
        units,
        settings_a=list(report_a.kept),
        settings_b=list(report_b.kept),
    )
    return space, report_a, report_b


def frontier_preserved_frontiers(
    f_full: ParetoFrontier, f_reduced: ParetoFrontier, rtol: float = 1e-9
) -> bool:
    """Whether two already-built frontiers coincide (up to ``rtol``).

    The comparison core of :func:`frontier_preserved`, split out so the
    streaming certificate can hand in frontiers computed without ever
    materializing the spaces behind them.
    """
    if len(f_full) != len(f_reduced):
        return False
    return bool(
        np.allclose(f_full.times_s, f_reduced.times_s, rtol=rtol)
        and np.allclose(f_full.energies_j, f_reduced.energies_j, rtol=rtol)
    )


def frontier_preserved(
    full: ConfigSpaceResult, reduced: ConfigSpaceResult, rtol: float = 1e-9
) -> bool:
    """Whether the reduced space's Pareto frontier equals the full one's."""
    f_full = ParetoFrontier.from_points(full.times_s, full.energies_j)
    f_reduced = ParetoFrontier.from_points(reduced.times_s, reduced.energies_j)
    return frontier_preserved_frontiers(f_full, f_reduced, rtol=rtol)


def reduction_summary(
    spec_a: NodeSpec,
    max_a: int,
    spec_b: NodeSpec,
    max_b: int,
    params: Mapping[str, NodeModelParams],
    units: float,
    space_mode: str = "materialized",
    memory_budget_mb: Optional[float] = None,
) -> dict:
    """Sizes plus the per-space exactness certificate (needs a full pass).

    ``space_mode="streaming"`` runs the certificate's full-space pass
    through the online frontier under ``memory_budget_mb`` -- the one
    place the summary ever touched the unreduced space -- so certifying
    a reduction no longer costs a full-space allocation.  The verdict is
    bit-identical to the materialized certificate.
    """
    if space_mode not in ("materialized", "streaming"):
        raise ValueError(
            f"space_mode must be 'materialized' or 'streaming', got "
            f"{space_mode!r}"
        )
    reduced, report_a, report_b = reduced_space(
        spec_a, max_a, spec_b, max_b, params, units
    )
    f_reduced = ParetoFrontier.from_points(reduced.times_s, reduced.energies_j)
    if space_mode == "streaming":
        group_specs = (GroupSpec(spec_a, max_a), GroupSpec(spec_b, max_b))
        full_size = count_space_rows(group_specs)
        f_full = streaming_frontier(
            group_specs, params, units, memory_budget_mb=memory_budget_mb
        )
    else:
        full = evaluate_space(spec_a, max_a, spec_b, max_b, params, units)
        full_size = len(full)
        f_full = ParetoFrontier.from_points(full.times_s, full.energies_j)
    return {
        "full_size": full_size,
        "reduced_size": len(reduced),
        "reduction_factor": full_size / max(1, len(reduced)),
        "settings_a": (report_a.kept_count, report_a.total_settings),
        "settings_b": (report_b.kept_count, report_b.total_settings),
        "frontier_preserved": frontier_preserved_frontiers(f_full, f_reduced),
    }
