"""Operational planner: from an SLO to a deployable cluster plan.

The library's pieces answer one research question each; an operator has
one compound question: *"given my SLO and constraints, what do I buy,
what do I power on, and how do I split the work?"*  The planner composes
the pipeline into a single call:

1. constrain the cluster to a peak-power budget (8:1 substitution
   arithmetic, switch power included);
2. evaluate the admissible configuration space (optionally via the
   setting reducer);
3. apply the queueing layer for the target utilization -- mean response
   by default, an exact M/D/1 percentile if the SLO is a tail;
4. return the cheapest feasible plan: node counts, per-type settings,
   the matched work split, and the predicted time/energy/window cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.configuration import GroupSpec
from repro.core.evaluate import ConfigSpaceResult, evaluate_space
from repro.core.params import NodeModelParams
from repro.core.power_budget import cluster_peak_power, max_nodes_within_budget
from repro.core.streaming import TopKReducer, iter_space_blocks
from repro.hardware.specs import NodeSpec, SwitchSpec
from repro.queueing.tail import MD1WaitDistribution


@dataclass(frozen=True)
class SLO:
    """What the operator promises.

    Attributes
    ----------
    deadline_s:
        Response-time bound per job.
    percentile:
        Fraction of jobs that must meet it.  0.5 means "mean response"
        (the paper's Fig. 10 convention, since the M/D/1 median is near
        the mean at these loads); higher values use the exact M/D/1
        waiting-time distribution.
    utilization:
        Expected cluster utilization ``U = lambda T`` in [0, 1).
    """

    deadline_s: float
    percentile: float = 0.5
    utilization: float = 0.25

    def __post_init__(self) -> None:
        if self.deadline_s <= 0:
            raise ValueError("deadline must be positive")
        if not 0.0 < self.percentile < 1.0:
            raise ValueError("percentile must be in (0, 1)")
        if not 0.0 <= self.utilization < 1.0:
            raise ValueError("utilization must be in [0, 1)")


@dataclass(frozen=True)
class Plan:
    """A deployable answer."""

    n_low: int
    cores_low: int
    f_low_ghz: float
    n_high: int
    cores_high: int
    f_high_ghz: float
    units_low: float
    units_high: float
    service_s: float
    response_s: float
    job_energy_j: float
    window_energy_j: float
    peak_power_w: float

    def describe(self, low_name: str = "ARM", high_name: str = "AMD") -> str:
        parts = []
        if self.n_low:
            parts.append(
                f"{self.n_low}x {low_name} (c={self.cores_low}, "
                f"f={self.f_low_ghz} GHz) <- {self.units_low:,.0f} units"
            )
        if self.n_high:
            parts.append(
                f"{self.n_high}x {high_name} (c={self.cores_high}, "
                f"f={self.f_high_ghz} GHz) <- {self.units_high:,.0f} units"
            )
        return (
            " + ".join(parts)
            + f"; service {self.service_s * 1e3:.1f} ms, response "
            f"{self.response_s * 1e3:.1f} ms, {self.job_energy_j:.2f} J/job, "
            f"peak {self.peak_power_w:.0f} W"
        )


def plan_cluster(
    spec_low: NodeSpec,
    spec_high: NodeSpec,
    params: Mapping[str, NodeModelParams],
    units: float,
    slo: SLO,
    budget_w: Optional[float] = None,
    switch: Optional[SwitchSpec] = None,
    max_low: int = 32,
    max_high: int = 16,
    window_s: float = 20.0,
    use_reduction: bool = True,
) -> Optional[Plan]:
    """Cheapest window-energy plan meeting the SLO, or ``None``.

    Parameters
    ----------
    budget_w:
        Peak-power cap; node maxima are trimmed so even the largest
        admissible homogeneous cluster fits.  ``None`` = unconstrained.
    use_reduction:
        Evaluate only per-type undominated settings (exactness certified
        for the paper's workloads; see :mod:`repro.core.reduction`).
    """
    if units <= 0:
        raise ValueError("job must contain positive work")
    if max_low < 0 or max_high < 0 or (max_low == 0 and max_high == 0):
        raise ValueError("need some nodes to plan with")

    if budget_w is not None:
        max_low = min(max_low, max_nodes_within_budget(spec_low, budget_w, switch))
        max_high = min(max_high, max_nodes_within_budget(spec_high, budget_w))
        if max_low == 0 and max_high == 0:
            return None

    if use_reduction:
        from repro.core.reduction import reduced_space

        space, _, _ = reduced_space(
            spec_low, max_low, spec_high, max_high, params, units
        )
    else:
        space = evaluate_space(
            spec_low, max_low, spec_high, max_high, params, units
        )

    return _cheapest_feasible(
        space, spec_low, spec_high, slo, budget_w, switch, window_s
    )


def _feasible_plan_for_row(
    space: ConfigSpaceResult,
    i: int,
    spec_low: NodeSpec,
    spec_high: NodeSpec,
    slo: SLO,
    budget_w: Optional[float],
    switch: Optional[SwitchSpec],
    window_s: float,
) -> Optional[Plan]:
    """Row ``i``'s plan if it meets the SLO and budget, else ``None``.

    The single feasibility/cost computation shared by the sorted scan
    (:func:`_cheapest_feasible`) and the streaming top-k selection --
    one implementation is what makes the two paths' plans identical.
    """
    service = float(space.times_s[i])
    if service > slo.deadline_s:
        return None
    u = slo.utilization
    n_low = int(space.n[0, i])
    n_high = int(space.n[1, i])
    peak = cluster_peak_power(spec_low, n_low, spec_high, n_high, switch)
    if budget_w is not None and peak > budget_w + 1e-9:
        return None
    if u > 0:
        dist = MD1WaitDistribution(service, u / service)
        try:
            response = (
                dist.response_percentile(slo.percentile)
                if slo.percentile > dist.no_wait_probability
                else service
            )
        except ValueError:
            return None  # beyond the stable tail domain: treat infeasible
        if response > slo.deadline_s:
            return None
        jobs = u * window_s / service
    else:
        response = service
        jobs = 0.0
    idle_w = n_low * spec_low.idle_power_w + n_high * spec_high.idle_power_w
    window_energy = jobs * float(space.energies_j[i]) + (
        1.0 - u
    ) * window_s * idle_w
    return Plan(
        n_low=n_low,
        cores_low=int(space.cores[0, i]),
        f_low_ghz=float(space.f[0, i]),
        n_high=n_high,
        cores_high=int(space.cores[1, i]),
        f_high_ghz=float(space.f[1, i]),
        units_low=float(space.units[0, i]),
        units_high=float(space.units[1, i]),
        service_s=service,
        response_s=float(response),
        job_energy_j=float(space.energies_j[i]),
        window_energy_j=float(window_energy),
        peak_power_w=peak,
    )


def _candidate_items(
    space: ConfigSpaceResult,
    start_row: int,
    spec_low: NodeSpec,
    spec_high: NodeSpec,
    slo: SLO,
    budget_w: Optional[float],
    switch: Optional[SwitchSpec],
    window_s: float,
) -> Iterator[Tuple[Tuple[float, float, int], Plan]]:
    """Keyed feasible plans of one space (or block of one).

    Keys are ``(window_energy, service, global_row)`` -- total order
    with the global row index as the final tiebreak, so top-k selection
    is deterministic and identical whether rows arrive whole or in
    blocks (``start_row`` offsets block-local rows to global ones).
    """
    within = np.flatnonzero(
        np.asarray(space.times_s, dtype=float) <= slo.deadline_s
    )
    for i in within:
        plan = _feasible_plan_for_row(
            space, int(i), spec_low, spec_high, slo, budget_w, switch, window_s
        )
        if plan is not None:
            yield (
                (plan.window_energy_j, plan.service_s, start_row + int(i)),
                plan,
            )


def plan_candidates(
    spec_low: NodeSpec,
    spec_high: NodeSpec,
    params: Mapping[str, NodeModelParams],
    units: float,
    slo: SLO,
    k: int = 3,
    budget_w: Optional[float] = None,
    switch: Optional[SwitchSpec] = None,
    max_low: int = 32,
    max_high: int = 16,
    window_s: float = 20.0,
    use_reduction: bool = True,
    space_mode: str = "materialized",
    memory_budget_mb: Optional[float] = None,
) -> List[Plan]:
    """The ``k`` cheapest feasible plans, best first (possibly fewer).

    The top-k generalization of :func:`plan_cluster`, with a total
    deterministic order -- candidates rank by
    ``(window_energy, service, row)`` -- so the result is bit-identical
    between ``space_mode="materialized"`` (evaluate, then select) and
    ``space_mode="streaming"`` (fold blocks through a
    :class:`~repro.core.streaming.TopKReducer` under the
    ``memory_budget_mb`` cap, never materializing the space).
    """
    if units <= 0:
        raise ValueError("job must contain positive work")
    if max_low < 0 or max_high < 0 or (max_low == 0 and max_high == 0):
        raise ValueError("need some nodes to plan with")
    if space_mode not in ("materialized", "streaming"):
        raise ValueError(
            f"space_mode must be 'materialized' or 'streaming', got "
            f"{space_mode!r}"
        )

    if budget_w is not None:
        max_low = min(max_low, max_nodes_within_budget(spec_low, budget_w, switch))
        max_high = min(max_high, max_nodes_within_budget(spec_high, budget_w))
        if max_low == 0 and max_high == 0:
            return []

    settings_low = settings_high = None
    if use_reduction:
        from repro.core.reduction import undominated_settings

        settings_low = list(undominated_settings(spec_low, params[spec_low.name]).kept)
        settings_high = list(undominated_settings(spec_high, params[spec_high.name]).kept)

    topk: TopKReducer = TopKReducer(k)
    if space_mode == "streaming":
        group_specs = (
            GroupSpec(spec_low, max_low, settings=settings_low),
            GroupSpec(spec_high, max_high, settings=settings_high),
        )
        for block in iter_space_blocks(
            group_specs, params, units, memory_budget_mb=memory_budget_mb
        ):
            topk.update(
                _candidate_items(
                    block.data, block.start_row, spec_low, spec_high,
                    slo, budget_w, switch, window_s,
                )
            )
    else:
        space = evaluate_space(
            spec_low, max_low, spec_high, max_high, params, units,
            settings_a=settings_low, settings_b=settings_high,
        )
        topk.update(
            _candidate_items(
                space, 0, spec_low, spec_high, slo, budget_w, switch, window_s
            )
        )
    return [plan for _, plan in topk.finish()]


def _cheapest_feasible(
    space: ConfigSpaceResult,
    spec_low: NodeSpec,
    spec_high: NodeSpec,
    slo: SLO,
    budget_w: Optional[float],
    switch: Optional[SwitchSpec],
    window_s: float,
) -> Optional[Plan]:
    best: Optional[Plan] = None
    for i in np.argsort(space.times_s):
        if float(space.times_s[i]) > slo.deadline_s:
            break  # sorted: nothing further can qualify
        plan = _feasible_plan_for_row(
            space, int(i), spec_low, spec_high, slo, budget_w, switch, window_s
        )
        if plan is None:
            continue
        if best is None or plan.window_energy_j < best.window_energy_j:
            best = plan
    return best
