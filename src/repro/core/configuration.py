"""Cluster configuration space (Section IV-B, footnote 2).

A *configuration* fixes, for each node type: how many nodes participate,
how many cores are active per node, and the core clock.  For a maximum of
10 ARM and 10 AMD nodes the paper counts:

* heterogeneous: 10 x 5 x 4 x 10 x 3 x 6 = 36,000
* ARM only:      10 x 5 x 4            =    200
* AMD only:      10 x 3 x 6            =    180

total 36,380.  :func:`count_configs` reproduces that arithmetic and
:func:`enumerate_configs` yields every point; the heavy numeric work is
done vectorized in :mod:`repro.core.evaluate`, so enumeration here stays
a cheap, readable generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.hardware.specs import NodeSpec


@dataclass(frozen=True)
class ClusterConfig:
    """One point of the configuration space.

    Group *a* is conventionally the low-power type (ARM) and group *b*
    the high-performance type (AMD), matching the paper's presentation;
    nothing in the code depends on that ordering.  A group with
    ``n == 0`` is absent and its ``cores``/``f_ghz`` are ignored (kept at
    the type's maxima for readability).
    """

    node_a: str
    n_a: int
    cores_a: int
    f_a_ghz: float
    node_b: str
    n_b: int
    cores_b: int
    f_b_ghz: float

    def __post_init__(self) -> None:
        if self.n_a < 0 or self.n_b < 0:
            raise ValueError("node counts must be non-negative")
        if self.n_a == 0 and self.n_b == 0:
            raise ValueError("a configuration needs at least one node")

    @property
    def is_heterogeneous(self) -> bool:
        """Both node types present."""
        return self.n_a > 0 and self.n_b > 0

    @property
    def homogeneous_type(self) -> Optional[str]:
        """The single node type of a homogeneous config, else ``None``."""
        if self.is_heterogeneous:
            return None
        return self.node_a if self.n_a > 0 else self.node_b

    @property
    def total_nodes(self) -> int:
        return self.n_a + self.n_b

    def label(self) -> str:
        """Short human-readable form, e.g. ``ARM 16:AMD 14`` style."""
        parts = []
        if self.n_a:
            parts.append(f"{self.node_a} x{self.n_a} (c={self.cores_a}, f={self.f_a_ghz})")
        if self.n_b:
            parts.append(f"{self.node_b} x{self.n_b} (c={self.cores_b}, f={self.f_b_ghz})")
        return " + ".join(parts)


def count_configs(spec_a: NodeSpec, max_a: int, spec_b: NodeSpec, max_b: int) -> int:
    """Size of the configuration space, per the paper's footnote arithmetic."""
    if max_a < 0 or max_b < 0:
        raise ValueError("maximum node counts must be non-negative")
    dims_a = len(spec_a.cores.pstates_ghz) * spec_a.cores.count
    dims_b = len(spec_b.cores.pstates_ghz) * spec_b.cores.count
    hetero = max_a * dims_a * max_b * dims_b
    only_a = max_a * dims_a
    only_b = max_b * dims_b
    return hetero + only_a + only_b


def enumerate_configs(
    spec_a: NodeSpec,
    max_a: int,
    spec_b: NodeSpec,
    max_b: int,
) -> Iterator[ClusterConfig]:
    """Yield every configuration with up to ``max_a``/``max_b`` nodes.

    Order: heterogeneous block first (outer loops over group a), then the
    two homogeneous blocks -- mirroring the footnote's decomposition.
    """
    if max_a < 0 or max_b < 0:
        raise ValueError("maximum node counts must be non-negative")

    def _settings(spec: NodeSpec):
        for cores in range(1, spec.cores.count + 1):
            for f in spec.cores.pstates_ghz:
                yield cores, f

    # Heterogeneous mixes.
    for n_a in range(1, max_a + 1):
        for cores_a, f_a in _settings(spec_a):
            for n_b in range(1, max_b + 1):
                for cores_b, f_b in _settings(spec_b):
                    yield ClusterConfig(
                        node_a=spec_a.name,
                        n_a=n_a,
                        cores_a=cores_a,
                        f_a_ghz=f_a,
                        node_b=spec_b.name,
                        n_b=n_b,
                        cores_b=cores_b,
                        f_b_ghz=f_b,
                    )
    # Homogeneous: type a only.
    for n_a in range(1, max_a + 1):
        for cores_a, f_a in _settings(spec_a):
            yield ClusterConfig(
                node_a=spec_a.name,
                n_a=n_a,
                cores_a=cores_a,
                f_a_ghz=f_a,
                node_b=spec_b.name,
                n_b=0,
                cores_b=spec_b.cores.count,
                f_b_ghz=spec_b.cores.fmax_ghz,
            )
    # Homogeneous: type b only.
    for n_b in range(1, max_b + 1):
        for cores_b, f_b in _settings(spec_b):
            yield ClusterConfig(
                node_a=spec_a.name,
                n_a=0,
                cores_a=spec_a.cores.count,
                f_a_ghz=spec_a.cores.fmax_ghz,
                node_b=spec_b.name,
                n_b=n_b,
                cores_b=cores_b,
                f_b_ghz=f_b,
            )
