"""Cluster configuration space (Section IV-B, footnote 2), N-group form.

A *configuration* fixes, for each node type (a *group*): how many nodes
participate, how many cores are active per node, and the core clock.
The paper exercises two groups; Section II-A's "generic mix of
heterogeneous nodes" admits any number, so the representation here is a
group table -- an ordered tuple of :class:`GroupConfig` -- of which the
paper's A/B pair is the two-entry case.

For a maximum of 10 ARM and 10 AMD nodes the paper counts:

* heterogeneous: 10 x 5 x 4 x 10 x 3 x 6 = 36,000
* ARM only:      10 x 5 x 4            =    200
* AMD only:      10 x 3 x 6            =    180

total 36,380.  :func:`count_configs` reproduces that arithmetic and
:func:`enumerate_configs` yields every point; their k-group
generalizations (:func:`count_configs_groups`,
:func:`enumerate_configs_groups`) sum over every non-empty subset of
present groups.  The heavy numeric work is done vectorized in
:mod:`repro.core.evaluate`, so enumeration here stays a cheap, readable
generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.hardware.specs import NodeSpec

_LEGACY_FIELDS = (
    "node_a", "n_a", "cores_a", "f_a_ghz", "node_b", "n_b", "cores_b", "f_b_ghz",
)


def node_settings(
    spec: NodeSpec,
    settings: Optional[Sequence[Tuple[int, float]]] = None,
) -> List[Tuple[int, float]]:
    """The (cores, frequency) settings of one node type, validated.

    ``None`` yields the full rectangle -- every active-core count from 1
    to the spec's core count crossed with every P-state, cores outer and
    frequencies inner (the enumeration order the whole pipeline shares).
    An explicit list restricts the settings (the hook
    :mod:`repro.core.reduction` uses for pruned spaces); each entry is
    validated against the spec and an empty list is rejected.
    """
    if settings is None:
        return [
            (cores, f)
            for cores in range(1, spec.cores.count + 1)
            for f in spec.cores.pstates_ghz
        ]
    out: List[Tuple[int, float]] = []
    for cores, f in settings:
        spec.cores.validate_setting(cores, f)
        out.append((int(cores), float(f)))
    if not out:
        raise ValueError(f"empty settings list for {spec.name}")
    return out


@dataclass(frozen=True)
class GroupConfig:
    """One group's slice of a configuration: node type, count, setting."""

    node: str
    n: int
    cores: int
    f_ghz: float

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError("node counts must be non-negative")

    @property
    def present(self) -> bool:
        return self.n > 0


@dataclass(frozen=True)
class GroupSpec:
    """One group's axis of a configuration *space*.

    ``counts`` pins the node counts to an explicit list instead of
    ``0..max_nodes`` (0 means "this group absent"); ``settings`` pins
    the (cores, frequency) settings instead of the full rectangle.
    """

    spec: NodeSpec
    max_nodes: int
    counts: Optional[Tuple[int, ...]] = None
    settings: Optional[Tuple[Tuple[int, float], ...]] = None

    def __post_init__(self) -> None:
        if self.max_nodes < 0:
            raise ValueError("maximum node counts must be non-negative")
        if self.counts is not None:
            object.__setattr__(
                self, "counts", tuple(int(c) for c in self.counts)
            )
        if self.settings is not None:
            object.__setattr__(
                self,
                "settings",
                tuple((int(c), float(f)) for c, f in self.settings),
            )


@dataclass(frozen=True, init=False)
class ClusterConfig:
    """One point of the configuration space: an ordered group table.

    Constructible either from ``groups=(GroupConfig, ...)`` or -- for the
    paper's two-type case -- from the legacy pair fields
    (``node_a, n_a, cores_a, f_a_ghz, node_b, ...``).  Group *a*
    (index 0) is conventionally the low-power type (ARM) and group *b*
    (index 1) the high-performance type (AMD), matching the paper's
    presentation; nothing in the code depends on that ordering.  A group
    with ``n == 0`` is absent and its ``cores``/``f_ghz`` are ignored
    (kept at the type's maxima for readability).
    """

    groups: Tuple[GroupConfig, ...]

    def __init__(self, groups: Optional[Sequence[GroupConfig]] = None, **legacy):
        if groups is None:
            missing = [f for f in _LEGACY_FIELDS if f not in legacy]
            unknown = set(legacy) - set(_LEGACY_FIELDS)
            if missing or unknown:
                raise TypeError(
                    "pass groups=(GroupConfig, ...) or all of "
                    f"{_LEGACY_FIELDS}; missing {missing}, unknown {sorted(unknown)}"
                )
            groups = (
                GroupConfig(
                    legacy["node_a"], legacy["n_a"],
                    legacy["cores_a"], legacy["f_a_ghz"],
                ),
                GroupConfig(
                    legacy["node_b"], legacy["n_b"],
                    legacy["cores_b"], legacy["f_b_ghz"],
                ),
            )
        elif legacy:
            raise TypeError("pass either groups or the legacy pair fields, not both")
        groups = tuple(groups)
        if not groups:
            raise ValueError("a configuration needs at least one group")
        if all(g.n == 0 for g in groups):
            raise ValueError("a configuration needs at least one node")
        object.__setattr__(self, "groups", groups)

    # ---- group-table introspection -------------------------------------

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def present(self) -> Tuple[int, ...]:
        """Indices of groups with at least one node."""
        return tuple(i for i, g in enumerate(self.groups) if g.n > 0)

    @property
    def is_heterogeneous(self) -> bool:
        """At least two node types present."""
        return len(self.present) >= 2

    @property
    def homogeneous_type(self) -> Optional[str]:
        """The single node type of a homogeneous config, else ``None``."""
        present = self.present
        if len(present) != 1:
            return None
        return self.groups[present[0]].node

    @property
    def total_nodes(self) -> int:
        return sum(g.n for g in self.groups)

    def label(self) -> str:
        """Short human-readable form, e.g. ``ARM 16:AMD 14`` style."""
        parts = []
        for g in self.groups:
            if g.n:
                parts.append(f"{g.node} x{g.n} (c={g.cores}, f={g.f_ghz})")
        return " + ".join(parts)

    # ---- legacy pair accessors (two-group configurations only) ---------

    def _pair(self, index: int) -> GroupConfig:
        if len(self.groups) != 2:
            raise ValueError(
                "pair accessors (node_a/n_a/...) need exactly two groups; "
                f"this configuration has {len(self.groups)} -- use .groups"
            )
        return self.groups[index]

    @property
    def node_a(self) -> str:
        return self._pair(0).node

    @property
    def n_a(self) -> int:
        return self._pair(0).n

    @property
    def cores_a(self) -> int:
        return self._pair(0).cores

    @property
    def f_a_ghz(self) -> float:
        return self._pair(0).f_ghz

    @property
    def node_b(self) -> str:
        return self._pair(1).node

    @property
    def n_b(self) -> int:
        return self._pair(1).n

    @property
    def cores_b(self) -> int:
        return self._pair(1).cores

    @property
    def f_b_ghz(self) -> float:
        return self._pair(1).f_ghz


# ---------------------------------------------------------------------------
# Space enumeration
# ---------------------------------------------------------------------------


def _count_lists(group_specs: Sequence[GroupSpec]) -> List[List[int]]:
    """Each group's admissible node counts (default ``0..max_nodes``)."""
    out: List[List[int]] = []
    for gs in group_specs:
        if gs.counts is None:
            out.append(list(range(0, gs.max_nodes + 1)))
        else:
            counts = sorted(set(gs.counts))
            if not counts:
                raise ValueError("counts list cannot be empty")
            if counts[0] < 0:
                raise ValueError(f"node counts must be non-negative, got {counts}")
            out.append(counts)
    return out


def presence_masks(group_specs: Sequence[GroupSpec]) -> Iterator[Tuple[int, ...]]:
    """Admissible present-group index tuples, in canonical block order.

    Masks run from all-groups-present down to each single group, with
    group 0 as the most significant bit -- for two groups that is the
    footnote's decomposition: heterogeneous, then a-only, then b-only.
    A mask is admissible when every present group has a positive count
    available and every absent group admits a count of 0.
    """
    k = len(group_specs)
    counts = _count_lists(group_specs)
    for mask in range(2 ** k - 1, 0, -1):
        present = tuple(g for g in range(k) if mask >> (k - 1 - g) & 1)
        absent = tuple(g for g in range(k) if g not in present)
        if any(not any(c > 0 for c in counts[g]) for g in present):
            continue
        if any(0 not in counts[g] for g in absent):
            continue
        yield present


def count_configs_groups(group_specs: Sequence[GroupSpec]) -> int:
    """Size of a k-group configuration space (footnote arithmetic, k-way)."""
    counts = _count_lists(group_specs)
    settings = [node_settings(gs.spec, gs.settings) for gs in group_specs]
    pos = [sum(1 for c in cl if c > 0) for cl in counts]
    total = 0
    for present in presence_masks(group_specs):
        block = 1
        for g in present:
            block *= pos[g] * len(settings[g])
        total += block
    return total


def enumerate_configs_groups(
    group_specs: Sequence[GroupSpec],
) -> Iterator[ClusterConfig]:
    """Yield every configuration of a k-group space.

    Block order follows :func:`presence_masks`; within a block the loops
    nest count-then-setting per present group, groups in order -- exactly
    the two-type generator's historical order when k = 2.  Absent groups
    are pinned at their spec's maxima for readability.
    """
    counts = _count_lists(group_specs)
    settings = [node_settings(gs.spec, gs.settings) for gs in group_specs]
    pos = [[c for c in cl if c > 0] for cl in counts]

    def _block(present: Tuple[int, ...], chosen: List[GroupConfig], depth: int):
        if depth == len(present):
            groups = []
            it = iter(chosen)
            for g, gs in enumerate(group_specs):
                if g in present:
                    groups.append(next(it))
                else:
                    groups.append(
                        GroupConfig(
                            gs.spec.name, 0,
                            gs.spec.cores.count, gs.spec.cores.fmax_ghz,
                        )
                    )
            yield ClusterConfig(groups=tuple(groups))
            return
        g = present[depth]
        for n in pos[g]:
            for cores, f in settings[g]:
                chosen.append(GroupConfig(group_specs[g].spec.name, n, cores, f))
                yield from _block(present, chosen, depth + 1)
                chosen.pop()

    for present in presence_masks(group_specs):
        yield from _block(present, [], 0)


# ---------------------------------------------------------------------------
# Legacy two-type entry points
# ---------------------------------------------------------------------------


def count_configs(spec_a: NodeSpec, max_a: int, spec_b: NodeSpec, max_b: int) -> int:
    """Size of the two-type configuration space, per the paper's footnote."""
    return count_configs_groups(
        (GroupSpec(spec_a, max_a), GroupSpec(spec_b, max_b))
    )


def enumerate_configs(
    spec_a: NodeSpec,
    max_a: int,
    spec_b: NodeSpec,
    max_b: int,
) -> Iterator[ClusterConfig]:
    """Yield every configuration with up to ``max_a``/``max_b`` nodes.

    Order: heterogeneous block first (outer loops over group a), then the
    two homogeneous blocks -- mirroring the footnote's decomposition.
    """
    yield from enumerate_configs_groups(
        (GroupSpec(spec_a, max_a), GroupSpec(spec_b, max_b))
    )
