"""Sweet and overlap regions of the Pareto frontier (Section IV-B).

The paper divides the frontier into:

* a **sweet region**: the stretch of *heterogeneous* mixes where relaxing
  the deadline buys an approximately linear energy reduction, bounded
  above by the best homogeneous high-performance configuration and below
  by the best homogeneous low-power one;
* an **overlap region**: a suffix of *homogeneous low-power* points that
  extends the frontier to the right.  It exists only for compute-bound
  programs -- there, dropping cores or frequency trades time for energy;
  for I/O-bound programs performance only scales with node count, so the
  frontier ends where the low-power configurations start (Fig. 5 vs
  Fig. 4).

:func:`analyze_regions` classifies every frontier point by its
configuration's composition and reports both regions plus the linearity
(r^2 of energy vs deadline) of the sweet region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.evaluate import ConfigSpaceResult
from repro.core.pareto import ParetoFrontier
from repro.util.stats import linear_fit


@dataclass(frozen=True)
class Region:
    """A contiguous stretch of the frontier."""

    #: Positions within the frontier arrays (start inclusive, stop exclusive).
    start: int
    stop: int
    times_s: np.ndarray
    energies_j: np.ndarray

    def __post_init__(self) -> None:
        if self.stop < self.start:
            raise ValueError("region bounds out of order")

    def __len__(self) -> int:
        return self.stop - self.start

    @property
    def deadline_span_s(self) -> Tuple[float, float]:
        """(earliest, latest) deadline covered."""
        return float(self.times_s[0]), float(self.times_s[-1])

    @property
    def energy_span_j(self) -> Tuple[float, float]:
        """(max, min) energy across the region (energies decrease)."""
        return float(self.energies_j[0]), float(self.energies_j[-1])

    def linearity_r2(self) -> Optional[float]:
        """r^2 of the energy-vs-deadline line over the region (None if < 3 pts)."""
        if len(self) < 3:
            return None
        return linear_fit(self.times_s, self.energies_j).r2


#: Minimum fractional energy reduction across the trailing homogeneous run
#: for it to count as a real overlap region.  The paper's I/O-bound case
#: (memcached, Fig. 5) shows *constant* homogeneous energy as the deadline
#: relaxes -- numerically our frontier can still carry a couple of trailing
#: low-power points whose energies differ by well under a percent, which is
#: measurement dust, not an overlap region.
OVERLAP_MATERIALITY = 0.02


@dataclass(frozen=True)
class RegionReport:
    """Frontier decomposition: sweet region, overlap region, composition."""

    frontier: ParetoFrontier
    #: Per-frontier-point composition: "hetero" for mixes, or
    #: "only-<letter>" for single-group points ("only-a", "only-b",
    #: "only-c", ... -- one letter per node-type group, in group order).
    composition: Tuple[str, ...]
    sweet: Optional[Region]
    overlap: Optional[Region]

    @property
    def has_sweet_region(self) -> bool:
        return self.sweet is not None and len(self.sweet) >= 2

    @property
    def overlap_energy_drop(self) -> float:
        """Fractional energy reduction across the trailing homogeneous run."""
        if self.overlap is None or len(self.overlap) < 2:
            return 0.0
        high, low = self.overlap.energy_span_j
        if high <= 0:
            return 0.0
        return (high - low) / high

    @property
    def has_overlap_region(self) -> bool:
        """A material overlap region: >= 2 points and a real energy drop.

        Compute-bound programs (EP) trade cores/frequency for energy and
        show drops of several percent; I/O-bound programs (memcached) show
        essentially zero (Section IV-B's contrast between Figs. 4 and 5).
        """
        return (
            self.overlap is not None
            and len(self.overlap) >= 2
            and self.overlap_energy_drop >= OVERLAP_MATERIALITY
        )


def analyze_regions(
    space: ConfigSpaceResult,
    frontier: Optional[ParetoFrontier] = None,
    low_power_side: str = "a",
) -> RegionReport:
    """Decompose a configuration space's frontier into its regions.

    Parameters
    ----------
    space:
        The evaluated space (times, energies, composition arrays).
    frontier:
        Pre-computed frontier of ``space``; built here when omitted.
    low_power_side:
        Which group is the low-power type whose homogeneous
        configurations can form the overlap region, as its letter in
        group order ("a" for group 0, "b" for group 1, ...).  The
        paper's ARM is group a throughout this library.
    """
    if frontier is None:
        frontier = ParetoFrontier.from_points(space.times_s, space.energies_j)

    hetero = space.is_heterogeneous
    only = [space.is_only(g) for g in range(space.num_groups)]
    letters = [_group_letter(g) for g in range(space.num_groups)]

    composition = []
    for idx in frontier.indices:
        if hetero[idx]:
            composition.append("hetero")
        else:
            for g in range(space.num_groups):
                if only[g][idx]:
                    composition.append(f"only-{letters[g]}")
                    break
    composition = tuple(composition)

    return regions_from_composition(
        frontier, composition, space.num_groups, low_power_side
    )


def regions_from_composition(
    frontier: ParetoFrontier,
    composition: Tuple[str, ...],
    num_groups: int,
    low_power_side: str = "a",
) -> RegionReport:
    """Region decomposition from per-point composition labels alone.

    The space-free half of :func:`analyze_regions`: everything the
    region analysis needs is the frontier plus each point's composition
    label, both of which the streaming pipeline carries at
    frontier-size.  ``composition`` must be one label per frontier
    point, in frontier order.
    """
    letters = [_group_letter(g) for g in range(num_groups)]
    if low_power_side not in letters:
        raise ValueError(
            f"low_power_side must be one of {letters}, got {low_power_side!r}"
        )
    if len(composition) != len(frontier):
        raise ValueError(
            f"{len(composition)} composition labels for "
            f"{len(frontier)} frontier points"
        )

    # Sweet region: the (first) maximal run of heterogeneous points.
    sweet = _longest_run(frontier, composition, lambda c: c == "hetero")
    # Overlap region: the trailing run of homogeneous low-power points.
    low_label = f"only-{low_power_side}"
    overlap = _trailing_run(frontier, composition, lambda c: c == low_label)

    return RegionReport(
        frontier=frontier,
        composition=composition,
        sweet=sweet,
        overlap=overlap,
    )


def analyze_regions_reduced(
    reduced, low_power_side: str = "a"
) -> RegionReport:
    """Region decomposition of a streamed
    :class:`~repro.core.streaming.ReducedSpace`.

    Duck-typed on the reduced artifact's ``frontier``/``composition``/
    ``num_groups`` so this module needs no import of the streaming
    layer; the labels were computed block-by-block during the reduction
    pass and match :func:`analyze_regions`'s exactly.
    """
    if reduced.frontier is None or reduced.composition is None:
        raise ValueError(
            "reduced space carries no frontier/composition; run the "
            "reduction with composition=True"
        )
    return regions_from_composition(
        reduced.frontier,
        tuple(reduced.composition),
        reduced.num_groups,
        low_power_side,
    )


def _group_letter(g: int) -> str:
    """The composition letter of group ``g`` ("a" for 0, "b" for 1, ...)."""
    return chr(ord("a") + g)


def _longest_run(frontier: ParetoFrontier, composition, pred) -> Optional[Region]:
    """Longest contiguous run of points satisfying ``pred``."""
    best: Optional[Tuple[int, int]] = None
    start = None
    for i, label in enumerate(composition):
        if pred(label):
            if start is None:
                start = i
        else:
            if start is not None:
                if best is None or (i - start) > (best[1] - best[0]):
                    best = (start, i)
                start = None
    if start is not None:
        i = len(composition)
        if best is None or (i - start) > (best[1] - best[0]):
            best = (start, i)
    if best is None:
        return None
    lo, hi = best
    return Region(
        start=lo,
        stop=hi,
        times_s=frontier.times_s[lo:hi],
        energies_j=frontier.energies_j[lo:hi],
    )


def _trailing_run(frontier: ParetoFrontier, composition, pred) -> Optional[Region]:
    """Maximal run of satisfying points at the frontier's relaxed end."""
    n = len(composition)
    i = n
    while i > 0 and pred(composition[i - 1]):
        i -= 1
    if i == n:
        return None
    return Region(
        start=i,
        stop=n,
        times_s=frontier.times_s[i:n],
        energies_j=frontier.energies_j[i:n],
    )
