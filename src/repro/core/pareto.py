"""Energy-deadline Pareto frontier (Section IV-B).

A configuration is Pareto-optimal when no other configuration is both at
least as fast and at least as energy-frugal.  Sorted by execution time,
the frontier is the staircase of strictly decreasing minimum energies;
``min_energy_for_deadline(d)`` answers the paper's operational question
-- the least energy that meets deadline ``d`` -- by looking up the last
frontier point with time <= d.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


def pareto_indices(times_s: Sequence[float], energies_j: Sequence[float]) -> np.ndarray:
    """Indices of the Pareto-optimal points, ordered by increasing time.

    O(n log n), fully vectorized: lexsort by (time, energy), take the
    running energy minimum with ``np.minimum.accumulate``, and keep each
    point that strictly improves on the minimum *before* it.  Duplicate
    times keep only the cheapest point; a point that ties the running
    minimum is dominated (weakly) and dropped, so frontier energies are
    strictly decreasing.
    """
    t = np.asarray(times_s, dtype=float)
    e = np.asarray(energies_j, dtype=float)
    if t.shape != e.shape or t.ndim != 1:
        raise ValueError("times and energies must be equal-length 1-D arrays")
    if t.size == 0:
        return np.empty(0, dtype=np.int64)
    order = np.lexsort((e, t))
    e_sorted = e[order]
    running_min = np.minimum.accumulate(e_sorted)
    keep = np.empty(order.size, dtype=bool)
    keep[0] = True
    keep[1:] = e_sorted[1:] < running_min[:-1]
    return order[keep]


@dataclass(frozen=True)
class ParetoFrontier:
    """The frontier as parallel arrays plus the original point indices."""

    times_s: np.ndarray
    energies_j: np.ndarray
    indices: np.ndarray  # into the arrays the frontier was built from

    def __post_init__(self) -> None:
        if not (len(self.times_s) == len(self.energies_j) == len(self.indices)):
            raise ValueError("frontier arrays must be parallel")
        if len(self.times_s) == 0:
            raise ValueError("a frontier needs at least one point")
        if np.any(np.diff(self.times_s) <= 0):
            raise ValueError("frontier times must be strictly increasing")
        if np.any(np.diff(self.energies_j) >= 0):
            raise ValueError("frontier energies must be strictly decreasing")

    @classmethod
    def from_points(
        cls,
        times_s: Sequence[float],
        energies_j: Sequence[float],
    ) -> "ParetoFrontier":
        """Build the frontier of a point cloud."""
        idx = pareto_indices(times_s, energies_j)
        t = np.asarray(times_s, dtype=float)[idx]
        e = np.asarray(energies_j, dtype=float)[idx]
        return cls(times_s=t, energies_j=e, indices=idx)

    def __len__(self) -> int:
        return int(self.times_s.size)

    @property
    def fastest_time_s(self) -> float:
        """The tightest deadline any configuration can meet."""
        return float(self.times_s[0])

    @property
    def min_energy_j(self) -> float:
        """The global energy minimum (met at the most relaxed deadline)."""
        return float(self.energies_j[-1])

    def min_energy_for_deadline(self, deadline_s: float) -> Optional[float]:
        """Least energy meeting ``deadline_s``, or ``None`` if unmeetable."""
        if deadline_s < self.times_s[0]:
            return None
        pos = int(np.searchsorted(self.times_s, deadline_s, side="right")) - 1
        return float(self.energies_j[pos])

    def config_index_for_deadline(self, deadline_s: float) -> Optional[int]:
        """Original-point index of the config chosen for ``deadline_s``."""
        if deadline_s < self.times_s[0]:
            return None
        pos = int(np.searchsorted(self.times_s, deadline_s, side="right")) - 1
        return int(self.indices[pos])

    def dominates(self, time_s: float, energy_j: float) -> bool:
        """Whether some frontier point weakly dominates ``(time, energy)``."""
        best = self.min_energy_for_deadline(time_s)
        return best is not None and best <= energy_j

    def savings_vs(self, other: "ParetoFrontier", deadline_s: float) -> Optional[float]:
        """Fractional energy saving of this frontier over ``other`` at a deadline.

        Returns ``None`` when either frontier cannot meet the deadline.
        Positive means this frontier is cheaper.
        """
        mine = self.min_energy_for_deadline(deadline_s)
        theirs = other.min_energy_for_deadline(deadline_s)
        if mine is None or theirs is None or theirs == 0.0:
            return None
        return (theirs - mine) / theirs
