"""Energy model: Equations 12-19 of the paper.

Per node of a group, over the job's execution time ``T``:

.. math::

    E_{idle} = T \\cdot P_{idle}                                   \\qquad (14)

    E_{core} = (P_{act} T_{act} + P_{stall} T_{stall}) c_{act}     \\qquad (15)

    E_{mem}  = P_{mem} \\cdot T_{mem}                               \\qquad (18)

    E_{I/O}  = P_{I/O} \\cdot T_{I/O}                               \\qquad (19)

and the group total is the per-node sum times ``n`` (Eq. 13); the job
total adds the groups (Eq. 12) at the caller (:mod:`repro.core.evaluate`).

Note a modeling subtlety the paper keeps: ``T`` in Eq. 14 is the *job*
time, so idle power is charged for the full duration on every node --
this is exactly the "energy wastage during the service time" that the
matching technique minimizes by making all nodes finish together.  When
groups are mismatched (the baseline schedulers in
:mod:`repro.scheduling`), the idle charge for the early-finishing group
extends to the late group's finish.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import NodeModelParams
from repro.core.timemodel import TimeBreakdown


@dataclass(frozen=True)
class EnergyBreakdown:
    """Predicted energy of one node group for one job."""

    #: Group total (all ``n`` nodes), joules (Eq. 13).
    energy_j: float
    #: Per-node components, joules.
    e_core_j: float
    e_mem_j: float
    e_io_j: float
    e_idle_j: float
    #: Number of nodes the per-node components were multiplied by.
    n_nodes: int

    @property
    def per_node_j(self) -> float:
        """Energy of one node of the group, joules."""
        return self.e_core_j + self.e_mem_j + self.e_io_j + self.e_idle_j


def predict_node_energy(
    params: NodeModelParams,
    times: TimeBreakdown,
    job_time_s: float = None,
) -> EnergyBreakdown:
    """Predict the energy of the node group described by ``times``.

    Parameters
    ----------
    params:
        Calibrated inputs for this node type and workload.
    times:
        The matching :class:`TimeBreakdown` from
        :func:`repro.core.timemodel.predict_node_time`.
    job_time_s:
        Completion time of the *whole job*.  Defaults to the group's own
        time (the matched case, Eq. 1).  Pass the job's max-over-groups
        time for unmatched schedules: the idle term then covers the wait.

    Returns
    -------
    EnergyBreakdown
        Component energies per node and the group total.
    """
    if job_time_s is None:
        job_time_s = times.time_s
    if job_time_s < times.time_s * (1.0 - 1e-9) - 1e-12:
        raise ValueError(
            f"job time {job_time_s} cannot precede this group's own "
            f"completion at {times.time_s}"
        )
    # Matching solvers equalize times to ~1 ulp; absorb the dust.
    job_time_s = max(job_time_s, times.time_s)

    p_act = params.p_act(times.f_ghz)
    p_stall = params.p_stall(times.f_ghz)

    # Eq. 15-17: active-core energy over work and stall portions.
    e_core = (p_act * times.t_act_s + p_stall * times.t_stall_s) * times.c_act
    # Eq. 18: memory charged for the memory response time.
    e_mem = params.p_mem_w * times.t_mem_s
    # Eq. 19: NIC charged for the I/O response time.
    e_io = params.p_io_w * times.t_io_s
    # Eq. 14: idle floor for the full job duration.
    e_idle = params.p_idle_w * job_time_s

    per_node = e_core + e_mem + e_io + e_idle
    return EnergyBreakdown(
        energy_j=per_node * times.n_nodes,
        e_core_j=e_core,
        e_mem_j=e_mem,
        e_io_j=e_io,
        e_idle_j=e_idle,
        n_nodes=times.n_nodes,
    )


def energy_per_unit(params: NodeModelParams, times: TimeBreakdown) -> float:
    """Joules per work unit at this setting (used by PPR and efficiency scans)."""
    if times.units <= 0:
        raise ValueError("energy per unit needs a positive work amount")
    return predict_node_energy(params, times).energy_j / times.units
