"""Trace-driven calibration: measure model inputs off the testbed.

This is the paper's Section II-D, executed against our simulated cluster:

* **workload characterization** -- run the representative subset ``Ps``
  (a batch of work units) at every (cores, frequency) setting, read the
  ``perf``-style counters, and derive ``IPs``, ``WPI``, ``SPI_core``,
  ``U_CPU``, and the per-core-count linear regression of ``SPI_mem``
  over frequency;
* **power characterization** -- point the meter at the node while the
  CPU-max and stall micro-benchmarks run, measure idle and NIC power, and
  take memory power from the specification (as the paper does, citing
  DDR datasheets).

Because the testbed is noisy, calibrated parameters differ slightly from
ground truth -- exactly the situation the paper's validation quantifies.
:func:`ground_truth_params` provides the noiseless ideal for analyses and
tests.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.params import NodeModelParams, SpiMemFit
from repro.hardware.specs import NodeSpec
from repro.simulator.batch import repeat_settings
from repro.simulator.counters import CounterSet
from repro.simulator.node import NodeSimulator
from repro.simulator.noise import CALIBRATED_NOISE, NoiseModel
from repro.simulator.power_meter import PowerMeter
from repro.util.rng import RngStream, SeedLike
from repro.util.stats import LinearFit, linear_fit
from repro.workloads.base import WorkloadSpec


def calibrate_node(
    node: NodeSpec,
    workload: WorkloadSpec,
    noise: NoiseModel = CALIBRATED_NOISE,
    seed: SeedLike = 0,
    baseline_units: float = 5_000.0,
    repetitions: int = 3,
    batched: bool = True,
) -> NodeModelParams:
    """Measure all model inputs for ``(node, workload)`` off the testbed.

    Parameters
    ----------
    node, workload:
        The pair to characterize; the workload must carry a profile for
        this node type.
    noise:
        Testbed noise model (pass :data:`~repro.simulator.noise.NOISELESS`
        for exact parameters).
    seed:
        Root of the calibration campaign's reproducible RNG tree.
    baseline_units:
        Work units per baseline run -- the size of the ``Ps`` batch.
    repetitions:
        Counter runs averaged per (cores, frequency) setting.
    batched:
        Run the whole counter campaign through
        :meth:`NodeSimulator.run_batch` (one NumPy pass) instead of one
        scalar ``run`` per repetition.  Both paths draw from the same
        seed tree and produce bit-identical parameters; the scalar path
        is kept as the readable reference.

    Returns
    -------
    NodeModelParams
        Measured inputs, with provenance ``source="calibrated"`` and a
        ``diagnostics`` dict recording WPI spread and worst SPI_mem r^2.
    """
    if repetitions < 1:
        raise ValueError("need at least one repetition")
    if baseline_units <= 0:
        raise ValueError("baseline batch must contain work")
    workload.profile_for(node.name)  # raise early on missing profile

    stream = RngStream(seed)
    sim = NodeSimulator(node, noise=noise)
    pstates = node.cores.pstates_ghz

    # ---- counter measurements over the (cores, frequency) grid ---------
    # Grid order is setting-major, repetition-minor; the batched path
    # must enumerate rows in exactly this order so run_index-derived
    # child streams stay aligned with the scalar reference.
    grid = [
        (cores, f)
        for cores in range(1, node.cores.count + 1)
        for f in pstates
    ]
    counters: Dict[tuple, CounterSet] = {}
    if batched:
        rows = repeat_settings(grid, repetitions)
        seeds = [stream.child("baseline", i) for i in range(len(rows))]
        batch = sim.run_batch(workload, baseline_units, rows, seeds)
        for s_index, setting in enumerate(grid):
            base = s_index * repetitions
            merged = batch.counters(base)
            for rep in range(1, repetitions):
                merged = merged + batch.counters(base + rep)
            counters[setting] = merged
    else:
        run_index = 0
        for setting in grid:
            cores, f = setting
            merged: Optional[CounterSet] = None
            for _ in range(repetitions):
                rng = stream.child("baseline", run_index).rng
                run_index += 1
                result = sim.run(workload, baseline_units, cores, f, seed=rng)
                merged = result.counters if merged is None else merged + result.counters
            counters[setting] = merged

    # IPs: instructions per unit, averaged over the whole grid.
    ips_samples = [
        c.instructions / (baseline_units * repetitions) for c in counters.values()
    ]
    ips = float(np.mean(ips_samples))

    # WPI / SPI_core: scale- and setting-constant (Section III-B);
    # average across the grid and record the spread as a diagnostic.
    wpi_samples = [c.wpi for c in counters.values()]
    spi_core_samples = [c.spi_core for c in counters.values()]
    wpi = float(np.mean(wpi_samples))
    spi_core = float(np.mean(spi_core_samples))

    # U_CPU from the observed concurrency.
    u_cpu = float(np.mean([c.cpu_utilization for c in counters.values()]))

    # SPI_mem ~ f, one regression per core count (Section III-C).
    fits: Dict[int, LinearFit] = {}
    for cores in range(1, node.cores.count + 1):
        xs = list(pstates)
        ys = [counters[(cores, f)].spi_mem for f in pstates]
        fits[cores] = _fit_or_zero(xs, ys)
    spimem = SpiMemFit(fits)

    # I/O demand from counters; bandwidth and arrival come from the
    # datasheet / load-generator configuration, as in the paper.
    io_samples = [
        c.io_bytes / (baseline_units * repetitions) for c in counters.values()
    ]
    io_bytes_per_unit = float(np.mean(io_samples))

    # ---- power characterization -----------------------------------------
    meter = PowerMeter(node, noise=noise, seed=stream.child("meter").rng)
    if batched:
        # Active + stall sweeps, three idle reads, io-active + idle.
        meter.prefetch_readings(2 * len(pstates) * node.cores.count + 3 + 2)
    p_act = {f: meter.characterize_core_active(f) for f in pstates}
    p_stall = {f: meter.characterize_core_stall(f) for f in pstates}
    p_idle = meter.characterize_idle()
    p_io = meter.characterize_io()
    p_mem = node.power.mem_active_w  # from specification, as the paper does

    diagnostics = {
        "wpi_rel_spread": float(np.std(wpi_samples) / wpi) if wpi else 0.0,
        "spi_core_rel_spread": (
            float(np.std(spi_core_samples) / spi_core) if spi_core else 0.0
        ),
        "spimem_worst_r2": spimem.worst_r2(),
        "baseline_units": float(baseline_units),
        "repetitions": float(repetitions),
    }

    return NodeModelParams(
        node_name=node.name,
        workload_name=workload.name,
        instructions_per_unit=ips,
        wpi=wpi,
        spi_core=spi_core,
        spimem=spimem,
        u_cpu=u_cpu,
        io_bytes_per_unit=io_bytes_per_unit,
        io_bandwidth_bytes_s=node.io.bandwidth_bytes_per_s,
        io_job_arrival_rate=workload.io_job_arrival_rate,
        p_core_act_w=p_act,
        p_core_stall_w=p_stall,
        p_mem_w=p_mem,
        p_io_w=p_io,
        p_idle_w=p_idle,
        source="calibrated",
        diagnostics=diagnostics,
    )


def ground_truth_params(node: NodeSpec, workload: WorkloadSpec) -> NodeModelParams:
    """Noiseless model inputs straight from the catalog and workload specs.

    Mirrors what calibration converges to as noise goes to zero and
    repetitions to infinity: ``SPI_mem`` regressions are fitted on the
    exact latency curve evaluated at the node's P-states (so the model's
    *structure* -- a linear fit per core count -- is identical to the
    calibrated case; only the measurement noise is absent).
    """
    profile = workload.profile_for(node.name)
    pstates = node.cores.pstates_ghz
    fmax = node.cores.fmax_ghz

    fits: Dict[int, LinearFit] = {}
    for cores in range(1, node.cores.count + 1):
        c_act = profile.cpu_utilization * cores
        xs = list(pstates)
        ys = [
            profile.spi_mem(node.memory.latency_ns(c_act, f / fmax), f)
            for f in pstates
        ]
        fits[cores] = _fit_or_zero(xs, ys)

    p_act = {f: node.power.core_active.watts(f) for f in pstates}
    p_stall = {f: node.power.core_stall.watts(f) for f in pstates}

    return NodeModelParams(
        node_name=node.name,
        workload_name=workload.name,
        instructions_per_unit=profile.instructions_per_unit,
        wpi=profile.wpi,
        spi_core=profile.spi_core,
        spimem=SpiMemFit(fits),
        u_cpu=profile.cpu_utilization,
        io_bytes_per_unit=workload.io_bytes_per_unit,
        io_bandwidth_bytes_s=node.io.bandwidth_bytes_per_s,
        io_job_arrival_rate=workload.io_job_arrival_rate,
        p_core_act_w=p_act,
        p_core_stall_w=p_stall,
        p_mem_w=node.power.mem_active_w,
        p_io_w=node.power.io_active_w,
        p_idle_w=node.power.idle_w,
        source="ground-truth",
    )


def params_for(
    nodes,
    workload: WorkloadSpec,
    calibrated: bool = False,
    noise: NoiseModel = CALIBRATED_NOISE,
    seed: SeedLike = 0,
    batched: bool = True,
) -> Dict[str, NodeModelParams]:
    """Model inputs for several node types at once, keyed by node name."""
    result: Dict[str, NodeModelParams] = {}
    for index, node in enumerate(nodes):
        if calibrated:
            result[node.name] = calibrate_node(
                node,
                workload,
                noise=noise,
                seed=RngStream(seed).child(node.name, index).rng,
                batched=batched,
            )
        else:
            result[node.name] = ground_truth_params(node, workload)
    return result


def measure_scale_constancy(
    node: NodeSpec,
    workload: WorkloadSpec,
    sizes,
    cores: Optional[int] = None,
    f_ghz: Optional[float] = None,
    noise: NoiseModel = CALIBRATED_NOISE,
    seed: SeedLike = 0,
) -> Dict[str, Dict[str, float]]:
    """Measure WPI and SPI_core across problem sizes (the Fig. 2 experiment).

    Returns ``{size_name: {"wpi": ..., "spi_core": ..., "units": ...}}``.
    The paper's hypothesis -- both ratios stay constant as the program
    scales from ``Ps`` to ``P`` -- holds when the returned values are
    flat across sizes (property-tested, and plotted by the Fig. 2 bench).
    """
    cores = cores if cores is not None else node.cores.count
    f_ghz = f_ghz if f_ghz is not None else node.cores.fmax_ghz
    sim = NodeSimulator(node, noise=noise)
    stream = RngStream(seed)
    out: Dict[str, Dict[str, float]] = {}
    for index, (size_name, units) in enumerate(dict(sizes).items()):
        rng = stream.child("scale", index).rng
        result = sim.run(workload, units, cores, f_ghz, seed=rng)
        out[size_name] = {
            "wpi": result.counters.wpi,
            "spi_core": result.counters.spi_core,
            "units": float(units),
        }
    return out


def _fit_or_zero(xs, ys) -> LinearFit:
    """Linear fit, degrading gracefully when the workload never stalls.

    A workload with zero LLC misses measures SPI_mem = 0 at every
    frequency; the regression is then the zero line with perfect r^2.
    """
    if all(y == 0.0 for y in ys):
        return LinearFit(slope=0.0, intercept=0.0, r2=1.0)
    if len(xs) < 2:
        # Single P-state: constant model.
        return LinearFit(slope=0.0, intercept=float(ys[0]), r2=1.0)
    return linear_fit(xs, ys)
