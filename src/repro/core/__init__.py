"""The paper's contribution: trace-driven model, mix-and-match, Pareto analysis.

Pipeline (Fig. 1 of the paper):

1. **Calibrate** (:mod:`repro.core.calibration`): run representative
   subsets and micro-benchmarks on the testbed (our simulator), read
   counters and the power meter, and fit the model inputs
   (:class:`~repro.core.params.NodeModelParams`).
2. **Predict** (:mod:`repro.core.timemodel`, :mod:`repro.core.energymodel`):
   closed-form execution time (Eqs. 1-11) and energy (Eqs. 12-19) for any
   (nodes, cores, frequency) setting.
3. **Match** (:mod:`repro.core.matching`): split the job between node
   types so all nodes finish simultaneously (Eq. 1).
4. **Enumerate** (:mod:`repro.core.configuration`,
   :mod:`repro.core.evaluate`): the full configuration space (36,380
   points for 10 ARM x 10 AMD), evaluated vectorized -- either
   materialized whole or streamed as memory-bounded blocks through the
   incremental reducers of :mod:`repro.core.streaming`.
5. **Select** (:mod:`repro.core.pareto`, :mod:`repro.core.regions`):
   the energy-deadline Pareto frontier, its heterogeneous "sweet region"
   and homogeneous "overlap region".
6. **Analyze** (:mod:`repro.core.power_budget`, :mod:`repro.core.analysis`):
   power-budget mixes, PPR, and the paper's Observations 1-4.
"""

from repro.core.params import NodeModelParams, SpiMemFit
from repro.core.timemodel import TimeBreakdown, predict_node_time
from repro.core.energymodel import EnergyBreakdown, predict_node_energy
from repro.core.matching import GroupSetting, MatchResult, match_split
from repro.core.configuration import ClusterConfig, enumerate_configs, count_configs
from repro.core.evaluate import ConfigPoint, ConfigSpaceResult, evaluate_config, evaluate_space
from repro.core.pareto import ParetoFrontier, pareto_indices
from repro.core.regions import RegionReport, analyze_regions
from repro.core.power_budget import (
    cluster_peak_power,
    substitution_ratio,
    budget_mixes,
    scaled_mixes,
    Mix,
)
from repro.core.calibration import calibrate_node, ground_truth_params
from repro.core.reduction import (
    ReductionReport,
    reduced_space,
    reduction_summary,
    undominated_settings,
)
from repro.core.multiway import (
    MultiMatchResult,
    MultiwayOutcome,
    evaluate_multiway,
    match_multiway,
)
from repro.core import analysis, planner, sensitivity, whatif
from repro.core.planner import SLO, Plan, plan_cluster, plan_candidates
from repro.core.streaming import (
    FrontierReducer,
    ReducedSpace,
    SpaceBlock,
    SpaceSpill,
    TopKReducer,
    iter_space_blocks,
    load_spilled_space,
    reduce_space_blocks,
    streaming_frontier,
)

__all__ = [
    "NodeModelParams",
    "SpiMemFit",
    "TimeBreakdown",
    "predict_node_time",
    "EnergyBreakdown",
    "predict_node_energy",
    "GroupSetting",
    "MatchResult",
    "match_split",
    "ClusterConfig",
    "enumerate_configs",
    "count_configs",
    "ConfigPoint",
    "ConfigSpaceResult",
    "evaluate_config",
    "evaluate_space",
    "ParetoFrontier",
    "pareto_indices",
    "RegionReport",
    "analyze_regions",
    "cluster_peak_power",
    "substitution_ratio",
    "budget_mixes",
    "scaled_mixes",
    "Mix",
    "calibrate_node",
    "ground_truth_params",
    "ReductionReport",
    "reduced_space",
    "reduction_summary",
    "undominated_settings",
    "MultiMatchResult",
    "MultiwayOutcome",
    "evaluate_multiway",
    "match_multiway",
    "analysis",
    "planner",
    "sensitivity",
    "whatif",
    "SLO",
    "Plan",
    "plan_cluster",
    "plan_candidates",
    "FrontierReducer",
    "ReducedSpace",
    "SpaceBlock",
    "SpaceSpill",
    "TopKReducer",
    "iter_space_blocks",
    "load_spilled_space",
    "reduce_space_blocks",
    "streaming_frontier",
]
