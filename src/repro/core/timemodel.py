"""Execution-time model: Equations 2-11 of the paper.

Given measured inputs (:class:`~repro.core.params.NodeModelParams`) and a
machine setting ``(n nodes, c cores, f GHz)``, predict how long one node
group takes to execute ``W_type`` work units:

.. math::

    T_{type} = \\max(T_{CPU}, T_{I/O})                    \\qquad (2)

    T_{CPU}  = \\max(T_{core}, T_{mem})                   \\qquad (3)

    I_{core} = \\frac{W \\cdot IPs}{n \\cdot c_{act}},\\;
    c_{act} = U_{CPU} \\cdot c                            \\qquad (5, 6)

    T_{core} = \\frac{I_{core}(WPI + SPI_{core})}{f}      \\qquad (7, 8)

    T_{mem}  = \\frac{I_{core}(WPI + SPI_{mem}(c, f))}{f} \\qquad (9, 10)

    T_{I/O}  = \\frac{\\max(T_{IOT}, 1/\\lambda_{I/O})}{n} \\qquad (11)

``T_IOT`` is the time to move the group's whole data through a single
node's NIC; dividing by ``n`` spreads it across the group.  All times are
seconds; the total is *linear in W* except for the constant arrival
floor, which is what makes the matching step solvable in closed form
(:mod:`repro.core.matching`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import NodeModelParams
from repro.util.units import ghz_to_hz


@dataclass(frozen=True)
class TimeBreakdown:
    """Predicted response times of one node group for one job."""

    #: Group execution time ``T_type`` (Eq. 2), seconds.
    time_s: float
    #: CPU response time per core (Eq. 3), seconds.
    t_cpu_s: float
    #: Core response time (Eq. 8), seconds.
    t_core_s: float
    #: Memory response time (Eq. 10), seconds.
    t_mem_s: float
    #: I/O response time (Eq. 11), seconds.
    t_io_s: float
    #: Time in work cycles (Eq. 16), seconds -- feeds the energy model.
    t_act_s: float
    #: Time in non-memory stalls (Eq. 17), seconds.
    t_stall_s: float
    #: Instructions per active core (Eq. 6).
    instructions_per_core: float
    #: Average active cores ``c_act``.
    c_act: float
    #: Echo of the evaluated setting.
    units: float
    n_nodes: int
    cores: int
    f_ghz: float

    @property
    def bottleneck(self) -> str:
        """Which response time dominates: ``"io"``, ``"memory"`` or ``"cpu"``."""
        if self.t_io_s >= self.t_cpu_s and self.t_io_s > 0:
            return "io"
        if self.t_mem_s > self.t_core_s:
            return "memory"
        return "cpu"


def predict_node_time(
    params: NodeModelParams,
    units: float,
    n_nodes: int,
    cores: int,
    f_ghz: float,
) -> TimeBreakdown:
    """Predict the execution time of ``units`` work on one node group.

    Parameters
    ----------
    params:
        Calibrated inputs for this node type and workload.
    units:
        ``W_type`` -- work units assigned to the whole group.
    n_nodes:
        Group size ``n`` (must be positive; a zero-node group has no
        execution time -- handle that at the matching layer).
    cores, f_ghz:
        Per-node machine setting.  ``f_ghz`` must be a characterized
        P-state.

    Returns
    -------
    TimeBreakdown
        All intermediate response times, for reporting and energy.
    """
    if units < 0:
        raise ValueError(f"units must be non-negative, got {units}")
    if n_nodes < 1:
        raise ValueError(f"group must have at least one node, got {n_nodes}")
    if cores < 1:
        raise ValueError(f"need at least one core, got {cores}")
    if f_ghz <= 0:
        raise ValueError(f"frequency must be positive, got {f_ghz}")
    if units == 0:
        # A zero-work group is instantaneous: nothing executes and no I/O
        # arrives for it, so even the arrival floor does not apply.
        return TimeBreakdown(
            time_s=0.0,
            t_cpu_s=0.0,
            t_core_s=0.0,
            t_mem_s=0.0,
            t_io_s=0.0,
            t_act_s=0.0,
            t_stall_s=0.0,
            instructions_per_core=0.0,
            c_act=params.u_cpu * cores,
            units=0.0,
            n_nodes=n_nodes,
            cores=cores,
            f_ghz=f_ghz,
        )

    c_act = params.u_cpu * cores
    f_hz = ghz_to_hz(f_ghz)

    # Eq. 5-6: instructions per active core.
    instructions = units * params.instructions_per_unit
    i_core = instructions / (n_nodes * c_act)

    # Eq. 7-8: core response (work + non-memory stalls).
    t_core = i_core * (params.wpi + params.spi_core) / f_hz

    # Eq. 9-10: memory response (work + memory stalls).
    spi_mem = params.spi_mem(cores, f_ghz)
    t_mem = i_core * (params.wpi + spi_mem) / f_hz

    # Eq. 3: out-of-order overlap.
    t_cpu = max(t_core, t_mem)

    # Eq. 11: I/O response; transfer and arrival both overlap compute.
    t_iot = units * params.io_bytes_per_unit / params.io_bandwidth_bytes_s
    arrival = 0.0 if params.io_job_arrival_rate is None else 1.0 / params.io_job_arrival_rate
    t_io = max(t_iot, arrival) / n_nodes

    # Eq. 2.
    time_s = max(t_cpu, t_io)

    # Eq. 16-17: split of core-busy time, used by the energy model.
    t_act = i_core * params.wpi / f_hz
    t_stall = i_core * params.spi_core / f_hz

    return TimeBreakdown(
        time_s=time_s,
        t_cpu_s=t_cpu,
        t_core_s=t_core,
        t_mem_s=t_mem,
        t_io_s=t_io,
        t_act_s=t_act,
        t_stall_s=t_stall,
        instructions_per_core=i_core,
        c_act=c_act,
        units=units,
        n_nodes=n_nodes,
        cores=cores,
        f_ghz=f_ghz,
    )


def group_time_coefficients(
    params: NodeModelParams,
    n_nodes: int,
    cores: int,
    f_ghz: float,
) -> tuple:
    """Linear form of the time model: ``T(W) = max(gamma * W, floor)``.

    Returns ``(gamma, floor)`` with ``gamma`` in seconds/unit and
    ``floor`` in seconds.  Exact -- every term of Eqs. 2-11 is either
    proportional to ``W`` or constant -- and the basis of both the
    closed-form matching and the vectorized space evaluation.
    """
    if n_nodes < 1:
        raise ValueError("group must have at least one node")
    c_act = params.u_cpu * cores
    f_hz = ghz_to_hz(f_ghz)
    spi_eff = max(params.spi_core, params.spi_mem(cores, f_ghz))
    cpu_slope = params.instructions_per_unit * (params.wpi + spi_eff) / (
        n_nodes * c_act * f_hz
    )
    io_slope = params.io_bytes_per_unit / (params.io_bandwidth_bytes_s * n_nodes)
    gamma = max(cpu_slope, io_slope)
    floor = 0.0
    if params.io_job_arrival_rate is not None:
        floor = (1.0 / params.io_job_arrival_rate) / n_nodes
    return gamma, floor
