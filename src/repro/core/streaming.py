"""Streaming configuration-space pipeline: memory-bounded block reducers.

The vectorized evaluator (:mod:`repro.core.evaluate`) materializes the
whole ``(G, N)`` column stack before anything downstream touches it.  A
three-type scenario is already 84,644 rows; four or five node types push
into hundreds of millions of rows that no single allocation can hold.
This module re-expresses the evaluate -> frontier -> regions ->
planner -> queueing path as a *stream of columnar blocks*:

* :class:`SpaceBlock` -- one contiguous chunk of the space, in the exact
  global row order of :func:`~repro.core.evaluate.evaluate_space_groups`
  (a thin wrapper around a :class:`~repro.core.evaluate.ConfigSpaceResult`
  slice, annotated with its global row offset);
* :func:`plan_block_tasks` -- the deterministic decomposition of a
  k-group space into blocks no larger than a row budget (each
  presence-mask block partitioned over its lead group's counts);
* :func:`iter_space_blocks` -- a serial block source; the parallel twin
  (:func:`repro.engine.executor.iter_space_groups_chunked`) overlaps
  evaluation with reduction on a process pool;
* :class:`FrontierReducer` -- an online Pareto frontier whose final
  point set, order, and original-row indices are **bit-identical** to
  the batch :func:`~repro.core.pareto.pareto_indices` (merging runs the
  same lexsort + ``np.minimum.accumulate`` over the sorted union of the
  running frontier and each block's local frontier);
* :class:`TopKReducer` -- bounded best-k candidate selection (the
  planner's and what-if's streaming picks);
* :func:`reduce_space_blocks` -- one pass driving the frontier,
  per-group homogeneous frontiers, and region-composition reducers (plus
  any extra consumers, e.g. the queueing layer's
  :class:`~repro.queueing.dispatcher.Figure10Reducer`) into a compact
  :class:`ReducedSpace` artifact;
* :class:`SpaceSpill` / :func:`load_spilled_space` -- optional
  memory-mapped ``.npy`` spill for when the full space must be retained
  for reporting without holding it in RAM.

No stage ever holds more than the configured ``memory_budget_mb`` of
rows: blocks are sized by :func:`max_rows_for_budget` from the row width
(including the vectorized evaluator's transient arrays), and every
reducer's state is frontier-sized, not space-sized.  Streaming changes
*where* results live, never what they are -- property tests pin every
reduced artifact bit-for-bit against the materialized path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core import evaluate as _evaluate
from repro.core.candidates import BlockTask, ExhaustiveSource
from repro.core.configuration import GroupSpec
from repro.core.evaluate import ConfigSpaceResult
from repro.core.params import NodeModelParams
from repro.core.pareto import ParetoFrontier, pareto_indices

#: Default peak-memory budget for streaming evaluation, megabytes.
DEFAULT_MEMORY_BUDGET_MB = 256.0


def block_row_bytes(num_groups: int) -> int:
    """Peak bytes one configuration row costs while its block is live.

    The output columns are ``4 G + 2`` float64/int64 values per row
    (``n``/``cores``/``f``/``units`` per group plus time and energy); the
    vectorized evaluator additionally holds roughly six transient arrays
    per present group (broadcast count/setting indices, gammas, floors,
    work splits, per-group energies) while a block is being computed.
    ``80 G + 32`` bytes per row covers both with headroom.
    """
    if num_groups < 1:
        raise ValueError("need at least one node-type group")
    return 8 * (10 * num_groups + 4)


def max_rows_for_budget(
    memory_budget_mb: float,
    num_groups: int,
    inflight_blocks: int = 1,
) -> int:
    """Largest block row count that keeps peak memory under the budget.

    ``inflight_blocks`` is how many blocks can be alive at once -- 1 for
    the serial source, ``window + 1`` for the parallel source, which
    holds completed-but-unconsumed blocks in its re-ordering window.
    """
    if memory_budget_mb <= 0:
        raise ValueError("memory budget must be positive")
    budget_bytes = memory_budget_mb * 2**20
    per_row = block_row_bytes(num_groups) * max(1, int(inflight_blocks))
    return max(1, int(budget_bytes // per_row))


def plan_block_tasks(
    group_specs: Sequence[GroupSpec],
    max_block_rows: int,
    min_chunks: int = 1,
) -> List[BlockTask]:
    """Decompose a k-group space into ordered blocks under a row budget.

    A thin wrapper around
    :meth:`repro.core.candidates.ExhaustiveSource.plan_blocks`, where
    the canonical decomposition now lives (it mirrors
    :func:`~repro.core.evaluate.evaluate_space_groups`'s row order
    exactly; see that method for the chunking rules).  Kept here because
    the streaming pipeline and executor plan through this name.
    """
    return ExhaustiveSource(group_specs).plan_blocks(
        max_block_rows=max_block_rows, min_chunks=min_chunks
    )


def evaluate_block_task(
    group_specs: Tuple[GroupSpec, ...],
    params: Mapping[str, NodeModelParams],
    units: float,
    task_counts: Tuple[Tuple[int, ...], ...],
) -> ConfigSpaceResult:
    """Evaluate one :class:`BlockTask` (top-level, so pools can pickle it)."""
    import dataclasses

    adjusted = tuple(
        dataclasses.replace(gs, counts=counts)
        for gs, counts in zip(group_specs, task_counts)
    )
    return _evaluate.evaluate_space_groups(adjusted, params, units)


@dataclass(frozen=True)
class SpaceBlock:
    """One streamed chunk of the configuration space.

    ``data`` holds the chunk's columns (a perfectly ordinary
    :class:`~repro.core.evaluate.ConfigSpaceResult`); ``start_row`` is
    the chunk's offset in the global row order, so
    ``start_row + i`` is row ``data[i]``'s index in the materialized
    space -- what keeps streamed frontier indices bit-identical to the
    batch ones.
    """

    index: int
    start_row: int
    data: ConfigSpaceResult

    @property
    def rows(self) -> int:
        return len(self.data)

    @property
    def stop_row(self) -> int:
        return self.start_row + self.rows

    @property
    def nbytes(self) -> int:
        return self.data.nbytes


def count_space_rows(group_specs: Sequence[GroupSpec]) -> int:
    """Exact row count of a k-group space without evaluating it."""
    total = 0
    for task in plan_block_tasks(tuple(group_specs), max_block_rows=2**62):
        total += task.rows
    return total


def iter_space_blocks(
    group_specs: Sequence[GroupSpec],
    params: Mapping[str, NodeModelParams],
    units: float,
    memory_budget_mb: Optional[float] = None,
    max_block_rows: Optional[int] = None,
) -> Iterator[SpaceBlock]:
    """Serial block source: evaluate the space chunk by chunk, in order.

    Yields :class:`SpaceBlock`s in the exact global row order of
    :func:`~repro.core.evaluate.evaluate_space_groups`; concatenating
    every block's columns reproduces the materialized space bit-for-bit.
    Block sizes come from ``max_block_rows`` or, when omitted, from
    :func:`max_rows_for_budget` applied to ``memory_budget_mb`` (the
    module default when both are omitted).
    """
    if units <= 0:
        raise ValueError("job must contain positive work")
    group_specs = tuple(group_specs)
    if not group_specs:
        raise ValueError("need at least one node-type group")
    if max_block_rows is None:
        budget = (
            DEFAULT_MEMORY_BUDGET_MB if memory_budget_mb is None
            else float(memory_budget_mb)
        )
        max_block_rows = max_rows_for_budget(budget, len(group_specs))
    tasks = plan_block_tasks(group_specs, max_block_rows)
    if not tasks:
        raise ValueError(
            "no configurations to evaluate: the count lists admit neither a "
            "heterogeneous nor a homogeneous block"
        )
    start = 0
    for index, task in enumerate(tasks):
        data = evaluate_block_task(group_specs, params, units, task.counts)
        yield SpaceBlock(index=index, start_row=start, data=data)
        start += len(data)


# ---------------------------------------------------------------------------
# Incremental reducers
# ---------------------------------------------------------------------------


class FrontierReducer:
    """Online energy-deadline Pareto frontier over streamed columns.

    Feed blocks of ``(times, energies)`` with their global row offsets;
    :meth:`finish` returns a :class:`~repro.core.pareto.ParetoFrontier`
    whose times, energies, *and original-point indices* are bit-identical
    to ``ParetoFrontier.from_points`` over the concatenated columns.

    The merge is exact, not approximate: each block is first reduced to
    its local frontier with :func:`~repro.core.pareto.pareto_indices`,
    then the union of (running frontier, local frontier) goes through the
    same lexsort + ``np.minimum.accumulate`` pass.  Because blocks arrive
    in global row order, running-frontier entries always precede
    same-valued block entries in the union array *and* carry smaller
    global indices, so the stable lexsort resolves duplicate
    ``(time, energy)`` points exactly as the batch path does (first
    occurrence wins).  State is frontier-sized, never space-sized.

    ``extra_names`` declares per-point payload columns (the queueing
    reducer's service times and node counts) that are selected and merged
    alongside the frontier.
    """

    def __init__(self, extra_names: Sequence[str] = ()):
        self._t = np.empty(0, dtype=float)
        self._e = np.empty(0, dtype=float)
        self._idx = np.empty(0, dtype=np.int64)
        self._extra: Dict[str, np.ndarray] = {
            name: np.empty(0) for name in extra_names
        }
        self._rows_seen = 0

    @property
    def rows_seen(self) -> int:
        """Rows consumed so far (the next implicit ``start_row``)."""
        return self._rows_seen

    def __len__(self) -> int:
        return int(self._t.size)

    def update(
        self,
        times_s: np.ndarray,
        energies_j: np.ndarray,
        start_row: Optional[int] = None,
        extra: Optional[Mapping[str, np.ndarray]] = None,
    ) -> None:
        """Fold one block of points into the running frontier."""
        times_s = np.asarray(times_s, dtype=float)
        energies_j = np.asarray(energies_j, dtype=float)
        if start_row is None:
            start_row = self._rows_seen
        if times_s.size == 0:
            return
        keep = pareto_indices(times_s, energies_j)
        cand_t = np.concatenate([self._t, times_s[keep]])
        cand_e = np.concatenate([self._e, energies_j[keep]])
        cand_idx = np.concatenate(
            [self._idx, keep.astype(np.int64) + int(start_row)]
        )
        sel = pareto_indices(cand_t, cand_e)
        self._t, self._e, self._idx = cand_t[sel], cand_e[sel], cand_idx[sel]
        for name in self._extra:
            if extra is None or name not in extra:
                raise ValueError(f"update is missing extra column {name!r}")
            vals = np.asarray(extra[name])
            cand = np.concatenate([self._extra[name], vals[keep]]) if (
                self._extra[name].size
            ) else vals[keep]
            self._extra[name] = cand[sel]
        self._rows_seen = int(start_row) + int(times_s.size)

    def merge(
        self, state: Mapping[str, Any], index_offset: int = 0
    ) -> None:
        """Fold another reducer's :meth:`state_dict` into this one.

        Bit-identical to having :meth:`update`-folded the other reducer's
        input blocks directly, provided this reducer's rows all precede
        the other's in the global row order (``index_offset`` shifts the
        other state's indices into that order; the whole-space reducer
        folds with offset 0 because workers already record global rows).
        The identity holds because :func:`~repro.core.pareto.pareto_indices`
        is idempotent -- a worker's local frontier *is* ``block[keep]``
        from the coordinator fold, so the union arrays match element for
        element and the stable lexsort resolves duplicates identically.
        Merging is associative for the same reason: any parenthesization
        reduces the same ordered union.
        """
        if set(state["extra"]) != set(self._extra):
            raise ValueError(
                f"merge extras {sorted(state['extra'])} do not match "
                f"this reducer's {sorted(self._extra)}"
            )
        other_t = np.asarray(state["t"], dtype=float)
        other_e = np.asarray(state["e"], dtype=float)
        other_idx = np.asarray(state["idx"], dtype=np.int64)
        if other_t.size == 0 and int(state["rows_seen"]) == 0:
            return
        cand_t = np.concatenate([self._t, other_t])
        cand_e = np.concatenate([self._e, other_e])
        cand_idx = np.concatenate(
            [self._idx, other_idx + int(index_offset)]
        )
        sel = pareto_indices(cand_t, cand_e)
        self._t, self._e, self._idx = cand_t[sel], cand_e[sel], cand_idx[sel]
        for name in self._extra:
            vals = np.asarray(state["extra"][name])
            cand = np.concatenate([self._extra[name], vals]) if (
                self._extra[name].size
            ) else vals
            self._extra[name] = cand[sel]
        self._rows_seen = int(index_offset) + int(state["rows_seen"])

    def extra(self, name: str) -> np.ndarray:
        """Payload column of the current frontier points, in frontier order."""
        return self._extra[name]

    def finish(self) -> Optional[ParetoFrontier]:
        """The final frontier, or ``None`` when no point was ever seen."""
        if self._t.size == 0:
            return None
        return ParetoFrontier(
            times_s=self._t, energies_j=self._e, indices=self._idx
        )

    # ---- checkpoint support --------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """A picklable snapshot; folding from it is bit-identical to never
        having paused (the state *is* the whole running frontier)."""
        return {
            "t": self._t.copy(),
            "e": self._e.copy(),
            "idx": self._idx.copy(),
            "extra": {name: col.copy() for name, col in self._extra.items()},
            "rows_seen": self._rows_seen,
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot (extras must match)."""
        if set(state["extra"]) != set(self._extra):
            raise ValueError(
                f"checkpoint extras {sorted(state['extra'])} do not match "
                f"this reducer's {sorted(self._extra)}"
            )
        self._t = np.asarray(state["t"], dtype=float).copy()
        self._e = np.asarray(state["e"], dtype=float).copy()
        self._idx = np.asarray(state["idx"], dtype=np.int64).copy()
        self._extra = {
            name: np.asarray(col).copy() for name, col in state["extra"].items()
        }
        self._rows_seen = int(state["rows_seen"])


class TopKReducer:
    """Keep the ``k`` lexicographically smallest (key, payload) pairs.

    Keys must be totally ordered tuples (callers append a global row
    index as the final component, making ties impossible); payloads are
    arbitrary objects (the planner streams :class:`~repro.core.planner.Plan`
    candidates through this).  State is ``O(k)``.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("top-k needs k >= 1")
        self.k = int(k)
        self._items: List[Tuple[Any, Any]] = []

    def __len__(self) -> int:
        return len(self._items)

    def update(self, items: Iterable[Tuple[Any, Any]]) -> None:
        """Fold a batch of (key, payload) candidates."""
        merged = list(self._items)
        merged.extend(items)
        merged.sort(key=lambda kv: kv[0])
        self._items = merged[: self.k]

    def merge(self, state: Mapping[str, Any]) -> None:
        """Fold another reducer's :meth:`state_dict` into this one.

        Keys are totally ordered (callers embed the global row index), so
        the merged top-k is independent of fold vs merge order --
        associativity for free.
        """
        if int(state["k"]) != self.k:
            raise ValueError(
                f"cannot merge a top-{state['k']} state into a "
                f"top-{self.k} reducer"
            )
        self.update(state["items"])

    def finish(self) -> List[Tuple[Any, Any]]:
        """The k best (key, payload) pairs, best first."""
        return list(self._items)

    def state_dict(self) -> Dict[str, Any]:
        """Checkpoint snapshot (see :func:`reduce_space_blocks`)."""
        return {"k": self.k, "items": list(self._items)}

    def load_state(self, state: Mapping[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot into this reducer."""
        if int(state["k"]) != self.k:
            raise ValueError(
                f"checkpoint holds a top-{state['k']} state, this reducer "
                f"keeps top-{self.k}"
            )
        self._items = list(state["items"])


def _solo_groups(n: np.ndarray) -> np.ndarray:
    """Per-row single present group index, or -1 for heterogeneous rows."""
    present = n > 0
    count = present.sum(axis=0)
    first = np.argmax(present, axis=0)
    return np.where(count == 1, first, -1).astype(np.int64)


@dataclass
class ReducedSpace:
    """The streamed pipeline's compact artifact: reductions, not rows.

    This is what the engine caches in streaming mode -- everything the
    frontier, regions, reporting, and queueing stages need, at
    frontier-size instead of space-size.  ``frontier.indices`` (and the
    per-group frontiers' indices into their homogeneous subsets) are
    bit-identical to the materialized path's.
    """

    nodes: Tuple[str, ...]
    units_total: float
    total_rows: int
    num_blocks: int
    #: Bytes the materialized column stack would occupy.
    full_nbytes: int
    #: Largest single block observed during the pass.
    peak_block_nbytes: int
    frontier: Optional[ParetoFrontier] = None
    #: Per-frontier-point composition labels ("hetero" / "only-a" / ...).
    composition: Optional[Tuple[str, ...]] = None
    #: ``(G, F)`` node counts of each frontier point.
    frontier_n: Optional[np.ndarray] = None
    group_frontiers: Optional[Tuple[Optional[ParetoFrontier], ...]] = None
    #: Figure 10 window series, when a queueing consumer ran in the pass.
    queueing: Optional[Dict[float, List[Any]]] = None

    @property
    def num_groups(self) -> int:
        return len(self.nodes)

    def __len__(self) -> int:
        return self.total_rows

    def summary(self) -> Dict[str, Any]:
        """Plain-data digest for reporting sinks."""
        out: Dict[str, Any] = {
            "nodes": list(self.nodes),
            "configurations": self.total_rows,
            "blocks": self.num_blocks,
            "full_nbytes": self.full_nbytes,
            "peak_block_nbytes": self.peak_block_nbytes,
        }
        if self.frontier is not None:
            out["frontier_points"] = len(self.frontier)
        return out


def composition_labels(solo: np.ndarray) -> Tuple[str, ...]:
    """Composition labels from per-point solo-group indices."""
    return tuple(
        "hetero" if g < 0 else f"only-{chr(ord('a') + int(g))}" for g in solo
    )


def _reducer_pass_state(
    blocks_done: int,
    nodes: Tuple[str, ...],
    units_total: float,
    counters: Tuple[int, int, int, int],
    group_offsets: Sequence[int],
    main: "FrontierReducer",
    per_group: Sequence["FrontierReducer"],
    consumers: Sequence[Any],
) -> Dict[str, Any]:
    """The full reducer-pass snapshot one checkpoint stores."""
    total_rows, num_blocks, full_nbytes, peak_block = counters
    return {
        "blocks_done": int(blocks_done),
        "completed_blocks": tuple(range(int(blocks_done))),
        "nodes": tuple(nodes),
        "units_total": float(units_total),
        "total_rows": int(total_rows),
        "num_blocks": int(num_blocks),
        "full_nbytes": int(full_nbytes),
        "peak_block_nbytes": int(peak_block),
        "group_offsets": list(group_offsets),
        "main": main.state_dict(),
        "groups": [r.state_dict() for r in per_group],
        "consumers": [c.state_dict() for c in consumers],
    }


def reduce_space_blocks(
    blocks: Iterable[SpaceBlock],
    group_frontiers: bool = True,
    composition: bool = True,
    consumers: Sequence[Any] = (),
    fold_hook: Optional[Any] = None,
    checkpoint_save: Optional[Any] = None,
    checkpoint_every: int = 8,
    initial: Optional[Mapping[str, Any]] = None,
) -> ReducedSpace:
    """One streaming pass: fold every block into the standard reducers.

    Drives the whole-space :class:`FrontierReducer` (with composition and
    node-count payloads for the regions stage), one masked reducer per
    node-type group (the homogeneous frontiers), and any extra
    ``consumers`` -- objects with an ``update(block)`` method, e.g. the
    queueing layer's :class:`~repro.queueing.dispatcher.Figure10Reducer`
    or a :class:`SpaceSpill` -- all in a single iteration, so evaluation
    work is never repeated per stage.

    Checkpoint/resume: when ``checkpoint_save`` is given, a snapshot of
    every reducer plus the count of folded blocks is handed to it every
    ``checkpoint_every`` blocks (and once more at the end); ``initial``
    restores such a snapshot, in which case ``blocks`` must yield exactly
    the plan's remaining blocks (indices ``blocks_done``, ``+1``, ...).
    Because blocks arrive in plan order and every reducer is
    deterministic, a resumed pass is bit-identical to an uninterrupted
    one.  ``fold_hook(block_index)`` runs in-process before each fold --
    the fault-injection point for simulated mid-stream aborts.
    """
    if checkpoint_every < 1:
        raise ValueError("checkpoint interval must be at least one block")
    if checkpoint_save is not None:
        opaque = [
            type(c).__name__ for c in consumers if not hasattr(c, "state_dict")
        ]
        if opaque:
            raise ValueError(
                f"cannot checkpoint consumers without state_dict/load_state: "
                f"{opaque}"
            )
    main_extras = ["solo"] if composition else []
    main: Optional[FrontierReducer] = None
    per_group: List[FrontierReducer] = []
    group_offsets: List[int] = []
    nodes: Tuple[str, ...] = ()
    units_total = 0.0
    total_rows = 0
    num_blocks = 0
    full_nbytes = 0
    peak_block = 0
    blocks_done = 0
    since_save = 0

    def _build_reducers(num_groups: int) -> None:
        nonlocal main, per_group, group_offsets
        extras = list(main_extras) + [f"n{g}" for g in range(num_groups)]
        main = FrontierReducer(extra_names=extras)
        if group_frontiers:
            per_group = [FrontierReducer() for _ in range(num_groups)]
            group_offsets = [0] * num_groups

    if initial is not None:
        nodes = tuple(initial["nodes"])
        units_total = float(initial["units_total"])
        total_rows = int(initial["total_rows"])
        num_blocks = int(initial["num_blocks"])
        full_nbytes = int(initial["full_nbytes"])
        peak_block = int(initial["peak_block_nbytes"])
        blocks_done = int(initial["blocks_done"])
        _build_reducers(len(nodes))
        main.load_state(initial["main"])
        saved_groups = initial["groups"]
        if group_frontiers:
            if len(saved_groups) != len(per_group):
                raise ValueError(
                    "checkpoint group-frontier count does not match this pass"
                )
            for reducer, state in zip(per_group, saved_groups):
                reducer.load_state(state)
            group_offsets = list(initial["group_offsets"])
        saved_consumers = initial["consumers"]
        if len(saved_consumers) != len(consumers):
            raise ValueError(
                f"checkpoint carries {len(saved_consumers)} consumer states "
                f"for {len(consumers)} consumers"
            )
        for consumer, state in zip(consumers, saved_consumers):
            consumer.load_state(state)

    for block in blocks:
        if block.index != blocks_done:
            raise ValueError(
                f"blocks must arrive in plan order: expected index "
                f"{blocks_done}, got {block.index}"
            )
        if fold_hook is not None:
            fold_hook(block.index)
        data = block.data
        if main is None:
            nodes = data.nodes
            units_total = data.units_total
            _build_reducers(data.num_groups)
        extra: Dict[str, np.ndarray] = {
            f"n{g}": data.n[g] for g in range(data.num_groups)
        }
        if composition:
            extra["solo"] = _solo_groups(data.n)
        main.update(
            data.times_s, data.energies_j, start_row=block.start_row,
            extra=extra,
        )
        if group_frontiers:
            for g, reducer in enumerate(per_group):
                mask = data.is_only(g)
                hit = int(np.count_nonzero(mask))
                if hit:
                    reducer.update(
                        data.times_s[mask],
                        data.energies_j[mask],
                        start_row=group_offsets[g],
                    )
                group_offsets[g] += hit
        for consumer in consumers:
            consumer.update(block)
        total_rows += block.rows
        num_blocks += 1
        full_nbytes += data.nbytes
        peak_block = max(peak_block, data.nbytes)
        blocks_done += 1
        since_save += 1
        if checkpoint_save is not None and since_save >= checkpoint_every:
            checkpoint_save(
                _reducer_pass_state(
                    blocks_done, nodes, units_total,
                    (total_rows, num_blocks, full_nbytes, peak_block),
                    group_offsets, main, per_group, consumers,
                )
            )
            since_save = 0

    if main is None:
        raise ValueError("no blocks to reduce: the space is empty")

    if checkpoint_save is not None and since_save > 0:
        checkpoint_save(
            _reducer_pass_state(
                blocks_done, nodes, units_total,
                (total_rows, num_blocks, full_nbytes, peak_block),
                group_offsets, main, per_group, consumers,
            )
        )

    frontier = main.finish()
    reduced = ReducedSpace(
        nodes=nodes,
        units_total=units_total,
        total_rows=total_rows,
        num_blocks=num_blocks,
        full_nbytes=full_nbytes,
        peak_block_nbytes=peak_block,
        frontier=frontier,
    )
    if frontier is not None:
        reduced.frontier_n = np.stack(
            [main.extra(f"n{g}") for g in range(len(nodes))]
        ).astype(np.int64)
        if composition:
            reduced.composition = composition_labels(main.extra("solo"))
    if group_frontiers:
        reduced.group_frontiers = tuple(r.finish() for r in per_group)
    return reduced


# ---------------------------------------------------------------------------
# Worker-side reduction
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BlockReduction:
    """One block's compact reducer states -- what crosses the wire when
    ``reduce_at="worker"``.

    A worker folds its block through fresh local reducers and ships this
    instead of the block's columns: the whole-space frontier state (with
    composition/node-count payloads, indexed by *global* rows), one
    optional state per node-type group's homogeneous frontier (indexed
    from 0 within the block's hits -- the coordinator shifts them by its
    running per-group offsets), the per-group hit counts needed to
    advance those offsets, and one state per extra consumer (the
    queueing layer's :class:`~repro.queueing.dispatcher.Figure10Reducer`).
    ``rows``/``nbytes`` carry the accounting the coordinator's
    :class:`ReducedSpace` counters need, since it never sees the columns.
    """

    index: int
    start_row: int
    rows: int
    nbytes: int
    nodes: Tuple[str, ...]
    units_total: float
    main: Dict[str, Any]
    groups: Optional[Tuple[Optional[Dict[str, Any]], ...]]
    group_hits: Optional[Tuple[int, ...]]
    consumers: Tuple[Dict[str, Any], ...] = ()

    @property
    def stop_row(self) -> int:
        return self.start_row + self.rows


def fold_block_reduction(
    block: SpaceBlock,
    composition: bool = True,
    group_frontiers: bool = True,
    queueing: Optional[Mapping[str, Any]] = None,
) -> BlockReduction:
    """Fold one block through fresh local reducers (the worker half).

    Runs exactly the per-block body of :func:`reduce_space_blocks` --
    same extras, same start rows, same masked per-group updates -- so the
    states it returns merge bit-identically into a coordinator pass.
    ``queueing``, when given, is the keyword mapping a
    :class:`~repro.queueing.dispatcher.Figure10Reducer` is built from.
    """
    data = block.data
    main_extras = ["solo"] if composition else []
    extras = main_extras + [f"n{g}" for g in range(data.num_groups)]
    main = FrontierReducer(extra_names=extras)
    extra: Dict[str, np.ndarray] = {
        f"n{g}": data.n[g] for g in range(data.num_groups)
    }
    if composition:
        extra["solo"] = _solo_groups(data.n)
    main.update(
        data.times_s, data.energies_j, start_row=block.start_row, extra=extra
    )
    groups: Optional[Tuple[Optional[Dict[str, Any]], ...]] = None
    group_hits: Optional[Tuple[int, ...]] = None
    if group_frontiers:
        states: List[Optional[Dict[str, Any]]] = []
        hits: List[int] = []
        for g in range(data.num_groups):
            mask = data.is_only(g)
            hit = int(np.count_nonzero(mask))
            if hit:
                reducer = FrontierReducer()
                reducer.update(
                    data.times_s[mask], data.energies_j[mask], start_row=0
                )
                states.append(reducer.state_dict())
            else:
                states.append(None)
            hits.append(hit)
        groups = tuple(states)
        group_hits = tuple(hits)
    consumer_states: List[Dict[str, Any]] = []
    if queueing is not None:
        from repro.queueing.dispatcher import Figure10Reducer

        f10 = Figure10Reducer(**dict(queueing))
        f10.update(block)
        consumer_states.append(f10.state_dict())
    return BlockReduction(
        index=block.index,
        start_row=block.start_row,
        rows=block.rows,
        nbytes=data.nbytes,
        nodes=data.nodes,
        units_total=data.units_total,
        main=main.state_dict(),
        groups=groups,
        group_hits=group_hits,
        consumers=tuple(consumer_states),
    )


def merge_block_reductions(
    reductions: Iterable[BlockReduction],
    group_frontiers: bool = True,
    composition: bool = True,
    consumers: Sequence[Any] = (),
    fold_hook: Optional[Any] = None,
    checkpoint_save: Optional[Any] = None,
    checkpoint_every: int = 8,
    initial: Optional[Mapping[str, Any]] = None,
) -> ReducedSpace:
    """Merge worker :class:`BlockReduction`\\ s in plan order (the
    coordinator half of ``reduce_at="worker"``).

    The structural twin of :func:`reduce_space_blocks`: same plan-order
    enforcement, same ``fold_hook`` fault-injection point before each
    merge, and checkpoint snapshots in the exact
    :func:`_reducer_pass_state` shape -- so checkpoints written by either
    mode resume under the other, and the resulting :class:`ReducedSpace`
    is bit-identical to the coordinator-side fold.  ``consumers`` here
    are coordinator-resident reducers with a ``merge(state)`` method
    matching, position for position, the states each reduction carries.
    """
    if checkpoint_every < 1:
        raise ValueError("checkpoint interval must be at least one block")
    if checkpoint_save is not None:
        opaque = [
            type(c).__name__ for c in consumers if not hasattr(c, "state_dict")
        ]
        if opaque:
            raise ValueError(
                f"cannot checkpoint consumers without state_dict/load_state: "
                f"{opaque}"
            )
    main_extras = ["solo"] if composition else []
    main: Optional[FrontierReducer] = None
    per_group: List[FrontierReducer] = []
    group_offsets: List[int] = []
    nodes: Tuple[str, ...] = ()
    units_total = 0.0
    total_rows = 0
    num_blocks = 0
    full_nbytes = 0
    peak_block = 0
    blocks_done = 0
    since_save = 0

    def _build_reducers(num_groups: int) -> None:
        nonlocal main, per_group, group_offsets
        extras = list(main_extras) + [f"n{g}" for g in range(num_groups)]
        main = FrontierReducer(extra_names=extras)
        if group_frontiers:
            per_group = [FrontierReducer() for _ in range(num_groups)]
            group_offsets = [0] * num_groups

    if initial is not None:
        nodes = tuple(initial["nodes"])
        units_total = float(initial["units_total"])
        total_rows = int(initial["total_rows"])
        num_blocks = int(initial["num_blocks"])
        full_nbytes = int(initial["full_nbytes"])
        peak_block = int(initial["peak_block_nbytes"])
        blocks_done = int(initial["blocks_done"])
        _build_reducers(len(nodes))
        main.load_state(initial["main"])
        saved_groups = initial["groups"]
        if group_frontiers:
            if len(saved_groups) != len(per_group):
                raise ValueError(
                    "checkpoint group-frontier count does not match this pass"
                )
            for reducer, state in zip(per_group, saved_groups):
                reducer.load_state(state)
            group_offsets = list(initial["group_offsets"])
        saved_consumers = initial["consumers"]
        if len(saved_consumers) != len(consumers):
            raise ValueError(
                f"checkpoint carries {len(saved_consumers)} consumer states "
                f"for {len(consumers)} consumers"
            )
        for consumer, state in zip(consumers, saved_consumers):
            consumer.load_state(state)

    for red in reductions:
        if red.index != blocks_done:
            raise ValueError(
                f"block reductions must arrive in plan order: expected "
                f"index {blocks_done}, got {red.index}"
            )
        if fold_hook is not None:
            fold_hook(red.index)
        if len(red.consumers) != len(consumers):
            raise ValueError(
                f"block reduction carries {len(red.consumers)} consumer "
                f"states for {len(consumers)} consumers"
            )
        if main is None:
            nodes = red.nodes
            units_total = red.units_total
            _build_reducers(len(nodes))
        main.merge(red.main)
        if group_frontiers:
            if red.groups is None or red.group_hits is None:
                raise ValueError(
                    "block reduction has no per-group frontier states"
                )
            for g, reducer in enumerate(per_group):
                state = red.groups[g]
                if state is not None:
                    reducer.merge(state, index_offset=group_offsets[g])
                group_offsets[g] += int(red.group_hits[g])
        for consumer, state in zip(consumers, red.consumers):
            consumer.merge(state)
        total_rows += red.rows
        num_blocks += 1
        full_nbytes += red.nbytes
        peak_block = max(peak_block, red.nbytes)
        blocks_done += 1
        since_save += 1
        if checkpoint_save is not None and since_save >= checkpoint_every:
            checkpoint_save(
                _reducer_pass_state(
                    blocks_done, nodes, units_total,
                    (total_rows, num_blocks, full_nbytes, peak_block),
                    group_offsets, main, per_group, consumers,
                )
            )
            since_save = 0

    if main is None:
        raise ValueError("no blocks to reduce: the space is empty")

    if checkpoint_save is not None and since_save > 0:
        checkpoint_save(
            _reducer_pass_state(
                blocks_done, nodes, units_total,
                (total_rows, num_blocks, full_nbytes, peak_block),
                group_offsets, main, per_group, consumers,
            )
        )

    frontier = main.finish()
    reduced = ReducedSpace(
        nodes=nodes,
        units_total=units_total,
        total_rows=total_rows,
        num_blocks=num_blocks,
        full_nbytes=full_nbytes,
        peak_block_nbytes=peak_block,
        frontier=frontier,
    )
    if frontier is not None:
        reduced.frontier_n = np.stack(
            [main.extra(f"n{g}") for g in range(len(nodes))]
        ).astype(np.int64)
        if composition:
            reduced.composition = composition_labels(main.extra("solo"))
    if group_frontiers:
        reduced.group_frontiers = tuple(r.finish() for r in per_group)
    return reduced


def streaming_frontier(
    group_specs: Sequence[GroupSpec],
    params: Mapping[str, NodeModelParams],
    units: float,
    memory_budget_mb: Optional[float] = None,
) -> ParetoFrontier:
    """The space's Pareto frontier without ever materializing the space.

    Bit-identical to ``ParetoFrontier.from_points`` over the full
    evaluation; peak memory is bounded by ``memory_budget_mb``.
    """
    reduced = reduce_space_blocks(
        iter_space_blocks(
            group_specs, params, units, memory_budget_mb=memory_budget_mb
        ),
        group_frontiers=False,
        composition=False,
    )
    assert reduced.frontier is not None  # non-empty space always has one
    return reduced.frontier


# ---------------------------------------------------------------------------
# Memory-mapped spill
# ---------------------------------------------------------------------------

_SPILL_COLUMNS = ("n", "cores", "f", "units", "times_s", "energies_j")


@dataclass
class SpaceSpill:
    """Spill streamed blocks to memory-mapped ``.npy`` column files.

    A consumer for :func:`reduce_space_blocks`: when the full space must
    be retained for reporting (the CLI's ``--csv`` cloud export), blocks
    are appended to on-disk columns instead of RAM; :meth:`finish`
    returns a :class:`~repro.core.evaluate.ConfigSpaceResult` backed by
    the memmaps, so downstream consumers work unchanged while resident
    memory stays block-sized.  ``total_rows`` must be the exact space
    size (:func:`count_space_rows`).
    """

    directory: Path
    nodes: Tuple[str, ...]
    units_total: float
    total_rows: int
    _cols: Dict[str, np.memmap] = field(default_factory=dict, repr=False)
    _written: int = 0

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.nodes = tuple(self.nodes)
        g, n = len(self.nodes), int(self.total_rows)
        shapes = {
            "n": ((g, n), np.int64),
            "cores": ((g, n), np.int64),
            "f": ((g, n), float),
            "units": ((g, n), float),
            "times_s": ((n,), float),
            "energies_j": ((n,), float),
        }
        for name in _SPILL_COLUMNS:
            shape, dtype = shapes[name]
            self._cols[name] = np.lib.format.open_memmap(
                self.directory / f"{name}.npy", mode="w+",
                dtype=dtype, shape=shape,
            )
        (self.directory / "meta.json").write_text(
            json.dumps(
                {
                    "nodes": list(self.nodes),
                    "units_total": self.units_total,
                    "total_rows": n,
                }
            )
        )

    def update(self, block: SpaceBlock) -> None:
        lo, hi = block.start_row, block.stop_row
        if hi > self.total_rows:
            raise ValueError(
                f"block rows {lo}:{hi} overflow the declared "
                f"{self.total_rows}-row spill"
            )
        data = block.data
        for name in ("n", "cores", "f", "units"):
            self._cols[name][:, lo:hi] = getattr(data, name)
        self._cols["times_s"][lo:hi] = data.times_s
        self._cols["energies_j"][lo:hi] = data.energies_j
        self._written += block.rows

    def finish(self) -> ConfigSpaceResult:
        if self._written != self.total_rows:
            raise ValueError(
                f"spill saw {self._written} rows of the declared "
                f"{self.total_rows}"
            )
        for col in self._cols.values():
            col.flush()
        return load_spilled_space(self.directory)


def load_spilled_space(directory) -> ConfigSpaceResult:
    """Re-open a spilled space as a memmap-backed ``ConfigSpaceResult``."""
    directory = Path(directory)
    meta = json.loads((directory / "meta.json").read_text())
    arrays = {
        name: np.load(directory / f"{name}.npy", mmap_mode="r")
        for name in _SPILL_COLUMNS
    }
    return ConfigSpaceResult(
        nodes=tuple(meta["nodes"]),
        n=arrays["n"],
        cores=arrays["cores"],
        f=arrays["f"],
        units=arrays["units"],
        times_s=arrays["times_s"],
        energies_j=arrays["energies_j"],
        units_total=float(meta["units_total"]),
    )
