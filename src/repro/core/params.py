"""Trace-driven model inputs for one (node type, workload) pair.

Table 2 of the paper splits notation into model-predicted values (``*``)
and measured inputs (``+``).  :class:`NodeModelParams` is the complete
set of ``+`` values: what a baseline characterization run plus the power
meter gives you.  Everything the model predicts derives from these.

Parameters are produced either by :func:`repro.core.calibration.calibrate_node`
(measured off the simulated testbed, with noise -- the paper's workflow)
or by :func:`repro.core.calibration.ground_truth_params` (directly from the
catalog and workload specs, noiseless -- convenient for deterministic
analyses; validated to agree with calibration within measurement noise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.util.stats import LinearFit


@dataclass(frozen=True)
class SpiMemFit:
    """``SPI_mem`` as a linear function of core frequency, per core count.

    The paper measures memory stall cycles per instruction at every
    (active cores, frequency) setting and regresses linearly over
    frequency for each core count (Section III-C, Fig. 3; r^2 >= 0.94).
    """

    fits: Mapping[int, LinearFit]

    def __post_init__(self) -> None:
        if not self.fits:
            raise ValueError("need at least one per-core-count fit")
        object.__setattr__(self, "fits", dict(self.fits))

    def spi_mem(self, cores: int, f_ghz: float) -> float:
        """Predicted memory stall cycles/instruction at ``(cores, f_ghz)``.

        Negative extrapolations are clamped to zero (a fitted intercept
        can dip slightly below zero at frequencies under the measured
        range).
        """
        fit = self._fit_for(cores)
        return max(0.0, float(fit.predict(f_ghz)))

    def worst_r2(self) -> float:
        """Smallest r^2 across core counts (the paper reports >= 0.94)."""
        return min(fit.r2 for fit in self.fits.values())

    def core_counts(self) -> Tuple[int, ...]:
        """Core counts the regression was measured at."""
        return tuple(sorted(self.fits))

    def _fit_for(self, cores: int) -> LinearFit:
        if cores in self.fits:
            return self.fits[cores]
        # Nearest measured core count; calibration measures every count,
        # so this only triggers for out-of-range requests.
        available = sorted(self.fits)
        nearest = min(available, key=lambda c: abs(c - cores))
        return self.fits[nearest]


@dataclass(frozen=True)
class NodeModelParams:
    """All measured (``+``) model inputs for one node type and workload.

    Attributes
    ----------
    node_name, workload_name:
        Identity of the characterized pair.
    instructions_per_unit:
        ``IPs`` -- machine instructions per work unit on this ISA.
    wpi, spi_core:
        Work / non-memory stall cycles per instruction (scale-constant,
        Section III-B).
    spimem:
        The per-core-count linear-in-frequency ``SPI_mem`` model.
    u_cpu:
        ``U_CPU`` -- average fraction of cores active during CPU response.
    io_bytes_per_unit:
        Bytes DMA-transferred per work unit.
    io_bandwidth_bytes_s:
        Single-node NIC bandwidth (from the datasheet, like the paper's
        Table 1 values).
    io_job_arrival_rate:
        ``lambda_I/O`` as jobs/second, or ``None`` when the generator
        saturates and arrival never binds.
    p_core_act_w, p_core_stall_w:
        Per-core incremental power at each P-state, watts
        (``P_CPU,act``/``P_CPU,stall`` measured via micro-benchmarks).
    p_mem_w, p_io_w, p_idle_w:
        Memory active power (from specification, as the paper does),
        NIC active power (measured) and whole-node idle power (measured).
    """

    node_name: str
    workload_name: str
    instructions_per_unit: float
    wpi: float
    spi_core: float
    spimem: SpiMemFit
    u_cpu: float
    io_bytes_per_unit: float
    io_bandwidth_bytes_s: float
    io_job_arrival_rate: Optional[float]
    p_core_act_w: Mapping[float, float]
    p_core_stall_w: Mapping[float, float]
    p_mem_w: float
    p_io_w: float
    p_idle_w: float
    #: Provenance note: "calibrated" or "ground-truth".
    source: str = "ground-truth"
    #: Diagnostics captured during calibration (e.g. WPI spread).
    diagnostics: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.instructions_per_unit <= 0:
            raise ValueError("IPs must be positive")
        if self.wpi <= 0 or self.spi_core < 0:
            raise ValueError("WPI must be positive and SPI_core non-negative")
        if not 0 < self.u_cpu <= 1:
            raise ValueError(f"U_CPU must be in (0, 1], got {self.u_cpu}")
        if self.io_bytes_per_unit < 0:
            raise ValueError("I/O bytes per unit must be non-negative")
        if self.io_bandwidth_bytes_s <= 0:
            raise ValueError("I/O bandwidth must be positive")
        if self.io_job_arrival_rate is not None and self.io_job_arrival_rate <= 0:
            raise ValueError("arrival rate must be positive or None")
        if not self.p_core_act_w:
            raise ValueError("need active-core power at every P-state")
        if set(self.p_core_act_w) != set(self.p_core_stall_w):
            raise ValueError("active and stall power must cover the same P-states")
        for table_name in ("p_core_act_w", "p_core_stall_w"):
            for f, w in getattr(self, table_name).items():
                if w < 0:
                    raise ValueError(f"{table_name}[{f}] is negative: {w}")
        if min(self.p_mem_w, self.p_io_w, self.p_idle_w) < 0:
            raise ValueError("component powers must be non-negative")
        object.__setattr__(self, "p_core_act_w", dict(self.p_core_act_w))
        object.__setattr__(self, "p_core_stall_w", dict(self.p_core_stall_w))

    # -- lookups ----------------------------------------------------------

    def pstates(self) -> Tuple[float, ...]:
        """P-states the power characterization covers, ascending."""
        return tuple(sorted(self.p_core_act_w))

    def p_act(self, f_ghz: float) -> float:
        """Per-core active power at P-state ``f_ghz``."""
        return self._power_lookup(self.p_core_act_w, f_ghz, "active")

    def p_stall(self, f_ghz: float) -> float:
        """Per-core stall power at P-state ``f_ghz``."""
        return self._power_lookup(self.p_core_stall_w, f_ghz, "stall")

    def spi_mem(self, cores: int, f_ghz: float) -> float:
        """Memory stall cycles per instruction at ``(cores, f_ghz)``."""
        return self.spimem.spi_mem(cores, f_ghz)

    def _power_lookup(
        self, table: Mapping[float, float], f_ghz: float, kind: str
    ) -> float:
        try:
            return table[f_ghz]
        except KeyError:
            raise KeyError(
                f"no {kind}-power characterization at {f_ghz} GHz for "
                f"{self.node_name}/{self.workload_name}; "
                f"measured P-states: {sorted(table)}"
            ) from None
