"""Mix-and-match: split one job so all node groups finish simultaneously.

The paper's central scheduling idea (Section I, Eq. 1): serve the job on
both node types *concurrently*, choosing the split ``W = W_ARM + W_AMD``
such that ``T_ARM = T_AMD``.  Finishing together eliminates the idle-wait
energy that a mismatched split burns.

Because the time model is exactly ``T(W) = max(gamma * W, floor)``
(:func:`repro.core.timemodel.group_time_coefficients`), the matched split
has a closed form whenever neither group's arrival floor binds:

.. math::

    W_a = W \\cdot \\frac{\\gamma_b}{\\gamma_a + \\gamma_b}

Floor-bound corners are handled explicitly, and a bisection fallback
(:func:`match_split_bisection`) provides an independent numerical check
used by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from scipy.optimize import brentq

from repro.core.params import NodeModelParams
from repro.core.timemodel import group_time_coefficients, predict_node_time


@dataclass(frozen=True)
class GroupSetting:
    """One side of a match: parameters plus the group's machine setting."""

    params: NodeModelParams
    n_nodes: int
    cores: int
    f_ghz: float

    def __post_init__(self) -> None:
        if self.n_nodes < 0:
            raise ValueError(f"group size must be non-negative, got {self.n_nodes}")

    def coefficients(self) -> tuple:
        """``(gamma, floor)`` of this group's ``T(W) = max(gamma W, floor)``."""
        if self.n_nodes == 0:
            raise ValueError("an empty group has no time coefficients")
        return group_time_coefficients(
            self.params, self.n_nodes, self.cores, self.f_ghz
        )

    def time(self, units: float) -> float:
        """Group completion time for ``units`` work."""
        if self.n_nodes == 0:
            if units > 0:
                raise ValueError("cannot run work on an empty group")
            return 0.0
        return predict_node_time(
            self.params, units, self.n_nodes, self.cores, self.f_ghz
        ).time_s


@dataclass(frozen=True)
class MatchResult:
    """A matched work split and the resulting common completion time."""

    units_a: float
    units_b: float
    time_s: float
    #: "closed-form", "floor-a", "floor-b", "degenerate-a", "degenerate-b",
    #: or "bisection".
    method: str

    def __post_init__(self) -> None:
        if self.units_a < 0 or self.units_b < 0:
            raise ValueError("matched splits cannot be negative")
        if self.time_s < 0:
            raise ValueError("completion time cannot be negative")

    @property
    def total_units(self) -> float:
        return self.units_a + self.units_b


def match_split(total_units: float, a: GroupSetting, b: GroupSetting) -> MatchResult:
    """Split ``total_units`` between groups ``a`` and ``b`` per Eq. 1.

    Handles four regimes:

    * one group empty -- everything goes to the other;
    * neither arrival floor binds -- exact closed form;
    * a floor binds -- the floored group is loaded up to (not beyond) its
      floor, since that work is "free" under the constant arrival bound;
    * pathological coefficient combinations fall through to bisection.
    """
    if total_units <= 0:
        raise ValueError(f"job must have positive work, got {total_units}")
    if a.n_nodes == 0 and b.n_nodes == 0:
        raise ValueError("cannot match a job onto two empty groups")
    if a.n_nodes == 0:
        return MatchResult(0.0, total_units, b.time(total_units), "degenerate-a")
    if b.n_nodes == 0:
        return MatchResult(total_units, 0.0, a.time(total_units), "degenerate-b")

    gamma_a, floor_a = a.coefficients()
    gamma_b, floor_b = b.coefficients()
    if gamma_a <= 0 and gamma_b <= 0:
        # Zero service demand per unit on both sides: any split finishes at
        # the floors; put everything on the lower-floor side (the other
        # group, running nothing, contributes no floor).
        if floor_a <= floor_b:
            return MatchResult(total_units, 0.0, floor_a, "floor-a")
        return MatchResult(0.0, total_units, floor_b, "floor-b")

    # Unfloored closed form.
    if gamma_a > 0 and gamma_b > 0:
        w_a = total_units * gamma_b / (gamma_a + gamma_b)
        t = w_a * gamma_a
        if t >= floor_a and t >= floor_b:
            return MatchResult(w_a, total_units - w_a, t, "closed-form")

    # A floor binds.  A group with zero work contributes no arrival floor
    # (nothing arrives for it), so if one group's floor strictly exceeds
    # the other group's everything-assigned time, the time-optimal split
    # excludes the floored group entirely.
    t_a_all = max(gamma_a * total_units, floor_a)
    t_b_all = max(gamma_b * total_units, floor_b)
    if floor_a > t_b_all:
        return MatchResult(0.0, total_units, t_b_all, "excluded-a")
    if floor_b > t_a_all:
        return MatchResult(total_units, 0.0, t_a_all, "excluded-b")

    # Mixed regime: a floor binds partially (or the floors tie).  Solve
    # by the canonical capacity formulation so every implementation --
    # scalar, vectorized, k-way -- picks the same split.
    return _capacity_match(total_units, gamma_a, floor_a, gamma_b, floor_b)


def match_split_bisection(
    total_units: float,
    a: GroupSetting,
    b: GroupSetting,
    tolerance: float = 1e-12,
) -> MatchResult:
    """Numerical matching via Brent's method on ``T_a(w) - T_b(W - w)``.

    Independent of the closed form; used as its cross-check in tests and
    as the ablation baseline for the "closed-form vs root-finding" bench.
    Floor-bound regimes (where the root can be non-unique) fall through
    to the canonical capacity solver, like :func:`match_split`.
    """
    if total_units <= 0:
        raise ValueError(f"job must have positive work, got {total_units}")
    if a.n_nodes == 0 or b.n_nodes == 0:
        return match_split(total_units, a, b)

    gamma_a, floor_a = a.coefficients()
    gamma_b, floor_b = b.coefficients()

    def t_a(w: float) -> float:
        return max(gamma_a * w, floor_a)

    def t_b(w: float) -> float:
        return max(gamma_b * w, floor_b)

    def g(w: float) -> float:
        return t_a(w) - t_b(total_units - w)

    g0, g1 = g(0.0), g(total_units)
    if g0 > 0.0:
        # a is floor-bound above b-with-everything: excluding a is fastest
        # (a zero-work group contributes no arrival floor).
        return MatchResult(0.0, total_units, t_b(total_units), "excluded-a")
    if g1 < 0.0:
        return MatchResult(total_units, 0.0, t_a(total_units), "excluded-b")
    if floor_a > 0.0 or floor_b > 0.0:
        # A floor can make the root non-unique; use the canonical solver.
        return _capacity_match(total_units, gamma_a, floor_a, gamma_b, floor_b)

    w_a = float(
        brentq(g, 0.0, total_units, xtol=tolerance * max(1.0, total_units))
    )
    return MatchResult(w_a, total_units - w_a, t_a(w_a), "bisection")


def _capacity_match(
    total_units: float,
    gamma_a: float,
    floor_a: float,
    gamma_b: float,
    floor_b: float,
    iterations: int = 200,
) -> MatchResult:
    """Canonical floor-aware matching via the capacity formulation.

    ``T* = min {T : cap_a(T) + cap_b(T) >= W}`` with
    ``cap_i(T) = T / gamma_i`` when ``T >= floor_i`` else 0; work is then
    assigned proportionally to capacity, which equalizes the groups'
    realized times.  This is the two-group specialization of
    :func:`repro.core.multiway.match_multiway` and resolves the tie
    interval that appears when both floors bind at the same deadline --
    every implementation (scalar, vectorized, k-way) uses the same rule.
    """

    def cap(t: float) -> float:
        total = 0.0
        if t >= floor_a:
            total += t / gamma_a
        if t >= floor_b:
            total += t / gamma_b
        return total

    hi = min(
        max(gamma_a * total_units, floor_a), max(gamma_b * total_units, floor_b)
    )
    lo = 0.0
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        if cap(mid) >= total_units:
            hi = mid
        else:
            lo = mid
    t_star = hi
    cap_a = t_star / gamma_a if t_star >= floor_a else 0.0
    cap_b = t_star / gamma_b if t_star >= floor_b else 0.0
    total_cap = cap_a + cap_b
    if total_cap <= 0:
        raise RuntimeError("no capacity at the matched deadline; solver bug")
    w_a = total_units * cap_a / total_cap
    w_b = total_units - w_a
    time = max(
        max(gamma_a * w_a, floor_a) if w_a > 0 else 0.0,
        max(gamma_b * w_b, floor_b) if w_b > 0 else 0.0,
    )
    return MatchResult(w_a, w_b, time, "capacity")


def imbalance_seconds(result: MatchResult, a: GroupSetting, b: GroupSetting) -> float:
    """Residual |T_a - T_b| of a split -- zero for a perfect match.

    Useful to quantify how much idle-wait a *baseline* splitter leaves on
    the table; for matched splits this is bounded by solver tolerance
    (or by a genuinely-binding arrival floor).
    """
    t_a = a.time(result.units_a) if a.n_nodes else 0.0
    t_b = b.time(result.units_b) if b.n_nodes else 0.0
    if a.n_nodes == 0 or b.n_nodes == 0:
        return 0.0
    return abs(t_a - t_b)
