"""Frozen pre-refactor two-type ``evaluate_space`` (reference only).

This module is a verbatim snapshot of the paired-scalar vectorized
evaluator as it stood before the group-table refactor.  It exists so the
refactored :func:`repro.core.evaluate.evaluate_space` can be pinned
bit-for-bit against the exact code it replaced -- by the property tests
in ``tests/property/test_group_match_properties.py`` and by
``benchmarks/record.py`` (the ``BENCH_PR3.json`` no-regression entry).

Do not import it from production code; it deliberately duplicates the
settings-grid and match math instead of sharing helpers, because its
whole value is being immune to future edits of the live path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.params import NodeModelParams
from repro.hardware.specs import NodeSpec
from repro.util.units import ghz_to_hz


@dataclass(frozen=True)
class _PairSettingGrid:
    cores: np.ndarray
    f_ghz: np.ndarray
    slope_node: np.ndarray
    k_joules_per_unit: np.ndarray
    io_slope_node: float
    floor_job_s: float
    p_idle_w: float
    p_io_w: float


@dataclass
class PairSpaceResult:
    """The pre-refactor flat-array layout, for equality pinning."""

    node_a: str
    node_b: str
    n_a: np.ndarray
    cores_a: np.ndarray
    f_a: np.ndarray
    n_b: np.ndarray
    cores_b: np.ndarray
    f_b: np.ndarray
    units_a: np.ndarray
    units_b: np.ndarray
    times_s: np.ndarray
    energies_j: np.ndarray
    units_total: float

    def __len__(self) -> int:
        return int(self.times_s.size)


def _setting_grid(
    spec: NodeSpec,
    params: NodeModelParams,
    settings: Optional[Sequence[Tuple[int, float]]] = None,
) -> _PairSettingGrid:
    if settings is None:
        settings = [
            (cores, f)
            for cores in range(1, spec.cores.count + 1)
            for f in spec.cores.pstates_ghz
        ]
    else:
        for cores, f in settings:
            spec.cores.validate_setting(cores, f)
        if not settings:
            raise ValueError(f"empty settings list for {spec.name}")
    cores_list: List[int] = []
    f_list: List[float] = []
    slope_list: List[float] = []
    k_list: List[float] = []
    ips = params.instructions_per_unit
    for cores, f in settings:
        c_act = params.u_cpu * cores
        f_hz = ghz_to_hz(f)
        spi_mem = params.spi_mem(cores, f)
        spi_eff = max(params.spi_core, spi_mem)
        cpu_slope = ips * (params.wpi + spi_eff) / (c_act * f_hz)
        io_slope = params.io_bytes_per_unit / params.io_bandwidth_bytes_s
        a_coeff = ips * params.wpi / (c_act * f_hz)
        s_coeff = ips * params.spi_core / (c_act * f_hz)
        m_coeff = ips * (params.wpi + spi_mem) / (c_act * f_hz)
        k = (
            c_act * (params.p_act(f) * a_coeff + params.p_stall(f) * s_coeff)
            + params.p_mem_w * m_coeff
        )
        cores_list.append(cores)
        f_list.append(f)
        slope_list.append(max(cpu_slope, io_slope))
        k_list.append(k)
    floor = 0.0
    if params.io_job_arrival_rate is not None:
        floor = 1.0 / params.io_job_arrival_rate
    return _PairSettingGrid(
        cores=np.asarray(cores_list, dtype=np.int64),
        f_ghz=np.asarray(f_list, dtype=float),
        slope_node=np.asarray(slope_list, dtype=float),
        k_joules_per_unit=np.asarray(k_list, dtype=float),
        io_slope_node=params.io_bytes_per_unit / params.io_bandwidth_bytes_s,
        floor_job_s=floor,
        p_idle_w=params.p_idle_w,
        p_io_w=params.p_io_w,
    )


def _vector_match(
    units: float,
    gamma_a: np.ndarray,
    floor_a: np.ndarray,
    gamma_b: np.ndarray,
    floor_b: np.ndarray,
    iterations: int = 80,
) -> Tuple[np.ndarray, np.ndarray]:
    w_cf = units * gamma_b / (gamma_a + gamma_b)
    t_cf = w_cf * gamma_a
    closed_ok = (t_cf >= floor_a) & (t_cf >= floor_b) & (gamma_a > 0) & (gamma_b > 0)

    t_a_all = np.maximum(gamma_a * units, floor_a)
    t_b_all = np.maximum(gamma_b * units, floor_b)
    excl_a = ~closed_ok & (floor_a > t_b_all)
    excl_b = ~closed_ok & ~excl_a & (floor_b > t_a_all)
    mixed = ~(closed_ok | excl_a | excl_b)

    w_a = np.where(closed_ok, w_cf, 0.0)
    time = np.where(closed_ok, t_cf, 0.0)
    time = np.where(excl_a, t_b_all, time)
    w_a = np.where(excl_b, units, w_a)
    time = np.where(excl_b, t_a_all, time)

    if np.any(mixed):
        ga = gamma_a[mixed]
        gb = gamma_b[mixed]
        fa = floor_a[mixed]
        fb = floor_b[mixed]
        lo = np.zeros(ga.shape)
        hi = np.minimum(np.maximum(ga * units, fa), np.maximum(gb * units, fb))
        for _ in range(iterations):
            mid = 0.5 * (lo + hi)
            cap = np.where(mid >= fa, mid / ga, 0.0) + np.where(
                mid >= fb, mid / gb, 0.0
            )
            feasible = cap >= units
            hi = np.where(feasible, mid, hi)
            lo = np.where(feasible, lo, mid)
        t_star = hi
        cap_a = np.where(t_star >= fa, t_star / ga, 0.0)
        cap_b = np.where(t_star >= fb, t_star / gb, 0.0)
        total_cap = cap_a + cap_b
        w_mixed = units * cap_a / total_cap
        t_mixed = np.maximum(
            np.where(w_mixed > 0, np.maximum(ga * w_mixed, fa), 0.0),
            np.where(
                units - w_mixed > 0,
                np.maximum(gb * (units - w_mixed), fb),
                0.0,
            ),
        )
        w_a[mixed] = w_mixed
        time[mixed] = t_mixed
    return w_a, time


def _group_energy(
    n: np.ndarray,
    w: np.ndarray,
    time: np.ndarray,
    k: np.ndarray,
    io_slope: float,
    floor_job: float,
    p_idle: float,
    p_io: float,
) -> np.ndarray:
    e_io = np.where(w > 0, p_io * np.maximum(w * io_slope, floor_job), 0.0)
    return n * p_idle * time + w * k + e_io


def _normalize_counts(counts: Optional[Sequence[int]], max_n: int) -> np.ndarray:
    if counts is None:
        return np.arange(0, max_n + 1, dtype=np.int64)
    arr = np.asarray(sorted(set(int(c) for c in counts)), dtype=np.int64)
    if arr.size == 0:
        raise ValueError("counts list cannot be empty")
    if np.any(arr < 0):
        raise ValueError(f"node counts must be non-negative, got {arr.tolist()}")
    return arr


def evaluate_space_pair(
    spec_a: NodeSpec,
    max_a: int,
    spec_b: NodeSpec,
    max_b: int,
    params: Mapping[str, NodeModelParams],
    units: float,
    counts_a: Optional[Sequence[int]] = None,
    counts_b: Optional[Sequence[int]] = None,
    settings_a: Optional[Sequence[Tuple[int, float]]] = None,
    settings_b: Optional[Sequence[Tuple[int, float]]] = None,
) -> PairSpaceResult:
    """The pre-refactor two-type space evaluation, verbatim."""
    if units <= 0:
        raise ValueError("job must contain positive work")
    if max_a < 0 or max_b < 0:
        raise ValueError("maximum node counts must be non-negative")
    if max_a == 0 and max_b == 0:
        raise ValueError("space is empty with zero nodes of both types")
    grid_a = _setting_grid(spec_a, params[spec_a.name], settings_a)
    grid_b = _setting_grid(spec_b, params[spec_b.name], settings_b)

    counts_a_arr = _normalize_counts(counts_a, max_a)
    counts_b_arr = _normalize_counts(counts_b, max_b)
    pos_a = counts_a_arr[counts_a_arr > 0]
    pos_b = counts_b_arr[counts_b_arr > 0]
    include_a_only = 0 in counts_b_arr and pos_a.size > 0
    include_b_only = 0 in counts_a_arr and pos_b.size > 0

    blocks: List[PairSpaceResult] = []

    if pos_a.size > 0 and pos_b.size > 0:
        na = pos_a[:, None, None, None]
        sa = np.arange(grid_a.cores.size)[None, :, None, None]
        nb = pos_b[None, None, :, None]
        sb = np.arange(grid_b.cores.size)[None, None, None, :]
        shape = (pos_a.size, grid_a.cores.size, pos_b.size, grid_b.cores.size)

        gamma_a = grid_a.slope_node[sa] / na
        gamma_b = grid_b.slope_node[sb] / nb
        floor_a = grid_a.floor_job_s / na
        floor_b = grid_b.floor_job_s / nb
        gamma_a, gamma_b, floor_a, floor_b = np.broadcast_arrays(
            gamma_a, gamma_b, floor_a, floor_b
        )
        w_a, time = _vector_match(
            units,
            gamma_a.reshape(-1).copy(),
            floor_a.reshape(-1).copy(),
            gamma_b.reshape(-1).copy(),
            floor_b.reshape(-1).copy(),
        )
        w_b = units - w_a
        na_flat = np.broadcast_to(na, shape).reshape(-1)
        nb_flat = np.broadcast_to(nb, shape).reshape(-1)
        sa_flat = np.broadcast_to(sa, shape).reshape(-1)
        sb_flat = np.broadcast_to(sb, shape).reshape(-1)
        energy = _group_energy(
            na_flat,
            w_a,
            time,
            grid_a.k_joules_per_unit[sa_flat],
            grid_a.io_slope_node,
            grid_a.floor_job_s,
            grid_a.p_idle_w,
            grid_a.p_io_w,
        ) + _group_energy(
            nb_flat,
            w_b,
            time,
            grid_b.k_joules_per_unit[sb_flat],
            grid_b.io_slope_node,
            grid_b.floor_job_s,
            grid_b.p_idle_w,
            grid_b.p_io_w,
        )
        blocks.append(
            PairSpaceResult(
                node_a=spec_a.name,
                node_b=spec_b.name,
                n_a=na_flat,
                cores_a=grid_a.cores[sa_flat],
                f_a=grid_a.f_ghz[sa_flat],
                n_b=nb_flat,
                cores_b=grid_b.cores[sb_flat],
                f_b=grid_b.f_ghz[sb_flat],
                units_a=w_a,
                units_b=w_b,
                times_s=time,
                energies_j=energy,
                units_total=units,
            )
        )

    for which, spec, grid, counts, include in (
        ("a", spec_a, grid_a, pos_a, include_a_only),
        ("b", spec_b, grid_b, pos_b, include_b_only),
    ):
        if not include:
            continue
        n = np.repeat(counts, grid.cores.size)
        s = np.tile(np.arange(grid.cores.size), counts.size)
        gamma = grid.slope_node[s] / n
        floor = grid.floor_job_s / n
        time = np.maximum(gamma * units, floor)
        w = np.full(n.shape, float(units))
        energy = _group_energy(
            n,
            w,
            time,
            grid.k_joules_per_unit[s],
            grid.io_slope_node,
            grid.floor_job_s,
            grid.p_idle_w,
            grid.p_io_w,
        )
        zeros_i = np.zeros(n.shape, dtype=np.int64)
        if which == "a":
            blocks.append(
                PairSpaceResult(
                    node_a=spec_a.name,
                    node_b=spec_b.name,
                    n_a=n,
                    cores_a=grid.cores[s],
                    f_a=grid.f_ghz[s],
                    n_b=zeros_i,
                    cores_b=np.full(n.shape, spec_b.cores.count, dtype=np.int64),
                    f_b=np.full(n.shape, spec_b.cores.fmax_ghz),
                    units_a=w,
                    units_b=np.zeros(n.shape),
                    times_s=time,
                    energies_j=energy,
                    units_total=units,
                )
            )
        else:
            blocks.append(
                PairSpaceResult(
                    node_a=spec_a.name,
                    node_b=spec_b.name,
                    n_a=zeros_i,
                    cores_a=np.full(n.shape, spec_a.cores.count, dtype=np.int64),
                    f_a=np.full(n.shape, spec_a.cores.fmax_ghz),
                    n_b=n,
                    cores_b=grid.cores[s],
                    f_b=grid.f_ghz[s],
                    units_a=np.zeros(n.shape),
                    units_b=w,
                    times_s=time,
                    energies_j=energy,
                    units_total=units,
                )
            )

    if not blocks:
        raise ValueError(
            "no configurations to evaluate: the count lists admit neither a "
            "heterogeneous nor a homogeneous block"
        )
    if len(blocks) == 1:
        return blocks[0]
    first = blocks[0]
    return PairSpaceResult(
        node_a=first.node_a,
        node_b=first.node_b,
        n_a=np.concatenate([b.n_a for b in blocks]),
        cores_a=np.concatenate([b.cores_a for b in blocks]),
        f_a=np.concatenate([b.f_a for b in blocks]),
        n_b=np.concatenate([b.n_b for b in blocks]),
        cores_b=np.concatenate([b.cores_b for b in blocks]),
        f_b=np.concatenate([b.f_b for b in blocks]),
        units_a=np.concatenate([b.units_a for b in blocks]),
        units_b=np.concatenate([b.units_b for b in blocks]),
        times_s=np.concatenate([b.times_s for b in blocks]),
        energies_j=np.concatenate([b.energies_j for b in blocks]),
        units_total=first.units_total,
    )
