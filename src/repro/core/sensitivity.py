"""Parameter sensitivity of the Pareto analysis.

A trace-driven model is only as good as its measured inputs.  This
module quantifies how the analysis outputs respond to input error:
perturb one calibrated parameter at a time by a relative amount and
report the elasticity of

* the frontier's minimum energy (the relaxed-deadline answer), and
* the minimum energy at a mid-frontier deadline (the SLO answer)

with respect to that parameter.  Elasticities near 1 mean "a 5%
measurement error moves the answer 5%"; near 0 means the parameter
barely matters for that workload (e.g. ``SPI_mem`` for a compute-bound
program), telling a practitioner where to spend measurement effort.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.evaluate import evaluate_space
from repro.core.params import NodeModelParams, SpiMemFit
from repro.core.pareto import ParetoFrontier
from repro.hardware.specs import NodeSpec
from repro.util.stats import LinearFit

#: Scalar parameters that can be perturbed multiplicatively.
PERTURBABLE: Tuple[str, ...] = (
    "instructions_per_unit",
    "wpi",
    "spi_core",
    "u_cpu",
    "io_bytes_per_unit",
    "io_bandwidth_bytes_s",
    "p_mem_w",
    "p_io_w",
    "p_idle_w",
    "spimem",  # scales every fit's slope and intercept
    "p_core_act_w",  # scales the whole active-power table
    "p_core_stall_w",
)


def perturb(params: NodeModelParams, field: str, factor: float) -> NodeModelParams:
    """A copy of ``params`` with one input scaled by ``factor``.

    ``u_cpu`` is clamped into (0, 1]; power tables and the SPI_mem fit
    are scaled element-wise.
    """
    if field not in PERTURBABLE:
        raise ValueError(
            f"unknown perturbable field {field!r}; options: {PERTURBABLE}"
        )
    if factor <= 0:
        raise ValueError("perturbation factor must be positive")
    if field == "spimem":
        fits = {
            c: LinearFit(
                slope=f.slope * factor, intercept=f.intercept * factor, r2=f.r2
            )
            for c, f in params.spimem.fits.items()
        }
        return dataclasses.replace(params, spimem=SpiMemFit(fits))
    if field in ("p_core_act_w", "p_core_stall_w"):
        table = {f: w * factor for f, w in getattr(params, field).items()}
        return dataclasses.replace(params, **{field: table})
    if field == "u_cpu":
        return dataclasses.replace(
            params, u_cpu=min(1.0, max(1e-6, params.u_cpu * factor))
        )
    return dataclasses.replace(params, **{field: getattr(params, field) * factor})


@dataclass(frozen=True)
class SensitivityRow:
    """Elasticity of the analysis outputs to one parameter of one node."""

    node_name: str
    field: str
    #: d(min energy)/min energy per d(param)/param, central difference.
    min_energy_elasticity: float
    #: Same for the energy at the probe deadline (None if infeasible).
    deadline_energy_elasticity: Optional[float]
    #: Same for the fastest achievable deadline.
    fastest_time_elasticity: float


def _outputs(
    spec_a: NodeSpec,
    max_a: int,
    spec_b: NodeSpec,
    max_b: int,
    params: Mapping[str, NodeModelParams],
    units: float,
    probe_deadline_s: Optional[float],
) -> Tuple[float, Optional[float], float]:
    space = evaluate_space(spec_a, max_a, spec_b, max_b, params, units)
    frontier = ParetoFrontier.from_points(space.times_s, space.energies_j)
    at_deadline = (
        frontier.min_energy_for_deadline(probe_deadline_s)
        if probe_deadline_s is not None
        else None
    )
    return frontier.min_energy_j, at_deadline, frontier.fastest_time_s


def sensitivity_table(
    spec_a: NodeSpec,
    max_a: int,
    spec_b: NodeSpec,
    max_b: int,
    params: Mapping[str, NodeModelParams],
    units: float,
    delta: float = 0.05,
    fields: Sequence[str] = PERTURBABLE,
    probe_deadline_s: Optional[float] = None,
) -> List[SensitivityRow]:
    """Central-difference elasticities for every (node, field) pair.

    ``probe_deadline_s`` defaults to the midpoint of the baseline
    frontier's deadline range.
    """
    if not 0 < delta < 0.5:
        raise ValueError("delta must be a small positive fraction")
    base_space = evaluate_space(spec_a, max_a, spec_b, max_b, params, units)
    base_frontier = ParetoFrontier.from_points(
        base_space.times_s, base_space.energies_j
    )
    if probe_deadline_s is None:
        probe_deadline_s = float(
            np.sqrt(base_frontier.fastest_time_s * base_frontier.times_s[-1])
        )

    rows: List[SensitivityRow] = []
    for node_name in sorted(params):
        for field in fields:
            outputs = {}
            for sign, factor in (("-", 1.0 - delta), ("+", 1.0 + delta)):
                perturbed: Dict[str, NodeModelParams] = dict(params)
                perturbed[node_name] = perturb(params[node_name], field, factor)
                outputs[sign] = _outputs(
                    spec_a,
                    max_a,
                    spec_b,
                    max_b,
                    perturbed,
                    units,
                    probe_deadline_s,
                )

            def elasticity(lo, hi) -> Optional[float]:
                if lo is None or hi is None or lo <= 0:
                    return None
                return float((hi - lo) / ((hi + lo) / 2) / (2 * delta))

            rows.append(
                SensitivityRow(
                    node_name=node_name,
                    field=field,
                    min_energy_elasticity=elasticity(
                        outputs["-"][0], outputs["+"][0]
                    ),
                    deadline_energy_elasticity=elasticity(
                        outputs["-"][1], outputs["+"][1]
                    ),
                    fastest_time_elasticity=elasticity(
                        outputs["-"][2], outputs["+"][2]
                    ),
                )
            )
    return rows


def most_influential(
    rows: Sequence[SensitivityRow], top: int = 5
) -> List[SensitivityRow]:
    """The ``top`` rows by absolute min-energy elasticity."""
    if top < 1:
        raise ValueError("need at least one row")
    return sorted(
        rows, key=lambda r: abs(r.min_energy_elasticity), reverse=True
    )[:top]
