"""Peak-power budgets and the ARM:AMD substitution ratio (Section IV-C/D).

Datacenters cap peak draw.  The paper asks: within a fixed budget, how
many high-performance nodes should be swapped for low-power ones?  Its
accounting (footnote 5): an AMD node peaks at 60 W and an ARM node at
5 W, so naively 12 ARM replace one AMD -- but the ARM side needs a 20 W
Ethernet switch, so the paper conservatively charges one switch's worth
per replaced AMD node, yielding the **8:1 substitution ratio** used by
Figures 6-9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.hardware.specs import NodeSpec, SwitchSpec


@dataclass(frozen=True)
class Mix:
    """A (low-power count, high-performance count) cluster composition."""

    n_low: int
    n_high: int

    def __post_init__(self) -> None:
        if self.n_low < 0 or self.n_high < 0:
            raise ValueError("node counts must be non-negative")
        if self.n_low == 0 and self.n_high == 0:
            raise ValueError("a mix needs at least one node")

    def label(self, low_name: str = "ARM", high_name: str = "AMD") -> str:
        """The paper's legend style: ``ARM 16:AMD 14``."""
        return f"{low_name} {self.n_low}:{high_name} {self.n_high}"

    def scaled(self, factor: int) -> "Mix":
        """This mix multiplied by an integer factor (Figs. 8-9)."""
        if factor < 1:
            raise ValueError("scale factor must be >= 1")
        return Mix(self.n_low * factor, self.n_high * factor)


def cluster_peak_power(
    low: NodeSpec,
    n_low: int,
    high: NodeSpec,
    n_high: int,
    switch: Optional[SwitchSpec] = None,
) -> float:
    """Peak cluster draw: node peaks plus switch power for the low-power side.

    The paper charges switch power against the ARM group only (the AMD
    nodes connect to existing datacenter infrastructure).
    """
    if n_low < 0 or n_high < 0:
        raise ValueError("node counts must be non-negative")
    power = n_low * low.peak_power_w + n_high * high.peak_power_w
    if switch is not None:
        power += switch.power_for(n_low)
    return power


def substitution_ratio(
    low: NodeSpec,
    high: NodeSpec,
    switch: Optional[SwitchSpec] = None,
) -> int:
    """Low-power nodes that replace one high-performance node, switch included.

    ``floor((P_peak_high - P_switch) / P_peak_low)``: each replaced
    high-performance node's budget must fund its share of low-power nodes
    *and* one switch allocation -- the paper's conservative accounting
    that turns 12:1 into 8:1.
    """
    switch_w = switch.power_w if switch is not None else 0.0
    available = high.peak_power_w - switch_w
    if available <= 0:
        raise ValueError(
            f"switch power {switch_w} W exceeds the high-performance node's "
            f"peak {high.peak_power_w} W; no substitution is possible"
        )
    ratio = int(available // low.peak_power_w)
    if ratio < 1:
        raise ValueError(
            "one high-performance node's budget cannot fund even a single "
            "low-power node"
        )
    return ratio


def budget_mixes(
    low: NodeSpec,
    high: NodeSpec,
    budget_w: float,
    switch: Optional[SwitchSpec] = None,
    replacements: Optional[Sequence[int]] = None,
    ratio: Optional[int] = None,
) -> List[Mix]:
    """Mixes obtained by replacing high-performance nodes within a budget.

    The baseline cluster is the largest all-high configuration fitting
    ``budget_w``; each replacement step converts one high node into
    ``ratio`` low nodes.  With the paper's 1 kW budget and 8:1 ratio the
    default replacement schedule reproduces Figure 6/7's legend:
    ARM 0:AMD 16, 16:14, 32:12, 48:10, 88:5, 112:2, 128:0.

    Parameters
    ----------
    replacements:
        How many high nodes to replace at each step; defaults to the
        paper's {0, 2, 4, 6, 11, 14, all}.
    ratio:
        Low-per-high substitution ratio; computed from the specs and
        switch when omitted.

    Raises
    ------
    ValueError
        If the budget cannot fit even one high-performance node, or a
        produced mix exceeds the budget (a sign of an inconsistent
        custom ratio).
    """
    if budget_w <= 0:
        raise ValueError("power budget must be positive")
    if ratio is None:
        ratio = substitution_ratio(low, high, switch)
    base_high = int(budget_w // high.peak_power_w)
    if base_high < 1:
        raise ValueError(
            f"budget {budget_w} W cannot fit one {high.name} node "
            f"({high.peak_power_w:.0f} W peak)"
        )
    if replacements is None:
        replacements = [0, 2, 4, 6, base_high - 5, base_high - 2, base_high]
    mixes: List[Mix] = []
    for r in replacements:
        if not 0 <= r <= base_high:
            raise ValueError(
                f"cannot replace {r} of {base_high} high-performance nodes"
            )
        mix = Mix(n_low=ratio * r, n_high=base_high - r)
        peak = cluster_peak_power(low, mix.n_low, high, mix.n_high, switch)
        if peak > budget_w + 1e-9:
            raise ValueError(
                f"mix {mix.label()} peaks at {peak:.1f} W, over the "
                f"{budget_w:.1f} W budget -- substitution ratio too optimistic"
            )
        mixes.append(mix)
    return mixes


def scaled_mixes(
    base: Mix = Mix(8, 1),
    factors: Sequence[int] = (1, 2, 4, 8, 16),
) -> List[Mix]:
    """The cluster-size scaling series of Figures 8-9.

    Multiplies a base mix (default ARM 8 : AMD 1, the substitution-ratio
    unit cell) by each factor, holding the ratio constant.
    """
    if not factors:
        raise ValueError("need at least one scale factor")
    return [base.scaled(k) for k in factors]


def max_nodes_within_budget(
    node: NodeSpec,
    budget_w: float,
    switch: Optional[SwitchSpec] = None,
) -> int:
    """Largest homogeneous cluster of ``node`` fitting the budget.

    Accounts for switch power growing stepwise with node count (each
    ``switch.ports`` nodes need another switch).
    """
    if budget_w <= 0:
        raise ValueError("power budget must be positive")
    count = 0
    while True:
        candidate = count + 1
        power = candidate * node.peak_power_w
        if switch is not None:
            power += switch.power_for(candidate)
        if power > budget_w:
            return count
        count = candidate
