"""What-if hardware analysis: redesign a node, re-run the frontier.

The paper's model exists to answer design questions without building the
hardware.  This module makes those questions one call each: take a
calibrated parameter set, apply a hypothetical hardware change --
a faster NIC, cheaper idle power, a deeper DVFS range -- and compare the
energy-deadline frontier before and after.

Changes operate on :class:`NodeModelParams` (and, where the setting grid
itself changes, on the :class:`NodeSpec`), so what-ifs compose with both
ground-truth and calibrated inputs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

import numpy as np

from repro.core.configuration import GroupSpec
from repro.core.evaluate import evaluate_space
from repro.core.params import NodeModelParams
from repro.core.pareto import ParetoFrontier
from repro.core.streaming import streaming_frontier
from repro.hardware.specs import NodeSpec

#: A what-if is a named transformation of one node's model inputs.
WhatIf = Callable[[NodeModelParams], NodeModelParams]


def faster_nic(factor: float) -> WhatIf:
    """Scale the node's NIC bandwidth (e.g. 10.0 = upgrade 100M -> 1G)."""
    if factor <= 0:
        raise ValueError("bandwidth factor must be positive")

    def apply(params: NodeModelParams) -> NodeModelParams:
        return dataclasses.replace(
            params, io_bandwidth_bytes_s=params.io_bandwidth_bytes_s * factor
        )

    return apply


def cheaper_idle(factor: float) -> WhatIf:
    """Scale the node's idle power (e.g. 0.2 = energy-proportional PSU)."""
    if factor < 0:
        raise ValueError("idle factor must be non-negative")

    def apply(params: NodeModelParams) -> NodeModelParams:
        return dataclasses.replace(params, p_idle_w=params.p_idle_w * factor)

    return apply


def faster_memory(latency_factor: float) -> WhatIf:
    """Scale memory stall costs (e.g. 0.5 = halve effective miss latency).

    Operates on the fitted ``SPI_mem`` model, which is proportional to
    the miss latency.
    """
    if latency_factor < 0:
        raise ValueError("latency factor must be non-negative")

    def apply(params: NodeModelParams) -> NodeModelParams:
        from repro.core.params import SpiMemFit
        from repro.util.stats import LinearFit

        fits = {
            c: LinearFit(
                slope=f.slope * latency_factor,
                intercept=f.intercept * latency_factor,
                r2=f.r2,
            )
            for c, f in params.spimem.fits.items()
        }
        return dataclasses.replace(params, spimem=SpiMemFit(fits))

    return apply


def better_isa(instruction_factor: float) -> WhatIf:
    """Scale the per-unit instruction count (e.g. 0.2 = add a crypto unit)."""
    if instruction_factor <= 0:
        raise ValueError("instruction factor must be positive")

    def apply(params: NodeModelParams) -> NodeModelParams:
        return dataclasses.replace(
            params,
            instructions_per_unit=params.instructions_per_unit
            * instruction_factor,
        )

    return apply


def compose(*changes: WhatIf) -> WhatIf:
    """Apply several what-ifs in order."""
    if not changes:
        raise ValueError("compose needs at least one change")

    def apply(params: NodeModelParams) -> NodeModelParams:
        for change in changes:
            params = change(params)
        return params

    return apply


@dataclass(frozen=True)
class WhatIfReport:
    """Frontier comparison before/after a hardware change."""

    label: str
    baseline: ParetoFrontier
    modified: ParetoFrontier
    #: Relative change of the global minimum energy (negative = cheaper).
    min_energy_change: float
    #: Relative change of the tightest achievable deadline (negative = faster).
    fastest_time_change: float
    #: Max energy saving across deadlines both frontiers can meet.
    best_saving: float
    at_deadline_s: Optional[float]

    def __str__(self) -> str:
        return (
            f"{self.label}: min energy {self.min_energy_change:+.1%}, "
            f"fastest deadline {self.fastest_time_change:+.1%}, "
            f"best saving {self.best_saving:.1%}"
        )


def what_if(
    spec_a: NodeSpec,
    max_a: int,
    spec_b: NodeSpec,
    max_b: int,
    params: Mapping[str, NodeModelParams],
    units: float,
    change_node: str,
    change: WhatIf,
    label: str = "what-if",
    deadline_points: int = 40,
    space_mode: str = "materialized",
    memory_budget_mb: Optional[float] = None,
) -> WhatIfReport:
    """Evaluate a hardware change's effect on the Pareto frontier.

    Parameters
    ----------
    change_node:
        Name of the node type the change applies to.
    change:
        The transformation (one of the factories above, or any callable).
    space_mode:
        ``"materialized"`` evaluates both spaces in RAM;
        ``"streaming"`` folds each through the online frontier under
        ``memory_budget_mb``.  The frontiers -- and hence the report --
        are bit-identical either way.
    """
    if change_node not in params:
        raise ValueError(
            f"no model parameters for node type {change_node!r}; "
            f"available: {sorted(params)}"
        )
    if space_mode not in ("materialized", "streaming"):
        raise ValueError(
            f"space_mode must be 'materialized' or 'streaming', got "
            f"{space_mode!r}"
        )
    modified_params: Dict[str, NodeModelParams] = dict(params)
    modified_params[change_node] = change(params[change_node])

    if space_mode == "streaming":
        group_specs = (GroupSpec(spec_a, max_a), GroupSpec(spec_b, max_b))
        baseline = streaming_frontier(
            group_specs, params, units, memory_budget_mb=memory_budget_mb
        )
        modified = streaming_frontier(
            group_specs, modified_params, units,
            memory_budget_mb=memory_budget_mb,
        )
    else:
        base_space = evaluate_space(spec_a, max_a, spec_b, max_b, params, units)
        baseline = ParetoFrontier.from_points(
            base_space.times_s, base_space.energies_j
        )
        mod_space = evaluate_space(
            spec_a, max_a, spec_b, max_b, modified_params, units
        )
        modified = ParetoFrontier.from_points(
            mod_space.times_s, mod_space.energies_j
        )

    min_energy_change = modified.min_energy_j / baseline.min_energy_j - 1.0
    fastest_change = modified.fastest_time_s / baseline.fastest_time_s - 1.0

    start = max(baseline.fastest_time_s, modified.fastest_time_s)
    stop = max(float(baseline.times_s[-1]), float(modified.times_s[-1]))
    best_saving = 0.0
    best_deadline: Optional[float] = None
    if stop > start:
        grid = np.logspace(np.log10(start), np.log10(stop), deadline_points)
        for d in grid:
            e_base = baseline.min_energy_for_deadline(float(d))
            e_mod = modified.min_energy_for_deadline(float(d))
            if e_base is None or e_mod is None or e_base <= 0:
                continue
            saving = 1.0 - e_mod / e_base
            if saving > best_saving:
                best_saving = saving
                best_deadline = float(d)

    return WhatIfReport(
        label=label,
        baseline=baseline,
        modified=modified,
        min_energy_change=min_energy_change,
        fastest_time_change=fastest_change,
        best_saving=best_saving,
        at_deadline_s=best_deadline,
    )
