"""High-level analyses: PPR, heterogeneity savings, deadline series.

These are the computations behind the paper's Section IV narrative:

* :func:`performance_to_power` / :func:`table5_rows` -- Table 5's
  performance-to-power ratios at each node's most energy-efficient
  single-node setting;
* :func:`savings_vs_homogeneous` -- the headline "up to 44% (memcached)
  and 58% (EP)" energy reductions of the heterogeneous frontier over the
  best homogeneous high-performance configurations;
* :func:`min_energy_series` -- minimum energy vs deadline curves for a
  fixed mix (the lines of Figures 6-9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.configuration import node_settings
from repro.core.energymodel import predict_node_energy
from repro.core.evaluate import ConfigSpaceResult, evaluate_space
from repro.core.params import NodeModelParams
from repro.core.pareto import ParetoFrontier
from repro.core.timemodel import predict_node_time
from repro.hardware.specs import NodeSpec
from repro.workloads.base import WorkloadSpec


@dataclass(frozen=True)
class EfficientSetting:
    """A node's most energy-efficient single-node operating point."""

    cores: int
    f_ghz: float
    time_s: float
    energy_j: float
    #: Work units per second at this setting.
    rate_units_per_s: float
    #: Average node power at this setting, watts.
    power_w: float

    @property
    def ppr(self) -> float:
        """Performance-to-power ratio: work per second per watt."""
        return self.rate_units_per_s / self.power_w


def most_efficient_setting(
    node: NodeSpec,
    params: NodeModelParams,
    units: Optional[float] = None,
) -> EfficientSetting:
    """Scan all (cores, frequency) settings of one node for least energy.

    Energy per job is linear in the job size apart from the arrival
    floor, so the chosen setting is size-independent for saturating
    workloads; ``units`` defaults to 1e6 for numerical comfort.
    """
    units = 1e6 if units is None else units
    if units <= 0:
        raise ValueError("units must be positive")
    best: Optional[EfficientSetting] = None
    for cores, f in node_settings(node):
        times = predict_node_time(params, units, 1, cores, f)
        energy = predict_node_energy(params, times).energy_j
        if times.time_s <= 0:
            continue
        candidate = EfficientSetting(
            cores=cores,
            f_ghz=f,
            time_s=times.time_s,
            energy_j=energy,
            rate_units_per_s=units / times.time_s,
            power_w=energy / times.time_s,
        )
        if best is None or candidate.energy_j < best.energy_j:
            best = candidate
    if best is None:
        raise ValueError("node has no valid operating point")
    return best


def performance_to_power(
    node: NodeSpec,
    params: NodeModelParams,
    units: Optional[float] = None,
) -> float:
    """Table 5's PPR: work/s/W at the most energy-efficient setting."""
    return most_efficient_setting(node, params, units).ppr


def table5_rows(
    workloads: Sequence[WorkloadSpec],
    nodes: Sequence[NodeSpec],
    params_fn,
) -> List[Tuple[str, str, Dict[str, float]]]:
    """Build Table 5: per workload, the PPR of every node type.

    ``params_fn(node, workload) -> NodeModelParams`` supplies the model
    inputs (ground truth or calibrated).  Returns
    ``[(workload, ppr_unit, {node_name: ppr})]``.
    """
    rows = []
    for workload in workloads:
        values: Dict[str, float] = {}
        for node in nodes:
            if not workload.supports(node.name):
                continue
            values[node.name] = performance_to_power(node, params_fn(node, workload))
        rows.append((workload.name, workload.ppr_unit, values))
    return rows


@dataclass(frozen=True)
class SavingsReport:
    """Energy savings of the heterogeneous frontier over a homogeneous one."""

    #: Max fractional saving over the evaluated deadlines (0.58 = 58%).
    max_saving: float
    #: Deadline at which the max saving occurs, seconds.
    at_deadline_s: float
    #: Per-deadline detail: (deadline_s, hetero_energy_j, homog_energy_j).
    detail: Tuple[Tuple[float, float, float], ...]


def savings_vs_homogeneous(
    space: ConfigSpaceResult,
    homogeneous_mask: np.ndarray,
    deadlines_s: Optional[Sequence[float]] = None,
) -> SavingsReport:
    """Max energy saving of the full frontier vs a homogeneous sub-frontier.

    ``homogeneous_mask`` selects the comparison configurations (e.g.
    ``space.is_only_b`` for AMD-only).  Deadlines default to the
    homogeneous frontier's own points, which is where the comparison is
    sharpest.
    """
    full = ParetoFrontier.from_points(space.times_s, space.energies_j)
    homog = space.subset(homogeneous_mask)
    if len(homog) == 0:
        raise ValueError("homogeneous mask selects no configurations")
    homog_frontier = ParetoFrontier.from_points(homog.times_s, homog.energies_j)
    return savings_from_frontiers(full, homog_frontier, deadlines_s)


def savings_from_frontiers(
    full: ParetoFrontier,
    homog_frontier: ParetoFrontier,
    deadlines_s: Optional[Sequence[float]] = None,
) -> SavingsReport:
    """The frontier-only half of :func:`savings_vs_homogeneous`.

    Takes the two frontiers directly, which is all the comparison ever
    reads -- the streaming pipeline hands in its whole-space and
    per-group frontiers (both frontier-sized) without materializing any
    space.
    """
    if deadlines_s is None:
        # Union of both frontiers' deadlines: the homogeneous curve is
        # flat past its last point, which is exactly where relaxing the
        # deadline lets heterogeneous mixes pull ahead (the headline
        # "up to 44%/58%" comparisons live there).
        deadlines_s = np.union1d(homog_frontier.times_s, full.times_s)
    detail: List[Tuple[float, float, float]] = []
    best = (0.0, float(deadlines_s[0]))
    for d in deadlines_s:
        e_full = full.min_energy_for_deadline(float(d))
        e_homog = homog_frontier.min_energy_for_deadline(float(d))
        if e_full is None or e_homog is None or e_homog <= 0:
            continue
        saving = (e_homog - e_full) / e_homog
        detail.append((float(d), e_full, e_homog))
        if saving > best[0]:
            best = (saving, float(d))
    if not detail:
        raise ValueError("no common feasible deadline between the frontiers")
    return SavingsReport(max_saving=best[0], at_deadline_s=best[1], detail=tuple(detail))


def min_energy_series(
    space: ConfigSpaceResult,
    deadlines_s: Sequence[float],
) -> List[Optional[float]]:
    """Minimum energy meeting each deadline (``None`` where unmeetable).

    The y-values of one line of Figures 6-9, evaluated on a shared
    deadline grid so different mixes can be compared point-by-point.
    """
    frontier = ParetoFrontier.from_points(space.times_s, space.energies_j)
    return [frontier.min_energy_for_deadline(float(d)) for d in deadlines_s]


def deadline_grid(
    start_s: float,
    stop_s: float,
    points: int = 60,
) -> np.ndarray:
    """Log-spaced deadline grid (the figures use log-scale deadline axes)."""
    if start_s <= 0 or stop_s <= start_s:
        raise ValueError("need 0 < start < stop for a log grid")
    if points < 2:
        raise ValueError("need at least two grid points")
    return np.logspace(np.log10(start_s), np.log10(stop_s), points)


def fixed_mix_space(
    spec_low: NodeSpec,
    n_low: int,
    spec_high: NodeSpec,
    n_high: int,
    params: Mapping[str, NodeModelParams],
    units: float,
) -> ConfigSpaceResult:
    """Configuration space of one *fixed* node-count mix (Figures 6-9).

    Node counts are pinned; cores and frequencies still range over all
    settings.  Implemented by evaluating the general space with maxima
    equal to the pinned counts and filtering to exact-count rows.
    """
    if n_low == 0 and n_high == 0:
        raise ValueError("mix needs at least one node")
    return evaluate_space(
        spec_low,
        max(n_low, 1),
        spec_high,
        max(n_high, 1),
        params,
        units,
        counts_a=[n_low],
        counts_b=[n_high],
    )


def subset_mix_space(
    spec_low: NodeSpec,
    n_low: int,
    spec_high: NodeSpec,
    n_high: int,
    params: Mapping[str, NodeModelParams],
    units: float,
) -> ConfigSpaceResult:
    """Configuration space of an *available* mix: any subset may be used.

    This is the Figures 8-9 / Figure 10 semantics ("unused nodes are
    turned off", Section IV-E): a cluster of 64 ARM + 8 AMD nodes admits
    every configuration with up to those counts, which is what makes
    Observation 3's "more configurations on the sweet region" true --
    contrast :func:`fixed_mix_space`, where all nodes participate (the
    Figures 6-7 budget lines).
    """
    if n_low == 0 and n_high == 0:
        raise ValueError("mix needs at least one node")
    return evaluate_space(spec_low, n_low, spec_high, n_high, params, units)
