"""Candidate sources: pluggable "which configurations get evaluated".

The exhaustive pipeline sweeps every row of a k-group space in one
canonical order (:func:`repro.core.configuration.presence_masks` blocks,
each partitioned over its lead group's counts).  This module narrows the
contract between "what to evaluate" and "how to evaluate" to one small
interface so that sweep becomes *a* strategy instead of *the* strategy:

* :class:`CandidateBatch` -- one batch of candidate configurations as
  ``(G, B)`` column stacks of ``(n, cores, f)`` per group;
* :class:`CandidateSource` -- the protocol: ``propose`` deterministic
  batches, ``observe`` the evaluated time/energy columns (feedback for
  search agents), snapshot/restore via ``state_dict``/``load_state``;
* :class:`ExhaustiveSource` -- the canonical sweep behind the protocol.
  Its :meth:`~ExhaustiveSource.plan_blocks` *is* the historical
  :func:`repro.core.streaming.plan_block_tasks` decomposition (that
  function now delegates here), so exhaustive runs stay bit-identical to
  pre-refactor artifacts; its :meth:`~ExhaustiveSource.propose` expands
  those blocks into explicit candidate rows in the exact global row
  order of :func:`repro.core.evaluate.evaluate_space_groups`;
* :func:`expand_block_rows` -- a :class:`BlockTask`'s ``(n, cores, f)``
  columns without evaluating anything (the row-order oracle the property
  tests pin sources against).

Search agents (:mod:`repro.search`) implement the same protocol with
feedback-driven proposals; the evaluator, streaming planner, and
execution backends only ever see the protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.configuration import GroupSpec, node_settings, presence_masks
from repro.core.evaluate import _normalize_counts


@dataclass(frozen=True)
class BlockTask:
    """One block of the deterministic space decomposition.

    ``counts`` is a per-group tuple of node-count tuples in the exact
    shape :func:`repro.core.streaming.evaluate_block_task` consumes: the
    lead group carries its partition slice, other present groups their
    full positive counts, absent groups ``(0,)``.  ``rows`` is the exact
    row count of the block (the count/setting product arithmetic).
    """

    counts: Tuple[Tuple[int, ...], ...]
    rows: int


@dataclass(frozen=True)
class CandidateBatch:
    """One batch of candidate configurations, columnar.

    ``n``/``cores``/``f`` are ``(G, B)`` stacks -- column ``i`` is one
    candidate configuration: group ``g`` runs ``n[g, i]`` nodes at
    ``cores[g, i]`` active cores and ``f[g, i]`` GHz (absent groups have
    ``n == 0`` and carry the spec's maxima, matching the evaluator's
    convention).  ``meta`` is an optional source-private payload (e.g.
    genome indices) handed back verbatim through ``observe``.
    """

    n: np.ndarray
    cores: np.ndarray
    f: np.ndarray
    meta: Any = None

    def __post_init__(self) -> None:
        if self.n.ndim != 2 or self.n.shape != self.cores.shape or (
            self.n.shape != self.f.shape
        ):
            raise ValueError(
                "candidate batch needs matching (G, B) n/cores/f stacks"
            )

    def __len__(self) -> int:
        return int(self.n.shape[1])

    @property
    def num_groups(self) -> int:
        return int(self.n.shape[0])


class CandidateSource:
    """Protocol for "which configurations get evaluated".

    A source proposes batches of candidate rows; the driver evaluates
    them and feeds the time/energy columns back through ``observe``.
    Determinism contract: for a fixed construction (specs, seed,
    options) and a fixed sequence of observations, the proposal sequence
    is reproducible -- what makes searched artifacts cacheable and
    resumable.
    """

    #: Strategy name, e.g. ``"exhaustive"`` / ``"random"`` / ``"ga"``.
    name: str = "source"

    def reset(self) -> None:
        """Return to the freshly-constructed state."""
        raise NotImplementedError

    def propose(self, max_rows: int) -> Optional[CandidateBatch]:
        """The next batch of at most ``max_rows`` candidates, or ``None``
        when the source has nothing further to propose."""
        raise NotImplementedError

    def observe(
        self,
        batch: CandidateBatch,
        times_s: np.ndarray,
        energies_j: np.ndarray,
    ) -> None:
        """Feed back the evaluated columns of a proposed batch."""

    # ---- checkpoint support --------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """A picklable snapshot of the source's progress."""
        raise NotImplementedError

    def load_state(self, state: Mapping[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        raise NotImplementedError


def expand_block_rows(
    group_specs: Sequence[GroupSpec],
    task_counts: Tuple[Tuple[int, ...], ...],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A :class:`BlockTask`'s ``(n, cores, f)`` columns, unevaluated.

    Replicates :func:`repro.core.evaluate._evaluate_mask_block`'s output
    column construction exactly -- interleaved (count, setting) axes per
    present group, C-order flatten, absent groups pinned at ``n = 0``
    and the spec's maxima -- without computing times or energies.
    """
    group_specs = tuple(group_specs)
    k = len(group_specs)
    present = tuple(
        g for g in range(k) if any(c > 0 for c in task_counts[g])
    )
    if not present:
        raise ValueError("block task has no present group")
    settings = [node_settings(gs.spec, gs.settings) for gs in group_specs]
    pos = {
        g: np.asarray([c for c in task_counts[g] if c > 0], dtype=np.int64)
        for g in present
    }
    naxes = 2 * len(present)

    def _axis_view(arr: np.ndarray, axis: int) -> np.ndarray:
        shape = [1] * naxes
        shape[axis] = arr.size
        return arr.reshape(shape)

    n_views = [_axis_view(pos[g], 2 * i) for i, g in enumerate(present)]
    s_views = [
        _axis_view(np.arange(len(settings[g])), 2 * i + 1)
        for i, g in enumerate(present)
    ]
    shape = tuple(
        size
        for i, g in enumerate(present)
        for size in (pos[g].size, len(settings[g]))
    )
    n_flat = [np.broadcast_to(v, shape).reshape(-1) for v in n_views]
    s_flat = [np.broadcast_to(v, shape).reshape(-1) for v in s_views]

    n_rows = int(np.prod(shape)) if shape else 0
    n_out = np.zeros((k, n_rows), dtype=np.int64)
    cores_out = np.empty((k, n_rows), dtype=np.int64)
    f_out = np.empty((k, n_rows), dtype=float)
    pos_of = {g: i for i, g in enumerate(present)}
    for g, gs in enumerate(group_specs):
        cores_g = np.asarray([c for c, _ in settings[g]], dtype=np.int64)
        f_g = np.asarray([f for _, f in settings[g]], dtype=float)
        if g in pos_of:
            i = pos_of[g]
            n_out[g] = n_flat[i]
            cores_out[g] = cores_g[s_flat[i]]
            f_out[g] = f_g[s_flat[i]]
        else:
            cores_out[g] = gs.spec.cores.count
            f_out[g] = gs.spec.cores.fmax_ghz
    return n_out, cores_out, f_out


class ExhaustiveSource(CandidateSource):
    """The canonical sweep, behind the :class:`CandidateSource` protocol.

    :meth:`plan_blocks` owns the deterministic block decomposition the
    streaming pipeline has always used (``presence_masks`` blocks, each
    partitioned contiguously over its lead group's counts);
    :func:`repro.core.streaming.plan_block_tasks` is now a thin wrapper
    around it, so the exhaustive path is byte-for-byte the historical
    one.  :meth:`propose` expands those blocks into explicit rows in the
    exact global row order of ``evaluate_space_groups`` -- the oracle
    the property tests pin every other source's evaluator against.
    """

    name = "exhaustive"

    def __init__(self, group_specs: Sequence[GroupSpec]):
        self.group_specs = tuple(group_specs)
        if not self.group_specs:
            raise ValueError("need at least one node-type group")
        self._cursor = 0

    def plan_blocks(
        self, max_block_rows: int, min_chunks: int = 1
    ) -> List[BlockTask]:
        """Decompose the space into ordered blocks under a row budget.

        Mirrors :func:`~repro.core.evaluate.evaluate_space_groups`'s row
        order exactly: presence-mask blocks in canonical order, each
        partitioned contiguously over its first present group's counts.
        The number of partitions per mask is
        ``ceil(mask_rows / max_block_rows)`` (at least ``min_chunks``,
        for process-pool parallelism), capped at the lead group's
        count-list width -- the finest granularity this decomposition
        admits, so a single lead count whose slice exceeds the budget
        still yields one (oversized) block rather than failing.
        """
        if max_block_rows < 1:
            raise ValueError("block row budget must be at least one row")
        group_specs = self.group_specs
        counts = [
            _normalize_counts(gs.counts, gs.max_nodes) for gs in group_specs
        ]
        pos = [c[c > 0] for c in counts]
        dims = [len(node_settings(gs.spec, gs.settings)) for gs in group_specs]

        tasks: List[BlockTask] = []
        for present in presence_masks(group_specs):
            lead = present[0]
            rows_per_lead_count = dims[lead]
            for g in present[1:]:
                rows_per_lead_count *= int(pos[g].size) * dims[g]
            mask_rows = rows_per_lead_count * int(pos[lead].size)
            if mask_rows == 0:
                continue
            n_chunks = max(
                int(min_chunks), math.ceil(mask_rows / max_block_rows)
            )
            n_chunks = max(1, min(n_chunks, int(pos[lead].size)))
            for part in np.array_split(pos[lead], n_chunks):
                if not part.size:
                    continue
                task_counts = tuple(
                    tuple(int(c) for c in part)
                    if g == lead
                    else (
                        tuple(int(c) for c in pos[g])
                        if g in present
                        else (0,)
                    )
                    for g in range(len(group_specs))
                )
                tasks.append(
                    BlockTask(
                        counts=task_counts,
                        rows=rows_per_lead_count * int(part.size),
                    )
                )
        return tasks

    # ---- CandidateSource protocol --------------------------------------

    def reset(self) -> None:
        self._cursor = 0

    def propose(self, max_rows: int) -> Optional[CandidateBatch]:
        """The next sweep chunk, in canonical global row order."""
        if max_rows < 1:
            raise ValueError("batch row budget must be at least one row")
        tasks = self.plan_blocks(max_block_rows=max_rows)
        if self._cursor >= len(tasks):
            return None
        task = tasks[self._cursor]
        self._cursor += 1
        n, cores, f = expand_block_rows(self.group_specs, task.counts)
        return CandidateBatch(n=n, cores=cores, f=f)

    def state_dict(self) -> Dict[str, Any]:
        return {"cursor": self._cursor}

    def load_state(self, state: Mapping[str, Any]) -> None:
        self._cursor = int(state["cursor"])
