"""K-way mix-and-match: more than two node types (paper generalization).

Section II-A notes the methodology "is used to determine a generic mix
of heterogeneous nodes" but the paper only exercises two types.  This
module generalizes Eq. 1 to any number of groups.

Formulation.  Each group's time is ``T_i(w) = max(gamma_i w, F_i)`` with
``gamma_i > 0`` (seconds/unit) and floor ``F_i >= 0`` (its share of the
arrival bound; a group given zero work contributes nothing).  The job
time for an assignment ``w`` with ``sum w_i = W`` is ``max_i T_i(w_i)``.
Define each group's *capacity at deadline T*:

.. math::

    cap_i(T) = T / gamma_i  \\text{ if } T \\ge F_i \\text{ else } 0

(work beyond ``T/gamma_i`` blows the deadline; a group whose floor
exceeds ``T`` cannot take any work at all).  Total capacity is
nondecreasing in ``T``, so the minimal feasible job time is

.. math::

    T^* = \\min \\{ T : \\sum_i cap_i(T) \\ge W \\}

found in closed form when no floor binds (``T^* = W / sum_i 1/gamma_i``,
the harmonic-mean balance of Eq. 1) and by bisection otherwise.  Work is
then assigned proportionally to capacity, which equalizes the active
groups' finish times -- the k-way matching property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.energymodel import predict_node_energy
from repro.core.matching import GroupSetting
from repro.core.timemodel import predict_node_time


@dataclass(frozen=True)
class MultiMatchResult:
    """A matched k-way split."""

    units: Tuple[float, ...]
    time_s: float
    method: str
    #: Indices of groups that received work.
    active: Tuple[int, ...]

    def __post_init__(self) -> None:
        if any(u < 0 for u in self.units):
            raise ValueError("splits cannot be negative")
        if self.time_s < 0:
            raise ValueError("completion time cannot be negative")

    @property
    def total_units(self) -> float:
        return float(sum(self.units))


def match_multiway(
    total_units: float,
    groups: Sequence[GroupSetting],
    iterations: int = 200,
) -> MultiMatchResult:
    """Split ``total_units`` across any number of groups, matched.

    Empty groups (``n_nodes == 0``) are carried with zero work.  With two
    non-empty groups this agrees with :func:`repro.core.matching.match_split`
    (property-tested).
    """
    if total_units <= 0:
        raise ValueError(f"job must have positive work, got {total_units}")
    if not groups:
        raise ValueError("need at least one group")

    present = [i for i, g in enumerate(groups) if g.n_nodes > 0]
    if not present:
        raise ValueError("cannot match a job onto only empty groups")

    gammas = np.zeros(len(groups))
    floors = np.zeros(len(groups))
    for i in present:
        gammas[i], floors[i] = groups[i].coefficients()
    if any(gammas[i] <= 0 for i in present):
        raise ValueError("every non-empty group needs a positive time slope")

    # Closed form: no floors anywhere.
    inv = np.array([1.0 / gammas[i] for i in present])
    if all(floors[i] == 0.0 for i in present):
        t_star = total_units / float(inv.sum())
        units = [0.0] * len(groups)
        for pos, i in enumerate(present):
            units[i] = total_units * float(inv[pos]) / float(inv.sum())
        return MultiMatchResult(
            units=tuple(units),
            time_s=t_star,
            method="closed-form",
            active=tuple(present),
        )

    # Bisection on the deadline: capacity(T) is nondecreasing.
    def capacity(t: float) -> float:
        return float(
            sum(t / gammas[i] for i in present if t >= floors[i])
        )

    # Upper bound: the best single group running everything.
    hi = min(max(gammas[i] * total_units, floors[i]) for i in present)
    lo = 0.0
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        if capacity(mid) >= total_units:
            hi = mid
        else:
            lo = mid
    t_star = hi

    active = [i for i in present if t_star >= floors[i]]
    caps = np.array([t_star / gammas[i] for i in active])
    total_cap = float(caps.sum())
    if total_cap <= 0:
        raise RuntimeError("no capacity at the computed deadline; bisection bug")
    units = [0.0] * len(groups)
    scale = total_units / total_cap
    for pos, i in enumerate(active):
        units[i] = float(caps[pos]) * scale
    return MultiMatchResult(
        units=tuple(units),
        time_s=t_star,
        method="bisection",
        active=tuple(active),
    )


@dataclass(frozen=True)
class MultiwayOutcome:
    """Time and energy of a k-way matched job."""

    match: MultiMatchResult
    time_s: float
    energy_j: float
    group_energies_j: Tuple[float, ...]


def evaluate_multiway(
    total_units: float,
    groups: Sequence[GroupSetting],
) -> MultiwayOutcome:
    """Match the split and compute the job's total energy (Eqs. 12-19).

    Every group -- including those receiving zero work -- idles for the
    full job duration, as in the two-type model.
    """
    match = match_multiway(total_units, groups)
    # The reported job time must reflect the realized assignment (floors
    # of active groups can exceed the balanced time).
    times: List[float] = []
    for g, w in zip(groups, match.units):
        times.append(g.time(w) if g.n_nodes > 0 else 0.0)
    job_time = max(max(times), match.time_s)

    energies: List[float] = []
    for g, w in zip(groups, match.units):
        if g.n_nodes == 0:
            energies.append(0.0)
            continue
        tb = predict_node_time(g.params, w, g.n_nodes, g.cores, g.f_ghz)
        energies.append(
            predict_node_energy(g.params, tb, job_time_s=job_time).energy_j
        )
    return MultiwayOutcome(
        match=match,
        time_s=job_time,
        energy_j=float(sum(energies)),
        group_energies_j=tuple(energies),
    )
