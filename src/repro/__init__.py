"""repro: a full reproduction of *Modeling the Energy Efficiency of
Heterogeneous Clusters* (Ramapantulu, Tudor, Loghin, Vu, Teo -- ICPP 2014).

The library implements the paper's trace-driven analytical model of
execution time and energy for clusters mixing high-performance (AMD
Opteron K10) and low-power (ARM Cortex-A9) nodes, its *mix-and-match*
workload-splitting technique, the energy-deadline Pareto-frontier
analysis, power-budget substitution, and the M/D/1 job-queueing
extension -- plus a simulated heterogeneous-cluster testbed standing in
for the paper's physical boards (see DESIGN.md).

Quick start
-----------
>>> from repro import quick
>>> result = quick.pareto("ep")           # Fig. 4 in three lines
>>> result.frontier.min_energy_j > 0
True

Subpackages
-----------
``repro.hardware``
    Node catalog (Table 1), DVFS tables, power profiles.
``repro.workloads``
    The six paper workloads and micro-benchmarks as calibrated
    service-demand descriptors.
``repro.simulator``
    The measurement substrate: phase-level node/cluster simulator,
    perf-style counters, power meter.
``repro.core``
    The contribution: time/energy model (Eqs. 1-19), matching,
    configuration enumeration, Pareto tools, regions, power budgets,
    calibration, analyses.
``repro.queueing``
    M/D/1 (M/M/1, M/G/1) models, queue DES, window energy (Fig. 10).
``repro.scheduling``
    Baselines: naive splits and the switching policy.
``repro.validation``
    Tables 3-4 model-vs-testbed validation harness.
``repro.reporting``
    Builders for every table and figure, text rendering, CSV export.
``repro.engine``
    The experiment engine: declarative :class:`Scenario` descriptions,
    a :class:`RunContext` with content-addressed caching and pluggable
    execution backends (serial, process pool, TCP remote workers), and
    :func:`run_scenario` executing the pipeline as an explicit stage
    graph -- calibrate -> configuration space -> analyses -- with
    content-addressed per-stage identities.
``repro.store``
    Persistent sqlite-backed :class:`ArtifactStore`: scenarios, stage
    artifacts, dependency edges, spec-edit invalidation.
``repro.service``
    ``repro serve``: planner queries (cheapest config for a deadline,
    frontier under a power budget, regions, what-if deltas) over
    HTTP/JSON from a populated store.
"""

from repro import quick
from repro.core.calibration import calibrate_node, ground_truth_params
from repro.core.evaluate import evaluate_config, evaluate_space
from repro.core.matching import GroupSetting, match_split
from repro.core.pareto import ParetoFrontier
from repro.core.params import NodeModelParams
from repro.core.streaming import ReducedSpace, streaming_frontier
from repro.core.timemodel import predict_node_time
from repro.core.energymodel import predict_node_energy
from repro.engine import (
    ExecutionBackend,
    FaultPlan,
    FaultSpec,
    ResiliencePolicy,
    ResultCache,
    RunContext,
    Scenario,
    ScenarioResult,
    backend_names,
    create_backend,
    default_context,
    register_backend,
    resolve_backend,
    run_scenario,
)
from repro.hardware.catalog import AMD_K10, ARM_CORTEX_A9, ETHERNET_SWITCH
from repro.store import ArtifactStore
from repro.workloads.suite import PAPER_WORKLOADS, workload_by_name

__version__ = "1.0.0"

__all__ = [
    "quick",
    "calibrate_node",
    "ground_truth_params",
    "evaluate_config",
    "evaluate_space",
    "GroupSetting",
    "match_split",
    "ParetoFrontier",
    "NodeModelParams",
    "ReducedSpace",
    "streaming_frontier",
    "ExecutionBackend",
    "backend_names",
    "create_backend",
    "register_backend",
    "resolve_backend",
    "FaultPlan",
    "FaultSpec",
    "ResiliencePolicy",
    "ArtifactStore",
    "ResultCache",
    "RunContext",
    "Scenario",
    "ScenarioResult",
    "default_context",
    "run_scenario",
    "predict_node_time",
    "predict_node_energy",
    "AMD_K10",
    "ARM_CORTEX_A9",
    "ETHERNET_SWITCH",
    "PAPER_WORKLOADS",
    "workload_by_name",
    "__version__",
]
