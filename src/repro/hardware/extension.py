"""Extension hardware: a third node type beyond the paper's Table 1.

The paper's related work (Chun et al., "An Energy Case for Hybrid
Datacenters") studies Xeon+Atom mixes; this module adds an Intel Atom
D510-class node so the k-way generalization in
:mod:`repro.core.multiway` has a realistic third point between the
Cortex-A9 and the Opteron.  Numbers follow period Atom mini-server
boards: dual-core in-order x86 at 0.8-1.66 GHz, ~18 W system idle,
~27 W peak.

This node is **not** part of the paper's experiments; nothing in the
reproduction benches depends on it.
"""

from __future__ import annotations

from repro.hardware.power import CubicPower, PowerProfile
from repro.hardware.specs import CoreSpec, IOSpec, MemorySpec, NodeSpec
from repro.util.units import GIB

#: Mid-power node: dual-core Intel Atom D510 (x86_64, in-order).
INTEL_ATOM = NodeSpec(
    name="intel-atom",
    isa="x86_64",
    cores=CoreSpec(count=2, pstates_ghz=(0.8, 1.2, 1.66)),
    memory=MemorySpec(
        capacity_bytes=2 * GIB,
        technology="DDR2",
        base_latency_ns=90.0,
        contention_ns_per_core=15.0,
        contention_quadratic_ns=2.0,
    ),
    io=IOSpec(bandwidth_mbps=1000.0),
    power=PowerProfile(
        idle_w=18.0,
        core_active=CubicPower(static_w=0.8, dynamic_w_per_ghz3=0.7),
        core_stall=CubicPower(static_w=0.4, dynamic_w_per_ghz3=0.3),
        mem_active_w=1.0,
        io_active_w=0.5,
    ),
    description="Extension node: Intel Atom D510 mini-server (not in Table 1)",
    caches=(
        ("L1 data", "24KB / core"),
        ("L2", "512KB / core"),
        ("L3", "NA"),
    ),
)
