"""Structural node specifications (cores, memory, network I/O).

A :class:`NodeSpec` is the single source of truth about a machine type.
The analytical model reads its DVFS table and bandwidths; the simulator
additionally uses the memory-latency parameters to *generate* the stall
behaviour that the model then has to predict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.hardware.power import PowerProfile
from repro.util.units import mbps_to_bytes_per_s


@dataclass(frozen=True)
class CoreSpec:
    """CPU complex of a node: core count and available P-states.

    ``pstates_ghz`` is the ascending tuple of selectable core clocks; the
    paper enumerates 5 frequencies per ARM node and 3 per AMD node when
    counting the 36,380-point configuration space (Section IV-B,
    footnote 2).
    """

    count: int
    pstates_ghz: Tuple[float, ...]

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"core count must be >= 1, got {self.count}")
        if not self.pstates_ghz:
            raise ValueError("a node needs at least one P-state")
        if any(f <= 0 for f in self.pstates_ghz):
            raise ValueError(f"P-states must be positive, got {self.pstates_ghz}")
        if tuple(sorted(self.pstates_ghz)) != tuple(self.pstates_ghz):
            raise ValueError(f"P-states must be ascending, got {self.pstates_ghz}")
        if len(set(self.pstates_ghz)) != len(self.pstates_ghz):
            raise ValueError(f"P-states must be distinct, got {self.pstates_ghz}")

    @property
    def fmin_ghz(self) -> float:
        """Lowest selectable core clock."""
        return self.pstates_ghz[0]

    @property
    def fmax_ghz(self) -> float:
        """Highest selectable core clock."""
        return self.pstates_ghz[-1]

    def validate_setting(self, cores: int, f_ghz: float) -> None:
        """Raise ``ValueError`` unless ``(cores, f_ghz)`` is selectable."""
        if not 1 <= cores <= self.count:
            raise ValueError(f"active cores must be in [1, {self.count}], got {cores}")
        if f_ghz not in self.pstates_ghz:
            raise ValueError(
                f"frequency {f_ghz} GHz is not a P-state of this node "
                f"(available: {self.pstates_ghz})"
            )


@dataclass(frozen=True)
class MemorySpec:
    """Memory subsystem: capacity, technology and timing.

    The paper assumes a single memory controller shared by all cores
    (UMA).  ``base_latency_ns`` is the unloaded round-trip latency of a
    last-level-cache miss; ``contention_ns_per_core`` is the additional
    queueing delay contributed by each *extra* concurrently active core,
    the first-order contention effect of [Tudor et al., ICPP'11] cited in
    Section II-B2.  ``contention_quadratic_ns`` adds a small second-order
    term that the *simulator* applies but the *analytical model does not
    capture* -- it is one honest source of the model's validation error.
    """

    capacity_bytes: int
    technology: str
    base_latency_ns: float
    contention_ns_per_core: float
    contention_quadratic_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("memory capacity must be positive")
        if self.base_latency_ns <= 0:
            raise ValueError("base memory latency must be positive")
        if self.contention_ns_per_core < 0 or self.contention_quadratic_ns < 0:
            raise ValueError("contention terms must be non-negative")

    def latency_ns(self, active_cores: float, f_ratio: float = 1.0) -> float:
        """Average miss latency seen with ``active_cores`` loading the controller.

        ``f_ratio`` is the core clock relative to ``fmax``; the quadratic
        term scales with it because faster cores issue misses at a higher
        rate, deepening the controller queue.  Accepts fractional
        ``active_cores`` (the model's ``c_act = U_CPU * c`` is an average).
        """
        extra = max(0.0, float(active_cores) - 1.0)
        return (
            self.base_latency_ns
            + self.contention_ns_per_core * extra
            + self.contention_quadratic_ns * extra * extra * max(0.0, f_ratio)
        )


@dataclass(frozen=True)
class IOSpec:
    """Network I/O device: a single memory-mapped, DMA-driven NIC.

    Transfers fully overlap with CPU activity (Section II-A).  The paper's
    nodes have one NIC each: 1 Gbps on AMD, 100 Mbps on ARM.
    """

    bandwidth_mbps: float

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ValueError(f"I/O bandwidth must be positive, got {self.bandwidth_mbps}")

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Link rate in bytes/second."""
        return mbps_to_bytes_per_s(self.bandwidth_mbps)


@dataclass(frozen=True)
class NodeSpec:
    """A complete node type: identity, structure and power.

    Instances are immutable and hashable so they can key dictionaries of
    calibrated model parameters.
    """

    name: str
    isa: str
    cores: CoreSpec
    memory: MemorySpec
    io: IOSpec
    power: PowerProfile
    description: str = ""
    caches: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be non-empty")

    @property
    def peak_power_w(self) -> float:
        """Peak draw with every core at fmax (the substitution-ratio input)."""
        return self.power.peak_w(self.cores.count, self.cores.fmax_ghz)

    @property
    def idle_power_w(self) -> float:
        """Whole-node idle draw."""
        return self.power.idle_w

    def config_count(self, max_nodes: int) -> int:
        """Number of single-type cluster configurations with up to ``max_nodes``.

        ``max_nodes * |pstates| * |cores|`` -- the per-type factor in the
        paper's 36,380-configuration example.
        """
        if max_nodes < 0:
            raise ValueError("max_nodes must be non-negative")
        return max_nodes * len(self.cores.pstates_ghz) * self.cores.count

    def __str__(self) -> str:
        return (
            f"{self.name} ({self.isa}): {self.cores.count} cores @ "
            f"{self.cores.fmin_ghz}-{self.cores.fmax_ghz} GHz, "
            f"{self.memory.capacity_bytes / 2**30:.0f} GiB {self.memory.technology}, "
            f"{self.io.bandwidth_mbps:.0f} Mbps NIC, peak {self.peak_power_w:.1f} W"
        )


@dataclass(frozen=True)
class SwitchSpec:
    """Ethernet switch interconnecting low-power nodes.

    The paper's substitution-ratio footnote charges 20 W of switch power
    against the ARM side of the cluster; ``ports`` bounds how many nodes
    one switch can serve.
    """

    name: str
    power_w: float
    ports: int

    def __post_init__(self) -> None:
        if self.power_w < 0:
            raise ValueError("switch power must be non-negative")
        if self.ports < 1:
            raise ValueError("switch needs at least one port")

    def switches_needed(self, nodes: int) -> int:
        """How many switches a group of ``nodes`` nodes requires."""
        if nodes < 0:
            raise ValueError("node count must be non-negative")
        if nodes == 0:
            return 0
        return -(-nodes // self.ports)  # ceiling division

    def power_for(self, nodes: int) -> float:
        """Total switch power attributable to ``nodes`` nodes."""
        return self.power_w * self.switches_needed(nodes)
