"""The paper's node catalog (Table 1) plus the cluster switch.

The structural numbers (ISA, core counts, frequency ranges, cache sizes,
memory and NIC capacities) are copied from Table 1.  The power
coefficients are calibrated -- the paper reports only node-level
aggregates -- to hit its stated operating points:

* AMD Opteron K10 node: ~60 W peak, 45 W idle (Sections IV-C and IV-E);
* ARM Cortex-A9 node: ~5 W peak, idles below 2 W (Section IV-E);
* switch connecting ARM nodes: 20 W (footnote 5), which turns the naive
  12:1 peak-power substitution ratio into the 8:1 the paper uses.

Memory latencies are textbook values for DDR3-1333 (AMD) and LP-DDR2
(ARM) with a first-order contention slope per extra active core.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.hardware.power import CubicPower, PowerProfile
from repro.hardware.specs import CoreSpec, IOSpec, MemorySpec, NodeSpec, SwitchSpec
from repro.util.units import GIB

#: Low-power node: quad-core ARM Cortex-A9 (ARMv7-A), 5 P-states.
ARM_CORTEX_A9 = NodeSpec(
    name="arm-cortex-a9",
    isa="armv7-a",
    cores=CoreSpec(count=4, pstates_ghz=(0.2, 0.5, 0.8, 1.1, 1.4)),
    memory=MemorySpec(
        capacity_bytes=1 * GIB,
        technology="LP-DDR2",
        base_latency_ns=110.0,
        contention_ns_per_core=25.0,
        contention_quadratic_ns=3.0,
    ),
    io=IOSpec(bandwidth_mbps=100.0),
    power=PowerProfile(
        idle_w=1.2,
        core_active=CubicPower(static_w=0.04, dynamic_w_per_ghz3=0.18),
        # Cortex-A9 clock-gates aggressively while drained on a DRAM
        # stall, so a stalled core draws well under half its active power.
        core_stall=CubicPower(static_w=0.012, dynamic_w_per_ghz3=0.025),
        mem_active_w=0.3,
        # Dev-board NICs hang off USB/SDIO bridges and draw far more per
        # bit than a server NIC; this is what makes ARM's memcached energy
        # frequency-inelastic (no overlap region for I/O-bound work).
        io_active_w=1.1,
    ),
    description="Low-power ARM Cortex-A9 node (Table 1, right column)",
    caches=(
        ("L1 data", "32KB / core"),
        ("L2", "1MB / node"),
        ("L3", "NA"),
    ),
)

#: High-performance node: six-core AMD Opteron K10 (x86_64), 3 P-states.
AMD_K10 = NodeSpec(
    name="amd-k10",
    isa="x86_64",
    cores=CoreSpec(count=6, pstates_ghz=(0.8, 1.5, 2.1)),
    memory=MemorySpec(
        capacity_bytes=8 * GIB,
        technology="DDR3",
        base_latency_ns=60.0,
        contention_ns_per_core=8.0,
        contention_quadratic_ns=1.0,
    ),
    io=IOSpec(bandwidth_mbps=1000.0),
    power=PowerProfile(
        idle_w=45.0,
        core_active=CubicPower(static_w=0.30, dynamic_w_per_ghz3=0.18),
        core_stall=CubicPower(static_w=0.15, dynamic_w_per_ghz3=0.08),
        mem_active_w=2.0,
        io_active_w=1.0,
    ),
    description="High-performance AMD Opteron K10 node (Table 1, left column)",
    caches=(
        ("L1 data", "64KB / core"),
        ("L2", "512KB / core"),
        ("L3", "6MB / node"),
    ),
)

#: 48-port switch serving the ARM side of the cluster (footnote 5).
ETHERNET_SWITCH = SwitchSpec(name="catalyst-2960", power_w=20.0, ports=48)

#: All node types, keyed by name.
NODE_CATALOG: Dict[str, NodeSpec] = {
    ARM_CORTEX_A9.name: ARM_CORTEX_A9,
    AMD_K10.name: AMD_K10,
}


def node_by_name(name: str) -> NodeSpec:
    """Look up a catalog node, with a helpful error for typos."""
    try:
        return NODE_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown node type {name!r}; available: {sorted(NODE_CATALOG)}"
        ) from None


def table1_rows() -> List[Tuple[str, str, str]]:
    """Rows of the paper's Table 1: (attribute, AMD value, ARM value)."""
    amd, arm = AMD_K10, ARM_CORTEX_A9

    def cache(node: NodeSpec, level: str) -> str:
        for name, value in node.caches:
            if name == level:
                return value
        return "NA"

    return [
        ("ISA", amd.isa, arm.isa),
        ("Cores/node", str(amd.cores.count), str(arm.cores.count)),
        (
            "Clock Freq",
            f"{amd.cores.fmin_ghz}-{amd.cores.fmax_ghz} GHz",
            f"{arm.cores.fmin_ghz}-{arm.cores.fmax_ghz} GHz",
        ),
        ("L1 data cache", cache(amd, "L1 data"), cache(arm, "L1 data")),
        ("L2 cache", cache(amd, "L2"), cache(arm, "L2")),
        ("L3 cache", cache(amd, "L3"), cache(arm, "L3")),
        (
            "Memory",
            f"{amd.memory.capacity_bytes // GIB}GB {amd.memory.technology}",
            f"{arm.memory.capacity_bytes // GIB}GB {arm.memory.technology}",
        ),
        (
            "I/O bandwidth",
            f"{amd.io.bandwidth_mbps:.0f}Mbps",
            f"{arm.io.bandwidth_mbps:.0f}Mbps",
        ),
        (
            "Peak power (calibrated)",
            f"{amd.peak_power_w:.1f}W",
            f"{arm.peak_power_w:.1f}W",
        ),
        (
            "Idle power (calibrated)",
            f"{amd.idle_power_w:.1f}W",
            f"{arm.idle_power_w:.1f}W",
        ),
    ]
