"""Hardware substrate: node specifications, DVFS tables, power profiles.

This package describes the *machines* of the paper's testbed (Table 1):
a low-power ARM Cortex-A9 node and a high-performance AMD Opteron K10
node, plus the Ethernet switch whose power factors into the paper's
ARM-to-AMD power substitution ratio (Section IV-C, footnote 5).

The catalog values are the interface between the analytical model, the
simulator, and the analyses: both consume the same :class:`NodeSpec`, so
predictions and "measurements" are about the same machine.
"""

from repro.hardware.specs import (
    CoreSpec,
    MemorySpec,
    IOSpec,
    NodeSpec,
    SwitchSpec,
)
from repro.hardware.power import PowerProfile, CubicPower
from repro.hardware.catalog import (
    ARM_CORTEX_A9,
    AMD_K10,
    ETHERNET_SWITCH,
    NODE_CATALOG,
    node_by_name,
    table1_rows,
)

__all__ = [
    "CoreSpec",
    "MemorySpec",
    "IOSpec",
    "NodeSpec",
    "SwitchSpec",
    "PowerProfile",
    "CubicPower",
    "ARM_CORTEX_A9",
    "AMD_K10",
    "ETHERNET_SWITCH",
    "NODE_CATALOG",
    "node_by_name",
    "table1_rows",
]
