"""Power characterization of a node's components.

The paper (Section II-A) splits node power into four parts: cores, memory,
the network I/O device, and "the rest of the system" (a fixed draw).
Cores never sleep (C-state 0) but change P-state, so per-core power is a
function of frequency and of activity kind (executing work cycles vs
stalling on cache misses).

Core power follows the classic CMOS law ``P = P_static + C * V^2 * f``;
with voltage scaling roughly linear in frequency this gives a cubic
dynamic term, so we model per-core power as ``a + b * f^3`` (GHz).  The
cubic exponent is what creates the paper's "overlap region" on the Pareto
frontier: below some frequency, running slower stops saving energy because
the fixed idle power is integrated over a longer run time (Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CubicPower:
    """Per-core power law ``P(f) = static_w + dynamic_w_per_ghz3 * f^3``.

    ``f`` is the core clock in GHz.  The two coefficients correspond to
    the leakage/static floor and the switching (dynamic) energy per cycle
    scaled by the square of supply voltage.
    """

    static_w: float
    dynamic_w_per_ghz3: float

    def __post_init__(self) -> None:
        if self.static_w < 0 or self.dynamic_w_per_ghz3 < 0:
            raise ValueError(
                f"power coefficients must be non-negative, got "
                f"static={self.static_w}, dynamic={self.dynamic_w_per_ghz3}"
            )

    def watts(self, f_ghz) -> float:
        """Power draw at clock ``f_ghz`` (scalar or NumPy array)."""
        return self.static_w + self.dynamic_w_per_ghz3 * f_ghz**3


@dataclass(frozen=True)
class PowerProfile:
    """Complete power characterization of one node type.

    Attributes
    ----------
    idle_w:
        Whole-node power with no workload: cores in their idle loop at
        C-state 0, memory in self-refresh, NIC idle, plus the fixed
        rest-of-system draw (PSU losses, motherboard, fans).  This is the
        ``P_idle`` of Eq. 14 and it is burned for the *entire* job
        duration on every powered node.
    core_active:
        Incremental per-core power above idle while retiring work cycles
        (``P_CPU,act``), as a function of frequency.
    core_stall:
        Incremental per-core power above idle while stalled on memory
        (``P_CPU,stall``).  Stalled pipelines clock-gate most functional
        units, so this is well below ``core_active``.
    mem_active_w:
        Incremental memory-subsystem power while servicing requests
        (``P_mem``), from DDR datasheet currents as in the paper.
    io_active_w:
        Incremental NIC power while transferring (``P_I/O``).
    """

    idle_w: float
    core_active: CubicPower
    core_stall: CubicPower
    mem_active_w: float
    io_active_w: float

    def __post_init__(self) -> None:
        if self.idle_w < 0:
            raise ValueError(f"idle power must be non-negative, got {self.idle_w}")
        if self.mem_active_w < 0 or self.io_active_w < 0:
            raise ValueError("memory/I-O active power must be non-negative")

    def peak_w(self, cores: int, fmax_ghz: float) -> float:
        """Peak node draw: all cores active at ``fmax`` plus memory and NIC.

        This is the number the paper's power-substitution ratio is built
        from (60 W per AMD node, 5 W per ARM node).
        """
        if cores < 1:
            raise ValueError(f"a node has at least one core, got {cores}")
        return (
            self.idle_w
            + cores * self.core_active.watts(fmax_ghz)
            + self.mem_active_w
            + self.io_active_w
        )
