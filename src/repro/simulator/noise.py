"""Noise model for the simulated testbed.

Real measurements scatter.  The paper attributes its validation error to
"irregularities among different runs of the same program, and the power
characterization"; this module encodes those irregularities as explicit,
independently switchable magnitudes so tests can reason about them (and
switch them off entirely with :data:`NOISELESS` to check that the
analytical model then agrees with the simulator almost exactly).

Two kinds of randomness:

* **per-phase** noise (instruction count, cycle counts, miss latency)
  averages out over a long run by the central limit theorem -- the
  simulator scales it by ``1/sqrt(batches)`` when aggregating;
* **per-run systematic** factors (thermal/OS state, meter calibration)
  do *not* average out and dominate at scale, which is why real clusters
  show a few percent run-to-run spread even for hour-long jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np


@dataclass(frozen=True)
class NoiseModel:
    """Relative noise magnitudes (standard deviations of multiplicative factors).

    All sigmas are dimensionless fractions; 0.02 means "2% of the mean".
    """

    #: Per-phase spread of the instruction count of one work unit.
    instructions_sigma: float = 0.04
    #: Per-phase spread of work cycles per instruction.
    wpi_sigma: float = 0.025
    #: Per-phase spread of non-memory stall cycles per instruction.
    spi_core_sigma: float = 0.03
    #: Per-phase spread of the average memory miss latency.
    mem_latency_sigma: float = 0.08
    #: Per-phase spread of I/O transfer efficiency.
    io_sigma: float = 0.02
    #: Per-run systematic execution-speed factor (thermal, OS jitter).
    run_systematic_sigma: float = 0.035
    #: Per-run power-meter calibration factor (Yokogawa-class accuracy).
    meter_sigma: float = 0.03
    #: Fixed job startup overhead per node (fork/exec, page faults), seconds.
    startup_overhead_s: float = 5e-4
    #: Spread of the startup overhead.
    startup_sigma: float = 0.3
    #: Fault injection: probability that a run executes on a straggler
    #: node (background daemon, thermal throttling, failing disk).
    straggler_probability: float = 0.0
    #: Execution-time multiplier a straggler suffers.
    straggler_slowdown: float = 3.0

    def __post_init__(self) -> None:
        for name in (
            "instructions_sigma",
            "wpi_sigma",
            "spi_core_sigma",
            "mem_latency_sigma",
            "io_sigma",
            "run_systematic_sigma",
            "meter_sigma",
            "startup_sigma",
        ):
            value = getattr(self, name)
            if not 0.0 <= value < 0.5:
                raise ValueError(f"{name} must be in [0, 0.5), got {value}")
        if self.startup_overhead_s < 0:
            raise ValueError("startup overhead must be non-negative")
        if not 0.0 <= self.straggler_probability <= 1.0:
            raise ValueError("straggler probability must be in [0, 1]")
        if self.straggler_slowdown < 1.0:
            raise ValueError("a straggler is slower, not faster: slowdown >= 1")

    def factor(
        self,
        rng: np.random.Generator,
        sigma: float,
        size=None,
        batches: float = 1.0,
    ):
        """Draw multiplicative factor(s) ``~ N(1, sigma/sqrt(batches))``.

        ``batches`` implements CLT aggregation: the mean of ``B``
        independent phase factors has standard deviation
        ``sigma / sqrt(B)``.  Factors are clipped at 3 sigma to keep them
        positive and physical.
        """
        if sigma == 0.0:
            return 1.0 if size is None else np.ones(size)
        eff = sigma / np.sqrt(max(1.0, batches))
        draw = rng.normal(1.0, eff, size=size)
        return np.clip(draw, 1.0 - 3.0 * eff, 1.0 + 3.0 * eff)

    def scaled(self, scale: float) -> "NoiseModel":
        """A copy with every sigma multiplied by ``scale`` (overheads kept).

        Sigmas cap just below the 0.5 validity bound so large sweep
        scales remain constructible.
        """
        if scale < 0:
            raise ValueError("scale must be non-negative")

        def s(value: float) -> float:
            return min(value * scale, 0.49)

        return replace(
            self,
            instructions_sigma=s(self.instructions_sigma),
            wpi_sigma=s(self.wpi_sigma),
            spi_core_sigma=s(self.spi_core_sigma),
            mem_latency_sigma=s(self.mem_latency_sigma),
            io_sigma=s(self.io_sigma),
            run_systematic_sigma=s(self.run_systematic_sigma),
            meter_sigma=s(self.meter_sigma),
            startup_sigma=s(self.startup_sigma),
        )


#: Default magnitudes, calibrated so model-vs-simulator errors land in the
#: 1-13% band the paper reports in Tables 3 and 4.
CALIBRATED_NOISE = NoiseModel()

#: Everything off: the simulator becomes deterministic (used by tests that
#: check the analytical model against the simulator's mean behaviour).
NOISELESS = NoiseModel(
    instructions_sigma=0.0,
    wpi_sigma=0.0,
    spi_core_sigma=0.0,
    mem_latency_sigma=0.0,
    io_sigma=0.0,
    run_systematic_sigma=0.0,
    meter_sigma=0.0,
    startup_overhead_s=0.0,
    startup_sigma=0.0,
)
