"""Batched node simulation: many runs through one NumPy pass.

:meth:`repro.simulator.node.NodeSimulator.run` is the readable reference:
one Python call per simulated run, ~30 small NumPy operations each.  The
measurement layer (calibration campaigns, the Table 3/4 validation
harness, the sweeps) needs R repetitions x S machine settings of those
runs, and the Python-call overhead dominates the arithmetic.

:func:`run_batch` simulates all ``N = R * S`` runs in one pass: every
noise factor is drawn as an ``(N, B)`` (or ``(N,)``) array -- one row per
run, from that run's *own* random stream -- and the phase arithmetic is
evaluated on the stacked arrays.  Two invariants make the batch a drop-in
replacement rather than an approximation:

* **Seed-tree determinism**: row ``i`` consumes its generator
  ``seeds[i]`` with exactly the draw sequence of the scalar path
  (systematic factor, meter factor, optional straggler coin, four
  per-phase factor vectors, I/O factor, startup factor), so row ``i`` is
  **bit-identical** to ``run(..., seed=seeds[i])`` -- property-tested in
  ``tests/property/test_batch_properties.py``.
* **Scalar-exact setting constants**: the per-setting deterministic
  quantities (active cores, clock, memory latency, component powers) are
  computed per *unique* setting with the very same Python-float
  expressions as the scalar path, then scattered to rows, so no
  vectorized re-derivation can drift in the last bit.

Elementwise float64 operations are IEEE-deterministic and the row-wise
reductions (`sum` along the last axis of a C-contiguous array) reduce in
the same order as the scalar path's 1-D sums, which is why bit-identity
holds rather than merely tolerance-level agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.simulator.counters import CounterSet
from repro.util.rng import RngStream, SeedLike, ensure_rng
from repro.util.seedtree import seat_generators
from repro.util.units import ghz_to_hz
from repro.workloads.base import WorkloadSpec


def _row_rngs(seeds: Sequence[SeedLike]):
    """Per-row generators, derived vectorized when the seeds allow it.

    A batch seeded by ``RngStream`` children (the common campaign shape)
    skips numpy's per-child ``SeedSequence``/``PCG64`` construction:
    every child state is computed in one :mod:`repro.util.seedtree`
    array pass and a single shared generator is re-seated per row.  The
    yielded generators are bit-identical to ``seed.rng`` but only valid
    until the next row is requested -- exactly how the draw loops below
    consume them.  Any other seed type falls back to ``ensure_rng``.
    """
    word_rows = []
    for seed in seeds:
        words = seed.entropy_words() if isinstance(seed, RngStream) else None
        if words is None:
            return (ensure_rng(seed) for seed in seeds)
        word_rows.append(words)
    return seat_generators(word_rows)


@dataclass(frozen=True)
class BatchRunResult:
    """Observables of ``N`` node runs, as parallel arrays of length ``N``.

    Field semantics match :class:`repro.simulator.node.NodeRunResult`
    row-for-row; :meth:`row` materializes one run in the scalar form.
    """

    time_s: np.ndarray
    t_cpu_s: np.ndarray
    t_core_s: np.ndarray
    t_mem_s: np.ndarray
    t_io_s: np.ndarray
    energy_j: np.ndarray
    mean_power_w: np.ndarray
    #: Counter arrays, mirroring :class:`CounterSet` fields.
    instructions: np.ndarray
    work_cycles: np.ndarray
    core_stall_cycles: np.ndarray
    mem_stall_cycles: np.ndarray
    io_bytes: np.ndarray
    active_cores: np.ndarray
    total_cores: np.ndarray
    f_ghz: np.ndarray

    def __post_init__(self) -> None:
        n = self.time_s.shape[0]
        for name in (
            "t_cpu_s", "t_core_s", "t_mem_s", "t_io_s", "energy_j",
            "mean_power_w", "instructions", "work_cycles",
            "core_stall_cycles", "mem_stall_cycles", "io_bytes",
            "active_cores", "total_cores", "f_ghz",
        ):
            if getattr(self, name).shape != (n,):
                raise ValueError(f"batch field {name} is not parallel to time_s")
        if np.any(self.time_s < 0) or np.any(self.energy_j < 0):
            raise ValueError("negative time or energy from batched simulator")

    def __len__(self) -> int:
        return int(self.time_s.shape[0])

    def counters(self, i: int) -> CounterSet:
        """Row ``i``'s event counters, as perf would report them."""
        return CounterSet(
            instructions=float(self.instructions[i]),
            work_cycles=float(self.work_cycles[i]),
            core_stall_cycles=float(self.core_stall_cycles[i]),
            mem_stall_cycles=float(self.mem_stall_cycles[i]),
            io_bytes=float(self.io_bytes[i]),
            active_cores=float(self.active_cores[i]),
            total_cores=int(self.total_cores[i]),
            f_ghz=float(self.f_ghz[i]),
        )

    def row(self, i: int):
        """Row ``i`` as a scalar :class:`NodeRunResult` (compat view)."""
        from repro.simulator.node import NodeRunResult

        return NodeRunResult(
            time_s=float(self.time_s[i]),
            t_cpu_s=float(self.t_cpu_s[i]),
            t_core_s=float(self.t_core_s[i]),
            t_mem_s=float(self.t_mem_s[i]),
            t_io_s=float(self.t_io_s[i]),
            energy_j=float(self.energy_j[i]),
            counters=self.counters(i),
            mean_power_w=float(self.mean_power_w[i]),
        )


def run_batch(
    sim,
    workload: WorkloadSpec,
    units: float,
    settings: Sequence[Tuple[int, float]],
    seeds: Sequence[SeedLike],
    arrival_floor_s: float = 0.0,
) -> BatchRunResult:
    """Simulate ``len(settings)`` runs of ``sim``'s node in one NumPy pass.

    Parameters
    ----------
    sim:
        The :class:`~repro.simulator.node.NodeSimulator` to batch.
    workload, units, arrival_floor_s:
        As in :meth:`~repro.simulator.node.NodeSimulator.run`; ``units``
        is shared by every row (the calibration/validation shape).
    settings:
        One ``(cores, f_ghz)`` machine setting per row; settings may
        repeat freely (repetitions of one setting are just extra rows).
    seeds:
        One RNG (or seed) per row, consumed exactly as the scalar path
        would -- pass ``RngStream`` children to reproduce a scalar
        campaign bit-for-bit.
    """
    if len(settings) != len(seeds):
        raise ValueError(
            f"need one seed per row: {len(settings)} settings, {len(seeds)} seeds"
        )
    if len(settings) == 0:
        raise ValueError("batch needs at least one row")
    if units < 0:
        raise ValueError(f"units must be non-negative, got {units}")
    if arrival_floor_s < 0:
        raise ValueError("arrival floor must be non-negative")
    node = sim.node
    noise = sim.noise
    profile = workload.profile_for(node.name)
    n = len(settings)

    cores_arr = np.asarray([int(c) for c, _ in settings])
    f_arr = np.asarray([float(f) for _, f in settings])
    for cores, f in set(settings):
        node.cores.validate_setting(int(cores), float(f))

    if units == 0:
        zeros = np.zeros(n)
        return BatchRunResult(
            time_s=zeros, t_cpu_s=zeros, t_core_s=zeros, t_mem_s=zeros,
            t_io_s=zeros, energy_j=zeros, mean_power_w=zeros,
            instructions=zeros, work_cycles=zeros, core_stall_cycles=zeros,
            mem_stall_cycles=zeros, io_bytes=zeros, active_cores=zeros,
            total_cores=cores_arr.copy(), f_ghz=f_arr.copy(),
        )

    # ---- per-row noise draws, one run's stream per row ------------------
    # The scalar path consumes its RNG as a fixed sequence of normal
    # draws (systematic, meter, four per-phase vectors, I/O, startup)
    # split by the optional straggler coin (a uniform draw).  Since
    # ``rng.normal(loc, scale, k)`` consumes the bit stream exactly like
    # ``loc + scale * standard_normal(k)`` and consecutive
    # ``standard_normal`` calls concatenate, each segment collapses to
    # ONE draw call per row; the loc/scale/clip transforms then run
    # vectorized over all rows at once, preserving bit-identity.
    B = sim.n_batches

    def eff(sigma: float, batches: float = 1.0) -> float:
        # Must match NoiseModel.factor's effective-sigma expression.
        return sigma / np.sqrt(max(1.0, batches))

    pre: List[Tuple[str, float, int]] = []   # draws before the coin
    post: List[Tuple[str, float, int]] = []  # draws after the coin
    if noise.run_systematic_sigma > 0.0:
        pre.append(("run", eff(noise.run_systematic_sigma), 1))
    if noise.meter_sigma > 0.0:
        pre.append(("meter", eff(noise.meter_sigma), 1))
    if noise.instructions_sigma > 0.0:
        post.append(("instr", eff(noise.instructions_sigma), B))
    if noise.wpi_sigma > 0.0:
        post.append(("wpi", eff(noise.wpi_sigma), B))
    if noise.spi_core_sigma > 0.0:
        post.append(("spi_core", eff(noise.spi_core_sigma), B))
    if noise.mem_latency_sigma > 0.0:
        post.append(("latency", eff(noise.mem_latency_sigma), B))
    if noise.io_sigma > 0.0:
        post.append(("io", eff(noise.io_sigma, batches=B), 1))
    if noise.startup_sigma > 0.0:
        post.append(("startup", eff(noise.startup_sigma), 1))
    k1 = sum(width for _, _, width in pre)
    k2 = sum(width for _, _, width in post)
    has_coin = noise.straggler_probability > 0.0

    z1 = np.empty((n, k1))
    z2 = np.empty((n, k2))
    coin = np.empty(n)
    if has_coin:
        for i, rng in enumerate(_row_rngs(seeds)):
            if k1:
                z1[i] = rng.standard_normal(k1)
            coin[i] = rng.random()
            if k2:
                z2[i] = rng.standard_normal(k2)
    elif k1 + k2 > 0:
        # Without the coin the whole sequence is one normal block: a
        # single fused draw per row.
        z = np.empty((n, k1 + k2))
        for i, rng in enumerate(_row_rngs(seeds)):
            z[i] = rng.standard_normal(k1 + k2)
        z1 = z[:, :k1]
        z2 = z[:, k1:]

    def factor_block(plan, z, name: str, width: int) -> np.ndarray:
        """The named noise factor for every row; ones when sigma == 0."""
        col0 = 0
        for block_name, e, w in plan:
            if block_name == name:
                block = 1.0 + e * z[:, col0:col0 + w]
                block = np.clip(block, 1.0 - 3.0 * e, 1.0 + 3.0 * e)
                return block[:, 0] if width == 1 else block
            col0 += w
        return np.ones(n) if width == 1 else np.ones((n, width))

    run_factor = factor_block(pre, z1, "run", 1)
    meter_factor = factor_block(pre, z1, "meter", 1)
    straggler = np.ones(n)
    if has_coin:
        straggler[coin < noise.straggler_probability] = noise.straggler_slowdown
    instr_f = factor_block(post, z2, "instr", B)
    wpi_f = factor_block(post, z2, "wpi", B)
    spi_core_f = factor_block(post, z2, "spi_core", B)
    latency_f = factor_block(post, z2, "latency", B)
    io_f = factor_block(post, z2, "io", 1)
    startup_f = factor_block(post, z2, "startup", 1)

    # ---- per-setting deterministic constants, scalar-exact --------------
    # Computed once per unique setting with the scalar path's own
    # Python-float expressions, then scattered to rows.
    unique: Dict[Tuple[int, float], int] = {}
    row_of = np.empty(n, dtype=np.intp)
    for i, s in enumerate(settings):
        row_of[i] = unique.setdefault(s, len(unique))
    table = np.empty((len(unique), 5))
    for (cores, f), u in unique.items():
        c_act = profile.cpu_utilization * cores
        f_hz = ghz_to_hz(f)
        f_ratio = f / node.cores.fmax_ghz
        latency0 = node.memory.latency_ns(c_act, f_ratio)
        p_act = node.power.core_active.watts(f)
        p_stall = node.power.core_stall.watts(f)
        table[u] = (c_act, f_hz, latency0, p_act, p_stall)
    c_act, f_hz, latency0, p_act, p_stall = table[row_of].T.copy()

    # ---- CPU side (mirrors NodeSimulator.run term-for-term) -------------
    col = np.newaxis  # (n,) -> (n, 1) broadcasts against the (n, B) draws
    units_b = units / B
    instr_b = units_b * profile.instructions_per_unit * instr_f * run_factor[:, col]
    instr_core_b = instr_b / c_act[:, col]
    work_cycles_core_b = instr_core_b * profile.wpi * straggler[:, col] * wpi_f
    core_stall_cycles_b = (
        instr_core_b * profile.spi_core * straggler[:, col] * spi_core_f
    )
    latency_ns_b = latency0[:, col] * straggler[:, col] * latency_f
    misses_core_b = instr_core_b * profile.llc_misses_per_instr
    mem_stall_s_b = misses_core_b * latency_ns_b * 1e-9

    t_core_b = (work_cycles_core_b + core_stall_cycles_b) / f_hz[:, col]
    t_mem_b = work_cycles_core_b / f_hz[:, col] + mem_stall_s_b
    t_cpu = np.sum(np.maximum(t_core_b, t_mem_b), axis=1)
    t_core = np.sum(t_core_b, axis=1)
    t_mem = np.sum(t_mem_b, axis=1)
    t_work = np.sum(work_cycles_core_b, axis=1) / f_hz

    # ---- I/O side -------------------------------------------------------
    io_bytes = units * workload.io_bytes_per_unit * io_f
    bandwidth = node.io.bandwidth_bytes_per_s
    t_transfer = io_bytes / bandwidth
    t_io = np.maximum(t_transfer, arrival_floor_s)

    # ---- wall time and energy -------------------------------------------
    startup = noise.startup_overhead_s * startup_f
    time_s = np.maximum(t_cpu, t_io) + startup

    t_stall_total = t_cpu - t_work
    e_cores = c_act * (p_act * t_work + p_stall * t_stall_total)
    touches_memory = profile.llc_misses_per_instr > 0
    e_mem = (
        node.power.mem_active_w * np.minimum(t_mem, time_s)
        if touches_memory
        else np.zeros(n)
    )
    e_io = node.power.io_active_w * np.minimum(t_transfer, time_s)
    e_idle = node.power.idle_w * time_s
    energy_j = (e_cores + e_mem + e_io + e_idle) * meter_factor

    return BatchRunResult(
        time_s=time_s,
        t_cpu_s=t_cpu,
        t_core_s=t_core,
        t_mem_s=t_mem,
        t_io_s=t_io,
        energy_j=energy_j,
        mean_power_w=np.divide(
            energy_j, time_s, out=np.zeros(n), where=time_s > 0
        ),
        instructions=np.sum(instr_b, axis=1),
        work_cycles=np.sum(work_cycles_core_b, axis=1) * c_act,
        core_stall_cycles=np.sum(core_stall_cycles_b, axis=1) * c_act,
        mem_stall_cycles=np.sum(mem_stall_s_b, axis=1) * f_hz * c_act,
        io_bytes=io_bytes,
        active_cores=c_act,
        total_cores=cores_arr,
        f_ghz=f_arr,
    )


def repeat_settings(
    settings: Sequence[Tuple[int, float]], repetitions: int
) -> List[Tuple[int, float]]:
    """Row list for ``repetitions`` consecutive runs per setting.

    The order matches the measurement loops' historical iteration
    (setting-major, repetition-minor), which is what keeps sequential
    ``RngStream.child(label, run_index)`` seeds aligned between the
    scalar and batched paths.
    """
    if repetitions < 1:
        raise ValueError("need at least one repetition")
    return [s for s in settings for _ in range(repetitions)]
