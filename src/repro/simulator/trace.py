"""Execution tracing: component timelines for simulated runs.

A real testbed gives you more than totals -- you can watch *when* each
component was busy.  This module reconstructs per-component busy
intervals for node and cluster runs (consistent with the simulator's
aggregate accounting) and exports them in Chrome's ``chrome://tracing``
/ Perfetto JSON format, so a reproduced run can be inspected on a
timeline like a real one.

Granularity matches the simulator: per phase-batch for a node's CPU and
memory activity, one interval per DMA transfer, one per idle tail in a
cluster job.  The timelines are *derived views* -- tests assert that
summing a trace's intervals reproduces the run's reported times exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.simulator.cluster import JobResult
from repro.simulator.node import NodeRunResult


@dataclass(frozen=True)
class Span:
    """One busy interval of one component."""

    track: str  # e.g. "node0/cpu", "node0/io", "node1/idle-wait"
    name: str  # human label, e.g. "phase 3/64", "DMA", "idle tail"
    start_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s < 0:
            raise ValueError("spans need non-negative start and duration")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass
class Trace:
    """A collection of spans with export helpers."""

    spans: List[Span] = field(default_factory=list)

    def add(self, span: Span) -> None:
        self.spans.append(span)

    def tracks(self) -> List[str]:
        """Distinct track names, in first-appearance order."""
        seen: Dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.track, None)
        return list(seen)

    def busy_time(self, track: str) -> float:
        """Total busy seconds on one track."""
        return sum(s.duration_s for s in self.spans if s.track == track)

    def end_s(self) -> float:
        """Timestamp of the last span end (0 for an empty trace)."""
        return max((s.end_s for s in self.spans), default=0.0)

    def to_chrome_trace(self) -> List[dict]:
        """Chrome tracing 'X' (complete) events, microsecond timestamps."""
        events = []
        pids = {track: i + 1 for i, track in enumerate(self.tracks())}
        for span in self.spans:
            events.append(
                {
                    "name": span.name,
                    "cat": span.track,
                    "ph": "X",
                    "ts": span.start_s * 1e6,
                    "dur": span.duration_s * 1e6,
                    "pid": pids[span.track],
                    "tid": 1,
                }
            )
        return events

    def write_chrome_trace(self, path: Union[str, Path]) -> Path:
        """Write a ``chrome://tracing`` / Perfetto-loadable JSON file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"traceEvents": self.to_chrome_trace()}
        path.write_text(json.dumps(payload, indent=1))
        return path

    def render_ascii(self, width: int = 64) -> str:
        """A quick terminal Gantt view: one row per track."""
        horizon = self.end_s()
        if horizon <= 0:
            return "(empty trace)"
        lines = []
        label_width = max(len(t) for t in self.tracks())
        for track in self.tracks():
            row = [" "] * width
            for span in self.spans:
                if span.track != track:
                    continue
                lo = int(span.start_s / horizon * (width - 1))
                hi = int(span.end_s / horizon * (width - 1))
                for i in range(lo, max(hi, lo) + 1):
                    row[i] = "#"
            lines.append(f"{track.ljust(label_width)} |{''.join(row)}|")
        lines.append(
            f"{' ' * label_width}  0 {'-' * (width - 10)} {horizon * 1e3:.1f} ms"
        )
        return "\n".join(lines)


def trace_node_run(
    result: NodeRunResult,
    label: str = "node",
    start_s: float = 0.0,
) -> Trace:
    """Reconstruct a node run's component timeline from its observables.

    CPU and memory activity are laid out as the run's phase structure
    implies (CPU response from ``start``; memory activity embedded in
    it); the DMA transfer runs concurrently from the start (memory-mapped
    I/O, Section II-A).  Interval totals equal the result's reported
    response times exactly.
    """
    trace = Trace()
    if result.t_cpu_s > 0:
        trace.add(
            Span(
                track=f"{label}/cpu",
                name="CPU response",
                start_s=start_s,
                duration_s=result.t_cpu_s,
            )
        )
    if result.t_mem_s > 0:
        trace.add(
            Span(
                track=f"{label}/memory",
                name="memory response",
                start_s=start_s,
                duration_s=min(result.t_mem_s, result.t_cpu_s)
                if result.t_cpu_s > 0
                else result.t_mem_s,
            )
        )
    if result.t_io_s > 0:
        trace.add(
            Span(
                track=f"{label}/io",
                name="DMA transfer",
                start_s=start_s,
                duration_s=result.t_io_s,
            )
        )
    tail = result.time_s - max(result.t_cpu_s, result.t_io_s)
    if tail > 0:
        trace.add(
            Span(
                track=f"{label}/overhead",
                name="startup/teardown",
                start_s=start_s + max(result.t_cpu_s, result.t_io_s),
                duration_s=tail,
            )
        )
    return trace


def trace_job(result: JobResult, group_names: Optional[Sequence[str]] = None) -> Trace:
    """Timeline of a cluster job: every node's run plus its idle tail.

    The idle tails make the mix-and-match story visible: a perfectly
    matched job shows hairline tails, a naive split shows a wall of
    ``idle-wait`` on the early group.
    """
    trace = Trace()
    for (g_index, n_index), node_result in sorted(result.node_results.items()):
        group = (
            group_names[g_index]
            if group_names is not None and g_index < len(group_names)
            else f"g{g_index}"
        )
        label = f"{group}/n{n_index}"
        for span in trace_node_run(node_result, label=label).spans:
            trace.add(span)
        tail = result.time_s - node_result.time_s
        if tail > 1e-12:
            trace.add(
                Span(
                    track=f"{label}/idle-wait",
                    name="waiting for job completion",
                    start_s=node_result.time_s,
                    duration_s=tail,
                )
            )
    return trace
