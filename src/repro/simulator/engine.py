"""A minimal discrete-event simulation kernel.

Used by the queueing validation simulator (:mod:`repro.queueing.simulation`)
and available for extensions.  Deliberately tiny: a time-ordered heap of
events, each carrying a callback; no processes, no channels.  Determinism
is guaranteed by (time, sequence-number) ordering, so events scheduled at
the same instant fire in scheduling order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback; ordering is (time, seq)."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it when popped."""
        self.cancelled = True


class EventLoop:
    """Time-ordered event executor.

    Example
    -------
    >>> loop = EventLoop()
    >>> seen = []
    >>> _ = loop.schedule(2.0, lambda: seen.append("late"))
    >>> _ = loop.schedule(1.0, lambda: seen.append("early"))
    >>> loop.run()
    >>> seen
    ['early', 'late']
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self.now: float = 0.0
        self._processed = 0

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past: t={time} < now={self.now}"
            )
        event = Event(time=time, seq=next(self._counter), action=action)
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` ``delay`` seconds from the current time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.now + delay, action)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Execute events in time order.

        Parameters
        ----------
        until:
            Stop once the next event is strictly later than this time
            (clock advances to ``until``).  ``None`` drains the heap.
        max_events:
            Safety valve against runaway self-scheduling loops.
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                raise RuntimeError(
                    f"event budget exhausted after {executed} events at t={self.now}"
                )
            if until is not None and self._heap[0].time > until:
                self.now = until
                return
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.action()
            self._processed += 1
            executed += 1
        if until is not None:
            self.now = max(self.now, until)
