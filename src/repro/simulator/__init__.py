"""Simulated heterogeneous-cluster testbed.

The paper validates its analytical model against *measurements* of a real
ARM + AMD cluster instrumented with ``perf`` and a Yokogawa WT210 power
meter.  We have no hardware, so this package is the measurement
substrate: a stochastic, phase-level simulator that produces the same
observables a real testbed would --

* wall-clock execution times per node and per job;
* hardware-event counters (instructions, work cycles, non-memory stall
  cycles, memory stall cycles), as ``perf`` would report them;
* sampled node power and integrated energy, as a bench power meter would.

The simulator is deliberately *richer* than the analytical model: it adds
per-phase noise, a per-run systematic factor (thermal/OS state), job
startup overhead, a quadratic memory-contention term, and meter error.
Those are exactly the effects the paper blames for its <=15% validation
error ("irregularities among different runs of the same program, and the
power characterization"), so model-vs-simulator validation in
:mod:`repro.validation` is a meaningful exercise, not a tautology.

Performance note (per the project's HPC guides): phases are executed in
vectorized NumPy batches with CLT-scaled noise, never one Python loop
iteration per work unit, so simulating 2^31 EP random numbers costs the
same as simulating 2^10.
"""

from repro.simulator.noise import NoiseModel, CALIBRATED_NOISE, NOISELESS
from repro.simulator.batch import BatchRunResult, repeat_settings, run_batch
from repro.simulator.counters import CounterSet
from repro.simulator.node import NodeRunResult, NodeSimulator
from repro.simulator.power_meter import PowerMeter, PowerSample
from repro.simulator.cluster import (
    ClusterSimulator,
    GroupAssignment,
    JobResult,
)
from repro.simulator.engine import Event, EventLoop
from repro.simulator.trace import Span, Trace, trace_job, trace_node_run

__all__ = [
    "NoiseModel",
    "CALIBRATED_NOISE",
    "NOISELESS",
    "BatchRunResult",
    "repeat_settings",
    "run_batch",
    "CounterSet",
    "NodeRunResult",
    "NodeSimulator",
    "PowerMeter",
    "PowerSample",
    "ClusterSimulator",
    "GroupAssignment",
    "JobResult",
    "Event",
    "EventLoop",
    "Span",
    "Trace",
    "trace_job",
    "trace_node_run",
]
