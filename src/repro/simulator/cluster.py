"""Multi-node job execution on the simulated testbed.

A *job* is ``W`` work units of one workload, split across groups of
identical nodes (one group per node type).  Within a group the units are
divided equally (the paper's policy); across groups the caller chooses
the split -- the whole point of mix-and-match is choosing it so both
groups finish together.

The cluster layer adds the one effect individual nodes cannot see:
**imbalance idling**.  The job is done when its *last* node finishes;
nodes that finish earlier sit idle at ``P_idle`` until then (datacenter
cores stay in C-state 0, Section II-A).  Mix-and-match exists precisely
to drive this term to zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.hardware.specs import NodeSpec
from repro.simulator.node import NodeRunResult, NodeSimulator
from repro.simulator.noise import CALIBRATED_NOISE, NoiseModel
from repro.util.rng import RngStream, SeedLike
from repro.workloads.base import WorkloadSpec


@dataclass(frozen=True)
class GroupAssignment:
    """Work assigned to one group of identical nodes.

    Attributes
    ----------
    node:
        The node type of every machine in the group.
    n_nodes:
        Group size; zero is allowed (the group is simply absent).
    cores, f_ghz:
        Machine setting applied uniformly across the group.
    units:
        Total work units for the whole group (divided equally).
    """

    node: NodeSpec
    n_nodes: int
    cores: int
    f_ghz: float
    units: float

    def __post_init__(self) -> None:
        if self.n_nodes < 0:
            raise ValueError(f"group size must be non-negative, got {self.n_nodes}")
        if self.units < 0:
            raise ValueError(f"units must be non-negative, got {self.units}")
        if self.n_nodes == 0 and self.units > 0:
            raise ValueError("cannot assign work to an empty group")
        if self.n_nodes > 0:
            self.node.cores.validate_setting(self.cores, self.f_ghz)


@dataclass(frozen=True)
class JobResult:
    """Outcome of one job execution on the cluster."""

    #: Job completion time: the slowest node's finish, seconds.
    time_s: float
    #: Total energy over all nodes, including imbalance idling, joules.
    energy_j: float
    #: Per-group completion times (group order as submitted), seconds.
    group_times_s: tuple
    #: Per-group energy including the group's imbalance idling, joules.
    group_energies_j: tuple
    #: Energy burned by nodes idling after their own work finished, joules.
    imbalance_energy_j: float
    #: Per-node results, keyed by (group_index, node_index).
    node_results: Dict[tuple, NodeRunResult] = field(repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.time_s < 0 or self.energy_j < 0:
            raise ValueError("negative job time or energy")


class ClusterSimulator:
    """Runs jobs over heterogeneous groups of simulated nodes."""

    def __init__(self, noise: NoiseModel = CALIBRATED_NOISE, n_batches: int = 64):
        self.noise = noise
        self.n_batches = n_batches

    def run_job(
        self,
        workload: WorkloadSpec,
        assignments: Sequence[GroupAssignment],
        seed: SeedLike = 0,
        batched: bool = True,
    ) -> JobResult:
        """Execute one job and return cluster-level observables.

        Every node gets an independent noise stream derived from ``seed``,
        so two nodes of the same type do not finish at exactly the same
        instant -- the residual imbalance a real cluster would show.
        ``batched`` runs each group's nodes through one
        :meth:`NodeSimulator.run_batch` pass (same seed tree, bit-identical
        observables); the scalar loop is the readable reference.
        """
        active = [a for a in assignments if a.n_nodes > 0]
        if not active:
            raise ValueError("job needs at least one non-empty node group")
        total_units = sum(a.units for a in active)
        if total_units <= 0:
            raise ValueError("job must contain positive total work")

        stream = RngStream(seed)
        per_node: Dict[tuple, NodeRunResult] = {}
        group_raw_times: List[List[float]] = []
        group_raw_energies: List[float] = []

        for g_index, assignment in enumerate(active):
            sim = NodeSimulator(
                assignment.node, noise=self.noise, n_batches=self.n_batches
            )
            arrival_floor = self._arrival_floor(workload, assignment)
            units_per_node = assignment.units / assignment.n_nodes
            times: List[float] = []
            energy = 0.0
            if batched:
                settings = [(assignment.cores, assignment.f_ghz)] * assignment.n_nodes
                seeds = [
                    stream.child(f"g{g_index}-node", i)
                    for i in range(assignment.n_nodes)
                ]
                batch = sim.run_batch(
                    workload,
                    units_per_node,
                    settings,
                    seeds,
                    arrival_floor_s=arrival_floor,
                )
                for i in range(assignment.n_nodes):
                    per_node[(g_index, i)] = batch.row(i)
                    times.append(float(batch.time_s[i]))
                    energy += float(batch.energy_j[i])
            else:
                for i in range(assignment.n_nodes):
                    node_rng = stream.child(f"g{g_index}-node", i).rng
                    result = sim.run(
                        workload,
                        units_per_node,
                        assignment.cores,
                        assignment.f_ghz,
                        seed=node_rng,
                        arrival_floor_s=arrival_floor,
                    )
                    per_node[(g_index, i)] = result
                    times.append(result.time_s)
                    energy += result.energy_j
            group_raw_times.append(times)
            group_raw_energies.append(energy)

        job_time = max(max(times) for times in group_raw_times)

        # Imbalance idling: every node waits at P_idle from its own finish
        # until the job completes.
        imbalance = 0.0
        group_energies: List[float] = []
        group_times: List[float] = []
        for assignment, times, energy in zip(
            active, group_raw_times, group_raw_energies
        ):
            idle_w = assignment.node.power.idle_w
            group_idle = sum((job_time - t) * idle_w for t in times)
            imbalance += group_idle
            group_energies.append(energy + group_idle)
            group_times.append(max(times))

        return JobResult(
            time_s=job_time,
            energy_j=sum(group_energies),
            group_times_s=tuple(group_times),
            group_energies_j=tuple(group_energies),
            imbalance_energy_j=imbalance,
            node_results=per_node,
        )

    @staticmethod
    def _arrival_floor(workload: WorkloadSpec, assignment: GroupAssignment) -> float:
        """Per-node I/O arrival floor: ``(1/lambda_IO) / n`` of Eq. 11."""
        if workload.io_job_arrival_rate is None:
            return 0.0
        return (1.0 / workload.io_job_arrival_rate) / assignment.n_nodes
