"""Phase-level simulation of one node executing a batch of work units.

Execution semantics (Section II-A of the paper, made operational):

* the node runs ``c`` cores at clock ``f``; a workload keeps on average
  ``c_act = U_CPU * c`` of them concurrently busy;
* each work unit retires ``IPs`` instructions costing work cycles,
  non-memory stall cycles, and LLC misses whose service time is set by
  the memory controller's contention-dependent latency;
* cores are out-of-order: within a phase, memory waiting overlaps with
  useful work, so per-phase CPU time is ``max(core time, memory time)``
  (Eq. 3), and phases are summed;
* the NIC moves ``io_bytes_per_unit`` per unit via DMA, fully overlapped
  with CPU activity, so node time is ``max(CPU response, I/O response)``
  (Eq. 2);
* energy integrates component power over component busy times plus the
  node's idle floor over the whole run, then passes through the meter's
  calibration error.

The simulator deliberately includes effects the analytical model does not
capture (see :mod:`repro.simulator.noise`): summing per-phase maxima is
not the same as taking the max of sums; the memory latency has a small
quadratic contention term; runs carry a systematic speed factor and a
startup overhead.  These produce the paper-sized validation errors.

Vectorization: a run is simulated as ``n_batches`` phase groups in NumPy
arrays.  Per-batch noise is scaled by the CLT so results are statistically
identical to simulating every phase -- simulating 2^31 units costs the
same as 2^10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.specs import NodeSpec
from repro.simulator.counters import CounterSet
from repro.simulator.noise import CALIBRATED_NOISE, NoiseModel
from repro.util.rng import SeedLike, ensure_rng
from repro.util.units import ghz_to_hz
from repro.workloads.base import WorkloadSpec


@dataclass(frozen=True)
class NodeRunResult:
    """Everything a testbed would let you observe about one node's run."""

    #: Wall-clock job time on this node, seconds.
    time_s: float
    #: CPU response time (cores executing or waiting on memory), seconds.
    t_cpu_s: float
    #: Core-only response time (work + non-memory stalls), seconds.
    t_core_s: float
    #: Memory response time (work + memory stalls), seconds.
    t_mem_s: float
    #: I/O response time, seconds.
    t_io_s: float
    #: Measured energy for the run, joules (includes meter error).
    energy_j: float
    #: Event counters, as perf would report them.
    counters: CounterSet
    #: Average node power over the run, watts.
    mean_power_w: float

    def __post_init__(self) -> None:
        if self.time_s < 0 or self.energy_j < 0:
            raise ValueError("negative time or energy from simulator")


class NodeSimulator:
    """Simulates one node type executing work units.

    Parameters
    ----------
    node:
        The machine to simulate.
    noise:
        Measurement/irregularity magnitudes; default is the calibrated
        testbed-like model.
    n_batches:
        Number of phase groups a run is decomposed into.  More batches
        track per-phase variability at higher cost; 64 reproduces the
        statistics of per-phase simulation to well under the systematic
        noise floor.
    """

    def __init__(
        self,
        node: NodeSpec,
        noise: NoiseModel = CALIBRATED_NOISE,
        n_batches: int = 64,
    ):
        if n_batches < 1:
            raise ValueError(f"need at least one batch, got {n_batches}")
        self.node = node
        self.noise = noise
        self.n_batches = n_batches

    def run(
        self,
        workload: WorkloadSpec,
        units: float,
        cores: int,
        f_ghz: float,
        seed: SeedLike = None,
        arrival_floor_s: float = 0.0,
    ) -> NodeRunResult:
        """Execute ``units`` work units and return the observables.

        Parameters
        ----------
        workload:
            What to run; must carry a profile for this node type.
        units:
            Work units assigned to *this node*.
        cores, f_ghz:
            Machine setting; must be a valid P-state / core count.
        seed:
            RNG or seed for this run's noise.
        arrival_floor_s:
            Per-node lower bound on I/O response time contributed by the
            external request arrival process (the ``(1/lambda_IO)/n`` term
            of Eq. 11, already divided by the group's node count by the
            cluster layer).
        """
        if units < 0:
            raise ValueError(f"units must be non-negative, got {units}")
        if arrival_floor_s < 0:
            raise ValueError("arrival floor must be non-negative")
        self.node.cores.validate_setting(cores, f_ghz)
        profile = workload.profile_for(self.node.name)
        rng = ensure_rng(seed)
        noise = self.noise

        if units == 0:
            return self._empty_result(cores, f_ghz)

        c_act = profile.cpu_utilization * cores
        f_hz = ghz_to_hz(f_ghz)
        f_ratio = f_ghz / self.node.cores.fmax_ghz

        # Per-run systematic factors: one slow-down applied to all cycle
        # costs (thermal/OS state), one meter calibration factor.
        run_factor = float(noise.factor(rng, noise.run_systematic_sigma))
        meter_factor = float(noise.factor(rng, noise.meter_sigma))
        # Fault injection: a straggler (thermal throttling, background
        # daemon) burns more cycles per instruction and sees slower
        # memory; its instruction count is unchanged, as perf would show.
        straggler_factor = 1.0
        if (
            noise.straggler_probability > 0.0
            and rng.random() < noise.straggler_probability
        ):
            straggler_factor = noise.straggler_slowdown

        # ---- CPU side: n_batches phase groups, vectorized -------------
        B = self.n_batches
        units_b = units / B  # fractional units per batch are fine: units >> B
        instr_b = (
            units_b
            * profile.instructions_per_unit
            * noise.factor(rng, noise.instructions_sigma, size=B)
            * run_factor
        )
        # Instructions divide among the active cores; per-core counts set
        # the critical path.
        instr_core_b = instr_b / c_act
        work_cycles_core_b = (
            instr_core_b
            * profile.wpi
            * straggler_factor
            * noise.factor(rng, noise.wpi_sigma, size=B)
        )
        core_stall_cycles_b = (
            instr_core_b
            * profile.spi_core
            * straggler_factor
            * noise.factor(rng, noise.spi_core_sigma, size=B)
        )
        latency_ns_b = (
            self.node.memory.latency_ns(c_act, f_ratio)
            * straggler_factor
            * noise.factor(rng, noise.mem_latency_sigma, size=B)
        )
        misses_core_b = instr_core_b * profile.llc_misses_per_instr
        mem_stall_s_b = misses_core_b * latency_ns_b * 1e-9

        t_core_b = (work_cycles_core_b + core_stall_cycles_b) / f_hz
        t_mem_b = work_cycles_core_b / f_hz + mem_stall_s_b
        # Out-of-order overlap within each phase group (Eq. 3 at phase
        # granularity); the job's CPU response is the sum over phases.
        t_cpu = float(np.sum(np.maximum(t_core_b, t_mem_b)))
        t_core = float(np.sum(t_core_b))
        t_mem = float(np.sum(t_mem_b))
        t_work = float(np.sum(work_cycles_core_b)) / f_hz

        # ---- I/O side: DMA transfer overlapped with CPU ----------------
        io_bytes = (
            units
            * workload.io_bytes_per_unit
            * float(noise.factor(rng, noise.io_sigma, batches=B))
        )
        bandwidth = self.node.io.bandwidth_bytes_per_s
        t_transfer = io_bytes / bandwidth
        t_io = max(t_transfer, arrival_floor_s)

        # ---- Node wall time (Eq. 2) plus startup overhead --------------
        startup = noise.startup_overhead_s * float(
            noise.factor(rng, noise.startup_sigma)
        )
        time_s = max(t_cpu, t_io) + startup

        # ---- Energy: integrate component power over busy times ---------
        p_act = self.node.power.core_active.watts(f_ghz)
        p_stall = self.node.power.core_stall.watts(f_ghz)
        t_stall_total = t_cpu - t_work  # core busy but not retiring work
        e_cores = c_act * (p_act * t_work + p_stall * t_stall_total)
        # DRAM sits in active-standby (banks open, periodic activates)
        # for the whole stretch of execution that references it -- the
        # memory response time -- not just while serving misses.  This is
        # also the semantics of the paper's Eq. 18.  A kernel that never
        # misses the LLC leaves DRAM in self-refresh (covered by P_idle).
        touches_memory = profile.llc_misses_per_instr > 0
        e_mem = (
            self.node.power.mem_active_w * min(t_mem, time_s)
            if touches_memory
            else 0.0
        )
        e_io = self.node.power.io_active_w * min(t_transfer, time_s)
        e_idle = self.node.power.idle_w * time_s
        energy_j = (e_cores + e_mem + e_io + e_idle) * meter_factor

        counters = CounterSet(
            instructions=float(np.sum(instr_b)),
            work_cycles=float(np.sum(work_cycles_core_b)) * c_act,
            core_stall_cycles=float(np.sum(core_stall_cycles_b)) * c_act,
            mem_stall_cycles=float(np.sum(mem_stall_s_b)) * f_hz * c_act,
            io_bytes=io_bytes,
            active_cores=c_act,
            total_cores=cores,
            f_ghz=f_ghz,
        )
        return NodeRunResult(
            time_s=time_s,
            t_cpu_s=t_cpu,
            t_core_s=t_core,
            t_mem_s=t_mem,
            t_io_s=t_io,
            energy_j=energy_j,
            counters=counters,
            mean_power_w=energy_j / time_s if time_s > 0 else 0.0,
        )

    def run_batch(
        self,
        workload: WorkloadSpec,
        units: float,
        settings,
        seeds,
        arrival_floor_s: float = 0.0,
    ):
        """Execute many runs in one NumPy pass; rows are bit-identical to
        :meth:`run` with the matching seed.

        ``settings`` is one ``(cores, f_ghz)`` pair per row and ``seeds``
        one RNG/seed per row; see :func:`repro.simulator.batch.run_batch`
        for the full contract.  Returns a
        :class:`~repro.simulator.batch.BatchRunResult`.
        """
        from repro.simulator.batch import run_batch

        return run_batch(
            self, workload, units, settings, seeds, arrival_floor_s
        )

    def _empty_result(self, cores: int, f_ghz: float) -> NodeRunResult:
        """Result of running zero units: instantaneous, zero energy."""
        counters = CounterSet(
            instructions=0.0,
            work_cycles=0.0,
            core_stall_cycles=0.0,
            mem_stall_cycles=0.0,
            io_bytes=0.0,
            active_cores=0.0,
            total_cores=cores,
            f_ghz=f_ghz,
        )
        return NodeRunResult(
            time_s=0.0,
            t_cpu_s=0.0,
            t_core_s=0.0,
            t_mem_s=0.0,
            t_io_s=0.0,
            energy_j=0.0,
            counters=counters,
            mean_power_w=0.0,
        )

    def idle_energy(self, duration_s: float) -> float:
        """Energy the node burns idling for ``duration_s`` seconds."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        return self.node.power.idle_w * duration_s
