"""Hardware-event counters, as a ``perf``-style measurement surface.

The paper's model inputs are all derived from counter readings on a
baseline run (Section II-D1): instructions, work cycles, non-memory stall
cycles, memory stall cycles.  :class:`CounterSet` is what our simulated
testbed "exposes" to calibration code -- derived quantities (WPI,
SPI_core, SPI_mem, utilization) are computed exactly the way a user of
``perf stat`` would compute them, so calibration inherits whatever noise
the run had.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CounterSet:
    """Aggregated event counts for one node over one run.

    All cycle counts are summed over the active cores of the node, as the
    paper's per-node accounting does.
    """

    instructions: float
    work_cycles: float
    core_stall_cycles: float
    mem_stall_cycles: float
    io_bytes: float
    #: Average number of concurrently active cores during CPU response.
    active_cores: float
    #: Configured total cores on the node (for utilization).
    total_cores: int
    #: Core clock during the run, GHz.
    f_ghz: float

    def __post_init__(self) -> None:
        if self.instructions < 0 or self.work_cycles < 0:
            raise ValueError("counter values must be non-negative")
        if self.core_stall_cycles < 0 or self.mem_stall_cycles < 0:
            raise ValueError("stall counters must be non-negative")
        if self.total_cores < 1:
            raise ValueError("node must have at least one core")
        if self.f_ghz <= 0:
            raise ValueError("frequency must be positive")

    # -- derived quantities, computed the way perf users compute them ----

    @property
    def wpi(self) -> float:
        """Work cycles per instruction."""
        self._require_instructions()
        return self.work_cycles / self.instructions

    @property
    def spi_core(self) -> float:
        """Non-memory stall cycles per instruction."""
        self._require_instructions()
        return self.core_stall_cycles / self.instructions

    @property
    def spi_mem(self) -> float:
        """Memory stall cycles per instruction."""
        self._require_instructions()
        return self.mem_stall_cycles / self.instructions

    @property
    def cpi(self) -> float:
        """Total cycles per instruction (work + all stalls)."""
        self._require_instructions()
        return (
            self.work_cycles + self.core_stall_cycles + self.mem_stall_cycles
        ) / self.instructions

    @property
    def cpu_utilization(self) -> float:
        """Fraction of the node's cores active during CPU response (U_CPU)."""
        return self.active_cores / self.total_cores

    def _require_instructions(self) -> None:
        if self.instructions <= 0:
            raise ValueError("no instructions retired; derived ratios undefined")

    def __add__(self, other: "CounterSet") -> "CounterSet":
        """Merge counters of two runs at identical (cores, frequency) settings.

        Used to accumulate repetitions of a baseline phase before deriving
        ratios, which reduces per-phase noise exactly like running a
        longer measurement would.
        """
        if not isinstance(other, CounterSet):
            return NotImplemented
        if other.total_cores != self.total_cores or other.f_ghz != self.f_ghz:
            raise ValueError(
                "cannot merge counters from different machine settings: "
                f"({self.total_cores} cores, {self.f_ghz} GHz) vs "
                f"({other.total_cores} cores, {other.f_ghz} GHz)"
            )
        weight_self = self.instructions
        weight_other = other.instructions
        total = weight_self + weight_other
        if total <= 0:
            raise ValueError("cannot merge two empty counter sets")
        return CounterSet(
            instructions=self.instructions + other.instructions,
            work_cycles=self.work_cycles + other.work_cycles,
            core_stall_cycles=self.core_stall_cycles + other.core_stall_cycles,
            mem_stall_cycles=self.mem_stall_cycles + other.mem_stall_cycles,
            io_bytes=self.io_bytes + other.io_bytes,
            active_cores=(
                self.active_cores * weight_self + other.active_cores * weight_other
            )
            / total,
            total_cores=self.total_cores,
            f_ghz=self.f_ghz,
        )
