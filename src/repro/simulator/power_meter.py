"""A bench power meter for the simulated testbed (Yokogawa WT210 stand-in).

The paper characterizes power (Section II-D2) by pointing a wall-plug
meter at a node while it runs a micro-benchmark pinned to a given core
count and frequency.  :class:`PowerMeter` reproduces that workflow: it
"samples" a node's power during a simulated steady state and reports the
average with the instrument's calibration error and sampling jitter, so
calibration code downstream sees realistic readings rather than the
catalog's ground-truth coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.hardware.specs import NodeSpec
from repro.simulator.noise import CALIBRATED_NOISE, NoiseModel
from repro.util.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class PowerSample:
    """One averaged meter reading."""

    watts: float
    duration_s: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.watts < 0:
            raise ValueError("meter cannot read negative power")
        if self.duration_s <= 0:
            raise ValueError("sample duration must be positive")


class PowerMeter:
    """Samples a node's power in synthetic steady states.

    Parameters
    ----------
    node:
        Machine under the meter.
    noise:
        Instrument model: ``meter_sigma`` is the calibration error (one
        draw per meter session), and per-sample jitter is taken as half
        of it (line noise, quantization).
    """

    #: Number of one-second readings averaged per measurement.
    SAMPLES_PER_READING = 10

    def __init__(self, node: NodeSpec, noise: NoiseModel = CALIBRATED_NOISE, seed: SeedLike = None):
        self.node = node
        self.noise = noise
        rng = ensure_rng(seed)
        # Instrument calibration is fixed for the session.
        self._calibration = float(noise.factor(rng, noise.meter_sigma))
        self._rng = rng

    # -- steady-state measurement primitives -----------------------------

    def _read(self, true_watts: float, label: str) -> PowerSample:
        jitter_sigma = self.noise.meter_sigma / 2.0
        samples = true_watts * self.noise.factor(
            self._rng, jitter_sigma, size=self.SAMPLES_PER_READING
        )
        watts = float(np.mean(samples)) * self._calibration
        return PowerSample(
            watts=max(0.0, watts),
            duration_s=float(self.SAMPLES_PER_READING),
            label=label,
        )

    def measure_idle(self) -> PowerSample:
        """Node power with no workload (``P_idle``)."""
        return self._read(self.node.power.idle_w, "idle")

    def measure_cpu_active(self, cores: int, f_ghz: float) -> PowerSample:
        """Node power while the CPU-max micro-benchmark runs.

        True power is ``P_idle + cores * P_CPU,act(f)``; the NIC and
        memory are quiescent under this kernel.
        """
        self.node.cores.validate_setting(cores, f_ghz)
        true = self.node.power.idle_w + cores * self.node.power.core_active.watts(f_ghz)
        return self._read(true, f"cpu-max c={cores} f={f_ghz}")

    def measure_cpu_stall(self, cores: int, f_ghz: float) -> PowerSample:
        """Node power while the cache-miss (stall) micro-benchmark runs.

        True power adds the stalled-core draw and the now-busy memory.
        """
        self.node.cores.validate_setting(cores, f_ghz)
        true = (
            self.node.power.idle_w
            + cores * self.node.power.core_stall.watts(f_ghz)
            + self.node.power.mem_active_w
        )
        return self._read(true, f"stall c={cores} f={f_ghz}")

    def measure_io_active(self) -> PowerSample:
        """Node power while saturating the NIC with DMA transfers."""
        true = self.node.power.idle_w + self.node.power.io_active_w
        return self._read(true, "io-active")

    # -- derived characterization ----------------------------------------

    def characterize_core_active(self, f_ghz: float) -> float:
        """Estimate per-core active power at ``f_ghz`` by differencing.

        Measures the CPU-max kernel at every core count and regresses the
        readings on the count -- the slope is ``P_CPU,act(f)``.  This is
        the paper's measurement procedure, and it inherits meter error.
        """
        counts = list(range(1, self.node.cores.count + 1))
        readings = [self.measure_cpu_active(c, f_ghz).watts for c in counts]
        return _slope(counts, readings)

    def characterize_core_stall(self, f_ghz: float) -> float:
        """Estimate per-core stall power at ``f_ghz`` (slope over cores)."""
        counts = list(range(1, self.node.cores.count + 1))
        readings = [self.measure_cpu_stall(c, f_ghz).watts for c in counts]
        return _slope(counts, readings)

    def characterize_idle(self, repetitions: int = 3) -> float:
        """Average several idle readings (``P_idle``)."""
        if repetitions < 1:
            raise ValueError("need at least one repetition")
        return float(np.mean([self.measure_idle().watts for _ in range(repetitions)]))

    def characterize_io(self) -> float:
        """Estimate NIC active power by differencing against idle."""
        active = self.measure_io_active().watts
        idle = self.measure_idle().watts
        return max(0.0, active - idle)


def _slope(x: List[int], y: List[float]) -> float:
    """Least-squares slope of ``y`` on ``x`` (local to avoid a util import cycle)."""
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    xbar = xa.mean()
    denom = float(np.sum((xa - xbar) ** 2))
    if denom == 0.0:
        raise ValueError("cannot regress power on a single core count")
    return float(np.sum((xa - xbar) * (ya - ya.mean())) / denom)
