"""A bench power meter for the simulated testbed (Yokogawa WT210 stand-in).

The paper characterizes power (Section II-D2) by pointing a wall-plug
meter at a node while it runs a micro-benchmark pinned to a given core
count and frequency.  :class:`PowerMeter` reproduces that workflow: it
"samples" a node's power during a simulated steady state and reports the
average with the instrument's calibration error and sampling jitter, so
calibration code downstream sees realistic readings rather than the
catalog's ground-truth coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.hardware.specs import NodeSpec
from repro.simulator.noise import CALIBRATED_NOISE, NoiseModel
from repro.util.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class PowerSample:
    """One averaged meter reading."""

    watts: float
    duration_s: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.watts < 0:
            raise ValueError("meter cannot read negative power")
        if self.duration_s <= 0:
            raise ValueError("sample duration must be positive")


class PowerMeter:
    """Samples a node's power in synthetic steady states.

    Parameters
    ----------
    node:
        Machine under the meter.
    noise:
        Instrument model: ``meter_sigma`` is the calibration error (one
        draw per meter session), and per-sample jitter is taken as half
        of it (line noise, quantization).
    """

    #: Number of one-second readings averaged per measurement.
    SAMPLES_PER_READING = 10

    def __init__(self, node: NodeSpec, noise: NoiseModel = CALIBRATED_NOISE, seed: SeedLike = None):
        self.node = node
        self.noise = noise
        rng = ensure_rng(seed)
        # Instrument calibration is fixed for the session.
        self._calibration = float(noise.factor(rng, noise.meter_sigma))
        self._rng = rng
        self._prefetch: np.ndarray = np.empty((0, self.SAMPLES_PER_READING))
        self._prefetch_used = 0

    # -- steady-state measurement primitives -----------------------------

    def prefetch_readings(self, n_reads: int) -> None:
        """Draw the jitter factors for the next ``n_reads`` readings at once.

        One fused ``standard_normal`` block replaces ``n_reads`` sequential
        per-reading draws; readings that consume it are bit-identical to
        unprefetched ones because ``normal(1, s, k)`` consumes the bit
        stream exactly like ``1 + s * standard_normal(k)``.  Prefetching
        more readings than are then taken only discards tail draws the
        session would never observe.
        """
        if n_reads < 1:
            raise ValueError("need at least one reading to prefetch")
        if self.noise.meter_sigma == 0.0:
            return  # factor() draws nothing at zero sigma
        self._prefetch = self._jitter_factors(n_reads)
        self._prefetch_used = 0

    def _jitter_factors(self, n_reads: int) -> np.ndarray:
        """``(n_reads, SAMPLES_PER_READING)`` jitter factors, one fused draw.

        Must consume the meter's RNG exactly like ``n_reads`` sequential
        ``noise.factor(rng, jitter, size=SAMPLES_PER_READING)`` calls.
        """
        jitter_sigma = self.noise.meter_sigma / 2.0
        shape = (n_reads, self.SAMPLES_PER_READING)
        if jitter_sigma == 0.0:
            return np.ones(shape)
        z = self._rng.standard_normal(n_reads * self.SAMPLES_PER_READING)
        factors = np.clip(
            1.0 + jitter_sigma * z,
            1.0 - 3.0 * jitter_sigma,
            1.0 + 3.0 * jitter_sigma,
        )
        return factors.reshape(shape)

    def _next_factors(self, n_reads: int) -> np.ndarray:
        """The next ``n_reads`` readings' factors, prefetched or fresh."""
        remaining = self._prefetch.shape[0] - self._prefetch_used
        if remaining >= n_reads:
            out = self._prefetch[self._prefetch_used:self._prefetch_used + n_reads]
            self._prefetch_used += n_reads
            return out
        return self._jitter_factors(n_reads)

    def _read(self, true_watts: float, label: str) -> PowerSample:
        samples = true_watts * self._next_factors(1)[0]
        watts = float(np.mean(samples)) * self._calibration
        return PowerSample(
            watts=max(0.0, watts),
            duration_s=float(self.SAMPLES_PER_READING),
            label=label,
        )

    def _read_many(self, true_watts: np.ndarray) -> np.ndarray:
        """Average meter readings for several steady states in one pass.

        Row ``i`` is bit-identical to ``_read(true_watts[i], ...)``: the
        factors come off the same stream and the row-wise mean reduces 10
        contiguous samples exactly like the scalar read's 1-D mean.
        """
        factors = self._next_factors(len(true_watts))
        samples = true_watts[:, np.newaxis] * factors
        watts = np.mean(samples, axis=1) * self._calibration
        return np.maximum(0.0, watts)

    def measure_idle(self) -> PowerSample:
        """Node power with no workload (``P_idle``)."""
        return self._read(self.node.power.idle_w, "idle")

    def measure_cpu_active(self, cores: int, f_ghz: float) -> PowerSample:
        """Node power while the CPU-max micro-benchmark runs.

        True power is ``P_idle + cores * P_CPU,act(f)``; the NIC and
        memory are quiescent under this kernel.
        """
        self.node.cores.validate_setting(cores, f_ghz)
        true = self.node.power.idle_w + cores * self.node.power.core_active.watts(f_ghz)
        return self._read(true, f"cpu-max c={cores} f={f_ghz}")

    def measure_cpu_stall(self, cores: int, f_ghz: float) -> PowerSample:
        """Node power while the cache-miss (stall) micro-benchmark runs.

        True power adds the stalled-core draw and the now-busy memory.
        """
        self.node.cores.validate_setting(cores, f_ghz)
        true = (
            self.node.power.idle_w
            + cores * self.node.power.core_stall.watts(f_ghz)
            + self.node.power.mem_active_w
        )
        return self._read(true, f"stall c={cores} f={f_ghz}")

    def measure_io_active(self) -> PowerSample:
        """Node power while saturating the NIC with DMA transfers."""
        true = self.node.power.idle_w + self.node.power.io_active_w
        return self._read(true, "io-active")

    # -- derived characterization ----------------------------------------

    def characterize_core_active(self, f_ghz: float) -> float:
        """Estimate per-core active power at ``f_ghz`` by differencing.

        Measures the CPU-max kernel at every core count and regresses the
        readings on the count -- the slope is ``P_CPU,act(f)``.  This is
        the paper's measurement procedure, and it inherits meter error.
        """
        self.node.cores.validate_setting(self.node.cores.count, f_ghz)
        counts = np.arange(1, self.node.cores.count + 1)
        per_core = self.node.power.core_active.watts(f_ghz)
        readings = self._read_many(self.node.power.idle_w + counts * per_core)
        return _slope(counts, readings)

    def characterize_core_stall(self, f_ghz: float) -> float:
        """Estimate per-core stall power at ``f_ghz`` (slope over cores)."""
        self.node.cores.validate_setting(self.node.cores.count, f_ghz)
        counts = np.arange(1, self.node.cores.count + 1)
        per_core = self.node.power.core_stall.watts(f_ghz)
        # Term order matches measure_cpu_stall: (idle + c*stall) + mem.
        readings = self._read_many(
            self.node.power.idle_w + counts * per_core + self.node.power.mem_active_w
        )
        return _slope(counts, readings)

    def characterize_idle(self, repetitions: int = 3) -> float:
        """Average several idle readings (``P_idle``)."""
        if repetitions < 1:
            raise ValueError("need at least one repetition")
        readings = self._read_many(np.full(repetitions, self.node.power.idle_w))
        return float(np.mean(readings))

    def characterize_io(self) -> float:
        """Estimate NIC active power by differencing against idle."""
        active, idle = self._read_many(
            np.asarray(
                [
                    self.node.power.idle_w + self.node.power.io_active_w,
                    self.node.power.idle_w,
                ]
            )
        )
        return max(0.0, float(active) - float(idle))


def _slope(x: List[int], y: List[float]) -> float:
    """Least-squares slope of ``y`` on ``x`` (local to avoid a util import cycle)."""
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    xbar = xa.mean()
    denom = float(np.sum((xa - xbar) ** 2))
    if denom == 0.0:
        raise ValueError("cannot regress power on a single core count")
    return float(np.sum((xa - xbar) * (ya - ya.mean())) / denom)
