"""Evaluate explicit candidate rows through the vectorized model.

The exhaustive evaluator works on whole presence-mask blocks; search
agents propose *arbitrary* row sets.  :func:`evaluate_candidate_rows`
groups a candidate batch by presence pattern and pushes each pattern
through the exact same per-element arithmetic as
:func:`repro.core.evaluate._evaluate_mask_block` -- the same setting
grids, the same 1-/2-/k-group matched-split dispatch
(:func:`~repro.core.evaluate._vector_match` /
:func:`~repro.core.evaluate._vector_match_groups`), the same
:func:`~repro.core.evaluate._group_energy` terms.  Every operation is
elementwise, so a configuration evaluates to bit-identical time/energy
no matter which batch it arrives in -- which is what lets frontier
recall be an exact ``(time, energy)`` set comparison against exhaustive
ground truth, and lets the search driver deduplicate rows by value.

:func:`_eval_candidate_chunk` is the top-level picklable entry point the
engine ships to process-pool and tcp_remote workers.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

import numpy as np

from repro.core.configuration import GroupSpec, node_settings
from repro.core.evaluate import (
    ConfigSpaceResult,
    _group_energy,
    _params_for,
    _setting_grid,
    _vector_match,
    _vector_match_groups,
)
from repro.core.params import NodeModelParams


def evaluate_candidate_rows(
    group_specs: Sequence[GroupSpec],
    params: Mapping[str, NodeModelParams],
    units: float,
    n: np.ndarray,
    cores: np.ndarray,
    f: np.ndarray,
) -> ConfigSpaceResult:
    """Evaluate candidate ``(n, cores, f)`` columns, row order preserved.

    ``n``/``cores``/``f`` are ``(G, B)`` stacks as produced by
    :meth:`repro.search.space.SearchSpace.decode` or
    :func:`repro.core.candidates.expand_block_rows`.  Every ``(cores,
    f)`` pair must be one of the group's admissible settings and every
    row must have at least one present group.  The returned result's
    rows are bit-identical to what the exhaustive evaluator computes for
    the same configurations.
    """
    if units <= 0:
        raise ValueError("job must contain positive work")
    group_specs = tuple(group_specs)
    if not group_specs:
        raise ValueError("need at least one node-type group")
    n = np.asarray(n, dtype=np.int64)
    cores = np.asarray(cores, dtype=np.int64)
    f = np.asarray(f, dtype=float)
    if n.ndim != 2 or n.shape != cores.shape or n.shape != f.shape:
        raise ValueError("candidate columns must be matching (G, B) stacks")
    if n.shape[0] != len(group_specs):
        raise ValueError(
            f"{n.shape[0]} candidate groups for {len(group_specs)} specs"
        )
    if np.any(n < 0):
        raise ValueError("node counts must be non-negative")
    b = n.shape[1]
    present_rows = n > 0
    if b and not present_rows.any(axis=0).all():
        raise ValueError("every candidate row needs at least one present group")

    grids = [
        _setting_grid(gs.spec, _params_for(params, gs.spec.name), gs.settings)
        for gs in group_specs
    ]
    # Exact (cores, f) -> setting-index lookup per group.  Settings come
    # from the same node_settings lists the grids were built from, so
    # float equality is exact.
    setting_index = []
    for g, gs in enumerate(group_specs):
        setting_index.append(
            {
                (int(c), float(fr)): s
                for s, (c, fr) in enumerate(node_settings(gs.spec, gs.settings))
            }
        )

    times = np.zeros(b, dtype=float)
    energies = np.zeros(b, dtype=float)
    units_out = np.zeros((len(group_specs), b), dtype=float)
    cores_out = cores.copy()
    f_out = f.copy()
    for g, gs in enumerate(group_specs):
        absent = ~present_rows[g]
        cores_out[g, absent] = gs.spec.cores.count
        f_out[g, absent] = gs.spec.cores.fmax_ghz

    # Group rows by presence pattern; each pattern block goes through the
    # same dispatch as one exhaustive mask block.
    patterns: dict = {}
    for i in range(b):
        key = tuple(int(x) for x in np.flatnonzero(present_rows[:, i]))
        patterns.setdefault(key, []).append(i)

    for present, row_list in patterns.items():
        rows = np.asarray(row_list, dtype=np.int64)
        gammas = []
        floors = []
        s_idx = []
        for g in present:
            idx = np.empty(rows.size, dtype=np.int64)
            lookup = setting_index[g]
            for j, i in enumerate(rows):
                key = (int(cores[g, i]), float(f[g, i]))
                try:
                    idx[j] = lookup[key]
                except KeyError:
                    raise ValueError(
                        f"candidate setting {key} is not admissible for "
                        f"node type {group_specs[g].spec.name!r}"
                    ) from None
            s_idx.append(idx)
            n_g = n[g, rows].astype(float)
            gammas.append(grids[g].slope_node[idx] / n_g)
            floors.append(grids[g].floor_job_s / n_g)

        if len(present) == 1:
            time = np.maximum(gammas[0] * units, floors[0])
            w = [np.full(time.shape, float(units))]
        elif len(present) == 2:
            w_a, time = _vector_match(
                units, gammas[0], floors[0], gammas[1], floors[1]
            )
            w = [w_a, units - w_a]
        else:
            w_stack, time = _vector_match_groups(
                units, np.stack(gammas), np.stack(floors)
            )
            w = list(w_stack)

        energy = np.zeros(rows.size, dtype=float)
        for p, g in enumerate(present):
            energy += _group_energy(
                n[g, rows],
                w[p],
                time,
                grids[g].k_joules_per_unit[s_idx[p]],
                grids[g].io_slope_node,
                grids[g].floor_job_s,
                grids[g].p_idle_w,
                grids[g].p_io_w,
            )
            units_out[g, rows] = w[p]
        times[rows] = time
        energies[rows] = energy

    return ConfigSpaceResult(
        nodes=tuple(gs.spec.name for gs in group_specs),
        n=n,
        cores=cores_out,
        f=f_out,
        units=units_out,
        times_s=times,
        energies_j=energies,
        units_total=units,
    )


def _eval_candidate_chunk(
    args: Tuple[
        Tuple[GroupSpec, ...],
        Mapping[str, NodeModelParams],
        float,
        np.ndarray,
        np.ndarray,
        np.ndarray,
    ],
) -> ConfigSpaceResult:
    """Top-level picklable chunk evaluator for the engine's backends."""
    group_specs, params, units, n, cores, f = args
    return evaluate_candidate_rows(group_specs, params, units, n, cores, f)
