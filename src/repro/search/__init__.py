"""Search agents over the configuration space.

Exhaustive enumeration dies combinatorially: four node types is already
~1.6 M rows and six types with realistic DVFS grids is billions.  This
package finds the energy-deadline frontier by *searching* the space
through the :class:`repro.core.candidates.CandidateSource` protocol
instead of sweeping it:

* :mod:`repro.search.space` -- the genome view of a k-group space
  (per-group ``(count, setting)`` indices with admissible presence
  masks) that every agent proposes over;
* :mod:`repro.search.evaluator` -- evaluate explicit candidate rows
  through the exact vectorized arithmetic of
  :func:`repro.core.evaluate.evaluate_space_groups` (same config, same
  bits -- what makes frontier recall an exact set comparison);
* :mod:`repro.search.agents` -- the seeded sources: random-walk
  baseline, genetic algorithm with Pareto-rank selection, simulated
  annealing over scalarized objectives;
* :mod:`repro.search.trajectory` -- per-round convergence records
  (rows evaluated, hypervolume, frontier recall vs best-known);
* :mod:`repro.search.driver` -- the feedback loop: propose, evaluate,
  fold through :class:`repro.core.streaming.FrontierReducer`, observe --
  producing a :class:`~repro.search.driver.SearchedSpace` whose
  ``reduced`` artifact plugs into the unchanged frontier/regions
  stages.
"""

from repro.search.agents import AnnealingSource, GeneticSource, RandomWalkSource, make_source
from repro.search.driver import SearchedSpace, run_search
from repro.search.evaluator import evaluate_candidate_rows
from repro.search.space import SearchSpace
from repro.search.trajectory import SearchRound, SearchTrajectory

__all__ = [
    "AnnealingSource",
    "GeneticSource",
    "RandomWalkSource",
    "SearchRound",
    "SearchSpace",
    "SearchTrajectory",
    "SearchedSpace",
    "evaluate_candidate_rows",
    "make_source",
    "run_search",
]
