"""The search feedback loop: propose, evaluate, fold, observe.

:func:`run_search` drives any :class:`~repro.core.candidates.CandidateSource`
to a :class:`SearchedSpace`: per round it asks the source for a batch,
deduplicates rows against everything already evaluated (cached rows cost
no budget and are fed back from memory), pushes the genuinely new rows
through an injectable ``evaluate_fn`` (the engine supplies one that
fans out over the execution backends), folds the evaluated columns
through the *exact* reducer structure of
:func:`repro.core.streaming.reduce_space_blocks` -- whole-space
:class:`~repro.core.streaming.FrontierReducer` with composition and
node-count payloads, masked per-group reducers with running offsets --
and hands the combined time/energy columns back to the source.

The resulting :class:`~repro.core.streaming.ReducedSpace` is therefore
shaped identically to a streamed exhaustive reduction (row indices are
first-evaluation order instead of canonical sweep order), so the
frontier, regions, and reporting stages consume it unchanged.

Termination: the row budget runs out, the source runs dry, or the
source stalls (``stall_rounds`` consecutive rounds proposing nothing
new).  On dry/stall, if the rows never evaluated fit in the remaining
budget the driver finishes the space with a deterministic *completion
sweep* -- which is what guarantees 100% frontier recall on small spaces
whenever the budget covers them.

Checkpoint/resume rides the engine's
:class:`~repro.engine.checkpoint.CheckpointManager`: every
``checkpoint_every`` rounds the full loop state (reducers, source,
dedup table, trajectory) is snapshotted, and a resumed run continues
bit-identically because every piece of state round-trips exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.candidates import CandidateBatch, CandidateSource
from repro.core.configuration import GroupSpec
from repro.core.evaluate import ConfigSpaceResult
from repro.core.params import NodeModelParams
from repro.core.pareto import ParetoFrontier
from repro.core.streaming import (
    FrontierReducer,
    ReducedSpace,
    _solo_groups,
    composition_labels,
)
from repro.search.evaluator import evaluate_candidate_rows
from repro.search.space import SearchSpace
from repro.search.trajectory import (
    SearchRound,
    SearchTrajectory,
    frontier_recall,
    hypervolume_2d,
)

RowKey = Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[float, ...]]

#: Type of the injectable batch evaluator: (n, cores, f) -> result.
EvaluateFn = Callable[[np.ndarray, np.ndarray, np.ndarray], ConfigSpaceResult]


def row_keys(n: np.ndarray, cores: np.ndarray, f: np.ndarray) -> List[RowKey]:
    """Hashable per-row identities of candidate columns."""
    return [
        (
            tuple(int(x) for x in n[:, i]),
            tuple(int(x) for x in cores[:, i]),
            tuple(float(x) for x in f[:, i]),
        )
        for i in range(n.shape[1])
    ]


@dataclass
class SearchedSpace:
    """A searched (sampled) space: the reduced artifact plus provenance.

    ``reduced`` is a genuine :class:`~repro.core.streaming.ReducedSpace`
    over the *evaluated subset* -- its frontier indices are
    first-evaluation row order -- so every downstream stage that accepts
    a reduced space accepts this.  The extra fields say how the subset
    was chosen, and ``trajectory`` records the convergence path.
    """

    reduced: ReducedSpace
    trajectory: SearchTrajectory
    strategy: str
    budget_rows: int
    space_rows: int

    @property
    def rows_evaluated(self) -> int:
        return self.reduced.total_rows

    @property
    def coverage(self) -> float:
        """Fraction of the full space actually evaluated."""
        if not self.space_rows:
            return 0.0
        return self.rows_evaluated / self.space_rows

    @property
    def frontier(self) -> Optional[ParetoFrontier]:
        return self.reduced.frontier

    def summary(self) -> Dict[str, Any]:
        out = self.reduced.summary()
        out.update(
            strategy=self.strategy,
            budget_rows=self.budget_rows,
            space_rows=self.space_rows,
            rows_evaluated=self.rows_evaluated,
            coverage=self.coverage,
            rounds=len(self.trajectory.rounds),
        )
        if self.trajectory.final_recall is not None:
            out["frontier_recall"] = self.trajectory.final_recall
        return out


class _ReducerPass:
    """The per-round fold: the exact reducer structure of
    :func:`repro.core.streaming.reduce_space_blocks`."""

    def __init__(self, composition: bool, group_frontiers: bool):
        self.composition = composition
        self.group_frontiers = group_frontiers
        self.main: Optional[FrontierReducer] = None
        self.per_group: List[FrontierReducer] = []
        self.group_offsets: List[int] = []
        self.nodes: Tuple[str, ...] = ()
        self.units_total = 0.0
        self.total_rows = 0
        self.num_blocks = 0
        self.full_nbytes = 0
        self.peak_block = 0

    def _build(self, num_groups: int) -> None:
        extras = (["solo"] if self.composition else []) + [
            f"n{g}" for g in range(num_groups)
        ]
        self.main = FrontierReducer(extra_names=extras)
        if self.group_frontiers:
            self.per_group = [FrontierReducer() for _ in range(num_groups)]
            self.group_offsets = [0] * num_groups

    def fold(self, data: ConfigSpaceResult) -> None:
        if self.main is None:
            self.nodes = data.nodes
            self.units_total = data.units_total
            self._build(data.num_groups)
        extra: Dict[str, np.ndarray] = {
            f"n{g}": data.n[g] for g in range(data.num_groups)
        }
        if self.composition:
            extra["solo"] = _solo_groups(data.n)
        self.main.update(
            data.times_s, data.energies_j, start_row=self.total_rows,
            extra=extra,
        )
        if self.group_frontiers:
            for g, reducer in enumerate(self.per_group):
                mask = data.is_only(g)
                hit = int(np.count_nonzero(mask))
                if hit:
                    reducer.update(
                        data.times_s[mask],
                        data.energies_j[mask],
                        start_row=self.group_offsets[g],
                    )
                self.group_offsets[g] += hit
        self.total_rows += len(data)
        self.num_blocks += 1
        self.full_nbytes += data.nbytes
        self.peak_block = max(self.peak_block, data.nbytes)

    def finish(self) -> ReducedSpace:
        if self.main is None:
            raise ValueError("search evaluated no rows: nothing to reduce")
        frontier = self.main.finish()
        reduced = ReducedSpace(
            nodes=self.nodes,
            units_total=self.units_total,
            total_rows=self.total_rows,
            num_blocks=self.num_blocks,
            full_nbytes=self.full_nbytes,
            peak_block_nbytes=self.peak_block,
            frontier=frontier,
        )
        if frontier is not None:
            reduced.frontier_n = np.stack(
                [self.main.extra(f"n{g}") for g in range(len(self.nodes))]
            ).astype(np.int64)
            if self.composition:
                reduced.composition = composition_labels(
                    self.main.extra("solo")
                )
        if self.group_frontiers:
            reduced.group_frontiers = tuple(
                r.finish() for r in self.per_group
            )
        return reduced

    # ---- checkpoint ----------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "nodes": self.nodes,
            "units_total": self.units_total,
            "total_rows": self.total_rows,
            "num_blocks": self.num_blocks,
            "full_nbytes": self.full_nbytes,
            "peak_block_nbytes": self.peak_block,
            "group_offsets": list(self.group_offsets),
            "main": None if self.main is None else self.main.state_dict(),
            "groups": [r.state_dict() for r in self.per_group],
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        self.nodes = tuple(state["nodes"])
        self.units_total = float(state["units_total"])
        self.total_rows = int(state["total_rows"])
        self.num_blocks = int(state["num_blocks"])
        self.full_nbytes = int(state["full_nbytes"])
        self.peak_block = int(state["peak_block_nbytes"])
        if state["main"] is not None:
            self._build(len(self.nodes))
            self.main.load_state(state["main"])
            if self.group_frontiers:
                for reducer, st in zip(self.per_group, state["groups"]):
                    reducer.load_state(st)
                self.group_offsets = list(state["group_offsets"])


def run_search(
    group_specs: Sequence[GroupSpec],
    params: Mapping[str, NodeModelParams],
    units: float,
    source: CandidateSource,
    budget_rows: int,
    batch_rows: int = 4096,
    evaluate_fn: Optional[EvaluateFn] = None,
    best_known: Optional[ParetoFrontier] = None,
    composition: bool = True,
    group_frontiers: bool = True,
    seed: int = 0,
    space: Optional[SearchSpace] = None,
    emit: Optional[Callable[..., None]] = None,
    checkpoint: Optional[Any] = None,
    resume: bool = False,
    checkpoint_every: int = 4,
    stall_rounds: int = 3,
) -> SearchedSpace:
    """Drive ``source`` over the space under a row budget.

    ``budget_rows`` counts *newly evaluated* rows only -- proposing an
    already-evaluated configuration costs nothing (its cached values are
    fed back to the source).  ``evaluate_fn(n, cores, f)`` evaluates one
    batch of new rows; when omitted, evaluation runs in-process through
    :func:`~repro.search.evaluator.evaluate_candidate_rows` (the engine
    injects a backend-parallel one).  ``best_known`` enables exact
    frontier-recall tracking in the trajectory.  ``checkpoint`` is an
    engine :class:`~repro.engine.checkpoint.CheckpointManager`; with
    ``resume`` the loop restores the last snapshot and continues
    bit-identically.
    """
    if budget_rows < 1:
        raise ValueError("search row budget must be at least one row")
    if batch_rows < 1:
        raise ValueError("search batch size must be at least one row")
    if stall_rounds < 1:
        raise ValueError("stall detection needs at least one round")
    if checkpoint_every < 1:
        raise ValueError("checkpoint interval must be at least one round")
    group_specs = tuple(group_specs)
    if space is None:
        space = SearchSpace(group_specs)
    if evaluate_fn is None:
        def evaluate_fn(n, cores, f):
            return evaluate_candidate_rows(group_specs, params, units, n, cores, f)

    budget = min(int(budget_rows), space.total_rows)
    reducers = _ReducerPass(composition, group_frontiers)
    seen: Dict[RowKey, Tuple[float, float]] = {}
    trajectory = SearchTrajectory(
        strategy=source.name,
        seed=int(seed),
        budget_rows=budget,
        space_rows=space.total_rows,
    )
    nadir = [-np.inf, -np.inf]
    round_index = 0
    stall = 0
    since_save = 0

    if checkpoint is not None and resume:
        state = checkpoint.load()
        if state is not None:
            reducers.load_state(state["reducers"])
            seen = {
                (tuple(a), tuple(b), tuple(c)): (float(t), float(e))
                for (a, b, c), (t, e) in state["seen"]
            }
            source.load_state(state["source"])
            trajectory = SearchTrajectory.from_dict(state["trajectory"])
            nadir = list(state["nadir"])
            round_index = int(state["round_index"])
            stall = int(state["stall"])

    def _save_checkpoint() -> None:
        checkpoint.save(
            {
                "reducers": reducers.state_dict(),
                "seen": [(k, v) for k, v in seen.items()],
                "source": source.state_dict(),
                "trajectory": trajectory.to_dict(),
                "nadir": list(nadir),
                "round_index": round_index,
                "stall": stall,
            }
        )

    def _evaluate_new(
        n: np.ndarray, cores: np.ndarray, f: np.ndarray, keys: List[RowKey]
    ) -> ConfigSpaceResult:
        data = evaluate_fn(n, cores, f)
        if len(data) != len(keys):
            raise ValueError(
                f"evaluator returned {len(data)} rows for {len(keys)} "
                "candidates"
            )
        reducers.fold(data)
        for i, key in enumerate(keys):
            seen[key] = (float(data.times_s[i]), float(data.energies_j[i]))
        nadir[0] = max(nadir[0], float(data.times_s.max()))
        nadir[1] = max(nadir[1], float(data.energies_j.max()))
        return data

    def _record_round(batch_size: int, new_rows: int) -> None:
        nonlocal round_index, since_save
        frontier = reducers.main.finish() if reducers.main else None
        round_ = SearchRound(
            index=round_index,
            batch_rows=batch_size,
            new_rows=new_rows,
            rows_evaluated=reducers.total_rows,
            frontier_points=0 if frontier is None else len(frontier),
            hypervolume=hypervolume_2d(frontier, (nadir[0], nadir[1])),
            recall=frontier_recall(frontier, best_known),
        )
        trajectory.add_round(round_)
        if emit is not None:
            emit(
                "search.round",
                strategy=source.name,
                round=round_.index,
                batch_rows=round_.batch_rows,
                new_rows=round_.new_rows,
                rows_evaluated=round_.rows_evaluated,
                frontier_points=round_.frontier_points,
                hypervolume=round_.hypervolume,
                recall=round_.recall,
            )
        round_index += 1
        since_save += 1
        if checkpoint is not None and since_save >= checkpoint_every:
            _save_checkpoint()
            since_save = 0

    def _completion_sweep() -> None:
        """Evaluate every never-seen row, in canonical order."""
        pending: List = []
        for genome in space.all_genomes():
            pending.append(genome)
            if len(pending) < batch_rows:
                continue
            _sweep_batch(pending)
            pending = []
        if pending:
            _sweep_batch(pending)

    def _sweep_batch(genomes: List) -> None:
        n, cores, f = space.decode(genomes)
        keys = row_keys(n, cores, f)
        fresh = [i for i, k in enumerate(keys) if k not in seen]
        if not fresh:
            return
        idx = np.asarray(fresh, dtype=np.int64)
        _evaluate_new(
            n[:, idx], cores[:, idx], f[:, idx], [keys[i] for i in fresh]
        )
        _record_round(batch_size=len(fresh), new_rows=len(fresh))

    while reducers.total_rows < budget:
        remaining = budget - reducers.total_rows
        batch = source.propose(min(batch_rows, remaining))
        if batch is None:
            break
        keys = row_keys(batch.n, batch.cores, batch.f)
        fresh = [i for i, k in enumerate(keys) if k not in seen]
        # Within-batch duplicates: keep the first occurrence only.
        first_of: Dict[RowKey, int] = {}
        fresh = [
            i for i in fresh
            if first_of.setdefault(keys[i], i) == i
        ]
        fresh = fresh[:remaining]
        if fresh:
            stall = 0
            idx = np.asarray(fresh, dtype=np.int64)
            _evaluate_new(
                batch.n[:, idx], batch.cores[:, idx], batch.f[:, idx],
                [keys[i] for i in fresh],
            )
        else:
            stall += 1
        # Feed the source the values of every proposed row, cached or new.
        known = [i for i, k in enumerate(keys) if k in seen]
        if len(known) == len(keys):
            times = np.asarray([seen[k][0] for k in keys])
            energies = np.asarray([seen[k][1] for k in keys])
            source.observe(batch, times, energies)
        else:
            # Rows past the budget cut were never evaluated; observe the
            # known prefix only.
            sub = np.asarray(known, dtype=np.int64)
            meta = batch.meta
            if isinstance(meta, tuple):
                meta = tuple(meta[i] for i in known)
            elif isinstance(meta, dict):
                meta = {
                    key: tuple(val[i] for i in known)
                    for key, val in meta.items()
                }
            source.observe(
                CandidateBatch(
                    n=batch.n[:, sub],
                    cores=batch.cores[:, sub],
                    f=batch.f[:, sub],
                    meta=meta,
                ),
                np.asarray([seen[keys[i]][0] for i in known]),
                np.asarray([seen[keys[i]][1] for i in known]),
            )
        _record_round(batch_size=len(batch), new_rows=len(fresh))
        if stall >= stall_rounds:
            break

    unseen = space.total_rows - len(seen)
    if 0 < unseen <= budget - reducers.total_rows:
        _completion_sweep()

    if checkpoint is not None and since_save > 0:
        _save_checkpoint()

    reduced = reducers.finish()
    return SearchedSpace(
        reduced=reduced,
        trajectory=trajectory,
        strategy=source.name,
        budget_rows=budget,
        space_rows=space.total_rows,
    )
