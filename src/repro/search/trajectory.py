"""Per-round convergence records for search runs.

A :class:`SearchTrajectory` is the audit trail of one search: for every
propose/evaluate/observe round, how many rows were proposed, how many
were genuinely new, the cumulative rows evaluated, the running frontier
size, its 2-D hypervolume, and -- when exhaustive ground truth is
available -- exact frontier recall.  Round-trips through plain JSON so
the CLI can write it to ``--trajectory-out`` and the reporting layer can
table/plot it.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro.core.pareto import ParetoFrontier


def frontier_key_set(frontier: Optional[ParetoFrontier]) -> Set[Tuple[float, float]]:
    """A frontier's exact ``(time, energy)`` point set.

    Search evaluation is bit-identical to exhaustive evaluation for the
    same configuration (see :mod:`repro.search.evaluator`), so float
    equality is the *correct* comparison here, not a tolerance.
    """
    if frontier is None:
        return set()
    return {
        (float(t), float(e))
        for t, e in zip(frontier.times_s, frontier.energies_j)
    }


def frontier_recall(
    found: Optional[ParetoFrontier], best_known: Optional[ParetoFrontier]
) -> Optional[float]:
    """Fraction of the best-known frontier's points found so far."""
    if best_known is None:
        return None
    truth = frontier_key_set(best_known)
    if not truth:
        return None
    return len(frontier_key_set(found) & truth) / len(truth)


def hypervolume_2d(
    frontier: Optional[ParetoFrontier],
    reference: Tuple[float, float],
) -> float:
    """Dominated-area hypervolume of a 2-D minimization frontier.

    ``reference`` is the nadir point (worst time, worst energy); points
    beyond it contribute nothing.  Frontier points arrive sorted by
    strictly increasing time / strictly decreasing energy, so the
    dominated region is a staircase of disjoint rectangles.
    """
    if frontier is None or len(frontier) == 0:
        return 0.0
    ref_t, ref_e = float(reference[0]), float(reference[1])
    t = np.minimum(np.asarray(frontier.times_s, dtype=float), ref_t)
    e = np.minimum(np.asarray(frontier.energies_j, dtype=float), ref_e)
    # Right edge of each point's rectangle: the next point's time.
    edges = np.append(t[1:], ref_t)
    widths = np.maximum(edges - t, 0.0)
    heights = np.maximum(ref_e - e, 0.0)
    return float(np.sum(widths * heights))


@dataclass(frozen=True)
class SearchRound:
    """One propose/evaluate/observe round of a search run."""

    index: int
    batch_rows: int
    new_rows: int
    rows_evaluated: int
    frontier_points: int
    hypervolume: float
    recall: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchRound":
        return cls(
            index=int(data["index"]),
            batch_rows=int(data["batch_rows"]),
            new_rows=int(data["new_rows"]),
            rows_evaluated=int(data["rows_evaluated"]),
            frontier_points=int(data["frontier_points"]),
            hypervolume=float(data["hypervolume"]),
            recall=None if data.get("recall") is None else float(data["recall"]),
        )


@dataclass
class SearchTrajectory:
    """The full convergence record of one search run."""

    strategy: str
    seed: int
    budget_rows: int
    space_rows: int
    rounds: List[SearchRound] = field(default_factory=list)

    @property
    def rows_evaluated(self) -> int:
        return self.rounds[-1].rows_evaluated if self.rounds else 0

    @property
    def final_recall(self) -> Optional[float]:
        return self.rounds[-1].recall if self.rounds else None

    @property
    def coverage(self) -> float:
        """Fraction of the space's rows actually evaluated."""
        if not self.space_rows:
            return 0.0
        return self.rows_evaluated / self.space_rows

    def add_round(self, round_: SearchRound) -> None:
        self.rounds.append(round_)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "strategy": self.strategy,
            "seed": self.seed,
            "budget_rows": self.budget_rows,
            "space_rows": self.space_rows,
            "rows_evaluated": self.rows_evaluated,
            "coverage": self.coverage,
            "final_recall": self.final_recall,
            "rounds": [r.to_dict() for r in self.rounds],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchTrajectory":
        out = cls(
            strategy=str(data["strategy"]),
            seed=int(data["seed"]),
            budget_rows=int(data["budget_rows"]),
            space_rows=int(data["space_rows"]),
        )
        for entry in data.get("rounds", ()):
            out.add_round(SearchRound.from_dict(entry))
        return out

    def to_json(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def from_json(cls, path) -> "SearchTrajectory":
        return cls.from_dict(json.loads(Path(path).read_text()))
