"""Genome view of a k-group configuration space.

Agents do not reason about raw ``(n, cores, f)`` columns; they move
through a discrete *genome* space: per group, an index into that group's
positive node counts and an index into its (cores, frequency) settings,
or ``(-1, -1)`` when the group is absent.  :class:`SearchSpace` owns the
admissibility rules (a group may be absent only when its count list
admits 0, present only when it admits a positive count, and at least one
group must be present -- exactly the rules behind
:func:`repro.core.configuration.presence_masks`), uniform row sampling,
neighborhood moves, and decoding back to candidate columns.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.core.candidates import _normalize_counts
from repro.core.configuration import GroupSpec, node_settings, presence_masks
from repro.core.streaming import count_space_rows

#: One group's gene: (index into positive counts, index into settings),
#: or (-1, -1) when the group is absent.
Gene = Tuple[int, int]
Genome = Tuple[Gene, ...]

ABSENT: Gene = (-1, -1)


class SearchSpace:
    """The discrete genome space of a k-group configuration space."""

    def __init__(self, group_specs: Sequence[GroupSpec]):
        self.group_specs = tuple(group_specs)
        if not self.group_specs:
            raise ValueError("need at least one node-type group")
        counts = [
            _normalize_counts(gs.counts, gs.max_nodes)
            for gs in self.group_specs
        ]
        #: Per-group positive node counts (the genome's count axis).
        self.pos: List[np.ndarray] = [c[c > 0] for c in counts]
        #: Whether each group's count list admits absence (a 0 entry).
        self.has_zero: List[bool] = [bool(0 in c) for c in counts]
        #: Per-group (cores, f) settings, in canonical order.
        self.settings: List[List[Tuple[int, float]]] = [
            node_settings(gs.spec, gs.settings) for gs in self.group_specs
        ]
        #: Admissible presence masks, canonical block order.
        self.masks: List[Tuple[int, ...]] = list(
            presence_masks(self.group_specs)
        )
        if not self.masks:
            raise ValueError(
                "no configurations to search: the count lists admit neither "
                "a heterogeneous nor a homogeneous block"
            )
        self.num_groups = len(self.group_specs)
        #: Exact row count of the full space.
        self.total_rows = count_space_rows(self.group_specs)
        self._mask_rows = np.asarray(
            [self.mask_rows(m) for m in self.masks], dtype=float
        )

    # ---- admissibility and counting ------------------------------------

    def mask_rows(self, present: Tuple[int, ...]) -> int:
        """Exact row count of one presence mask's block."""
        rows = 1
        for g in present:
            rows *= int(self.pos[g].size) * len(self.settings[g])
        return rows

    def is_admissible(self, genome: Genome) -> bool:
        """Whether a genome decodes to a row of this space."""
        if len(genome) != self.num_groups:
            return False
        any_present = False
        for g, (ci, si) in enumerate(genome):
            if (ci, si) == ABSENT:
                if not self.has_zero[g]:
                    return False
                continue
            if not (0 <= ci < self.pos[g].size):
                return False
            if not (0 <= si < len(self.settings[g])):
                return False
            any_present = True
        return any_present

    # ---- sampling and moves --------------------------------------------

    def random_genome(self, rng: np.random.Generator) -> Genome:
        """One genome sampled uniformly over the space's *rows*.

        Picks a presence mask with probability proportional to its block's
        row count, then a count and setting index uniformly per present
        group -- exactly a uniform draw over configurations.
        """
        weights = self._mask_rows / self._mask_rows.sum()
        mask = self.masks[int(rng.choice(len(self.masks), p=weights))]
        genome: List[Gene] = []
        for g in range(self.num_groups):
            if g in mask:
                genome.append(
                    (
                        int(rng.integers(self.pos[g].size)),
                        int(rng.integers(len(self.settings[g]))),
                    )
                )
            else:
                genome.append(ABSENT)
        return tuple(genome)

    def neighbor(self, genome: Genome, rng: np.random.Generator) -> Genome:
        """One admissible single-gene move away from ``genome``.

        Moves: nudge a present group's count index or setting index by
        one step, drop a present group (when another group remains
        present and its counts admit 0), or wake an absent group at a
        random gene.  The move is chosen uniformly over the admissible
        move list, so every neighbor is reachable with positive
        probability -- what makes the annealing walkers ergodic.
        """
        moves: List[Tuple[int, str]] = []
        present = [g for g, gene in enumerate(genome) if gene != ABSENT]
        for g, (ci, si) in enumerate(genome):
            if (ci, si) == ABSENT:
                if self.pos[g].size:
                    moves.append((g, "wake"))
                continue
            if ci > 0:
                moves.append((g, "count-"))
            if ci < self.pos[g].size - 1:
                moves.append((g, "count+"))
            if si > 0:
                moves.append((g, "setting-"))
            if si < len(self.settings[g]) - 1:
                moves.append((g, "setting+"))
            if self.has_zero[g] and len(present) > 1:
                moves.append((g, "drop"))
        if not moves:
            return genome
        g, move = moves[int(rng.integers(len(moves)))]
        out = list(genome)
        ci, si = genome[g]
        if move == "wake":
            out[g] = (
                int(rng.integers(self.pos[g].size)),
                int(rng.integers(len(self.settings[g]))),
            )
        elif move == "drop":
            out[g] = ABSENT
        elif move == "count-":
            out[g] = (ci - 1, si)
        elif move == "count+":
            out[g] = (ci + 1, si)
        elif move == "setting-":
            out[g] = (ci, si - 1)
        else:
            out[g] = (ci, si + 1)
        return tuple(out)

    def neighbors(self, genome: Genome) -> List[Genome]:
        """Every single-step count/setting neighbor of ``genome``.

        The deterministic 1-step neighborhood the genetic agent sweeps
        around its frontier (Pareto local search); presence toggles are
        included so homogeneous blocks are reachable from heterogeneous
        frontier points and vice versa.
        """
        out: List[Genome] = []
        present = [g for g, gene in enumerate(genome) if gene != ABSENT]
        for g, (ci, si) in enumerate(genome):
            if (ci, si) == ABSENT:
                if self.pos[g].size:
                    for s in range(len(self.settings[g])):
                        out.append(self._with_gene(genome, g, (0, s)))
                continue
            if ci > 0:
                out.append(self._with_gene(genome, g, (ci - 1, si)))
            if ci < self.pos[g].size - 1:
                out.append(self._with_gene(genome, g, (ci + 1, si)))
            if si > 0:
                out.append(self._with_gene(genome, g, (ci, si - 1)))
            if si < len(self.settings[g]) - 1:
                out.append(self._with_gene(genome, g, (ci, si + 1)))
            if self.has_zero[g] and len(present) > 1:
                out.append(self._with_gene(genome, g, ABSENT))
        return out

    @staticmethod
    def _with_gene(genome: Genome, g: int, gene: Gene) -> Genome:
        out = list(genome)
        out[g] = gene
        return tuple(out)

    def repair(self, genome: Genome, rng: np.random.Generator) -> Genome:
        """Coerce an arbitrary gene tuple into an admissible genome."""
        out: List[Gene] = []
        for g, (ci, si) in enumerate(genome):
            if (ci, si) == ABSENT:
                if self.has_zero[g]:
                    out.append(ABSENT)
                else:
                    out.append(
                        (
                            int(rng.integers(self.pos[g].size)),
                            int(rng.integers(len(self.settings[g]))),
                        )
                    )
                continue
            if not self.pos[g].size:
                out.append(ABSENT)
                continue
            out.append(
                (
                    int(np.clip(ci, 0, self.pos[g].size - 1)),
                    int(np.clip(si, 0, len(self.settings[g]) - 1)),
                )
            )
        if all(gene == ABSENT for gene in out):
            candidates = [g for g in range(self.num_groups) if self.pos[g].size]
            g = candidates[int(rng.integers(len(candidates)))]
            out[g] = (
                int(rng.integers(self.pos[g].size)),
                int(rng.integers(len(self.settings[g]))),
            )
        return tuple(out)

    # ---- decoding ------------------------------------------------------

    def decode(
        self, genomes: Sequence[Genome]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Genomes to candidate ``(n, cores, f)`` column stacks.

        Absent groups follow the evaluator's convention: ``n = 0`` with
        the spec's maxima for cores/frequency.
        """
        b = len(genomes)
        k = self.num_groups
        n = np.zeros((k, b), dtype=np.int64)
        cores = np.empty((k, b), dtype=np.int64)
        f = np.empty((k, b), dtype=float)
        for i, genome in enumerate(genomes):
            for g, (ci, si) in enumerate(genome):
                if (ci, si) == ABSENT:
                    cores[g, i] = self.group_specs[g].spec.cores.count
                    f[g, i] = self.group_specs[g].spec.cores.fmax_ghz
                else:
                    n[g, i] = int(self.pos[g][ci])
                    c, fr = self.settings[g][si]
                    cores[g, i] = c
                    f[g, i] = fr
        return n, cores, f

    def all_genomes(self) -> Iterator[Genome]:
        """Every genome of the space, in canonical presence-mask order.

        Cheap only on small spaces; the search driver uses it for the
        completion sweep that guarantees 100% recall when the row budget
        covers the whole space.
        """
        for present in self.masks:
            axes: List[List[Gene]] = []
            for g in range(self.num_groups):
                if g in present:
                    axes.append(
                        [
                            (ci, si)
                            for ci in range(self.pos[g].size)
                            for si in range(len(self.settings[g]))
                        ]
                    )
                else:
                    axes.append([ABSENT])
            yield from self._product(axes)

    @staticmethod
    def _product(axes: List[List[Gene]]) -> Iterator[Genome]:
        import itertools

        for combo in itertools.product(*axes):
            yield tuple(combo)
