"""Seeded search agents behind the :class:`CandidateSource` protocol.

Three strategies, one contract: propose a batch of genomes, get the
evaluated ``(time, energy)`` columns back through ``observe``.  All
randomness flows from one ``numpy`` PCG64 generator seeded at
construction, and every piece of mutable state round-trips through
``state_dict``/``load_state`` -- so a search run is reproducible and
checkpoint-resumable.

* :class:`RandomWalkSource` -- uniform row sampling without
  replacement; the baseline every smarter agent must beat.
* :class:`GeneticSource` -- a memetic genetic algorithm: Pareto-rank
  (nondomination-peeling) tournament selection over the recent
  population, uniform crossover with admissibility repair,
  neighbor-move mutation, random immigrants -- plus a Pareto local
  search that sweeps the unseen 1-step neighborhood of the current
  archive frontier each round (what drives recall to ~100% once the
  frontier's basin is found).
* :class:`AnnealingSource` -- simulated annealing with a fleet of
  walkers, each minimizing a differently-weighted scalarization of
  normalized (time, energy) so the fleet spreads across the frontier;
  geometric cooling per round.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.candidates import CandidateBatch, CandidateSource
from repro.core.pareto import pareto_indices
from repro.search.space import Genome, SearchSpace


def _pareto_ranks(times: np.ndarray, energies: np.ndarray) -> np.ndarray:
    """Nondomination-peeling ranks: 0 for the frontier, 1 after removing
    it, and so on."""
    n = times.size
    ranks = np.full(n, -1, dtype=np.int64)
    remaining = np.arange(n)
    t, e = np.asarray(times, dtype=float), np.asarray(energies, dtype=float)
    rank = 0
    while remaining.size:
        keep = pareto_indices(t[remaining], e[remaining])
        ranks[remaining[keep]] = rank
        mask = np.ones(remaining.size, dtype=bool)
        mask[keep] = False
        remaining = remaining[mask]
        rank += 1
    return ranks


class _SeededSource(CandidateSource):
    """Shared plumbing: seeded RNG, seen-set, batch assembly."""

    def __init__(self, space: SearchSpace, seed: int):
        self.space = space
        self.seed = int(seed)
        self.rng = np.random.default_rng(np.random.PCG64(self.seed))
        self._seen: set = set()

    def reset(self) -> None:
        self.rng = np.random.default_rng(np.random.PCG64(self.seed))
        self._seen = set()

    def _batch(self, genomes: Sequence[Genome]) -> Optional[CandidateBatch]:
        if not genomes:
            return None
        n, cores, f = self.space.decode(genomes)
        return CandidateBatch(n=n, cores=cores, f=f, meta=tuple(genomes))

    def _fresh_random(
        self, k: int, taken: set, attempts_per: int = 25
    ) -> List[Genome]:
        """Up to ``k`` uniform-over-rows genomes not in ``_seen``/``taken``."""
        out: List[Genome] = []
        attempts = 0
        limit = max(1, k) * attempts_per
        while len(out) < k and attempts < limit:
            g = self.space.random_genome(self.rng)
            attempts += 1
            if g in self._seen or g in taken:
                continue
            taken.add(g)
            out.append(g)
        return out

    def _mark_seen(self, genomes: Sequence[Genome]) -> None:
        self._seen.update(genomes)

    def _base_state(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "rng": self.rng.bit_generator.state,
            "seen": list(self._seen),
        }

    def _load_base_state(self, state: Mapping[str, Any]) -> None:
        self.seed = int(state["seed"])
        self.rng = np.random.default_rng(np.random.PCG64(self.seed))
        self.rng.bit_generator.state = state["rng"]
        self._seen = set(tuple(g) for g in state["seen"])


class RandomWalkSource(_SeededSource):
    """Uniform row sampling without replacement: the search baseline."""

    name = "random"

    def propose(self, max_rows: int) -> Optional[CandidateBatch]:
        if max_rows < 1:
            raise ValueError("batch row budget must be at least one row")
        genomes = self._fresh_random(max_rows, taken=set())
        self._mark_seen(genomes)
        return self._batch(genomes)

    def observe(self, batch, times_s, energies_j) -> None:
        self._mark_seen(batch.meta or ())

    def state_dict(self) -> Dict[str, Any]:
        return self._base_state()

    def load_state(self, state: Mapping[str, Any]) -> None:
        self._load_base_state(state)


class GeneticSource(_SeededSource):
    """Genetic algorithm with Pareto-rank selection and local search."""

    name = "ga"

    def __init__(
        self,
        space: SearchSpace,
        seed: int,
        population: int = 64,
        immigrant_fraction: float = 0.1,
        mutation_rate: float = 0.3,
    ):
        super().__init__(space, seed)
        if population < 2:
            raise ValueError("genetic search needs a population of at least 2")
        self.population_size = int(population)
        self.immigrant_fraction = float(immigrant_fraction)
        self.mutation_rate = float(mutation_rate)
        #: Recent evaluated individuals: (genome, time, energy).
        self._population: List[Tuple[Genome, float, float]] = []
        #: Nondominated archive: (genome, time, energy).
        self._archive: List[Tuple[Genome, float, float]] = []

    def reset(self) -> None:
        super().reset()
        self._population = []
        self._archive = []

    # ---- proposal ------------------------------------------------------

    def propose(self, max_rows: int) -> Optional[CandidateBatch]:
        if max_rows < 1:
            raise ValueError("batch row budget must be at least one row")
        taken: set = set()
        genomes: List[Genome] = []

        if not self._population:
            genomes = self._fresh_random(
                min(max_rows, max(self.population_size, 2)), taken
            )
            self._mark_seen(genomes)
            return self._batch(genomes)

        # Pareto local search: the unseen 1-step neighborhood of the
        # current archive frontier, in archive order.
        for genome, _, _ in self._archive:
            for nb in self.space.neighbors(genome):
                if len(genomes) >= max_rows:
                    break
                if nb in self._seen or nb in taken:
                    continue
                taken.add(nb)
                genomes.append(nb)
            if len(genomes) >= max_rows:
                break

        # Offspring: Pareto-rank tournament selection, uniform
        # crossover, neighbor-move mutation.
        n_immigrants = int(
            round(self.immigrant_fraction * max(0, max_rows - len(genomes)))
        )
        pool = self._population + self._archive
        t = np.asarray([p[1] for p in pool])
        e = np.asarray([p[2] for p in pool])
        ranks = _pareto_ranks(t, e)
        attempts = 0
        limit = 25 * max_rows
        while len(genomes) < max_rows - n_immigrants and attempts < limit:
            attempts += 1
            child = self._crossover(
                pool[self._tournament(ranks)][0],
                pool[self._tournament(ranks)][0],
            )
            if self.rng.random() < self.mutation_rate:
                child = self.space.neighbor(child, self.rng)
            child = self.space.repair(child, self.rng)
            if child in self._seen or child in taken:
                continue
            taken.add(child)
            genomes.append(child)

        genomes.extend(self._fresh_random(max_rows - len(genomes), taken))
        self._mark_seen(genomes)
        return self._batch(genomes)

    def _tournament(self, ranks: np.ndarray, size: int = 2) -> int:
        picks = self.rng.integers(ranks.size, size=size)
        return int(min(picks, key=lambda i: (ranks[i], i)))

    def _crossover(self, a: Genome, b: Genome) -> Genome:
        return tuple(
            a[g] if self.rng.random() < 0.5 else b[g] for g in range(len(a))
        )

    # ---- feedback ------------------------------------------------------

    def observe(self, batch, times_s, energies_j) -> None:
        genomes = batch.meta or ()
        self._mark_seen(genomes)
        evaluated = [
            (g, float(t), float(e))
            for g, t, e in zip(genomes, times_s, energies_j)
        ]
        self._population.extend(evaluated)
        self._population = self._population[-4 * self.population_size:]
        merged = self._archive + evaluated
        t = np.asarray([p[1] for p in merged])
        e = np.asarray([p[2] for p in merged])
        keep = pareto_indices(t, e)
        self._archive = [merged[int(i)] for i in keep]

    # ---- checkpoint ----------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        state = self._base_state()
        state.update(
            population=list(self._population),
            archive=list(self._archive),
        )
        return state

    def load_state(self, state: Mapping[str, Any]) -> None:
        self._load_base_state(state)
        self._population = [
            (tuple(g), float(t), float(e)) for g, t, e in state["population"]
        ]
        self._archive = [
            (tuple(g), float(t), float(e)) for g, t, e in state["archive"]
        ]


class AnnealingSource(_SeededSource):
    """Simulated annealing with a fleet of scalarizing walkers."""

    name = "anneal"

    def __init__(
        self,
        space: SearchSpace,
        seed: int,
        walkers: int = 8,
        initial_temperature: float = 1.0,
        cooling: float = 0.92,
    ):
        super().__init__(space, seed)
        if walkers < 1:
            raise ValueError("annealing needs at least one walker")
        if not 0.0 < cooling < 1.0:
            raise ValueError("cooling factor must be in (0, 1)")
        self.num_walkers = int(walkers)
        self.initial_temperature = float(initial_temperature)
        self.cooling = float(cooling)
        self._temperature = self.initial_temperature
        #: Per-walker [genome, cost-or-None]; walker i scalarizes with
        #: weight lambda_i spread evenly over [0, 1].
        self._walkers: List[List[Any]] = []
        self._lambdas = (
            np.linspace(0.0, 1.0, self.num_walkers)
            if self.num_walkers > 1
            else np.asarray([0.5])
        )
        self._t_range = [np.inf, -np.inf]
        self._e_range = [np.inf, -np.inf]

    def reset(self) -> None:
        super().reset()
        self._temperature = self.initial_temperature
        self._walkers = []
        self._t_range = [np.inf, -np.inf]
        self._e_range = [np.inf, -np.inf]

    def propose(self, max_rows: int) -> Optional[CandidateBatch]:
        if max_rows < 1:
            raise ValueError("batch row budget must be at least one row")
        if not self._walkers:
            taken: set = set()
            starts = self._fresh_random(
                min(max_rows, self.num_walkers), taken
            )
            if not starts:
                starts = [
                    self.space.random_genome(self.rng)
                    for _ in range(min(max_rows, self.num_walkers))
                ]
            self._walkers = [[g, None] for g in starts]
            # Top up short fleets by reusing starts round-robin.
            while len(self._walkers) < self.num_walkers:
                self._walkers.append(
                    [starts[len(self._walkers) % len(starts)], None]
                )
            genomes = list(starts)
            owners = list(range(len(starts)))
        else:
            per_walker = max(1, max_rows // self.num_walkers)
            genomes = []
            owners = []
            taken = set()
            for w, (genome, _) in enumerate(self._walkers):
                for _ in range(per_walker):
                    if len(genomes) >= max_rows:
                        break
                    nb = self.space.neighbor(genome, self.rng)
                    if nb in taken:
                        continue
                    taken.add(nb)
                    genomes.append(nb)
                    owners.append(w)
        if not genomes:
            return None
        self._mark_seen(genomes)
        batch = self._batch(genomes)
        return CandidateBatch(
            n=batch.n, cores=batch.cores, f=batch.f,
            meta={"genomes": tuple(genomes), "owners": tuple(owners)},
        )

    def _cost(self, lam: float, t: float, e: float) -> float:
        t_lo, t_hi = self._t_range
        e_lo, e_hi = self._e_range
        tn = (t - t_lo) / (t_hi - t_lo) if t_hi > t_lo else 0.0
        en = (e - e_lo) / (e_hi - e_lo) if e_hi > e_lo else 0.0
        return lam * tn + (1.0 - lam) * en

    def observe(self, batch, times_s, energies_j) -> None:
        meta = batch.meta or {}
        genomes = meta.get("genomes", ())
        owners = meta.get("owners", ())
        self._mark_seen(genomes)
        if len(genomes) == 0:
            return
        t = np.asarray(times_s, dtype=float)
        e = np.asarray(energies_j, dtype=float)
        self._t_range = [
            min(self._t_range[0], float(t.min())),
            max(self._t_range[1], float(t.max())),
        ]
        self._e_range = [
            min(self._e_range[0], float(e.min())),
            max(self._e_range[1], float(e.max())),
        ]
        for genome, owner, ti, ei in zip(genomes, owners, t, e):
            walker = self._walkers[owner]
            lam = float(self._lambdas[owner])
            cost = self._cost(lam, float(ti), float(ei))
            current = walker[1]
            if current is None or cost < current:
                walker[0], walker[1] = genome, cost
            elif self._temperature > 0 and self.rng.random() < np.exp(
                -(cost - current) / self._temperature
            ):
                walker[0], walker[1] = genome, cost
        self._temperature *= self.cooling

    def state_dict(self) -> Dict[str, Any]:
        state = self._base_state()
        state.update(
            temperature=self._temperature,
            walkers=[[g, c] for g, c in self._walkers],
            t_range=list(self._t_range),
            e_range=list(self._e_range),
        )
        return state

    def load_state(self, state: Mapping[str, Any]) -> None:
        self._load_base_state(state)
        self._temperature = float(state["temperature"])
        self._walkers = [[tuple(g), c] for g, c in state["walkers"]]
        self._t_range = list(state["t_range"])
        self._e_range = list(state["e_range"])


_STRATEGIES = {
    "random": RandomWalkSource,
    "ga": GeneticSource,
    "anneal": AnnealingSource,
}


def make_source(
    strategy: str,
    space: SearchSpace,
    seed: int,
    options: Optional[Mapping[str, Any]] = None,
) -> CandidateSource:
    """Build a search agent by strategy name.

    ``options`` passes through to the agent's constructor (population
    size, walker count, cooling factor, ...).  ``"exhaustive"`` is not a
    search agent -- the engine routes it through the historical sweep --
    so asking for it here is an error.
    """
    try:
        cls = _STRATEGIES[strategy]
    except KeyError:
        known = ", ".join(sorted(_STRATEGIES))
        raise ValueError(
            f"unknown search strategy {strategy!r}; known: {known}"
        ) from None
    return cls(space, seed, **dict(options or {}))
