"""Analytic single-server queue models: M/D/1 (the paper's), M/M/1, M/G/1.

All three are special cases of the Pollaczek-Khinchine mean-waiting-time
formula for an M/G/1 queue with Poisson arrivals at rate ``lambda`` and
service time ``S`` (mean ``T``, squared coefficient of variation
``c_s^2 = Var(S)/T^2``):

.. math::

    W_q = \\frac{\\rho T (1 + c_s^2)}{2 (1 - \\rho)}, \\quad \\rho = \\lambda T

* deterministic service (``c_s^2 = 0``) gives the paper's M/D/1:
  ``W_q = rho T / (2 (1 - rho))``;
* exponential service (``c_s^2 = 1``) gives M/M/1:
  ``W_q = rho T / (1 - rho)``.

The paper's matched configurations have fixed service time per job,
which is what justifies the deterministic-service choice; the M/M/1 and
M/G/1 variants quantify how sensitive Figure 10 is to that assumption
(an ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class QueueModel:
    """Base single-server queue: Poisson arrivals, general service (M/G/1).

    Attributes
    ----------
    service_s:
        Mean service time ``T`` per job, seconds.
    arrival_rate:
        Poisson arrival rate ``lambda``, jobs/second.
    service_scv:
        Squared coefficient of variation of the service time.
    """

    service_s: float
    arrival_rate: float
    service_scv: float = 0.0

    def __post_init__(self) -> None:
        if self.service_s <= 0:
            raise ValueError(f"service time must be positive, got {self.service_s}")
        if self.arrival_rate < 0:
            raise ValueError(f"arrival rate must be non-negative, got {self.arrival_rate}")
        if self.service_scv < 0:
            raise ValueError("squared coefficient of variation must be non-negative")
        if self.utilization >= 1.0:
            raise ValueError(
                f"queue is unstable: utilization {self.utilization:.3f} >= 1 "
                f"(lambda={self.arrival_rate}, T={self.service_s})"
            )

    @property
    def utilization(self) -> float:
        """``rho = lambda * T`` -- the paper's cluster utilization ``U``."""
        return self.arrival_rate * self.service_s

    @property
    def mean_wait_s(self) -> float:
        """Mean time in queue before service starts (Pollaczek-Khinchine)."""
        rho = self.utilization
        if rho == 0.0:
            return 0.0
        return rho * self.service_s * (1.0 + self.service_scv) / (2.0 * (1.0 - rho))

    @property
    def mean_response_s(self) -> float:
        """Mean response time: waiting plus service."""
        return self.mean_wait_s + self.service_s

    @property
    def mean_jobs_queued(self) -> float:
        """Mean queue length ``L_q = lambda * W_q`` (Little's law)."""
        return self.arrival_rate * self.mean_wait_s

    @property
    def mean_jobs_in_system(self) -> float:
        """Mean jobs present ``L = lambda * R`` (Little's law)."""
        return self.arrival_rate * self.mean_response_s

    @classmethod
    def for_utilization(
        cls, service_s: float, utilization: float, **kwargs
    ) -> "QueueModel":
        """Construct from a target utilization: ``lambda = U / T``.

        This is how the paper parameterizes Figure 10 (U = 5%, 25%, 50%).
        """
        if not 0.0 <= utilization < 1.0:
            raise ValueError(f"utilization must be in [0, 1), got {utilization}")
        return cls(
            service_s=service_s, arrival_rate=utilization / service_s, **kwargs
        )


@dataclass(frozen=True)
class MD1Queue(QueueModel):
    """Deterministic service: the paper's model (``c_s^2 = 0``)."""

    def __post_init__(self) -> None:
        object.__setattr__(self, "service_scv", 0.0)
        super().__post_init__()


@dataclass(frozen=True)
class MM1Queue(QueueModel):
    """Exponential service (``c_s^2 = 1``): the ablation's pessimistic case."""

    def __post_init__(self) -> None:
        object.__setattr__(self, "service_scv", 1.0)
        super().__post_init__()


@dataclass(frozen=True)
class MG1Queue(QueueModel):
    """General service with explicit ``service_scv`` (Pollaczek-Khinchine)."""
