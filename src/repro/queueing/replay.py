"""Discrete-event replay of the Figure 10 window-energy accounting.

:func:`repro.queueing.dispatcher.window_energy` is a closed-form
expectation: ``E = (U tau / T) E_job + (1 - U) tau P_idle``.  This module
replays the same scenario event-by-event -- Poisson arrivals into a FIFO
dispatcher, deterministic service, power integration over busy and idle
stretches -- so tests can certify the formula instead of trusting it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.simulator.engine import EventLoop
from repro.util.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class WindowReplay:
    """Measured counterpart of one :class:`WindowPoint`."""

    window_s: float
    jobs_arrived: int
    jobs_completed: int
    busy_time_s: float
    idle_time_s: float
    energy_j: float
    mean_response_s: float
    measured_utilization: float


def replay_window(
    service_s: float,
    job_energy_j: float,
    idle_power_w: float,
    utilization: float,
    window_s: float,
    seed: SeedLike = 0,
) -> WindowReplay:
    """Replay a window of Poisson job arrivals and integrate energy.

    Power model identical to the analytic accounting: while serving, the
    cluster spends ``job_energy_j / service_s`` watts (the job's own
    breakdown already contains its idle floor); between jobs the
    configuration's nodes idle at ``idle_power_w``; jobs in progress at
    the window's end contribute their prorated energy.
    """
    if service_s <= 0 or window_s <= 0:
        raise ValueError("service and window must be positive")
    if not 0.0 <= utilization < 1.0:
        raise ValueError(f"utilization must be in [0, 1), got {utilization}")
    if job_energy_j < 0 or idle_power_w < 0:
        raise ValueError("energies and powers must be non-negative")

    rng = ensure_rng(seed)
    loop = EventLoop()
    arrival_rate = utilization / service_s

    responses: List[float] = []
    state = {"busy_until": 0.0, "arrived": 0, "completed": 0, "busy_time": 0.0}

    def arrive() -> None:
        now = loop.now
        if now >= window_s:
            return
        state["arrived"] += 1
        start = max(now, state["busy_until"])
        finish = start + service_s
        state["busy_until"] = finish
        state["completed"] += 1
        responses.append(finish - now)
        # Busy-interval overlap with the observation window.  FIFO on one
        # logical server: intervals never overlap each other.
        state["busy_time"] += max(0.0, min(finish, window_s) - min(start, window_s))
        if arrival_rate > 0:
            loop.schedule_in(float(rng.exponential(1.0 / arrival_rate)), arrive)

    if arrival_rate > 0:
        loop.schedule(float(rng.exponential(1.0 / arrival_rate)), arrive)
    loop.run(until=window_s)

    busy_time = state["busy_time"]
    idle_time = window_s - busy_time

    energy = (
        busy_time * (job_energy_j / service_s) + idle_time * idle_power_w
    )
    return WindowReplay(
        window_s=window_s,
        jobs_arrived=state["arrived"],
        jobs_completed=state["completed"],
        busy_time_s=busy_time,
        idle_time_s=idle_time,
        energy_j=energy,
        mean_response_s=float(np.mean(responses)) if responses else service_s,
        measured_utilization=busy_time / window_s,
    )


def replay_mean(
    service_s: float,
    job_energy_j: float,
    idle_power_w: float,
    utilization: float,
    window_s: float,
    repetitions: int = 20,
    seed: SeedLike = 0,
) -> WindowReplay:
    """Average several replays (tests compare the mean to the formula)."""
    if repetitions < 1:
        raise ValueError("need at least one repetition")
    rng = ensure_rng(seed)
    runs = [
        replay_window(
            service_s, job_energy_j, idle_power_w, utilization, window_s, seed=child
        )
        for child in rng.spawn(repetitions)
    ]
    return WindowReplay(
        window_s=window_s,
        jobs_arrived=int(np.mean([r.jobs_arrived for r in runs])),
        jobs_completed=int(np.mean([r.jobs_completed for r in runs])),
        busy_time_s=float(np.mean([r.busy_time_s for r in runs])),
        idle_time_s=float(np.mean([r.idle_time_s for r in runs])),
        energy_j=float(np.mean([r.energy_j for r in runs])),
        mean_response_s=float(np.mean([r.mean_response_s for r in runs])),
        measured_utilization=float(
            np.mean([r.measured_utilization for r in runs])
        ),
    )
