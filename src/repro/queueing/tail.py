"""M/D/1 waiting-time distribution: percentile (tail) deadlines.

The paper's Figure 10 uses the *mean* M/D/1 response time.  Real
datacenter SLOs are percentiles ("99% of jobs under 300 ms"), so this
extension implements the exact waiting-time CDF of the M/D/1 queue --
Erlang's classical result (see also Franx, *A simple solution for the
M/D/c waiting time distribution*, 2001):

.. math::

    P(W \\le t) = (1 - \\rho) \\sum_{j=0}^{\\lfloor t/D \\rfloor}
        \\frac{[\\lambda (jD - t)]^j}{j!} \\, e^{-\\lambda (jD - t)}

with service time ``D`` and arrival rate ``lambda``.  At ``t = 0`` this
gives the no-wait probability ``1 - rho``; the mean recovered by
integration matches Pollaczek-Khinchine (both property-tested, and the
whole CDF is validated against the discrete-event simulator).

Numerics: the sum alternates in sign and loses precision once
``lambda * t`` grows large; computations are guarded to the domain where
float64 keeps ~8 significant digits (``lambda * t <= 30``), which covers
p99 waits up to utilization ~0.9.  Beyond it a ``ValueError`` explains
the limit rather than returning garbage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.queueing.simulation import deterministic_service, queue_wait_samples
from repro.util.rng import SeedLike

#: Largest lambda*t the alternating Erlang sum evaluates accurately in
#: float64 (empirically ~1e-8 absolute error at the boundary).
_STABILITY_LIMIT = 30.0


@dataclass(frozen=True)
class MD1WaitDistribution:
    """Exact waiting-time distribution of an M/D/1 queue.

    Attributes
    ----------
    service_s:
        Deterministic service time ``D``.
    arrival_rate:
        Poisson arrival rate ``lambda``; stability requires
        ``lambda * D < 1``.
    """

    service_s: float
    arrival_rate: float

    def __post_init__(self) -> None:
        if self.service_s <= 0:
            raise ValueError("service time must be positive")
        if self.arrival_rate < 0:
            raise ValueError("arrival rate must be non-negative")
        if self.utilization >= 1.0:
            raise ValueError(
                f"unstable queue: rho = {self.utilization:.3f} >= 1"
            )

    @property
    def utilization(self) -> float:
        return self.arrival_rate * self.service_s

    @property
    def no_wait_probability(self) -> float:
        """P(W = 0) = 1 - rho."""
        return 1.0 - self.utilization

    def mean_wait_s(self) -> float:
        """Pollaczek-Khinchine mean (for cross-checks)."""
        rho = self.utilization
        if rho == 0.0:
            return 0.0
        return rho * self.service_s / (2.0 * (1.0 - rho))

    def cdf(self, t: float) -> float:
        """P(W <= t), exact.

        Raises
        ------
        ValueError
            If ``t`` is negative, or lies beyond the float64-stable
            domain of the alternating sum (see module docstring).
        """
        if t < 0:
            raise ValueError("waiting time cannot be negative")
        lam = self.arrival_rate
        if lam == 0.0:
            return 1.0
        if lam * t > _STABILITY_LIMIT:
            raise ValueError(
                f"lambda*t = {lam * t:.1f} exceeds the numerically stable "
                f"domain ({_STABILITY_LIMIT}); the result would lose "
                "precision to catastrophic cancellation.  At this load the "
                "requested quantile is effectively 1."
            )
        d = self.service_s
        k = int(math.floor(t / d))
        terms = []
        for j in range(k + 1):
            x = lam * (t - j * d)  # >= 0
            # [-x]^j / j! * e^{x}
            if x == 0.0:
                terms.append(1.0 if j == 0 else 0.0)
                continue
            magnitude = math.exp(j * math.log(x) - math.lgamma(j + 1) + x)
            terms.append(magnitude if j % 2 == 0 else -magnitude)
        value = (1.0 - self.utilization) * math.fsum(terms)
        # Clip float dust; the true CDF lives in [1-rho, 1].
        return min(1.0, max(0.0, value))

    def sf(self, t: float) -> float:
        """P(W > t)."""
        return 1.0 - self.cdf(t)

    def percentile(self, q: float, tolerance: float = 1e-9) -> float:
        """Smallest ``t`` with ``P(W <= t) >= q`` (the q-quantile of the wait).

        ``q`` below the no-wait mass returns 0.0 exactly.
        """
        if not 0.0 <= q < 1.0:
            raise ValueError(f"quantile must be in [0, 1), got {q}")
        if q <= self.no_wait_probability:
            return 0.0
        # Bracket: waits beyond ~stability/lambda are out of domain anyway.
        lo = 0.0
        hi = self.service_s
        while self.cdf(hi) < q:
            hi *= 2.0
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.cdf(mid) >= q:
                hi = mid
            else:
                lo = mid
            if hi - lo < tolerance * max(1.0, hi):
                break
        return hi

    def response_percentile(self, q: float) -> float:
        """q-quantile of the *response* time (wait + deterministic service)."""
        return self.percentile(q) + self.service_s

    def wait_samples(
        self,
        n_jobs: int,
        seed: SeedLike = 0,
        warmup_fraction: float = 0.1,
    ) -> np.ndarray:
        """``n_jobs`` post-warmup waits of this queue, Lindley-simulated.

        The empirical twin of :meth:`cdf`: the samples come from
        :func:`repro.queueing.simulation.queue_wait_samples` with a
        deterministic service at ``service_s``, so their empirical CDF
        converges on the analytic one (property-tested).
        """
        if self.arrival_rate == 0.0:
            return np.zeros(n_jobs)
        return queue_wait_samples(
            self.arrival_rate,
            deterministic_service(self.service_s),
            n_jobs,
            seed=seed,
            warmup_fraction=warmup_fraction,
        )

    def empirical_quantiles(
        self,
        quantiles: Sequence[float],
        n_jobs: int = 20_000,
        seed: SeedLike = 0,
    ) -> Dict[float, float]:
        """Simulated wait quantiles, keyed by ``q`` (cross-check aid)."""
        samples = self.wait_samples(n_jobs, seed=seed)
        return {
            float(q): float(np.quantile(samples, q)) for q in quantiles
        }


def percentile_feasible_energy(
    space,
    idle_power_a_w: Optional[float] = None,
    idle_power_b_w: Optional[float] = None,
    deadline_s: float = 0.0,
    quantile: float = 0.95,
    utilization: float = 0.0,
    window_s: float = 20.0,
    idle_powers_w: Optional[Sequence[float]] = None,
):
    """Cheapest window energy whose q-quantile response meets a deadline.

    The percentile analogue of the mean-response policies in
    :mod:`repro.scheduling.switching`: a configuration qualifies only if
    ``P(response <= deadline) >= quantile`` under M/D/1.  Per-node idle
    powers come either as the two-type pair or as ``idle_powers_w``, one
    entry per node-type group of ``space``.  Returns
    ``(energy_j, row_index)`` or ``None`` when no configuration
    qualifies.
    """
    if idle_powers_w is None:
        if idle_power_a_w is None or idle_power_b_w is None:
            raise ValueError(
                "pass idle_power_a_w and idle_power_b_w, or idle_powers_w"
            )
        idle_powers_w = (idle_power_a_w, idle_power_b_w)
    elif idle_power_a_w is not None or idle_power_b_w is not None:
        raise ValueError("pass either the idle power pair or idle_powers_w")
    idle_powers = [float(p) for p in idle_powers_w]
    if any(p < 0 for p in idle_powers):
        raise ValueError("idle powers must be non-negative")
    if len(idle_powers) != space.num_groups:
        raise ValueError(
            f"{len(idle_powers)} idle powers for {space.num_groups} node groups"
        )
    best = None
    for idx in range(len(space)):
        service = float(space.times_s[idx])
        if service > deadline_s:
            continue
        if utilization > 0:
            dist = MD1WaitDistribution(service, utilization / service)
            try:
                response_q = dist.response_percentile(quantile)
            except ValueError:
                continue  # beyond the stable domain: treat as infeasible
            if response_q > deadline_s:
                continue
            jobs = utilization * window_s / service
        else:
            jobs = 0.0
        idle_w = sum(
            int(space.n[g, idx]) * idle_powers[g]
            for g in range(space.num_groups)
        )
        energy = jobs * float(space.energies_j[idx]) + (
            1.0 - utilization
        ) * window_s * idle_w
        if best is None or energy < best[0]:
            best = (energy, idx)
    return best
