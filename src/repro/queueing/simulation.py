"""Queue simulation: event-loop reference and vectorized Lindley fast path.

A single-server FIFO queue with Poisson arrivals and a pluggable service
distribution, in two implementations:

* :func:`simulate_queue` -- the readable reference, driven by
  :class:`repro.simulator.engine.EventLoop`: one heap event per arrival.
* :func:`simulate_queue_lindley` -- the fast path: waiting times obey the
  Lindley recursion ``W_{i+1} = max(0, W_i + S_i - A_i)``, whose running
  maximum has the closed vectorized form ``W = C - min.accumulate(C)``
  over the cumulative service-minus-interarrival sums ``C``.  One
  ``cumsum`` and one ``minimum.accumulate`` replace the whole event loop.

Both paths consume the RNG in the same order (per job: service draw, then
the gap to the next arrival), so given the same seed they simulate the
*same* sample path; ``tests/property/test_queueing_properties.py`` pins
their statistics against each other and both against Pollaczek-Khinchine.

Aggregate semantics (both paths): statistics describe the post-warmup
jobs only.  ``utilization`` is the post-warmup service time divided by
the post-warmup window (first post-warmup service start to horizon), so
it describes the same jobs as the wait/response means -- earlier versions
divided all-jobs busy time by the full horizon, mixing warmup into one
aggregate but not the others.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.simulator.engine import EventLoop
from repro.util.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class QueueSimStats:
    """Aggregates from one queue simulation run (post-warmup jobs)."""

    jobs_completed: int
    mean_wait_s: float
    mean_response_s: float
    mean_service_s: float
    #: Post-warmup busy time over the post-warmup window.
    utilization: float
    #: End of the simulated timeline, seconds.
    horizon_s: float

    def __post_init__(self) -> None:
        if self.jobs_completed < 0:
            raise ValueError("negative completion count")


class ServiceDistribution:
    """A service-time distribution usable by both queue paths.

    Instances are callable as ``dist(rng) -> float`` (the historical
    sampler protocol, used by the event loop one job at a time) and
    provide :meth:`sample_jobs`, which draws ``n`` jobs' (service, gap)
    pairs at once *in the event loop's interleaved draw order*, so the
    Lindley path walks the same sample path as the reference.
    """

    def __call__(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def sample_jobs(
        self, rng: np.random.Generator, n: int, arrival_rate: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``(services, gaps)`` for ``n`` jobs, RNG-compatible with
        ``n`` interleaved ``dist(rng)`` / exponential-gap scalar draws."""
        raise NotImplementedError


class DeterministicService(ServiceDistribution):
    """M/D/1 service: every job takes exactly ``service_s``."""

    def __init__(self, service_s: float):
        if service_s <= 0:
            raise ValueError("service time must be positive")
        self.service_s = float(service_s)

    def __call__(self, rng: np.random.Generator) -> float:
        return self.service_s

    def sample_jobs(
        self, rng: np.random.Generator, n: int, arrival_rate: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        # The sampler consumes no randomness, so the interleaved sequence
        # is just n sequential gap draws.
        services = np.full(n, self.service_s)
        gaps = rng.exponential(1.0 / arrival_rate, size=n)
        return services, gaps


class ExponentialService(ServiceDistribution):
    """M/M/1 service: exponential with mean ``mean_s``."""

    def __init__(self, mean_s: float):
        if mean_s <= 0:
            raise ValueError("mean service time must be positive")
        self.mean_s = float(mean_s)

    def __call__(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean_s))

    def sample_jobs(
        self, rng: np.random.Generator, n: int, arrival_rate: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        # rng.exponential(scale) is standard_exponential() * scale, so the
        # interleaved (service, gap, service, gap, ...) scalar sequence is
        # one standard-exponential block of 2n draws, de-interleaved.
        draws = rng.standard_exponential(2 * n)
        services = draws[0::2] * self.mean_s
        gaps = draws[1::2] * (1.0 / arrival_rate)
        return services, gaps


def deterministic_service(service_s: float) -> DeterministicService:
    """Sampler for M/D/1: every job takes exactly ``service_s``."""
    return DeterministicService(service_s)


def exponential_service(mean_s: float) -> ExponentialService:
    """Sampler for M/M/1: exponential service with mean ``mean_s``."""
    return ExponentialService(mean_s)


def _check_args(arrival_rate: float, n_jobs: int, warmup_fraction: float) -> int:
    if arrival_rate <= 0:
        raise ValueError("arrival rate must be positive")
    if n_jobs < 1:
        raise ValueError("need at least one job")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup fraction must be in [0, 1)")
    return n_jobs + int(np.ceil(n_jobs * warmup_fraction / (1 - warmup_fraction)))


def simulate_queue(
    arrival_rate: float,
    service_sampler: Callable[[np.random.Generator], float],
    n_jobs: int,
    seed: SeedLike = 0,
    warmup_fraction: float = 0.1,
) -> QueueSimStats:
    """Simulate an M/G/1 FIFO queue for ``n_jobs`` completions (reference).

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate, jobs/second (must keep the queue stable for
        the sampler's mean service time, or waits grow without bound).
    service_sampler:
        Draws one service time; a :class:`ServiceDistribution` or any
        ``rng -> float`` callable.
    n_jobs:
        Completions to simulate (post-warmup statistics).
    warmup_fraction:
        Leading fraction of jobs excluded from the aggregates so the
        initial empty-queue transient does not bias them.

    Notes
    -----
    The simulation is event-driven: one arrival event chain and one
    departure per job, so the run costs O(n log n) regardless of the
    time scale.  :func:`simulate_queue_lindley` computes the same sample
    path in a handful of array operations; this loop is retained as the
    executable specification it is pinned against.
    """
    target = _check_args(arrival_rate, n_jobs, warmup_fraction)
    warmup = target - n_jobs

    rng = ensure_rng(seed)
    loop = EventLoop()

    waits: List[float] = []
    responses: List[float] = []
    services: List[float] = []
    busy_until = 0.0
    completed = 0
    window_start = 0.0

    def arrive() -> None:
        nonlocal busy_until, completed, window_start
        if completed >= target:
            return
        now = loop.now
        service = float(service_sampler(rng))
        if service <= 0:
            raise ValueError(f"service sampler produced non-positive time {service}")
        start = max(now, busy_until)
        finish = start + service
        busy_until = finish
        completed += 1
        if completed > warmup:
            if completed == warmup + 1:
                window_start = start
            waits.append(start - now)
            responses.append(finish - now)
            services.append(service)
        # Schedule next arrival.
        gap = float(rng.exponential(1.0 / arrival_rate))
        loop.schedule_in(gap, arrive)

    loop.schedule(0.0, arrive)
    loop.run(max_events=10 * target + 10)

    horizon = max(loop.now, busy_until)
    if not waits:
        raise RuntimeError("simulation produced no post-warmup completions")
    window = horizon - window_start
    return QueueSimStats(
        jobs_completed=len(waits),
        mean_wait_s=float(np.mean(waits)),
        mean_response_s=float(np.mean(responses)),
        mean_service_s=float(np.mean(services)),
        utilization=sum(services) / window if window > 0 else 0.0,
        horizon_s=horizon,
    )


def _lindley_path(
    arrival_rate: float,
    service_sampler: Callable[[np.random.Generator], float],
    target: int,
    seed: SeedLike,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample ``target`` jobs and solve the waits; returns (W, S, gaps)."""
    rng = ensure_rng(seed)
    if isinstance(service_sampler, ServiceDistribution):
        services, gaps = service_sampler.sample_jobs(rng, target, arrival_rate)
    else:
        # Arbitrary callable: keep the reference draw order job by job.
        services = np.empty(target)
        gaps = np.empty(target)
        for i in range(target):
            services[i] = float(service_sampler(rng))
            gaps[i] = rng.exponential(1.0 / arrival_rate)
    if np.any(services <= 0):
        bad = float(services[services <= 0][0])
        raise ValueError(f"service sampler produced non-positive time {bad}")

    # Lindley: W_1 = 0, W_{i+1} = max(0, W_i + S_i - gap_i).  With
    # X_i = S_i - gap_i and C the zero-prefixed cumulative sum of X,
    # the recursion's running reset-to-zero is the running minimum of C.
    x = services[:-1] - gaps[:-1]
    c = np.concatenate(([0.0], np.cumsum(x)))
    waits = c - np.minimum.accumulate(c)
    return waits, services, gaps


def queue_wait_samples(
    arrival_rate: float,
    service_sampler: Callable[[np.random.Generator], float],
    n_jobs: int,
    seed: SeedLike = 0,
    warmup_fraction: float = 0.1,
) -> np.ndarray:
    """Post-warmup waiting times of the Lindley path, one per job.

    The raw-sample twin of :func:`simulate_queue_lindley`, for empirical
    distribution work (tail percentiles, CDF pinning).
    """
    target = _check_args(arrival_rate, n_jobs, warmup_fraction)
    waits, _, _ = _lindley_path(arrival_rate, service_sampler, target, seed)
    return waits[target - n_jobs:]


def simulate_queue_lindley(
    arrival_rate: float,
    service_sampler: Callable[[np.random.Generator], float],
    n_jobs: int,
    seed: SeedLike = 0,
    warmup_fraction: float = 0.1,
) -> QueueSimStats:
    """Vectorized M/G/1 FIFO simulation via the Lindley recursion.

    Same contract, aggregates, and (given a :class:`ServiceDistribution`
    and the same seed) same sample path as :func:`simulate_queue`, at
    array speed: the event loop is replaced by a ``cumsum`` and a
    ``minimum.accumulate``.
    """
    target = _check_args(arrival_rate, n_jobs, warmup_fraction)
    warmup = target - n_jobs
    waits, services, gaps = _lindley_path(
        arrival_rate, service_sampler, target, seed
    )

    # Arrival times: first job arrives at t=0, then one gap per job.
    arrivals = np.concatenate(([0.0], np.cumsum(gaps[:-1])))
    starts = arrivals + waits
    finish_last = starts[-1] + services[-1]
    # The reference's final (no-op) arrival event advances its clock by
    # one more gap; the horizon is whichever ends later.
    horizon = max(arrivals[-1] + gaps[-1], finish_last)

    post_waits = waits[warmup:]
    post_services = services[warmup:]
    window = horizon - starts[warmup]
    return QueueSimStats(
        jobs_completed=int(post_waits.size),
        mean_wait_s=float(np.mean(post_waits)),
        mean_response_s=float(np.mean(post_waits + post_services)),
        mean_service_s=float(np.mean(post_services)),
        utilization=float(np.sum(post_services)) / window if window > 0 else 0.0,
        horizon_s=float(horizon),
    )
