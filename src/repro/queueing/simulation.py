"""Discrete-event validation of the analytic queue formulas.

A single-server FIFO queue driven by :class:`repro.simulator.engine.EventLoop`:
Poisson arrivals, pluggable service-time sampler.  Tests compare the
simulated mean wait against Pollaczek-Khinchine within sampling error --
the standard way to certify a queueing implementation before trusting it
in an analysis (here, Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.simulator.engine import EventLoop
from repro.util.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class QueueSimStats:
    """Aggregates from one queue simulation run."""

    jobs_completed: int
    mean_wait_s: float
    mean_response_s: float
    mean_service_s: float
    utilization: float
    #: Busy time of the server divided by the simulated horizon.
    horizon_s: float

    def __post_init__(self) -> None:
        if self.jobs_completed < 0:
            raise ValueError("negative completion count")


def simulate_queue(
    arrival_rate: float,
    service_sampler: Callable[[np.random.Generator], float],
    n_jobs: int,
    seed: SeedLike = 0,
    warmup_fraction: float = 0.1,
) -> QueueSimStats:
    """Simulate an M/G/1 FIFO queue for ``n_jobs`` completions.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate, jobs/second (must keep the queue stable for
        the sampler's mean service time, or waits grow without bound).
    service_sampler:
        Draws one service time; e.g. ``lambda rng: 0.05`` for M/D/1 or
        ``lambda rng: rng.exponential(0.05)`` for M/M/1.
    n_jobs:
        Completions to simulate (post-warmup statistics).
    warmup_fraction:
        Leading fraction of jobs excluded from the averages so the
        initial empty-queue transient does not bias them.

    Notes
    -----
    The simulation is event-driven: one arrival event chain and one
    departure event per job, so the run costs O(n log n) regardless of
    the time scale.
    """
    if arrival_rate <= 0:
        raise ValueError("arrival rate must be positive")
    if n_jobs < 1:
        raise ValueError("need at least one job")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup fraction must be in [0, 1)")

    rng = ensure_rng(seed)
    loop = EventLoop()

    waits: List[float] = []
    responses: List[float] = []
    services: List[float] = []
    busy_until = 0.0
    busy_time = 0.0
    completed = 0
    target = n_jobs + int(np.ceil(n_jobs * warmup_fraction / (1 - warmup_fraction)))
    warmup = target - n_jobs

    def arrive() -> None:
        nonlocal busy_until, busy_time, completed
        if completed >= target:
            return
        now = loop.now
        service = float(service_sampler(rng))
        if service <= 0:
            raise ValueError(f"service sampler produced non-positive time {service}")
        start = max(now, busy_until)
        finish = start + service
        busy_until = finish
        busy_time += service
        completed += 1
        if completed > warmup:
            waits.append(start - now)
            responses.append(finish - now)
            services.append(service)
        # Schedule next arrival.
        gap = float(rng.exponential(1.0 / arrival_rate))
        loop.schedule_in(gap, arrive)

    loop.schedule(0.0, arrive)
    loop.run(max_events=10 * target + 10)

    horizon = max(loop.now, busy_until)
    if not waits:
        raise RuntimeError("simulation produced no post-warmup completions")
    return QueueSimStats(
        jobs_completed=len(waits),
        mean_wait_s=float(np.mean(waits)),
        mean_response_s=float(np.mean(responses)),
        mean_service_s=float(np.mean(services)),
        utilization=busy_time / horizon if horizon > 0 else 0.0,
        horizon_s=horizon,
    )


def deterministic_service(service_s: float) -> Callable[[np.random.Generator], float]:
    """Sampler for M/D/1: every job takes exactly ``service_s``."""
    if service_s <= 0:
        raise ValueError("service time must be positive")
    return lambda rng: service_s


def exponential_service(mean_s: float) -> Callable[[np.random.Generator], float]:
    """Sampler for M/M/1: exponential service with mean ``mean_s``."""
    if mean_s <= 0:
        raise ValueError("mean service time must be positive")
    return lambda rng: float(rng.exponential(mean_s))
