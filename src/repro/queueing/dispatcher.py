"""Observation-window energy accounting with job queueing (Figure 10).

The paper's setting: a cluster (e.g. 16 ARM + 14 AMD) serves a stream of
identical jobs arriving Poisson; the dispatcher queues them FIFO; each
job's service time and energy are fixed by the chosen configuration (the
matched schedule).  Over an observation window:

* ``jobs = lambda * window = U * window / T`` jobs are served;
* per-job response time is the M/D/1 mean response ``T (1 + U/(2(1-U)))``;
* energy is ``jobs * E_job`` plus the idle power of the configuration's
  *participating* nodes over the window's idle fraction ``(1 - U)`` --
  nodes not in the configuration are powered off (Section IV-E).

The idle term is what creates Figure 10's two-part sweet region: configs
containing AMD nodes idle at 45 W each between jobs, while ARM-only
configs idle under 2 W, producing the sharp energy drop where the
frontier crosses from mixed to ARM-only compositions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.evaluate import ConfigSpaceResult
from repro.core.pareto import pareto_indices
from repro.core.streaming import FrontierReducer, SpaceBlock
from repro.queueing.models import QueueModel
from repro.queueing.simulation import deterministic_service, simulate_queue_lindley
from repro.util.rng import RngStream, SeedLike


@dataclass(frozen=True)
class WindowPoint:
    """One configuration's window-level outcome at a given utilization.

    ``n_nodes`` carries the full per-group node counts of the
    configuration (one entry per node-type group); ``n_a``/``n_b``
    mirror its first two entries for the paper's two-type case.
    """

    response_s: float
    window_energy_j: float
    utilization: float
    service_s: float
    jobs_in_window: float
    n_a: int
    n_b: int
    n_nodes: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.response_s < 0 or self.window_energy_j < 0:
            raise ValueError("negative response or energy")
        if not self.n_nodes:
            object.__setattr__(self, "n_nodes", (self.n_a, self.n_b))


def window_energy(
    service_s: float,
    job_energy_j: float,
    idle_power_w: float,
    utilization: float,
    window_s: float,
    service_scv: float = 0.0,
) -> WindowPoint:
    """Window energy and response time for one configuration.

    Parameters
    ----------
    service_s, job_energy_j:
        The configuration's per-job service time and energy (from the
        per-job model).
    idle_power_w:
        Combined idle draw of the configuration's nodes (others are off).
    utilization:
        Target ``U = lambda * T`` in [0, 1).
    window_s:
        Observation window (the paper uses 20 s).
    service_scv:
        0 for the paper's M/D/1; other values for the ablation.
    """
    if service_s <= 0 or job_energy_j < 0:
        raise ValueError("service time must be positive, job energy non-negative")
    if idle_power_w < 0:
        raise ValueError("idle power must be non-negative")
    if window_s <= 0:
        raise ValueError("window must be positive")
    if not 0.0 <= utilization < 1.0:
        raise ValueError(f"utilization must be in [0, 1), got {utilization}")

    if utilization == 0.0:
        response = service_s
        jobs = 0.0
    else:
        model = QueueModel.for_utilization(
            service_s, utilization, service_scv=service_scv
        )
        response = model.mean_response_s
        jobs = model.arrival_rate * window_s

    energy = jobs * job_energy_j + (1.0 - utilization) * window_s * idle_power_w
    return WindowPoint(
        response_s=response,
        window_energy_j=energy,
        utilization=utilization,
        service_s=service_s,
        jobs_in_window=jobs,
        n_a=0,
        n_b=0,
    )


def _resolve_idle_powers(
    num_groups: int,
    idle_power_a_w: Optional[float],
    idle_power_b_w: Optional[float],
    idle_powers_w: Optional[Sequence[float]],
) -> List[float]:
    """Normalize the two idle-power spellings to one list per group."""
    if idle_powers_w is None:
        if idle_power_a_w is None or idle_power_b_w is None:
            raise ValueError(
                "pass idle_power_a_w and idle_power_b_w, or idle_powers_w"
            )
        idle_powers_w = (idle_power_a_w, idle_power_b_w)
    elif idle_power_a_w is not None or idle_power_b_w is not None:
        raise ValueError("pass either the idle power pair or idle_powers_w")
    idle_powers = [float(p) for p in idle_powers_w]
    if any(p < 0 for p in idle_powers):
        raise ValueError("idle powers must be non-negative")
    if len(idle_powers) != num_groups:
        raise ValueError(
            f"{len(idle_powers)} idle powers for {num_groups} node groups"
        )
    return idle_powers


def _window_arrays(
    service: np.ndarray,
    e_job: np.ndarray,
    idle_w: np.ndarray,
    u: float,
    window_s: float,
    service_scv: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Window-level ``(responses, energies, jobs)`` at one utilization.

    Purely elementwise, which is what makes the block-streamed window
    frontier bit-identical to the materialized one: splitting the rows
    changes nothing about any row's value.
    """
    if not 0.0 <= u < 1.0:
        raise ValueError(f"utilization must be in [0, 1), got {u}")
    if u == 0.0:
        responses = service.copy()
        jobs = np.zeros_like(service)
    else:
        # Pollaczek-Khinchine mean wait at fixed utilization.
        wait = u * service * (1.0 + service_scv) / (2.0 * (1.0 - u))
        responses = service + wait
        jobs = (u / service) * window_s
    energies = jobs * e_job + (1.0 - u) * window_s * idle_w
    return responses, energies, jobs


def figure10_series(
    space: ConfigSpaceResult,
    idle_power_a_w: Optional[float] = None,
    idle_power_b_w: Optional[float] = None,
    utilizations: Sequence[float] = (0.05, 0.25, 0.50),
    window_s: float = 20.0,
    service_scv: float = 0.0,
    prune_to_frontier: bool = True,
    idle_powers_w: Optional[Sequence[float]] = None,
) -> Dict[float, List[WindowPoint]]:
    """Figure 10: response-time / window-energy curves per utilization.

    For each utilization profile, every per-job Pareto configuration is
    re-evaluated at the window level (queueing wait inflates response;
    idle power fills the window's gaps), and the resulting point cloud is
    pruned to its own response-energy Pareto frontier -- "extending the
    Pareto frontier to model job arrivals" (Section IV-E).

    Per-node idle powers come either as the two-type pair
    ``idle_power_a_w``/``idle_power_b_w`` or as ``idle_powers_w``, one
    entry per node-type group of ``space`` (the k-group form).

    Returns ``{utilization: [WindowPoint, ...]}`` sorted by response time.
    """
    idle_powers = _resolve_idle_powers(
        space.num_groups, idle_power_a_w, idle_power_b_w, idle_powers_w
    )

    # Vectorized over the *entire* space: a configuration dominated per
    # job (same job energy, fewer nodes, slower) can still win at the
    # window level because its smaller idle footprint fills the gaps
    # between jobs more cheaply -- the paper evaluates every point with
    # "unused nodes turned off".
    service = np.asarray(space.times_s, dtype=float)
    e_job = np.asarray(space.energies_j, dtype=float)
    idle_w = space.n[0] * idle_powers[0]
    for g in range(1, space.num_groups):
        idle_w = idle_w + space.n[g] * idle_powers[g]

    result: Dict[float, List[WindowPoint]] = {}
    for u in utilizations:
        u = float(u)
        responses, energies, jobs = _window_arrays(
            service, e_job, idle_w, u, window_s, service_scv
        )

        if prune_to_frontier:
            keep = pareto_indices(responses, energies)
        else:
            keep = np.argsort(responses)
        points = [
            WindowPoint(
                response_s=float(responses[i]),
                window_energy_j=float(energies[i]),
                utilization=u,
                service_s=float(service[i]),
                jobs_in_window=float(jobs[i]),
                n_a=int(space.n[0, i]),
                n_b=int(space.n[1, i]) if space.num_groups >= 2 else 0,
                n_nodes=tuple(int(space.n[g, i]) for g in range(space.num_groups)),
            )
            for i in keep
        ]
        points.sort(key=lambda p: p.response_s)
        result[u] = points
    return result


class Figure10Reducer:
    """Streaming twin of :func:`figure10_series`: window frontiers per block.

    A consumer for :func:`repro.core.streaming.reduce_space_blocks` --
    feed it :class:`~repro.core.streaming.SpaceBlock`\\ s and
    :meth:`finish` returns the same ``{utilization: [WindowPoint, ...]}``
    mapping as the materialized path, bit-identical: the window
    arithmetic is elementwise (block-splitting cannot change any row) and
    the per-utilization pruning runs through the exact online frontier
    merge of :class:`~repro.core.streaming.FrontierReducer`.  Only the
    pruned form streams -- an unpruned series *is* the whole space at
    window level, which is precisely what a memory budget forbids.
    """

    def __init__(
        self,
        idle_power_a_w: Optional[float] = None,
        idle_power_b_w: Optional[float] = None,
        utilizations: Sequence[float] = (0.05, 0.25, 0.50),
        window_s: float = 20.0,
        service_scv: float = 0.0,
        idle_powers_w: Optional[Sequence[float]] = None,
    ):
        self._idle_pair = (idle_power_a_w, idle_power_b_w)
        self._idle_powers_w = idle_powers_w
        self.utilizations = tuple(float(u) for u in utilizations)
        self.window_s = float(window_s)
        self.service_scv = float(service_scv)
        self._idle_powers: Optional[List[float]] = None
        self._num_groups = 0
        self._reducers: Dict[float, FrontierReducer] = {}

    def update(self, block: SpaceBlock) -> None:
        data = block.data
        if self._idle_powers is None:
            self._num_groups = data.num_groups
            self._idle_powers = _resolve_idle_powers(
                data.num_groups, *self._idle_pair, self._idle_powers_w
            )
            extras = ["service", "jobs"] + [
                f"n{g}" for g in range(data.num_groups)
            ]
            self._reducers = {
                u: FrontierReducer(extra_names=extras)
                for u in self.utilizations
            }
        service = np.asarray(data.times_s, dtype=float)
        e_job = np.asarray(data.energies_j, dtype=float)
        idle_w = data.n[0] * self._idle_powers[0]
        for g in range(1, data.num_groups):
            idle_w = idle_w + data.n[g] * self._idle_powers[g]
        for u, reducer in self._reducers.items():
            responses, energies, jobs = _window_arrays(
                service, e_job, idle_w, u, self.window_s, self.service_scv
            )
            extra = {"service": service, "jobs": jobs}
            for g in range(data.num_groups):
                extra[f"n{g}"] = data.n[g]
            reducer.update(
                responses, energies, start_row=block.start_row, extra=extra
            )

    def state_dict(self) -> Dict[str, Any]:
        """Checkpoint snapshot (see :func:`reduce_space_blocks`)."""
        return {
            "idle_powers": (
                None if self._idle_powers is None else list(self._idle_powers)
            ),
            "num_groups": self._num_groups,
            "reducers": {
                u: reducer.state_dict()
                for u, reducer in self._reducers.items()
            },
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot into this reducer."""
        if state["idle_powers"] is None:
            # Checkpointed before the first block: nothing to restore.
            self._idle_powers = None
            self._num_groups = 0
            self._reducers = {}
            return
        self._idle_powers = [float(p) for p in state["idle_powers"]]
        self._num_groups = int(state["num_groups"])
        saved = state["reducers"]
        if set(saved) != set(self.utilizations):
            raise ValueError(
                "checkpoint utilization levels do not match this reducer"
            )
        extras = ["service", "jobs"] + [
            f"n{g}" for g in range(self._num_groups)
        ]
        self._reducers = {}
        for u in self.utilizations:
            reducer = FrontierReducer(extra_names=extras)
            reducer.load_state(saved[u])
            self._reducers[u] = reducer

    def merge(self, state: Mapping[str, Any]) -> None:
        """Fold a worker-side :meth:`state_dict` into this reducer.

        Workers fold their block through a fresh ``Figure10Reducer`` with
        global ``start_row``\\ s, so the per-utilization frontier states
        merge with offset 0 via
        :meth:`~repro.core.streaming.FrontierReducer.merge` -- bit-identical
        to having streamed the block here, as long as states arrive in
        plan order.
        """
        if state["idle_powers"] is None:
            return
        if self._idle_powers is None:
            self.load_state(state)
            return
        if int(state["num_groups"]) != self._num_groups:
            raise ValueError(
                f"cannot merge a {state['num_groups']}-group queueing state "
                f"into a {self._num_groups}-group reducer"
            )
        saved = state["reducers"]
        if set(saved) != set(self.utilizations):
            raise ValueError(
                "merged utilization levels do not match this reducer"
            )
        for u in self.utilizations:
            self._reducers[u].merge(saved[u])

    def finish(self) -> Dict[float, List[WindowPoint]]:
        if self._idle_powers is None:
            raise ValueError("no blocks were streamed through the reducer")
        result: Dict[float, List[WindowPoint]] = {}
        for u, reducer in self._reducers.items():
            frontier = reducer.finish()
            points: List[WindowPoint] = []
            if frontier is not None:
                service = reducer.extra("service")
                jobs = reducer.extra("jobs")
                n_cols = [
                    reducer.extra(f"n{g}") for g in range(self._num_groups)
                ]
                for k in range(len(frontier)):
                    n_nodes = tuple(int(col[k]) for col in n_cols)
                    points.append(
                        WindowPoint(
                            response_s=float(frontier.times_s[k]),
                            window_energy_j=float(frontier.energies_j[k]),
                            utilization=u,
                            service_s=float(service[k]),
                            jobs_in_window=float(jobs[k]),
                            n_a=n_nodes[0],
                            n_b=n_nodes[1] if self._num_groups >= 2 else 0,
                            n_nodes=n_nodes,
                        )
                    )
            points.sort(key=lambda p: p.response_s)
            result[u] = points
        return result


def figure10_series_stream(
    blocks: Iterable[SpaceBlock],
    idle_power_a_w: Optional[float] = None,
    idle_power_b_w: Optional[float] = None,
    utilizations: Sequence[float] = (0.05, 0.25, 0.50),
    window_s: float = 20.0,
    service_scv: float = 0.0,
    idle_powers_w: Optional[Sequence[float]] = None,
) -> Dict[float, List[WindowPoint]]:
    """One-shot sugar: stream ``blocks`` through a :class:`Figure10Reducer`."""
    reducer = Figure10Reducer(
        idle_power_a_w=idle_power_a_w,
        idle_power_b_w=idle_power_b_w,
        utilizations=utilizations,
        window_s=window_s,
        service_scv=service_scv,
        idle_powers_w=idle_powers_w,
    )
    for block in blocks:
        reducer.update(block)
    return reducer.finish()


def verify_points_against_simulation(
    points: Sequence[WindowPoint],
    n_jobs: int = 20_000,
    seed: SeedLike = 0,
    max_points: Optional[int] = None,
) -> Dict[str, float]:
    """Cross-check a window frontier's analytic responses by simulation.

    Each point's M/D/1 mean response (the Pollaczek-Khinchine closed form
    behind :func:`figure10_series`) is re-derived empirically with the
    vectorized Lindley queue at the point's service time and
    utilization-implied arrival rate.  Returns the worst relative error
    over the checked points plus bookkeeping -- the Fig. 10 benchmark and
    ``benchmarks/record.py`` assert it stays within Monte-Carlo noise.

    ``max_points`` caps the work by sub-sampling the frontier evenly
    (``None`` checks every point with ``utilization > 0``).
    """
    if n_jobs < 1:
        raise ValueError("need at least one job per check")
    busy = [p for p in points if p.utilization > 0.0]
    if max_points is not None and max_points < len(busy):
        if max_points < 1:
            raise ValueError("max_points must be at least 1")
        picks = np.linspace(0, len(busy) - 1, max_points).round().astype(int)
        busy = [busy[i] for i in np.unique(picks)]
    worst = 0.0
    stream = RngStream(seed)
    for index, point in enumerate(busy):
        stats = simulate_queue_lindley(
            point.utilization / point.service_s,
            deterministic_service(point.service_s),
            n_jobs,
            seed=stream.child("fig10-verify", index),
        )
        error = abs(stats.mean_response_s - point.response_s) / point.response_s
        worst = max(worst, error)
    return {
        "points_checked": float(len(busy)),
        "jobs_per_point": float(n_jobs),
        "max_rel_response_error": worst,
    }


def sweet_region_drop(points: Sequence[WindowPoint]) -> Optional[float]:
    """Largest single-step fractional energy drop along a window frontier.

    Figure 10's "sharp drop" where the frontier crosses from mixed to
    ARM-only compositions; returns ``None`` for fewer than two points.
    """
    if len(points) < 2:
        return None
    energies = np.asarray([p.window_energy_j for p in points])
    drops = (energies[:-1] - energies[1:]) / energies[:-1]
    return float(np.max(drops))
