"""Job-arrival queueing layer (Section IV-E).

The paper extends the per-job Pareto analysis with an M/D/1 queue: jobs
arrive Poisson at a dispatcher, service time is deterministic (fixed by
the matched configuration), and waiting inflates the response time while
idle gaps between jobs burn idle power.  This package provides

* the analytic M/D/1 model the paper uses, plus M/M/1 and M/G/1
  (Pollaczek-Khinchine) for the sensitivity ablation;
* a discrete-event single-server queue simulator that validates the
  formulas (built on :class:`repro.simulator.engine.EventLoop`);
* the observation-window energy accounting behind Figure 10.
"""

from repro.queueing.models import MD1Queue, MM1Queue, MG1Queue, QueueModel
from repro.queueing.simulation import QueueSimStats, simulate_queue
from repro.queueing.dispatcher import (
    WindowPoint,
    window_energy,
    figure10_series,
)
from repro.queueing.tail import MD1WaitDistribution, percentile_feasible_energy
from repro.queueing.replay import WindowReplay, replay_mean, replay_window

__all__ = [
    "MD1Queue",
    "MM1Queue",
    "MG1Queue",
    "QueueModel",
    "QueueSimStats",
    "simulate_queue",
    "WindowPoint",
    "window_energy",
    "figure10_series",
    "MD1WaitDistribution",
    "percentile_feasible_energy",
    "WindowReplay",
    "replay_mean",
    "replay_window",
]
