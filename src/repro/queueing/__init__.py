"""Job-arrival queueing layer (Section IV-E).

The paper extends the per-job Pareto analysis with an M/D/1 queue: jobs
arrive Poisson at a dispatcher, service time is deterministic (fixed by
the matched configuration), and waiting inflates the response time while
idle gaps between jobs burn idle power.  This package provides

* the analytic M/D/1 model the paper uses, plus M/M/1 and M/G/1
  (Pollaczek-Khinchine) for the sensitivity ablation;
* a discrete-event single-server queue simulator that validates the
  formulas (built on :class:`repro.simulator.engine.EventLoop`), and its
  vectorized Lindley-recursion twin for large sample sizes;
* the observation-window energy accounting behind Figure 10, with a
  simulation cross-check of the analytic responses.
"""

from repro.queueing.models import MD1Queue, MM1Queue, MG1Queue, QueueModel
from repro.queueing.simulation import (
    DeterministicService,
    ExponentialService,
    QueueSimStats,
    ServiceDistribution,
    deterministic_service,
    exponential_service,
    queue_wait_samples,
    simulate_queue,
    simulate_queue_lindley,
)
from repro.queueing.dispatcher import (
    WindowPoint,
    window_energy,
    figure10_series,
    verify_points_against_simulation,
)
from repro.queueing.tail import MD1WaitDistribution, percentile_feasible_energy
from repro.queueing.replay import WindowReplay, replay_mean, replay_window

__all__ = [
    "MD1Queue",
    "MM1Queue",
    "MG1Queue",
    "QueueModel",
    "QueueSimStats",
    "ServiceDistribution",
    "DeterministicService",
    "ExponentialService",
    "deterministic_service",
    "exponential_service",
    "simulate_queue",
    "simulate_queue_lindley",
    "queue_wait_samples",
    "WindowPoint",
    "window_energy",
    "figure10_series",
    "verify_points_against_simulation",
    "MD1WaitDistribution",
    "percentile_feasible_energy",
    "WindowReplay",
    "replay_mean",
    "replay_window",
]
