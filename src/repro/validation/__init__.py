"""Model-vs-testbed validation (Section III, Tables 3 and 4).

Calibrates model inputs from baseline runs, predicts execution time and
energy for full-size runs, executes the same runs on the simulated
testbed, and aggregates percentage errors -- the exact experiment the
paper performs against physical hardware, with our simulator standing in
for the boards (see DESIGN.md Section 2 for why that substitution keeps
the validation meaningful).
"""

from repro.validation.metrics import ValidationRecord, aggregate_records
from repro.validation.harness import (
    SingleNodeValidation,
    ClusterValidation,
    validate_single_node,
    validate_cluster,
)

__all__ = [
    "ValidationRecord",
    "aggregate_records",
    "SingleNodeValidation",
    "ClusterValidation",
    "validate_single_node",
    "validate_cluster",
]
