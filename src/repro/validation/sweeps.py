"""Validation sweeps: how model error scales with testbed conditions.

The paper reports one error figure per cell; a reproduction can do more.
These sweeps re-run the Table 3 experiment while scaling a condition and
report the error trend:

* :func:`noise_sweep` -- scale every noise magnitude together.  Errors
  should extrapolate to the small structural floor at zero noise and
  grow ~linearly with the scale, confirming the validation measures
  measurement irregularity rather than model brokenness.
* :func:`problem_size_sweep` -- grow the problem size.  Per-phase noise
  averages out (CLT) but the run-systematic factors do not, so the error
  should *plateau*, not vanish -- the reason real clusters never
  validate to 0% however long the runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.hardware.specs import NodeSpec
from repro.simulator.noise import CALIBRATED_NOISE, NoiseModel
from repro.util.rng import SeedLike
from repro.validation.harness import validate_single_node
from repro.workloads.base import WorkloadSpec


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample."""

    x: float
    time_error_pct: float
    energy_error_pct: float


def noise_sweep(
    node: NodeSpec,
    workload: WorkloadSpec,
    scales: Sequence[float] = (0.0, 0.5, 1.0, 2.0),
    units: float = 1e6,
    seed: SeedLike = 0,
    repetitions: int = 2,
    base: NoiseModel = CALIBRATED_NOISE,
) -> List[SweepPoint]:
    """Mean validation error at each overall noise scale."""
    if not scales:
        raise ValueError("need at least one scale")
    points: List[SweepPoint] = []
    for scale in scales:
        report = validate_single_node(
            node,
            workload,
            units=units,
            noise=base.scaled(scale),
            seed=seed,
            repetitions=repetitions,
        )
        points.append(
            SweepPoint(
                x=float(scale),
                time_error_pct=report.time_errors.mean,
                energy_error_pct=report.energy_errors.mean,
            )
        )
    return points


def problem_size_sweep(
    node: NodeSpec,
    workload: WorkloadSpec,
    sizes: Sequence[float] = (1e4, 1e5, 1e6, 1e8),
    seed: SeedLike = 0,
    repetitions: int = 2,
    noise: NoiseModel = CALIBRATED_NOISE,
) -> List[SweepPoint]:
    """Mean validation error at each problem size."""
    if not sizes:
        raise ValueError("need at least one size")
    points: List[SweepPoint] = []
    for size in sizes:
        report = validate_single_node(
            node,
            workload,
            units=float(size),
            noise=noise,
            seed=seed,
            repetitions=repetitions,
        )
        points.append(
            SweepPoint(
                x=float(size),
                time_error_pct=report.time_errors.mean,
                energy_error_pct=report.energy_errors.mean,
            )
        )
    return points
