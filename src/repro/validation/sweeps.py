"""Validation sweeps: how model error scales with testbed conditions.

The paper reports one error figure per cell; a reproduction can do more.
These sweeps re-run the Table 3 experiment while scaling a condition and
report the error trend:

* :func:`noise_sweep` -- scale every noise magnitude together.  Errors
  should extrapolate to the small structural floor at zero noise and
  grow ~linearly with the scale, confirming the validation measures
  measurement irregularity rather than model brokenness.
* :func:`problem_size_sweep` -- grow the problem size.  Per-phase noise
  averages out (CLT) but the run-systematic factors do not, so the error
  should *plateau*, not vanish -- the reason real clusters never
  validate to 0% however long the runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.hardware.specs import NodeSpec
from repro.simulator.noise import CALIBRATED_NOISE, NoiseModel
from repro.util.rng import SeedLike
from repro.validation.harness import validate_single_node
from repro.workloads.base import WorkloadSpec

#: Order-preserving map over independent sweep points.  The default is
#: the builtin serial map; pass ``RunContext.map`` (or
#: :func:`repro.engine.parallel_map`) to fan replications across a
#: process pool -- every worker payload here is top-level and picklable.
MapFn = Callable[[Callable, Iterable], Iterable]


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample."""

    x: float
    time_error_pct: float
    energy_error_pct: float


def _sweep_point(
    args: Tuple[NodeSpec, WorkloadSpec, float, float, NoiseModel, SeedLike, int, bool],
) -> SweepPoint:
    """Evaluate one sweep sample (top-level so process pools can pickle it)."""
    node, workload, x, units, noise, seed, repetitions, batched = args
    report = validate_single_node(
        node,
        workload,
        units=units,
        noise=noise,
        seed=seed,
        repetitions=repetitions,
        batched=batched,
    )
    return SweepPoint(
        x=float(x),
        time_error_pct=report.time_errors.mean,
        energy_error_pct=report.energy_errors.mean,
    )


def noise_sweep(
    node: NodeSpec,
    workload: WorkloadSpec,
    scales: Sequence[float] = (0.0, 0.5, 1.0, 2.0),
    units: float = 1e6,
    seed: SeedLike = 0,
    repetitions: int = 2,
    base: NoiseModel = CALIBRATED_NOISE,
    map_fn: Optional[MapFn] = None,
    batched: bool = True,
) -> List[SweepPoint]:
    """Mean validation error at each overall noise scale."""
    if not scales:
        raise ValueError("need at least one scale")
    tasks = [
        (
            node, workload, float(scale), units,
            base.scaled(scale), seed, repetitions, batched,
        )
        for scale in scales
    ]
    return list((map_fn or map)(_sweep_point, tasks))


def problem_size_sweep(
    node: NodeSpec,
    workload: WorkloadSpec,
    sizes: Sequence[float] = (1e4, 1e5, 1e6, 1e8),
    seed: SeedLike = 0,
    repetitions: int = 2,
    noise: NoiseModel = CALIBRATED_NOISE,
    map_fn: Optional[MapFn] = None,
    batched: bool = True,
) -> List[SweepPoint]:
    """Mean validation error at each problem size."""
    if not sizes:
        raise ValueError("need at least one size")
    tasks = [
        (node, workload, float(size), float(size), noise, seed, repetitions, batched)
        for size in sizes
    ]
    return list((map_fn or map)(_sweep_point, tasks))
