"""Validation record-keeping and error aggregation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.util.stats import ErrorSummary, percent_error, summarize_errors


@dataclass(frozen=True)
class ValidationRecord:
    """One prediction-vs-measurement comparison."""

    workload: str
    node: str
    setting: str  # e.g. "c=4 f=1.4" or "8xARM+1xAMD"
    predicted_time_s: float
    measured_time_s: float
    predicted_energy_j: float
    measured_energy_j: float

    def __post_init__(self) -> None:
        if min(
            self.predicted_time_s,
            self.measured_time_s,
            self.predicted_energy_j,
            self.measured_energy_j,
        ) <= 0:
            raise ValueError("validation needs positive times and energies")

    @property
    def time_error_pct(self) -> float:
        """|predicted - measured| / measured, percent."""
        return percent_error(self.predicted_time_s, self.measured_time_s)

    @property
    def energy_error_pct(self) -> float:
        return percent_error(self.predicted_energy_j, self.measured_energy_j)


def aggregate_records(
    records: Iterable[ValidationRecord],
) -> Tuple[ErrorSummary, ErrorSummary]:
    """(time errors, energy errors) summaries over a record sample."""
    records = list(records)
    if not records:
        raise ValueError("no validation records to aggregate")
    time_summary = summarize_errors(r.time_error_pct for r in records)
    energy_summary = summarize_errors(r.energy_error_pct for r in records)
    return time_summary, energy_summary
