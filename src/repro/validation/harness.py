"""Validation experiments: single-node (Table 3) and cluster (Table 4).

Workflow per (workload, node):

1. calibrate model inputs from noisy baseline runs
   (:func:`repro.core.calibration.calibrate_node`) with one seed;
2. predict time and energy for the full problem size at each machine
   setting;
3. "measure" the same runs on the simulated testbed with *different*
   seeds (fresh noise draws -- crucial: reusing the calibration seed
   would leak the noise into the prediction and understate error);
4. aggregate |prediction - measurement| / measurement percentages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.calibration import calibrate_node
from repro.core.energymodel import predict_node_energy
from repro.core.matching import GroupSetting, match_split
from repro.core.params import NodeModelParams
from repro.core.timemodel import predict_node_time
from repro.hardware.specs import NodeSpec
from repro.simulator.batch import repeat_settings
from repro.simulator.cluster import ClusterSimulator, GroupAssignment
from repro.simulator.node import NodeSimulator
from repro.simulator.noise import CALIBRATED_NOISE, NoiseModel
from repro.util.rng import RngStream, SeedLike
from repro.util.stats import ErrorSummary
from repro.validation.metrics import ValidationRecord, aggregate_records
from repro.workloads.base import WorkloadSpec


@dataclass(frozen=True)
class SingleNodeValidation:
    """Table 3 cell: one workload on one node type."""

    workload: str
    node: str
    bottleneck: str
    time_errors: ErrorSummary
    energy_errors: ErrorSummary
    records: Tuple[ValidationRecord, ...]


@dataclass(frozen=True)
class ClusterValidation:
    """Table 4 row: one workload on one cluster composition."""

    workload: str
    n_a: int
    n_b: int
    time_error_pct: float
    energy_error_pct: float
    record: ValidationRecord


def validate_single_node(
    node: NodeSpec,
    workload: WorkloadSpec,
    units: Optional[float] = None,
    noise: NoiseModel = CALIBRATED_NOISE,
    seed: SeedLike = 0,
    repetitions: int = 3,
    params: Optional[NodeModelParams] = None,
    batched: bool = True,
) -> SingleNodeValidation:
    """Validate time/energy predictions on one node across all settings.

    ``units`` defaults to the workload's Table 3 problem size when one is
    declared, else its default job size.  ``repetitions`` independent
    measured runs per setting feed the error statistics (the paper's
    mean +/- std per cell).  ``batched`` routes both the calibration and
    the measurement campaign through :meth:`NodeSimulator.run_batch`;
    records are bit-identical either way (same seed tree).
    """
    if units is None:
        units = workload.problem_sizes.get("table3", workload.default_job_units)
    stream = RngStream(seed)
    if params is None:
        params = calibrate_node(
            node,
            workload,
            noise=noise,
            seed=stream.child("calibration").rng,
            batched=batched,
        )

    sim = NodeSimulator(node, noise=noise)
    grid = [
        (cores, f)
        for cores in range(1, node.cores.count + 1)
        for f in node.cores.pstates_ghz
    ]
    predictions = {}
    for cores, f in grid:
        times = predict_node_time(params, units, 1, cores, f)
        predictions[(cores, f)] = (
            times.time_s,
            predict_node_energy(params, times).energy_j,
        )

    def record(cores, f, measured_time_s, measured_energy_j) -> ValidationRecord:
        predicted_time, predicted_energy = predictions[(cores, f)]
        return ValidationRecord(
            workload=workload.name,
            node=node.name,
            setting=f"c={cores} f={f}",
            predicted_time_s=predicted_time,
            measured_time_s=measured_time_s,
            predicted_energy_j=predicted_energy,
            measured_energy_j=measured_energy_j,
        )

    records: List[ValidationRecord] = []
    if batched:
        rows = repeat_settings(grid, repetitions)
        seeds = [stream.child("measure", i) for i in range(len(rows))]
        batch = sim.run_batch(workload, units, rows, seeds)
        for i, (cores, f) in enumerate(rows):
            records.append(
                record(cores, f, float(batch.time_s[i]), float(batch.energy_j[i]))
            )
    else:
        run_index = 0
        for cores, f in grid:
            for _ in range(repetitions):
                rng = stream.child("measure", run_index).rng
                run_index += 1
                measured = sim.run(workload, units, cores, f, seed=rng)
                records.append(record(cores, f, measured.time_s, measured.energy_j))
    time_summary, energy_summary = aggregate_records(records)
    return SingleNodeValidation(
        workload=workload.name,
        node=node.name,
        bottleneck=workload.bottleneck.value,
        time_errors=time_summary,
        energy_errors=energy_summary,
        records=tuple(records),
    )


def validate_cluster(
    node_a: NodeSpec,
    n_a: int,
    node_b: NodeSpec,
    n_b: int,
    workload: WorkloadSpec,
    units: Optional[float] = None,
    noise: NoiseModel = CALIBRATED_NOISE,
    seed: SeedLike = 0,
    params: Optional[Dict[str, NodeModelParams]] = None,
    batched: bool = True,
) -> ClusterValidation:
    """Validate one cluster composition (Table 4 uses 8 ARM + {0,1} AMD).

    Prediction: matched split, model time and energy (Eqs. 1-19).
    Measurement: the cluster simulator with the same split -- the
    measured job reproduces the schedule the model prescribed, exactly as
    the paper deploys its model-derived configuration on the testbed.
    """
    if n_a < 0 or n_b < 0 or (n_a == 0 and n_b == 0):
        raise ValueError("cluster needs non-negative counts and at least one node")
    if units is None:
        units = workload.problem_sizes.get("table3", workload.default_job_units)
    stream = RngStream(seed)
    if params is None:
        params = {}
        for label, node in (("a", node_a), ("b", node_b)):
            params[node.name] = calibrate_node(
                node,
                workload,
                noise=noise,
                seed=stream.child(f"cal-{label}").rng,
                batched=batched,
            )

    cores_a, f_a = node_a.cores.count, node_a.cores.fmax_ghz
    cores_b, f_b = node_b.cores.count, node_b.cores.fmax_ghz
    group_a = GroupSetting(params[node_a.name], n_a, cores_a, f_a)
    group_b = GroupSetting(params[node_b.name], n_b, cores_b, f_b)
    match = match_split(units, group_a, group_b)

    predicted_energy = 0.0
    for group, w in ((group_a, match.units_a), (group_b, match.units_b)):
        if group.n_nodes == 0:
            continue
        times = predict_node_time(
            group.params, w, group.n_nodes, group.cores, group.f_ghz
        )
        predicted_energy += predict_node_energy(
            group.params, times, job_time_s=match.time_s
        ).energy_j

    assignments = []
    if n_a > 0:
        assignments.append(
            GroupAssignment(node_a, n_a, cores_a, f_a, match.units_a)
        )
    if n_b > 0:
        assignments.append(
            GroupAssignment(node_b, n_b, cores_b, f_b, match.units_b)
        )
    cluster = ClusterSimulator(noise=noise)
    measured = cluster.run_job(
        workload, assignments, seed=stream.child("job").rng, batched=batched
    )

    record = ValidationRecord(
        workload=workload.name,
        node=f"{n_a}x{node_a.name}+{n_b}x{node_b.name}",
        setting=f"{n_a}:{n_b}",
        predicted_time_s=match.time_s,
        measured_time_s=measured.time_s,
        predicted_energy_j=predicted_energy,
        measured_energy_j=measured.energy_j,
    )
    return ClusterValidation(
        workload=workload.name,
        n_a=n_a,
        n_b=n_b,
        time_error_pct=record.time_error_pct,
        energy_error_pct=record.energy_error_pct,
        record=record,
    )
